//! Workspace-local stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! the slice of the criterion API the workspace's benchmarks use:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`],
//! `Bencher::iter` and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement is a simple adaptive wall-clock loop: each benchmark is
//! warmed up, then timed over enough iterations to fill a short measurement
//! window, and the mean time per iteration is printed. There is no
//! statistical analysis, HTML report or regression detection — the point is
//! that `cargo bench` runs, produces comparable numbers and keeps the
//! benchmark code compiling.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion-style.
pub use std::hint::black_box;

/// How long each benchmark is measured for (after warm-up).
const MEASUREMENT_WINDOW: Duration = Duration::from_millis(200);
/// How long each benchmark is warmed up for.
const WARMUP_WINDOW: Duration = Duration::from_millis(50);

/// Identifier of one benchmark, optionally parameterised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            id: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { id: name }
    }
}

impl From<BenchmarkId> for String {
    fn from(id: BenchmarkId) -> Self {
        id.id
    }
}

/// Units processed per iteration, used to report a rate next to the time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to every benchmark closure; runs and times the workload.
#[derive(Debug, Default)]
pub struct Bencher {
    mean_ns: f64,
    iterations: u64,
}

impl Bencher {
    /// Times `routine`: warm-up, then an adaptive measurement loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up, and a first estimate of the per-iteration cost.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < WARMUP_WINDOW || warmup_iters == 0 {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;

        let target =
            ((MEASUREMENT_WINDOW.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.iterations = target;
        self.mean_ns = elapsed.as_nanos() as f64 / target as f64;
    }
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(id: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let mut line = format!(
        "{id:<45} time: {:>12}   ({} iterations)",
        format_time(bencher.mean_ns),
        bencher.iterations
    );
    if let Some(tp) = throughput {
        let (units, label) = match tp {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        let rate = units as f64 / (bencher.mean_ns * 1e-9);
        line.push_str(&format!("   {rate:.3e} {label}"));
    }
    println!("{line}");
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, throughput: Option<Throughput>, mut f: F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    report(id, &bencher, throughput);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this runner's loop is adaptive.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; this runner's window is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the throughput used to report a rate for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, String::from(id.into()));
        run_benchmark(&id, self.throughput, f);
        self
    }

    /// Runs one parameterised benchmark in this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark runner.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_benchmark(&String::from(id.into()), None, f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }
}

/// Defines a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; none apply here.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.iterations > 0);
        assert!(b.mean_ns > 0.0);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(String::from(BenchmarkId::new("rca", 16)), "rca/16");
        assert_eq!(String::from(BenchmarkId::from("plain")), "plain");
    }

    #[test]
    fn time_formatting_scales() {
        assert!(format_time(12.0).ends_with("ns"));
        assert!(format_time(12_000.0).ends_with("µs"));
        assert!(format_time(12_000_000.0).ends_with("ms"));
        assert!(format_time(12_000_000_000.0).ends_with('s'));
    }
}
