//! Workspace-local stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! the slice of the criterion API the workspace's benchmarks use:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`],
//! `Bencher::iter` and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement is a simple adaptive wall-clock loop: each benchmark is
//! warmed up, then timed over enough iterations to fill a short measurement
//! window, and the mean time per iteration is printed. There is no
//! statistical analysis, HTML report or regression detection — the point is
//! that `cargo bench` runs, produces comparable numbers and keeps the
//! benchmark code compiling.

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion-style.
pub use std::hint::black_box;

/// Every `(benchmark id, median ns/iter)` measured by this process, in
/// run order; drained by [`write_summary`] at the end of `main`.
static RESULTS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

/// How long each benchmark is measured for (after warm-up).
const MEASUREMENT_WINDOW: Duration = Duration::from_millis(200);
/// How long each benchmark is warmed up for.
const WARMUP_WINDOW: Duration = Duration::from_millis(50);

/// Identifier of one benchmark, optionally parameterised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            id: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { id: name }
    }
}

impl From<BenchmarkId> for String {
    fn from(id: BenchmarkId) -> Self {
        id.id
    }
}

/// Units processed per iteration, used to report a rate next to the time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How many timed chunks the measurement loop is split into; the reported
/// median is the median of the per-chunk means.
const MEASUREMENT_CHUNKS: u64 = 5;

/// Passed to every benchmark closure; runs and times the workload.
#[derive(Debug, Default)]
pub struct Bencher {
    mean_ns: f64,
    median_ns: f64,
    iterations: u64,
}

impl Bencher {
    /// Times `routine`: warm-up, then an adaptive measurement loop split
    /// into `MEASUREMENT_CHUNKS` timed chunks (their median damps
    /// one-off scheduling noise in the machine-readable summary).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up, and a first estimate of the per-iteration cost.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < WARMUP_WINDOW || warmup_iters == 0 {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;

        let target =
            ((MEASUREMENT_WINDOW.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
        let per_chunk = (target / MEASUREMENT_CHUNKS).max(1);
        let mut chunk_means: Vec<f64> = (0..MEASUREMENT_CHUNKS)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..per_chunk {
                    black_box(routine());
                }
                start.elapsed().as_nanos() as f64 / per_chunk as f64
            })
            .collect();
        self.iterations = per_chunk * MEASUREMENT_CHUNKS;
        self.mean_ns = chunk_means.iter().sum::<f64>() / chunk_means.len() as f64;
        chunk_means.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
        self.median_ns = chunk_means[chunk_means.len() / 2];
    }
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(id: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let mut line = format!(
        "{id:<45} time: {:>12}   ({} iterations)",
        format_time(bencher.mean_ns),
        bencher.iterations
    );
    if let Some(tp) = throughput {
        let (units, label) = match tp {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        let rate = units as f64 / (bencher.mean_ns * 1e-9);
        line.push_str(&format!("   {rate:.3e} {label}"));
    }
    println!("{line}");
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, throughput: Option<Throughput>, mut f: F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    report(id, &bencher, throughput);
    RESULTS
        .lock()
        .expect("results mutex")
        .push((id.to_string(), bencher.median_ns));
}

/// Renders `entries` as one flat JSON object, `{"id": median_ns, ...}`,
/// sorted by id. Bench ids contain no characters needing JSON escapes.
fn render_summary(entries: &[(String, f64)]) -> String {
    let body = entries
        .iter()
        .map(|(name, ns)| format!("\"{name}\":{ns:.1}"))
        .collect::<Vec<_>>()
        .join(",");
    format!("{{{body}}}\n")
}

/// Parses the flat JSON object written by [`render_summary`]; malformed
/// input yields an empty list (the file is then rewritten from scratch).
fn parse_summary(text: &str) -> Vec<(String, f64)> {
    let Some(body) = text
        .trim()
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
    else {
        return Vec::new();
    };
    body.split(',')
        .filter(|entry| !entry.trim().is_empty())
        .filter_map(|entry| {
            let (name, value) = entry.split_once(':')?;
            let name = name.trim().strip_prefix('"')?.strip_suffix('"')?;
            Some((name.to_string(), value.trim().parse().ok()?))
        })
        .collect()
}

/// Writes (or merges into) the machine-readable benchmark summary:
/// `{"group/bench": median_ns_per_iter, ...}`, one entry per benchmark
/// this process ran. `cargo bench` runs each bench target as its own
/// process, so the file is read-merged-rewritten — entries from other
/// targets survive, same-id entries are replaced. The path comes from
/// `BENCH_SUMMARY_PATH`, defaulting to `target/BENCH_summary.json`
/// relative to the bench's working directory.
pub fn write_summary() {
    let results = std::mem::take(&mut *RESULTS.lock().expect("results mutex"));
    if results.is_empty() {
        return;
    }
    let path = std::env::var("BENCH_SUMMARY_PATH")
        .unwrap_or_else(|_| "target/BENCH_summary.json".to_string());
    let mut merged = std::fs::read_to_string(&path)
        .map(|text| parse_summary(&text))
        .unwrap_or_default();
    for (name, ns) in results {
        match merged.iter_mut().find(|(existing, _)| *existing == name) {
            Some(entry) => entry.1 = ns,
            None => merged.push((name, ns)),
        }
    }
    merged.sort_by(|a, b| a.0.cmp(&b.0));
    if let Some(parent) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&path, render_summary(&merged)) {
        Ok(()) => println!("wrote benchmark summary to {path}"),
        Err(e) => eprintln!("cannot write benchmark summary {path}: {e}"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this runner's loop is adaptive.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; this runner's window is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the throughput used to report a rate for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, String::from(id.into()));
        run_benchmark(&id, self.throughput, f);
        self
    }

    /// Runs one parameterised benchmark in this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark runner.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_benchmark(&String::from(id.into()), None, f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }
}

/// Defines a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` running the listed benchmark groups, then writing the
/// machine-readable summary ([`write_summary`]).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; none apply here.
            $($group();)+
            $crate::write_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.iterations > 0);
        assert!(b.mean_ns > 0.0);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(String::from(BenchmarkId::new("rca", 16)), "rca/16");
        assert_eq!(String::from(BenchmarkId::from("plain")), "plain");
    }

    #[test]
    fn summary_render_and_parse_round_trip() {
        let entries = vec![
            ("group/a".to_string(), 123.4),
            ("group/b".to_string(), 1_000_000.0),
        ];
        let rendered = render_summary(&entries);
        assert_eq!(rendered, "{\"group/a\":123.4,\"group/b\":1000000.0}\n");
        assert_eq!(parse_summary(&rendered), entries);
        assert!(parse_summary("not json").is_empty());
        assert!(parse_summary("{}").is_empty());
    }

    #[test]
    fn time_formatting_scales() {
        assert!(format_time(12.0).ends_with("ns"));
        assert!(format_time(12_000.0).ends_with("µs"));
        assert!(format_time(12_000_000.0).ends_with("ms"));
        assert!(format_time(12_000_000_000.0).ends_with('s'));
    }
}
