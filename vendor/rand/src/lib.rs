//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! the small slice of the rand 0.8 API the workspace actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`] over half-open integer ranges and [`Rng::gen_bool`].
//!
//! The generator is xoshiro256++ seeded through splitmix64 — statistically
//! strong enough for the uniformly random stimulus vectors the paper's
//! experiments call for, and fully deterministic for a given seed (the
//! stream differs from upstream `StdRng`, which no test relies on).

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Produces the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw output.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Draws one value in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample from empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Multiply-shift mapping of a 64-bit word onto the span; the
                // bias is at most span / 2^64, irrelevant at these spans.
                let word = rng.next_u64() as u128;
                let offset = (word * span) >> 64;
                (range.start as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The provided generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 16];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..16);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "1000 draws must cover 0..16");
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-8..8);
            assert!((-8..8).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!(
            (2000..3000).contains(&hits),
            "got {hits} of 10000 at p=0.25"
        );
    }

    #[test]
    fn uniform_bits_have_sane_popcount() {
        let mut rng = StdRng::seed_from_u64(9);
        let ones: u32 = (0..1000).map(|_| rng.gen::<u64>().count_ones()).sum();
        // Mean 32 ones per word; 1000 words tightly concentrate around 32000.
        assert!((31000..33000).contains(&ones), "got {ones} ones");
    }
}
