//! Workspace-local stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! the slice of the proptest API the workspace's property tests use: the
//! [`proptest!`] macro over `arg in strategy` bindings, integer-range /
//! boolean / tuple / `collection::vec` strategies, [`ProptestConfig`] and
//! the `prop_assert*` macros.
//!
//! Unlike upstream proptest this engine does not shrink failing inputs; it
//! samples `cases` deterministic pseudo-random inputs per test (seeded from
//! the test's module path and name), which keeps failures reproducible from
//! run to run.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// Per-test configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` sampled inputs per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 48 keeps the suite fast while still
        // exploring the input space every run.
        ProptestConfig { cases: 48 }
    }
}

/// A source of sampled values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of the values this strategy produces.
    type Value;

    /// Samples one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T: Copy + SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<A: Strategy> Strategy for (A,) {
    type Value = (A::Value,);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng),)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Rng, Strategy};

    /// The strategy behind [`ANY`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut super::StdRng) -> bool {
            rng.gen()
        }
    }

    /// Samples `true` and `false` uniformly.
    pub const ANY: Any = Any;
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use std::ops::Range;

    /// Length specification for [`vec()`]: an exact `usize` or a half-open
    /// range.
    pub trait IntoSizeRange {
        /// The corresponding half-open length range.
        fn into_size_range(self) -> Range<usize>;
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> Range<usize> {
            self..self + 1
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn into_size_range(self) -> Range<usize> {
            self
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut super::StdRng) -> Self::Value {
            let len = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                super::Rng::gen_range(rng, self.len.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector whose elements are drawn from `element` and whose length is
    /// drawn from `len` (an exact `usize` or a half-open range).
    pub fn vec<S: Strategy>(element: S, len: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into_size_range(),
        }
    }
}

/// Builds the deterministic generator for one sampled case of one test.
#[must_use]
pub fn test_rng(test_path: &str, case: u32) -> StdRng {
    // FNV-1a over the test path, mixed with the case index.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_path.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(hash ^ (u64::from(case) << 32 | u64::from(case)))
}

/// The everything-you-need import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that runs `body` against `cases` sampled
/// argument tuples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::test_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut __proptest_rng);)+
                $body
            }
        }
    )*};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn vec_strategy_respects_length_bounds() {
        let strat = crate::collection::vec(0u64..10, 3..7);
        for case in 0..100 {
            let mut rng = crate::test_rng("len_bounds", case);
            let v = strat.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn exact_length_vec() {
        let strat = crate::collection::vec(0u32..8, 5usize);
        let mut rng = crate::test_rng("exact_len", 0);
        assert_eq!(strat.generate(&mut rng).len(), 5);
    }

    #[test]
    fn sampling_is_deterministic_per_test_and_case() {
        let strat = 0u64..1_000_000;
        let a = strat.generate(&mut crate::test_rng("t", 3));
        let b = strat.generate(&mut crate::test_rng("t", 3));
        let c = strat.generate(&mut crate::test_rng("t", 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself: bindings, tuples, bools and trailing commas.
        #[test]
        fn macro_binds_all_forms(
            pairs in crate::collection::vec((0u64..4, crate::bool::ANY), 1..5),
            flag in crate::bool::ANY,
        ) {
            prop_assert!(!pairs.is_empty());
            prop_assert!(pairs.len() < 5);
            for &(x, _b) in &pairs {
                prop_assert!(x < 4);
            }
            let _ = flag;
        }
    }
}
