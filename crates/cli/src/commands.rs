//! The subcommands: parse, stats, analyze, simulate, power, retime.

use std::fmt;
use std::fs;
use std::path::Path;

use glitch_core::netlist::{Bus, DotOptions, Netlist};
use glitch_core::power::Technology;
use glitch_core::retime::{pipeline_netlist, PipelineOptions};
use glitch_core::sim::{
    CellDelay, ClockedSimulator, DelayModel, RandomStimulus, UnitDelay, VcdRecorder, ZeroDelay,
};
use glitch_core::{Analysis, AnalysisConfig, DelayConfig, GlitchAnalyzer, TextTable};
use glitch_io::{emit_blif, parse_netlist, Format, GateLibrary};

use crate::args::{Args, Spec};

/// The usage text printed on argument errors and by `help`.
pub const USAGE: &str = "\
usage: glitch-cli <command> <netlist> [options]

The netlist is a .blif file or a structural-Verilog .v file.

commands:
  parse     parse and validate; print a one-line summary
              --emit-blif <file>   write the circuit back out as BLIF
              --dot <file>         write a Graphviz rendering
  stats     print netlist statistics (cells, nets, depth, histogram)
  analyze   the full paper pipeline: simulate random vectors, classify
            every node's transitions into useful work and glitches,
            estimate the three-component dynamic power
              --cycles <n>         random vectors to simulate [1000]
              --seed <n>           stimulus seed [3665697173]
              --delay <model>      unit | zero | adder | library [unit]
              --frequency-mhz <f>  clock for the power estimate [5]
              --tech <name>        0.8um | 65nm [0.8um]
              --csv <file>         write per-node activity as CSV
              --vcd <file>         write a value-change dump
              --dot <file>         write a Graphviz rendering
  simulate  run the event-driven simulator and report settling behaviour
              --cycles/--seed/--vcd as above
  power     the power report only (simulates first)
              --cycles/--seed/--frequency-mhz/--tech as above
  retime    cutset pipelining of a combinational circuit, with a
            before/after activity and power comparison
              --ranks <n>          register ranks to insert [1]
              --no-input-rank      place all ranks inside the logic instead
                                   of spending the first on the inputs
              --cycles/--seed/--frequency-mhz/--tech as above
              --emit-blif <file>   write the retimed circuit as BLIF
  help      print this text";

/// Errors surfaced to `main`.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line; `main` appends the usage text.
    Usage(String),
    /// Anything that failed after argument parsing, already formatted.
    Run(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Run(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for CliError {}

fn run_err(message: impl Into<String>) -> CliError {
    CliError::Run(message.into())
}

/// Entry point: resolves the subcommand and runs it.
///
/// # Errors
///
/// Returns [`CliError::Usage`] for command-line problems and
/// [`CliError::Run`] for everything downstream.
pub fn dispatch(raw: &[String]) -> Result<(), CliError> {
    let Some(command) = raw.first() else {
        return Err(CliError::Usage("missing command".into()));
    };
    let rest = &raw[1..];
    match command.as_str() {
        "parse" => cmd_parse(rest),
        "stats" => cmd_stats(rest),
        "analyze" => cmd_analyze(rest),
        "simulate" => cmd_simulate(rest),
        "power" => cmd_power(rest),
        "retime" => cmd_retime(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

/// Loads and parses the netlist named by the first positional argument.
fn load(args: &Args) -> Result<(Netlist, String), CliError> {
    let path = args
        .positional()
        .first()
        .ok_or_else(|| CliError::Usage("missing netlist file".into()))?;
    if args.positional().len() > 1 {
        return Err(CliError::Usage(format!(
            "unexpected argument `{}`",
            args.positional()[1]
        )));
    }
    let format = Format::from_extension(path).ok_or_else(|| {
        run_err(format!(
            "{path}: unknown netlist format (expected .blif or .v)"
        ))
    })?;
    let text = fs::read_to_string(path).map_err(|e| run_err(format!("{path}: {e}")))?;
    let library = library_for(args)?;
    let netlist =
        parse_netlist(&text, format, &library).map_err(|e| run_err(format!("{path}: {e}")))?;
    Ok((netlist, path.clone()))
}

fn library_for(args: &Args) -> Result<GateLibrary, CliError> {
    let library = GateLibrary::standard();
    Ok(match args.option("tech") {
        None | Some("0.8um") => library,
        Some("65nm") => library.with_technology(Technology::cmos_65nm_1v2()),
        Some(other) => {
            return Err(CliError::Usage(format!(
                "--tech must be 0.8um or 65nm, got `{other}`"
            )));
        }
    })
}

fn write_file(path: &str, contents: &str) -> Result<(), CliError> {
    fs::write(Path::new(path), contents).map_err(|e| run_err(format!("{path}: {e}")))?;
    println!("wrote {path}");
    Ok(())
}

/// Groups the primary inputs into buses of at most 32 bits so the random
/// stimulus can drive arbitrarily wide circuits.
fn input_buses(netlist: &Netlist) -> Vec<Bus> {
    netlist
        .inputs()
        .chunks(32)
        .map(|chunk| Bus::new(chunk.to_vec()))
        .collect()
}

fn delay_config(args: &Args, library: &GateLibrary) -> Result<DelayConfig, CliError> {
    Ok(match args.option("delay") {
        None | Some("unit") => DelayConfig::Unit,
        Some("zero") => DelayConfig::Zero,
        Some("adder") => DelayConfig::RealisticAdderCells,
        Some("library") => DelayConfig::Custom(library.cell_delay()),
        Some(other) => {
            return Err(CliError::Usage(format!(
                "--delay must be unit, zero, adder or library, got `{other}`"
            )));
        }
    })
}

fn analysis_config(args: &Args, library: &GateLibrary) -> Result<AnalysisConfig, CliError> {
    let defaults = AnalysisConfig::default();
    let frequency_mhz: f64 = args
        .parsed_option("frequency-mhz", defaults.frequency / 1e6)
        .map_err(CliError::Usage)?;
    Ok(AnalysisConfig {
        cycles: args
            .parsed_option("cycles", defaults.cycles)
            .map_err(CliError::Usage)?,
        seed: args
            .parsed_option("seed", defaults.seed)
            .map_err(CliError::Usage)?,
        frequency: frequency_mhz * 1e6,
        technology: *library.technology(),
        delay: delay_config(args, library)?,
    })
}

fn analyze_netlist(netlist: &Netlist, config: &AnalysisConfig) -> Result<Analysis, CliError> {
    GlitchAnalyzer::new(config.clone())
        .analyze(netlist, &input_buses(netlist), &[])
        .map_err(|e| run_err(format!("simulation failed: {e}")))
}

fn maybe_dot(netlist: &Netlist, args: &Args) -> Result<(), CliError> {
    if let Some(path) = args.option("dot") {
        write_file(path, &netlist.to_dot(&DotOptions::default()))?;
    }
    Ok(())
}

// ---------------------------------------------------------------- commands

const PARSE_SPEC: Spec = Spec {
    options: &["emit-blif", "dot", "tech"],
    flags: &[],
};

fn cmd_parse(raw: &[String]) -> Result<(), CliError> {
    let args = Args::parse(raw, &PARSE_SPEC).map_err(CliError::Usage)?;
    let (netlist, path) = load(&args)?;
    println!(
        "{path}: `{}` ok — {} cells, {} nets, {} flipflops, {} inputs, {} outputs",
        netlist.name(),
        netlist.cell_count(),
        netlist.net_count(),
        netlist.dff_count(),
        netlist.inputs().len(),
        netlist.outputs().len()
    );
    if let Some(out) = args.option("emit-blif") {
        write_file(out, &emit_blif(&netlist))?;
    }
    maybe_dot(&netlist, &args)
}

const STATS_SPEC: Spec = Spec {
    options: &["tech"],
    flags: &[],
};

fn cmd_stats(raw: &[String]) -> Result<(), CliError> {
    let args = Args::parse(raw, &STATS_SPEC).map_err(CliError::Usage)?;
    let (netlist, _) = load(&args)?;
    print!("{}", netlist.stats());
    Ok(())
}

const ANALYZE_SPEC: Spec = Spec {
    options: &[
        "cycles",
        "seed",
        "delay",
        "frequency-mhz",
        "tech",
        "csv",
        "vcd",
        "dot",
    ],
    flags: &[],
};

fn cmd_analyze(raw: &[String]) -> Result<(), CliError> {
    let args = Args::parse(raw, &ANALYZE_SPEC).map_err(CliError::Usage)?;
    let (netlist, path) = load(&args)?;
    let library = library_for(&args)?;
    // Resolve every option before printing anything, so a bad value fails
    // cleanly instead of after half a report.
    let config = analysis_config(&args, &library)?;

    println!("== {path}: `{}` ==", netlist.name());
    print!("{}", netlist.stats());

    let analysis = analyze_netlist(&netlist, &config)?;
    let totals = analysis.activity.totals();
    println!();
    print!("{}", analysis.activity);
    println!(
        "useless/useful ratio L/F = {:.3}; balancing all delay paths would cut \
         combinational activity by a factor of {:.2}",
        totals.useless_to_useful(),
        analysis.balance_reduction_factor()
    );
    println!();
    print!("{}", analysis.power);

    if let Some(csv_path) = args.option("csv") {
        write_file(csv_path, &analysis.activity.to_csv())?;
    }
    if let Some(vcd_path) = args.option("vcd") {
        let vcd = record_vcd(&netlist, &config)?;
        write_file(vcd_path, &vcd)?;
    }
    maybe_dot(&netlist, &args)
}

/// Re-simulates with a VCD recorder attached (the analyzer does not record
/// waveforms on its own), under the same delay model as the analysis.
fn record_vcd(netlist: &Netlist, config: &AnalysisConfig) -> Result<String, CliError> {
    match &config.delay {
        DelayConfig::Unit => record_vcd_with(netlist, config, UnitDelay),
        DelayConfig::Zero => record_vcd_with(netlist, config, ZeroDelay),
        DelayConfig::RealisticAdderCells => {
            record_vcd_with(netlist, config, CellDelay::realistic_adder_cells())
        }
        DelayConfig::Custom(model) => record_vcd_with(netlist, config, model.clone()),
    }
}

fn record_vcd_with<D: DelayModel>(
    netlist: &Netlist,
    config: &AnalysisConfig,
    delay: D,
) -> Result<String, CliError> {
    let mut sim = ClockedSimulator::new(netlist, delay)
        .map_err(|e| run_err(format!("simulation failed: {e}")))?;
    sim.attach_vcd(VcdRecorder::default());
    sim.run(RandomStimulus::new(
        input_buses(netlist),
        config.cycles,
        config.seed,
    ))
    .map_err(|e| run_err(format!("simulation failed: {e}")))?;
    let recorder = sim.take_vcd().expect("recorder was attached above");
    Ok(recorder.to_vcd(netlist))
}

const SIMULATE_SPEC: Spec = Spec {
    options: &["cycles", "seed", "tech", "vcd"],
    flags: &[],
};

fn cmd_simulate(raw: &[String]) -> Result<(), CliError> {
    let args = Args::parse(raw, &SIMULATE_SPEC).map_err(CliError::Usage)?;
    let (netlist, path) = load(&args)?;
    let cycles: u64 = args
        .parsed_option("cycles", 1000)
        .map_err(CliError::Usage)?;
    let seed: u64 = args
        .parsed_option("seed", AnalysisConfig::default().seed)
        .map_err(CliError::Usage)?;

    let mut sim =
        ClockedSimulator::new(&netlist, UnitDelay).map_err(|e| run_err(format!("{path}: {e}")))?;
    if args.option("vcd").is_some() {
        sim.attach_vcd(VcdRecorder::default());
    }
    let stats = sim
        .run(RandomStimulus::new(input_buses(&netlist), cycles, seed))
        .map_err(|e| run_err(format!("simulation failed: {e}")))?;

    let transitions: u64 = stats.iter().map(|s| s.transitions).sum();
    let events: u64 = stats.iter().map(|s| s.events).sum();
    let max_settle = stats.iter().map(|s| s.settle_time).max().unwrap_or(0);
    println!(
        "simulated {cycles} cycles of `{}` (seed {seed}): {transitions} transitions, \
         {events} events, worst settle time {max_settle}",
        netlist.name()
    );
    println!("final primary outputs:");
    for &out in netlist.outputs() {
        let value = match sim.net_bool(out) {
            Some(true) => "1",
            Some(false) => "0",
            None => "x",
        };
        println!("  {:<24} {value}", netlist.net(out).name());
    }
    if let Some(vcd_path) = args.option("vcd") {
        let recorder = sim.take_vcd().expect("recorder was attached above");
        write_file(vcd_path, &recorder.to_vcd(&netlist))?;
    }
    Ok(())
}

const POWER_SPEC: Spec = Spec {
    options: &["cycles", "seed", "delay", "frequency-mhz", "tech"],
    flags: &[],
};

fn cmd_power(raw: &[String]) -> Result<(), CliError> {
    let args = Args::parse(raw, &POWER_SPEC).map_err(CliError::Usage)?;
    let (netlist, _) = load(&args)?;
    let library = library_for(&args)?;
    let config = analysis_config(&args, &library)?;
    let analysis = analyze_netlist(&netlist, &config)?;
    print!("{}", analysis.power);
    Ok(())
}

const RETIME_SPEC: Spec = Spec {
    options: &[
        "ranks",
        "cycles",
        "seed",
        "delay",
        "frequency-mhz",
        "tech",
        "emit-blif",
    ],
    flags: &["no-input-rank"],
};

fn cmd_retime(raw: &[String]) -> Result<(), CliError> {
    let args = Args::parse(raw, &RETIME_SPEC).map_err(CliError::Usage)?;
    let (netlist, path) = load(&args)?;
    let library = library_for(&args)?;
    let ranks: usize = args.parsed_option("ranks", 1).map_err(CliError::Usage)?;
    let options = PipelineOptions {
        register_inputs: !args.flag("no-input-rank"),
    };
    let config = analysis_config(&args, &library)?;

    let piped = pipeline_netlist(&netlist, ranks, options)
        .map_err(|e| run_err(format!("{path}: cannot retime: {e}")))?;

    let before = analyze_netlist(&netlist, &config)?;
    let after = analyze_netlist(&piped.netlist, &config)?;

    let mut table = TextTable::new(vec![
        "circuit",
        "flipflops",
        "useful",
        "useless",
        "L/F",
        "logic (mW)",
        "ff (mW)",
        "clock (mW)",
        "total (mW)",
    ]);
    for (label, netlist, analysis) in [
        ("original", &netlist, &before),
        ("retimed", &piped.netlist, &after),
    ] {
        let totals = analysis.activity.totals();
        let power = &analysis.power.breakdown;
        table.add_row(vec![
            label.to_string(),
            netlist.dff_count().to_string(),
            totals.useful.to_string(),
            totals.useless.to_string(),
            format!("{:.3}", totals.useless_to_useful()),
            format!("{:.3}", power.logic * 1e3),
            format!("{:.3}", power.flipflop * 1e3),
            format!("{:.3}", power.clock * 1e3),
            format!("{:.3}", power.total() * 1e3),
        ]);
    }
    println!(
        "inserted {ranks} register rank(s) into `{}` (latency +{} cycles):",
        netlist.name(),
        piped.latency
    );
    print!("{table}");

    if let Some(out) = args.option("emit-blif") {
        write_file(out, &emit_blif(&piped.netlist))?;
    }
    Ok(())
}
