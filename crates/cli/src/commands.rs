//! The subcommands: parse, stats, analyze, simulate, power, sweep, check,
//! retime, reduce.

use std::fmt;
use std::fs;
use std::path::Path;

use glitch_core::netlist::{DotOptions, Netlist};
use glitch_core::retime::{pipeline_netlist, PipelineOptions};
use glitch_core::sim::{
    kernel_prepass, run_kernel_jobs, MergeableProbe, MetricsProbe, Probe, RandomStimulus,
    SessionReport, SimJob, SimSession, UnitDelay, VcdProbe, WaveCsvProbe, WindowedActivityProbe,
};
use glitch_core::sim::{SimBaseline, SimOptions};
use glitch_core::verify::{CheckSuite, Verdict, VerifyReport};
use glitch_core::{
    Analysis, AnalysisConfig, DeltaStimulus, EngineKind, GlitchAnalyzer, IncrementalStats,
    KernelProgram, KernelTelemetry, PowerExplorer, TextTable,
};
use glitch_io::{emit_blif, parse_netlist, Format, GateLibrary};
use glitch_serve::json::{json_array, JsonObject};
use glitch_serve::params::{self, input_buses, stimulus_seeds, ParamError};
use glitch_serve::report;

use crate::args::{Args, Spec};
use crate::telemetry::Telemetry;

/// The usage text printed on argument errors and by `help`.
pub const USAGE: &str = "\
usage: glitch-cli <command> <netlist> [options]

The netlist is a .blif file or a structural-Verilog .v file.

commands:
  parse     parse and validate; print a one-line summary
              --emit-blif <file>   write the circuit back out as BLIF
              --dot <file>         write a Graphviz rendering
  stats     print netlist statistics (cells, nets, depth, histogram)
              --json               machine-readable output instead of text
  analyze   the full paper pipeline in one simulation pass: simulate
            random vectors, classify every node's transitions into useful
            work and glitches, estimate the three-component dynamic power
              --cycles <n>         random vectors to simulate [1000]
              --seed <n>           stimulus seed [3665697173]
              --delay <model>      unit | zero | adder | library [unit]
              --engine <name>      queue | kernel | hybrid [queue].
                                   `queue` is the event-driven reference;
                                   `hybrid` adds a compiled bit-parallel
                                   kernel prepass that proves cycles quiet
                                   so only active cycles pay for the timed
                                   settle (reports bit-identical to queue);
                                   `kernel` runs the compiled kernel alone
                                   (functional zero-delay semantics, no
                                   glitch modelling, no event queue)
              --frequency-mhz <f>  clock for the power estimate [5]
              --tech <name>        0.8um | 65nm [0.8um]
              --csv <file>         write per-node activity as CSV
              --vcd <file>         write a value-change dump
              --wave-csv <file>    write per-transition rows as CSV
              --window <k>         bucket activity into k-cycle windows
              --window-csv <file>  write the per-window heatmap as CSV
              --dot <file>         write a Graphviz rendering
              --json               machine-readable report on stdout
              --seeds <n>          simulate n independent seeds (derived
                                   from --seed; 1 = --seed itself) and
                                   report the aggregate with spread [1]
              --jobs <n>           worker threads for the multi-seed sweep
                                   [min(seeds, hardware threads)]
              --flip <list>        incremental fast path: record the run as
                                   a baseline, then re-simulate it with the
                                   listed input bits changed (comma list of
                                   cycle:net or cycle:net=0|1; without =v
                                   the baseline value is inverted). Only
                                   dirty fanout cones re-evaluate; clean
                                   cycles replay from the baseline, with
                                   results bit-identical to a full rerun
              --baseline <file>    with --flip: persist the recorded
                                   baseline to <file> on first use and
                                   load it (skipping the re-recording
                                   pass) on later runs. The file is
                                   validated against the netlist (incl.
                                   a structural fingerprint), cycle
                                   count, delay model, simulator options
                                   and the regenerated seeded stimulus
            (every artefact is recorded by a probe on the same single
            simulation session — no re-simulation per output; with
            --seeds > 1, one session per seed fanned across --jobs
            workers and reduced deterministically)
  simulate  run the event-driven simulator and report settling behaviour
              --cycles/--seed/--vcd as above
  power     the power report only (one simulation pass)
              --cycles/--seed/--frequency-mhz/--tech as above
              --seeds/--jobs       multi-seed aggregate as in analyze
  sweep     compare delay models on identical stimuli: every
            (model, seed) pair is one parallel job
              --delays <list>      comma list of unit,zero,adder,library
                                   [unit,zero,adder]
              --seeds <n>          seeds per delay model [1]
              --jobs <n>           worker threads [min(jobs needed, cores)]
              --cycles/--seed/--frequency-mhz/--tech/--json as above
            or sweep input-flip sensitivity instead: one baseline, one
            incremental re-simulation per flipped input (nearby jobs
            share the recorded baseline and its fanout-cone index)
              --flip-inputs <list> comma list of input net names, or `all`
              --flip-cycle <k>     cycle to flip each input in [0]
              --delay/--cycles/--seed/--jobs/--json as above
              --engine <name>      as in analyze; a sweep compares delay
                                   models, so `kernel` degrades to `hybrid`
                                   (one prepass prunes every model's chunk)
  check     three-valued (0/1/X) verification: simulate the configured
            stimulus with assertion checkers attached and report a
            pass/fail verdict with located violations. The X-propagation
            checker is always on; add the rest as needed
              --x-init             flipflops without a netlist init value
                                   power on X and cells evaluate through
                                   three-valued tables (AND(0,X)=0, ...),
                                   so uninitialised-state reachability is
                                   simulated, not assumed
              --hazards            classify static-0/static-1/dynamic
                                   hazards per net per cycle
              --budget <list>      settle-time budgets, comma list of
                                   net=UNITS | outputs=UNITS | *=UNITS or
                                   *=cycle (the combinational depth)
              --budgets <file>     budgets from a file (one `net = units`
                                   line each, # comments); --budget
                                   entries override it
              --stable <list>      nets that must never switch: net or
                                   net@from..to (inclusive cycle range)
              --seeds/--jobs       multi-seed parallel checking; verdicts
                                   are bit-identical at any --jobs count
              --flip <list>        re-check with flipped input bits via
                                   the incremental fast path (verdicts
                                   bit-identical to a full re-run)
              --strict             exit with an error when the verdict
                                   is FAIL
              --engine <name>      as in analyze; hybrid verdicts are
                                   bit-identical to queue verdicts
              --cycles/--seed/--delay/--tech/--json as above
  retime    cutset pipelining of a combinational circuit, with a
            before/after activity and power comparison
              --ranks <n>          register ranks to insert [1]
              --no-input-rank      place all ranks inside the logic instead
                                   of spending the first on the inputs
              --cycles/--seed/--frequency-mhz/--tech as above
              --emit-blif <file>   write the retimed circuit as BLIF
  reduce    the paper's reduction loop: greedy accept/reject descent on
            glitch power. Hazard-hot nets rank the candidate moves
            (retiming cutsets, delay-buffer insertion, gate duplication),
            a cheap batch co-simulation screens each candidate, a full
            analysis pass confirms the survivors, and the best strictly
            improving move is accepted. The final netlist is verified
            cycle-accurately against the original before the headline
            `glitch power -N% at equal function` is claimed
              --moves <list>       comma list of buffer,duplicate,retime,
                                   or `all` [all]
              --target <pct>       stop once glitch power dropped by this
                                   percent of the baseline [descend until
                                   no move improves]
              --max-iters <n>      maximum accepted moves [8]
              --seeds/--jobs       score with n independent seeds fanned
                                   across worker threads; reports are
                                   bit-identical at any --jobs count
              --engine <name>      queue | hybrid [queue]: hybrid screens
                                   batch-wide through the compiled kernel
                                   (reports bit-identical to queue);
                                   kernel alone cannot score glitches
              --emit-blif <file>   write the reduced circuit as BLIF
              --progress           print one JSON progress line per
                                   descent iteration (accepted or final
                                   rejected round) before the report
              --cycles/--seed/--delay/--tech/--frequency-mhz/--json
                                   as above
  serve     run the batch-analysis daemon: a JSON-lines protocol on a
            loopback TCP socket, with parsed netlists, cone indexes and
            recorded baselines kept warm in a content-addressed cache.
            Responses are byte-identical to the matching one-shot --json
            output. Takes no netlist argument
              --port <p>           listen port on 127.0.0.1 [ephemeral;
                                   printed on the `listening` line]
              --jobs <n>           worker threads [hardware threads]
              --cache-bytes <b>    cache byte budget [268435456]
              --trace-out <FILE>   write a Chrome trace of every request
                                   span (one track per worker, request ids
                                   in the span args) at shutdown
              --access-log <FILE>  append one JSON line per request
                                   {id, op, fingerprint, cache, queue_us,
                                   wall_us, outcome}
              --access-log-max-bytes <b>
                                   rotate the access log to FILE.1 past
                                   this size [67108864]
  client    send request lines to a running daemon and print each
            response line (interim progress lines included); requests
            come from the positional arguments, or from stdin when none
            are given. Exits nonzero when any response is an error
              --port <p>           daemon port (required)
              --timeout-ms <ms>    per-response read timeout; 0 waits
                                   forever [30000]
  status    one-shot daemon health: request counts, error and shed
            tallies, queue depth, worker busyness, cache occupancy and
            per-op latency percentiles over 1m/5m/total windows
              --port <p>           daemon port (required)
              --json               print the raw status line instead of
                                   the rendered dashboard
  top       redraw the status dashboard at a fixed interval (Ctrl-C to
            stop)
              --port <p>           daemon port (required)
              --interval <ms>      refresh period [1000]
              --count <n>          stop after n frames [run until killed]
  help      print this text

telemetry options (analyze, power, sweep, check, reduce):
  --metrics[=FILE]     dump engine metrics (counters, gauges, histograms)
                       after the report — to FILE, or to stdout when bare.
                       Deterministic: byte-identical at any --jobs count
  --metrics-json       dump the metrics as stable sorted JSON instead of
                       text (alone implies --metrics; printed last on
                       stdout, so scripts can parse the final line)
  --trace-out <FILE>   write a Chrome trace-event JSON of the command's
                       timing spans (parse, cone-index, simulate, merge,
                       per-shard bars); open in Perfetto or
                       chrome://tracing. Wall-clock — not deterministic";

/// Errors surfaced to `main`.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line; `main` appends the usage text.
    Usage(String),
    /// Anything that failed after argument parsing, already formatted.
    Run(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Run(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for CliError {}

fn run_err(message: impl Into<String>) -> CliError {
    CliError::Run(message.into())
}

impl From<ParamError> for CliError {
    fn from(error: ParamError) -> CliError {
        match error {
            ParamError::Usage(m) => CliError::Usage(m),
            ParamError::Run(m) => CliError::Run(m),
        }
    }
}

/// Entry point: resolves the subcommand and runs it.
///
/// # Errors
///
/// Returns [`CliError::Usage`] for command-line problems and
/// [`CliError::Run`] for everything downstream.
pub fn dispatch(raw: &[String]) -> Result<(), CliError> {
    let Some(command) = raw.first() else {
        return Err(CliError::Usage("missing command".into()));
    };
    let rest = &raw[1..];
    match command.as_str() {
        "parse" => cmd_parse(rest),
        "stats" => cmd_stats(rest),
        "analyze" => cmd_analyze(rest),
        "simulate" => cmd_simulate(rest),
        "power" => cmd_power(rest),
        "sweep" => cmd_sweep(rest),
        "check" => cmd_check(rest),
        "retime" => cmd_retime(rest),
        "reduce" => cmd_reduce(rest),
        "serve" => cmd_serve(rest),
        "client" => cmd_client(rest),
        "status" => cmd_status(rest),
        "top" => cmd_top(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

/// Loads and parses the netlist named by the first positional argument.
fn load(args: &Args) -> Result<(Netlist, String), CliError> {
    let path = args
        .positional()
        .first()
        .ok_or_else(|| CliError::Usage("missing netlist file".into()))?;
    if args.positional().len() > 1 {
        return Err(CliError::Usage(format!(
            "unexpected argument `{}`",
            args.positional()[1]
        )));
    }
    let format = Format::from_extension(path).ok_or_else(|| {
        run_err(format!(
            "{path}: unknown netlist format (expected .blif or .v)"
        ))
    })?;
    let text = fs::read_to_string(path).map_err(|e| run_err(format!("{path}: {e}")))?;
    let library = library_for(args)?;
    let netlist =
        parse_netlist(&text, format, &library).map_err(|e| run_err(format!("{path}: {e}")))?;
    Ok((netlist, path.clone()))
}

fn library_for(args: &Args) -> Result<GateLibrary, CliError> {
    Ok(params::library_for_tech(args.option("tech"))?)
}

fn write_file(path: &str, contents: &str) -> Result<(), CliError> {
    fs::write(Path::new(path), contents).map_err(|e| run_err(format!("{path}: {e}")))?;
    println!("wrote {path}");
    Ok(())
}

/// The shared [`params::analysis_config`] resolution, with the numeric
/// flags pre-parsed through the CLI's own error messages.
fn analysis_config(args: &Args, library: &GateLibrary) -> Result<AnalysisConfig, CliError> {
    let defaults = AnalysisConfig::default();
    let cycles: u64 = args
        .parsed_option("cycles", defaults.cycles)
        .map_err(CliError::Usage)?;
    let seed: u64 = args
        .parsed_option("seed", defaults.seed)
        .map_err(CliError::Usage)?;
    let frequency_mhz: f64 = args
        .parsed_option("frequency-mhz", defaults.frequency / 1e6)
        .map_err(CliError::Usage)?;
    Ok(params::analysis_config(
        library,
        Some(cycles),
        Some(seed),
        Some(frequency_mhz),
        args.option("delay"),
        args.option("engine"),
    )?)
}

/// The single-lane [`SimJob`] mirroring [`GlitchAnalyzer::session`]'s
/// stimulus, for feeding the compiled kernel on single-seed runs.
fn kernel_job<'a>(netlist: &'a Netlist, config: &AnalysisConfig) -> SimJob<'a> {
    SimJob::new(netlist, input_buses(netlist), config.cycles, config.seed)
        .with_delay(config.delay.clone())
        .with_power(config.technology, config.frequency)
        .with_options(config.options)
}

/// Compiles the kernel program under its own telemetry span whenever the
/// configured engine needs one.
fn compile_program(
    netlist: &Netlist,
    config: &AnalysisConfig,
    telemetry: &Telemetry,
) -> Result<Option<KernelProgram>, CliError> {
    if config.engine == EngineKind::Queue {
        return Ok(None);
    }
    let _span = telemetry.span("kernel-compile");
    KernelProgram::compile(netlist)
        .map(Some)
        .map_err(|e| run_err(format!("kernel compile failed: {e}")))
}

/// The incremental fast paths replay recorded queue cycles, so they only
/// compose with the queue engine.
fn reject_engine_for(config: &AnalysisConfig, flag: &str) -> Result<(), CliError> {
    if config.engine != EngineKind::Queue {
        return Err(CliError::Usage(format!(
            "--{flag} rides the incremental queue replay; drop --engine or --{flag}"
        )));
    }
    Ok(())
}

fn analyze_netlist(netlist: &Netlist, config: &AnalysisConfig) -> Result<Analysis, CliError> {
    GlitchAnalyzer::new(config.clone())
        .analyze(netlist, &input_buses(netlist), &[])
        .map_err(|e| run_err(format!("simulation failed: {e}")))
}

/// The shared [`params::seeds_and_jobs`] resolution (seeds default to 1;
/// jobs default to `min(seeds * models, hardware threads)`).
fn seeds_and_jobs(args: &Args, models: usize) -> Result<(usize, usize), CliError> {
    let seeds = parsed_presence::<usize>(args, "seeds")?;
    let jobs = parsed_presence::<usize>(args, "jobs")?;
    Ok(params::seeds_and_jobs(seeds, jobs, models)?)
}

/// Parses option `name` as `T` while preserving whether it was given at
/// all (the shared resolvers treat absence differently from any value).
fn parsed_presence<T: std::str::FromStr>(args: &Args, name: &str) -> Result<Option<T>, CliError> {
    match args.option(name) {
        None => Ok(None),
        Some(text) => text
            .parse()
            .map(Some)
            .map_err(|_| CliError::Usage(format!("option --{name}: cannot parse `{text}`"))),
    }
}

/// Resolves `--window` into an optional window size of at least one cycle.
fn window_option(args: &Args) -> Result<Option<u64>, CliError> {
    match args.option("window") {
        None => {
            if args.option("window-csv").is_some() {
                return Err(CliError::Usage("--window-csv requires --window <k>".into()));
            }
            Ok(None)
        }
        Some(text) => {
            let k: u64 = text
                .parse()
                .map_err(|_| CliError::Usage(format!("option --window: cannot parse `{text}`")))?;
            if k == 0 {
                return Err(CliError::Usage("--window must be at least 1 cycle".into()));
            }
            Ok(Some(k))
        }
    }
}

fn maybe_dot(netlist: &Netlist, args: &Args) -> Result<(), CliError> {
    if let Some(path) = args.option("dot") {
        write_file(path, &netlist.to_dot(&DotOptions::default()))?;
    }
    Ok(())
}

// ---------------------------------------------------------------- commands

const PARSE_SPEC: Spec = Spec {
    options: &["emit-blif", "dot", "tech"],
    flags: &[],
    optional: &[],
};

fn cmd_parse(raw: &[String]) -> Result<(), CliError> {
    let args = Args::parse(raw, &PARSE_SPEC).map_err(CliError::Usage)?;
    let (netlist, path) = load(&args)?;
    println!(
        "{path}: `{}` ok — {} cells, {} nets, {} flipflops, {} inputs, {} outputs",
        netlist.name(),
        netlist.cell_count(),
        netlist.net_count(),
        netlist.dff_count(),
        netlist.inputs().len(),
        netlist.outputs().len()
    );
    if let Some(out) = args.option("emit-blif") {
        write_file(out, &emit_blif(&netlist))?;
    }
    maybe_dot(&netlist, &args)
}

const STATS_SPEC: Spec = Spec {
    options: &["tech"],
    flags: &["json"],
    optional: &[],
};

fn cmd_stats(raw: &[String]) -> Result<(), CliError> {
    let args = Args::parse(raw, &STATS_SPEC).map_err(CliError::Usage)?;
    let (netlist, path) = load(&args)?;
    let stats = netlist.stats();
    if args.flag("json") {
        let mut cells = JsonObject::new();
        for (kind, count) in stats.cells_by_kind() {
            cells = cells.usize(kind, *count);
        }
        let json = JsonObject::new()
            .str("file", &path)
            .str("netlist", netlist.name())
            .usize("cells", stats.cell_count())
            .usize("nets", stats.net_count())
            .usize("flipflops", stats.dff_count())
            .usize("inputs", stats.input_count())
            .usize("outputs", stats.output_count())
            .usize("max_fanout", stats.max_fanout())
            .f64("gate_equivalents", stats.gate_equivalents())
            .opt_usize("combinational_depth", stats.combinational_depth())
            .raw("cells_by_kind", &cells.render())
            .render();
        println!("{json}");
    } else {
        print!("{stats}");
    }
    Ok(())
}

const ANALYZE_SPEC: Spec = Spec {
    options: &[
        "cycles",
        "seed",
        "seeds",
        "jobs",
        "delay",
        "engine",
        "frequency-mhz",
        "tech",
        "csv",
        "vcd",
        "wave-csv",
        "window",
        "window-csv",
        "dot",
        "flip",
        "baseline",
        "trace-out",
    ],
    flags: &["json", "metrics-json"],
    optional: &["metrics"],
};

fn cmd_analyze(raw: &[String]) -> Result<(), CliError> {
    let args = Args::parse(raw, &ANALYZE_SPEC).map_err(CliError::Usage)?;
    let mut telemetry = Telemetry::from_args(&args);
    let (netlist, path) = {
        let _span = telemetry.span("parse");
        load(&args)?
    };
    telemetry.cone_index_phase(&netlist);
    let library = library_for(&args)?;
    // Resolve every option before printing anything, so a bad value fails
    // cleanly instead of after half a report.
    let config = analysis_config(&args, &library)?;
    let (seeds, jobs) = seeds_and_jobs(&args, 1)?;
    let window = window_option(&args)?;
    if let Some(spec) = args.option("flip") {
        if seeds > 1 {
            return Err(CliError::Usage(
                "--flip applies to single-seed runs; drop --seeds or --flip".into(),
            ));
        }
        for flag in ["vcd", "wave-csv", "window", "window-csv"] {
            if args.option(flag).is_some() {
                return Err(CliError::Usage(format!(
                    "--{flag} does not compose with the --flip fast path yet; drop one"
                )));
            }
        }
        reject_engine_for(&config, "flip")?;
        return cmd_analyze_flip(&netlist, &path, &args, &config, spec, &mut telemetry);
    }
    if args.option("baseline").is_some() {
        return Err(CliError::Usage(
            "--baseline persists the --flip fast path's baseline; add --flip <list>".into(),
        ));
    }
    if seeds > 1 {
        return cmd_analyze_aggregate(
            &netlist,
            &path,
            &args,
            &config,
            seeds,
            jobs,
            window,
            &mut telemetry,
        );
    }
    let json = args.flag("json");

    if !json {
        println!("== {path}: `{}` ==", netlist.name());
        print!("{}", netlist.stats());
    }

    // One session, one simulation pass: the analyzer's activity and power
    // probes plus one extra probe per requested artefact.
    let program = compile_program(&netlist, &config, &telemetry)?;
    let mut report = if config.engine == EngineKind::Kernel {
        let program = program.as_ref().expect("compiled for the kernel engine");
        let want_vcd = args.option("vcd").is_some();
        let want_wave = args.option("wave-csv").is_some();
        let with_metrics = telemetry.enabled();
        let factory = move |_lane: usize| -> Vec<Box<dyn Probe>> {
            let mut probes: Vec<Box<dyn Probe>> = Vec::new();
            if want_vcd {
                probes.push(Box::new(VcdProbe::default()));
            }
            if want_wave {
                probes.push(Box::new(WaveCsvProbe::new()));
            }
            if let Some(k) = window {
                probes.push(Box::new(WindowedActivityProbe::new(k)));
            }
            if with_metrics {
                probes.push(Box::new(MetricsProbe::new()));
            }
            probes
        };
        let job = kernel_job(&netlist, &config);
        let reports = {
            let _span = telemetry.span("simulate");
            run_kernel_jobs(&netlist, program, std::slice::from_ref(&job), &factory)
                .map_err(|e| run_err(format!("simulation failed: {e}")))?
        };
        reports
            .into_iter()
            .next()
            .expect("one job in, one report out")
    } else {
        let analyzer = GlitchAnalyzer::new(config.clone());
        let mut session = analyzer.session(&netlist, &input_buses(&netlist), &[]);
        if args.option("vcd").is_some() {
            session = session.probe(VcdProbe::default());
        }
        if args.option("wave-csv").is_some() {
            session = session.probe(WaveCsvProbe::new());
        }
        if let Some(k) = window {
            session = session.probe(WindowedActivityProbe::new(k));
        }
        if telemetry.enabled() {
            session = session.probe(MetricsProbe::new());
        }
        if let Some(program) = &program {
            // Hybrid: one functional kernel pass marks the provably quiet
            // cycles; the queue replays those and settles only the rest.
            let job = kernel_job(&netlist, &config);
            let prepass = {
                let _span = telemetry.span("kernel-prepass");
                kernel_prepass(&netlist, program, std::slice::from_ref(&job))
                    .map_err(|e| run_err(format!("kernel prepass failed: {e}")))?
            };
            if telemetry.enabled() {
                let kernel = KernelTelemetry::from_prepass(&netlist, program, &prepass)
                    .map_err(|e| run_err(format!("kernel prepass failed: {e}")))?;
                telemetry.record_kernel(&kernel);
            }
            session = session.quiet_cycles(prepass.quiet_cycles(0));
        }
        let _span = telemetry.span("simulate");
        session
            .run()
            .map_err(|e| run_err(format!("simulation failed: {e}")))?
    };
    telemetry.absorb_session(&mut report);

    let vcd_text = report.take_probe::<VcdProbe>().map(VcdProbe::into_vcd);
    let wave_csv = report
        .take_probe::<WaveCsvProbe>()
        .map(WaveCsvProbe::into_csv);
    let windowed = report.take_probe::<WindowedActivityProbe>();
    let passes = report.passes();
    let events = report.total_events();
    let max_settle = report.max_settle_time();
    let cell_evals = report.total_cell_evals();
    let analysis = GlitchAnalyzer::analysis(&netlist, report);
    let totals = analysis.activity.totals();
    if config.engine == EngineKind::Kernel {
        if let Some(program) = &program {
            telemetry.record_kernel(&KernelTelemetry {
                engine: EngineKind::Kernel,
                lanes: 1,
                total_cycles: config.cycles,
                quiet_cycles: 0,
                total_pairs: 0,
                quiet_pairs: 0,
                functional_transitions: totals.transitions,
                functional_cell_evals: program.op_count() as u64 * config.cycles,
                program_ops: program.op_count(),
                program_bytes: program.byte_size(),
            });
        }
    }

    if json {
        println!(
            "{}",
            report::analyze_json(
                &path,
                &netlist,
                &analysis,
                passes,
                events,
                max_settle,
                cell_evals,
                windowed.as_ref(),
            )
        );
    } else {
        println!();
        println!(
            "one simulation pass: {} cycles, {events} events, worst settle time {max_settle}",
            analysis.cycles
        );
        println!();
        print!("{}", analysis.activity);
        println!(
            "useless/useful ratio L/F = {:.3}; balancing all delay paths would cut \
             combinational activity by a factor of {:.2}",
            totals.useless_to_useful(),
            analysis.balance_reduction_factor()
        );
        println!();
        print!("{}", analysis.power);
    }

    if let Some(csv_path) = args.option("csv") {
        write_file(csv_path, &analysis.activity.to_csv())?;
    }
    if let Some(vcd_path) = args.option("vcd") {
        write_file(vcd_path, &vcd_text.expect("VcdProbe attached above"))?;
    }
    if let Some(wave_path) = args.option("wave-csv") {
        write_file(wave_path, &wave_csv.expect("WaveCsvProbe attached above"))?;
    }
    write_window_csv(&args, windowed.as_ref(), json)?;
    maybe_dot(&netlist, &args)?;
    telemetry.finish()
}

/// Writes `--window-csv` (or prints a one-line window summary in text
/// mode) from a finished windowed probe.
fn write_window_csv(
    args: &Args,
    windowed: Option<&WindowedActivityProbe>,
    json: bool,
) -> Result<(), CliError> {
    let Some(probe) = windowed else {
        return Ok(());
    };
    if !json {
        let worst = probe
            .windows()
            .iter()
            .enumerate()
            .max_by_key(|(_, w)| w.useless);
        if let Some((index, w)) = worst {
            println!(
                "windowed activity: {} windows of {} cycles; worst window #{index} \
                 (starting at cycle {}) with {} useless transitions",
                probe.windows().len(),
                probe.window(),
                w.start_cycle,
                w.useless
            );
        }
    }
    if let Some(path) = args.option("window-csv") {
        write_file(path, &probe.to_csv())?;
    }
    Ok(())
}

/// The "re-evaluated N% of cells" line every incremental fast path prints.
fn incremental_line(stats: &IncrementalStats) -> String {
    format!(
        "incremental re-simulation: re-evaluated {:.1}% of cells \
         ({} of {} cell evaluations); replayed {} of {} cycles",
        stats.evaluated_fraction() * 100.0,
        stats.cells_evaluated,
        stats.baseline_cell_evals,
        stats.replayed_cycles,
        stats.total_cycles()
    )
}

/// Produces the `--flip` baseline: recorded fresh, or — with
/// `--baseline FILE` — loaded from disk when the file exists (skipping
/// the recording pass; the "before" figures are then recovered by an
/// empty-delta replay, which costs no cell evaluations) and recorded and
/// saved when it does not. Loaded baselines are validated against the
/// netlist (including its structural fingerprint), the cycle count, the
/// delay model, the simulator options and — by regenerating the
/// configured stimulus and comparing it cycle for cycle — the stimulus
/// itself, so a `--seed` mismatch is caught too.
fn obtain_baseline(
    netlist: &Netlist,
    baseline_path: Option<&str>,
    analyzer: &GlitchAnalyzer,
    config: &AnalysisConfig,
) -> Result<(Analysis, SimBaseline, Option<String>), CliError> {
    if let Some(file) = baseline_path {
        if Path::new(file).exists() {
            let baseline = SimBaseline::load(file).map_err(|e| run_err(format!("{file}: {e}")))?;
            if !baseline.matches_netlist(netlist) {
                return Err(run_err(format!(
                    "{file}: baseline was recorded on `{}`, which does not match \
                     `{}` structurally (the circuit may have been edited since); \
                     delete the file to re-record",
                    baseline.netlist_name(),
                    netlist.name()
                )));
            }
            if baseline.cycle_count() != config.cycles {
                return Err(run_err(format!(
                    "{file}: baseline records {} cycles but --cycles is {}",
                    baseline.cycle_count(),
                    config.cycles
                )));
            }
            if baseline.delay() != &config.delay {
                return Err(run_err(format!(
                    "{file}: baseline was recorded under a different delay model; \
                     re-record or match --delay"
                )));
            }
            if baseline.options() != config.options {
                return Err(run_err(format!(
                    "{file}: baseline was recorded under different simulator options; \
                     re-record or match them"
                )));
            }
            // The file does not store the stimulus seed; regenerate the
            // configured stimulus and compare it cycle for cycle against
            // the recorded assignments, so a `--seed` mismatch fails
            // loudly instead of silently replaying another run's inputs.
            let mut regenerated =
                RandomStimulus::new(input_buses(netlist), config.cycles, config.seed);
            for cycle in 0..baseline.cycle_count() {
                if regenerated.next().as_ref() != Some(baseline.assignment(cycle)) {
                    return Err(run_err(format!(
                        "{file}: baseline was recorded under a different stimulus \
                         (cycle {cycle} differs — --seed mismatch?); re-record or \
                         match --seed"
                    )));
                }
            }
            // Recover the "before" figures by replaying the baseline
            // through fresh probes — O(transitions), zero cell evaluations.
            let before = analyzer
                .analyze_delta(netlist, &baseline, &DeltaStimulus::new())
                .map_err(|e| run_err(format!("{file}: baseline replay failed: {e}")))?;
            return Ok((
                before.analysis,
                baseline,
                Some(format!(
                    "loaded baseline from {file} (re-recording skipped)"
                )),
            ));
        }
        let (before, baseline) = analyzer
            .analyze_baseline(netlist, &input_buses(netlist), &[])
            .map_err(|e| run_err(format!("simulation failed: {e}")))?;
        baseline
            .save(file)
            .map_err(|e| run_err(format!("{file}: {e}")))?;
        return Ok((before, baseline, Some(format!("wrote baseline to {file}"))));
    }
    let (before, baseline) = analyzer
        .analyze_baseline(netlist, &input_buses(netlist), &[])
        .map_err(|e| run_err(format!("simulation failed: {e}")))?;
    Ok((before, baseline, None))
}

/// The `analyze --flip` fast path: record the configured run as a
/// baseline, then incrementally re-simulate it with the listed input bits
/// changed — bit-identical to a full rerun, at the cost of the dirty
/// region only.
fn cmd_analyze_flip(
    netlist: &Netlist,
    path: &str,
    args: &Args,
    config: &AnalysisConfig,
    spec: &str,
    telemetry: &mut Telemetry,
) -> Result<(), CliError> {
    let flips = params::parse_flips(spec, netlist)?;
    // The run length is known before simulating anything; an out-of-range
    // flip must not cost a full baseline pass first.
    params::check_flip_cycles(&flips, config.cycles)?;
    let json = args.flag("json");
    let analyzer = GlitchAnalyzer::new(config.clone());
    let (before, baseline, baseline_note) = {
        let _span = telemetry.span("simulate");
        obtain_baseline(netlist, args.option("baseline"), &analyzer, config)?
    };

    let (delta, applied) = params::flips_to_delta(&flips, &baseline)?;

    let after = {
        let _span = telemetry.span("incremental");
        analyzer
            .analyze_delta(netlist, &baseline, &delta)
            .map_err(|e| run_err(format!("incremental simulation failed: {e}")))?
    };
    let stats = after.incremental;
    telemetry.record_incremental(&stats);
    let before_totals = before.activity.totals();
    let after_totals = after.analysis.activity.totals();

    if json {
        println!(
            "{}",
            report::analyze_flip_json(
                path,
                netlist,
                baseline.cycle_count(),
                &applied,
                &stats,
                &before,
                &after.analysis,
            )
        );
    } else {
        println!("== {path}: `{}` ==", netlist.name());
        print!("{}", netlist.stats());
        println!();
        if let Some(note) = &baseline_note {
            println!("{note}");
        }
        println!(
            "baseline: {} cycles recorded ({} cell evaluations)",
            baseline.cycle_count(),
            baseline.total_cell_evals()
        );
        for (name, cycle, value) in &applied {
            println!("flip: `{name}` -> {} in cycle {cycle}", u8::from(*value));
        }
        println!("{}", incremental_line(&stats));
        println!();
        let mut table = TextTable::new(vec![
            "run",
            "useful",
            "useless",
            "glitches",
            "L/F",
            "total (mW)",
        ]);
        for (label, totals, power) in [
            ("baseline", &before_totals, &before.power),
            ("flipped", &after_totals, &after.analysis.power),
        ] {
            table.add_row(vec![
                label.to_string(),
                totals.useful.to_string(),
                totals.useless.to_string(),
                totals.glitches().to_string(),
                format!("{:.3}", totals.useless_to_useful()),
                format!("{:.3}", power.breakdown.total() * 1e3),
            ]);
        }
        print!("{table}");
        println!(
            "(flipped-run figures are bit-identical to a full re-simulation \
             of the changed stimulus)"
        );
    }
    if let Some(csv_path) = args.option("csv") {
        write_file(csv_path, &after.analysis.activity.to_csv())?;
    }
    maybe_dot(netlist, args)?;
    telemetry.finish()
}

/// The multi-seed `analyze` path: one session per seed fanned across the
/// worker pool, reduced into an aggregate with per-seed spread.
#[allow(clippy::too_many_arguments)]
fn cmd_analyze_aggregate(
    netlist: &Netlist,
    path: &str,
    args: &Args,
    config: &AnalysisConfig,
    seeds: usize,
    jobs: usize,
    window: Option<u64>,
    telemetry: &mut Telemetry,
) -> Result<(), CliError> {
    for flag in ["vcd", "wave-csv"] {
        if args.option(flag).is_some() {
            return Err(CliError::Usage(format!(
                "--{flag} applies to single-seed runs; drop --seeds or --{flag}"
            )));
        }
    }
    let json = args.flag("json");
    let seed_list = stimulus_seeds(config.seed, seeds);
    let analyzer = GlitchAnalyzer::new(config.clone());
    let with_metrics = telemetry.enabled();
    let factory = move |_shard: usize| -> Vec<Box<dyn Probe>> {
        let mut probes: Vec<Box<dyn Probe>> = Vec::new();
        if let Some(k) = window {
            probes.push(Box::new(WindowedActivityProbe::new(k)));
        }
        if with_metrics {
            probes.push(Box::new(MetricsProbe::new()));
        }
        probes
    };
    let program = compile_program(netlist, config, telemetry)?;
    let batch_start = telemetry.now_micros();
    let (aggregate, mut reports) = {
        let _span = telemetry.span("simulate");
        analyzer
            .analyze_seeds_compiled(
                netlist,
                &input_buses(netlist),
                &[],
                &seed_list,
                jobs,
                &factory,
                program.as_ref(),
            )
            .map_err(|e| run_err(format!("simulation failed: {e}")))?
    };
    telemetry.record_shard_spans(batch_start, aggregate.aggregate.shards());
    if let Some(kernel) = &aggregate.kernel {
        telemetry.record_kernel(kernel);
    }
    // Fold the per-seed window heatmaps (aligned: every seed starts at
    // cycle 0) into one aggregate heatmap, and the per-seed metrics
    // registries in seed order (the `--jobs`-invariance discipline).
    let merge_start = telemetry.now_micros();
    let mut windowed: Option<WindowedActivityProbe> = None;
    for report in &mut reports {
        if let Some(probe) = report.take_probe::<WindowedActivityProbe>() {
            match windowed.as_mut() {
                None => windowed = Some(probe),
                Some(merged) => merged.merge(probe),
            }
        }
        telemetry.absorb_session(report);
    }
    telemetry.record_span_since("merge", merge_start);

    let totals = aggregate.activity.totals();
    if json {
        println!(
            "{}",
            report::analyze_aggregate_json(
                path,
                netlist,
                seeds,
                jobs,
                config.cycles,
                &aggregate,
                windowed.as_ref(),
            )
        );
    } else {
        println!("== {path}: `{}` ==", netlist.name());
        print!("{}", netlist.stats());
        println!();
        println!(
            "parallel sweep: {seeds} seeds x {} cycles on {jobs} jobs \
             ({} cycles total, {} events, worst settle time {})",
            config.cycles,
            aggregate.total_cycles(),
            aggregate.aggregate.total_events(),
            aggregate.aggregate.max_settle_time()
        );
        println!();
        println!("per-seed spread ({seeds} seeds):");
        println!("  glitches        {}", aggregate.glitch_spread());
        println!("  useless         {}", aggregate.useless_spread());
        println!("  L/F             {}", aggregate.lf_ratio_spread());
        let power_mw = aggregate.power_spread();
        println!(
            "  total power (mW) {:.3} ± {:.3} (min {:.3}, max {:.3})",
            power_mw.mean * 1e3,
            power_mw.stddev * 1e3,
            power_mw.min * 1e3,
            power_mw.max * 1e3
        );
        println!();
        println!("aggregate over the combined activity of all seeds:");
        print!("{}", aggregate.activity);
        println!(
            "useless/useful ratio L/F = {:.3}; balancing all delay paths would cut \
             combinational activity by a factor of {:.2}",
            totals.useless_to_useful(),
            totals.balance_reduction_factor()
        );
        println!();
        print!("{}", aggregate.power);
    }

    if let Some(csv_path) = args.option("csv") {
        write_file(csv_path, &aggregate.activity.to_csv())?;
    }
    write_window_csv(args, windowed.as_ref(), json)?;
    maybe_dot(netlist, args)?;
    telemetry.finish()
}

const SIMULATE_SPEC: Spec = Spec {
    options: &["cycles", "seed", "tech", "vcd"],
    flags: &[],
    optional: &[],
};

fn cmd_simulate(raw: &[String]) -> Result<(), CliError> {
    let args = Args::parse(raw, &SIMULATE_SPEC).map_err(CliError::Usage)?;
    let (netlist, path) = load(&args)?;
    let cycles: u64 = args
        .parsed_option("cycles", 1000)
        .map_err(CliError::Usage)?;
    let seed: u64 = args
        .parsed_option("seed", AnalysisConfig::default().seed)
        .map_err(CliError::Usage)?;

    let mut session = SimSession::new(&netlist)
        .delay_model(UnitDelay)
        .stimulus(RandomStimulus::new(input_buses(&netlist), cycles, seed));
    if args.option("vcd").is_some() {
        session = session.probe(VcdProbe::default());
    }
    let mut report: SessionReport = session
        .run()
        .map_err(|e| run_err(format!("{path}: simulation failed: {e}")))?;

    println!(
        "simulated {cycles} cycles of `{}` (seed {seed}): {} transitions, \
         {} events, worst settle time {}",
        netlist.name(),
        report.total_transitions(),
        report.total_events(),
        report.max_settle_time()
    );
    println!("final primary outputs:");
    for &out in netlist.outputs() {
        let value = match report.net_bool(out) {
            Some(true) => "1",
            Some(false) => "0",
            None => "x",
        };
        println!("  {:<24} {value}", netlist.net(out).name());
    }
    if let Some(vcd_path) = args.option("vcd") {
        let vcd = report
            .take_probe::<VcdProbe>()
            .expect("recorder was attached above")
            .into_vcd();
        write_file(vcd_path, &vcd)?;
    }
    Ok(())
}

const POWER_SPEC: Spec = Spec {
    options: &[
        "cycles",
        "seed",
        "seeds",
        "jobs",
        "delay",
        "frequency-mhz",
        "tech",
        "trace-out",
    ],
    flags: &["metrics-json"],
    optional: &["metrics"],
};

fn cmd_power(raw: &[String]) -> Result<(), CliError> {
    let args = Args::parse(raw, &POWER_SPEC).map_err(CliError::Usage)?;
    let mut telemetry = Telemetry::from_args(&args);
    let (netlist, _) = {
        let _span = telemetry.span("parse");
        load(&args)?
    };
    telemetry.cone_index_phase(&netlist);
    let library = library_for(&args)?;
    let config = analysis_config(&args, &library)?;
    let (seeds, jobs) = seeds_and_jobs(&args, 1)?;
    if seeds > 1 {
        let seed_list = stimulus_seeds(config.seed, seeds);
        let with_metrics = telemetry.enabled();
        let factory = move |_shard: usize| -> Vec<Box<dyn Probe>> {
            if with_metrics {
                vec![Box::new(MetricsProbe::new())]
            } else {
                Vec::new()
            }
        };
        let batch_start = telemetry.now_micros();
        let (aggregate, mut reports) = {
            let _span = telemetry.span("simulate");
            GlitchAnalyzer::new(config.clone())
                .analyze_seeds_with(
                    &netlist,
                    &input_buses(&netlist),
                    &[],
                    &seed_list,
                    jobs,
                    &factory,
                )
                .map_err(|e| run_err(format!("simulation failed: {e}")))?
        };
        telemetry.record_shard_spans(batch_start, aggregate.aggregate.shards());
        let merge_start = telemetry.now_micros();
        for report in &mut reports {
            telemetry.absorb_session(report);
        }
        telemetry.record_span_since("merge", merge_start);
        println!(
            "aggregate of {seeds} seeds x {} cycles on {jobs} jobs:",
            config.cycles
        );
        print!("{}", aggregate.power);
        let spread = aggregate.power_spread();
        println!(
            "  per-seed total power {:.3} ± {:.3} mW (min {:.3}, max {:.3})",
            spread.mean * 1e3,
            spread.stddev * 1e3,
            spread.min * 1e3,
            spread.max * 1e3
        );
        return telemetry.finish();
    }
    let analysis = if telemetry.enabled() {
        let analyzer = GlitchAnalyzer::new(config.clone());
        let mut report = {
            let _span = telemetry.span("simulate");
            analyzer
                .session(&netlist, &input_buses(&netlist), &[])
                .probe(MetricsProbe::new())
                .run()
                .map_err(|e| run_err(format!("simulation failed: {e}")))?
        };
        telemetry.absorb_session(&mut report);
        GlitchAnalyzer::analysis(&netlist, report)
    } else {
        analyze_netlist(&netlist, &config)?
    };
    print!("{}", analysis.power);
    telemetry.finish()
}

const SWEEP_SPEC: Spec = Spec {
    options: &[
        "delays",
        "cycles",
        "seed",
        "seeds",
        "jobs",
        "delay",
        "engine",
        "frequency-mhz",
        "tech",
        "flip-inputs",
        "flip-cycle",
        "trace-out",
    ],
    flags: &["json", "metrics-json"],
    optional: &["metrics"],
};

fn cmd_sweep(raw: &[String]) -> Result<(), CliError> {
    let args = Args::parse(raw, &SWEEP_SPEC).map_err(CliError::Usage)?;
    let mut telemetry = Telemetry::from_args(&args);
    let (netlist, path) = {
        let _span = telemetry.span("parse");
        load(&args)?
    };
    telemetry.cone_index_phase(&netlist);
    let library = library_for(&args)?;
    let config = analysis_config(&args, &library)?;
    if let Some(list) = args.option("flip-inputs") {
        reject_engine_for(&config, "flip-inputs")?;
        return cmd_sweep_flips(&netlist, &path, &args, &config, list, &mut telemetry);
    }
    if args.option("flip-cycle").is_some() {
        return Err(CliError::Usage(
            "--flip-cycle requires --flip-inputs <list|all>".into(),
        ));
    }
    if args.option("delay").is_some() {
        return Err(CliError::Usage(
            "the delay-model sweep takes --delays <list>, not --delay \
             (--delay selects the model of a --flip-inputs sweep)"
                .into(),
        ));
    }
    let models = params::delay_sweep_models(args.option("delays"), &library)?;
    let (seeds, jobs) = seeds_and_jobs(&args, models.len())?;
    let seed_list = stimulus_seeds(config.seed, seeds);
    let json = args.flag("json");

    let program = compile_program(&netlist, &config, &telemetry)?;
    let batch_start = telemetry.now_micros();
    let points = {
        let _span = telemetry.span("simulate");
        GlitchAnalyzer::new(config.clone())
            .sweep_delays_compiled(
                &netlist,
                &input_buses(&netlist),
                &[],
                &models,
                &seed_list,
                jobs,
                program.as_ref(),
            )
            .map_err(|e| run_err(format!("simulation failed: {e}")))?
    };
    let merge_start = telemetry.now_micros();
    // The prepass runs once for the whole sweep, so its classification is
    // recorded once (every point carries the same copy).
    if let Some(kernel) = points.first().and_then(|p| p.analysis.kernel.as_ref()) {
        telemetry.record_kernel(kernel);
    }
    for point in &points {
        telemetry.record_aggregate(&point.analysis.aggregate);
        telemetry.record_shard_spans(batch_start, point.analysis.aggregate.shards());
    }
    telemetry.record_span_since("merge", merge_start);

    if json {
        println!(
            "{}",
            report::sweep_json(&path, &netlist, seeds, jobs, config.cycles, &points)
        );
    } else {
        println!(
            "delay-model sweep of `{}`: {} models x {seeds} seeds x {} cycles on {jobs} jobs",
            netlist.name(),
            models.len(),
            config.cycles
        );
        let mut table = TextTable::new(vec![
            "delay",
            "glitches (mean +/- sd)",
            "L/F",
            "logic (mW)",
            "total (mW)",
            "power sd (mW)",
        ]);
        for point in &points {
            let totals = point.analysis.activity.totals();
            let glitches = point.analysis.glitch_spread();
            let power = point.analysis.power_spread();
            table.add_row(vec![
                point.label.clone(),
                format!("{:.1} +/- {:.1}", glitches.mean, glitches.stddev),
                format!("{:.3}", totals.useless_to_useful()),
                format!("{:.3}", point.analysis.power.breakdown.logic * 1e3),
                format!("{:.3}", point.analysis.power.breakdown.total() * 1e3),
                format!("{:.3}", power.stddev * 1e3),
            ]);
        }
        print!("{table}");
        println!(
            "(glitch counts are per-seed complete glitches; every model saw the \
             same {seeds} stimulus seed(s), so differences are purely model-induced)"
        );
    }
    telemetry.finish()
}

/// The `sweep --flip-inputs` fast path: input-flip sensitivity, one
/// incremental re-simulation per flipped input, all sharing one recorded
/// baseline and one fanout-cone index across `--jobs` workers.
fn cmd_sweep_flips(
    netlist: &Netlist,
    path: &str,
    args: &Args,
    config: &AnalysisConfig,
    list: &str,
    telemetry: &mut Telemetry,
) -> Result<(), CliError> {
    if args.option("seeds").is_some() || args.option("delays").is_some() {
        return Err(CliError::Usage(
            "--flip-inputs sweeps one stimulus; it does not combine with \
             --seeds or --delays"
                .into(),
        ));
    }
    let cycle: u64 = args
        .parsed_option("flip-cycle", 0)
        .map_err(CliError::Usage)?;
    if cycle >= config.cycles {
        return Err(CliError::Usage(format!(
            "--flip-cycle {cycle} is beyond the {}-cycle run",
            config.cycles
        )));
    }
    let inputs: Vec<glitch_core::netlist::NetId> = if list.trim() == "all" {
        netlist.inputs().to_vec()
    } else {
        list.split(',')
            .map(|name| {
                let name = name.trim();
                let net = netlist
                    .find_net(name)
                    .ok_or_else(|| run_err(format!("--flip-inputs: no net named `{name}`")))?;
                if !netlist.net(net).is_primary_input() {
                    return Err(CliError::Usage(format!(
                        "--flip-inputs: net `{name}` is not a primary input"
                    )));
                }
                Ok(net)
            })
            .collect::<Result<_, _>>()?
    };
    if inputs.is_empty() {
        return Err(CliError::Usage("--flip-inputs: no inputs to flip".into()));
    }
    if args.option("jobs").is_some() && inputs.len() == 1 {
        return Err(CliError::Usage(
            "--jobs has nothing to parallelise here; flip more than one input".into(),
        ));
    }
    let hardware = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let jobs: usize = args
        .parsed_option("jobs", inputs.len().min(hardware).max(1))
        .map_err(CliError::Usage)?;
    if jobs == 0 {
        return Err(CliError::Usage("--jobs must be at least 1".into()));
    }
    let json = args.flag("json");

    let explorer = PowerExplorer::new(GlitchAnalyzer::new(config.clone()));
    let (baseline, points) = {
        let _span = telemetry.span("simulate");
        explorer
            .explore_input_sensitivity(netlist, &input_buses(netlist), &[], cycle, &inputs, jobs)
            .map_err(|e| run_err(format!("simulation failed: {e}")))?
    };
    for point in &points {
        telemetry.record_incremental(&point.incremental);
    }
    let base_totals = baseline.activity.totals();
    // Per-flip means: every point re-runs the same baseline, so the
    // denominators must stay at one baseline's cost, not `points` times it.
    // The dirty-cone peak is a high-water mark, so it maxes instead.
    let flips = points.len() as u64;
    let mean_stats = IncrementalStats {
        replayed_cycles: points
            .iter()
            .map(|p| p.incremental.replayed_cycles)
            .sum::<u64>()
            / flips,
        simulated_cycles: points
            .iter()
            .map(|p| p.incremental.simulated_cycles)
            .sum::<u64>()
            / flips,
        cells_evaluated: points
            .iter()
            .map(|p| p.incremental.cells_evaluated)
            .sum::<u64>()
            / flips,
        baseline_cell_evals: points[0].incremental.baseline_cell_evals,
        peak_dirty_cone_nets: points
            .iter()
            .map(|p| p.incremental.peak_dirty_cone_nets)
            .max()
            .unwrap_or(0),
        dff_divergence_reseeds: points
            .iter()
            .map(|p| p.incremental.dff_divergence_reseeds)
            .sum::<u64>()
            / flips,
    };

    if json {
        let rows = json_array(points.iter().map(|p| {
            JsonObject::new()
                .str("input", &p.name)
                .u64("flipped_to", u64::from(p.flipped_to))
                .u64("useful", p.activity.useful)
                .u64("useless", p.activity.useless)
                .u64("glitches", p.activity.glitches())
                .f64("power_total_w", p.power.total())
                .raw(
                    "incremental",
                    &report::incremental_json(&p.incremental).render(),
                )
                .render()
        }));
        let out = JsonObject::new()
            .str("file", path)
            .str("netlist", netlist.name())
            .u64("flip_cycle", cycle)
            .usize("jobs", jobs)
            .u64("cycles", config.cycles)
            .raw(
                "baseline",
                &JsonObject::new()
                    .raw(
                        "activity",
                        &report::activity_totals_json(&base_totals).render(),
                    )
                    .raw(
                        "power",
                        &report::power_report_json(&baseline.power).render(),
                    )
                    .render(),
            )
            .raw(
                "incremental_per_flip_mean",
                &report::incremental_json(&mean_stats).render(),
            )
            .raw("points", &rows)
            .render();
        println!("{out}");
    } else {
        println!(
            "input-flip sensitivity sweep of `{}`: {} inputs flipped in cycle \
             {cycle} on {jobs} jobs, one shared baseline of {} cycles",
            netlist.name(),
            points.len(),
            config.cycles
        );
        println!("per-flip mean {}", incremental_line(&mean_stats));
        println!();
        let mut table = TextTable::new(vec![
            "input",
            "flip",
            "useless",
            "d useless",
            "total (mW)",
            "re-eval %",
        ]);
        for p in &points {
            let d_useless = p.activity.useless as i64 - base_totals.useless as i64;
            table.add_row(vec![
                p.name.clone(),
                format!("->{}", u8::from(p.flipped_to)),
                p.activity.useless.to_string(),
                format!("{d_useless:+}"),
                format!("{:.3}", p.power.total() * 1e3),
                format!("{:.1}", p.incremental.evaluated_fraction() * 100.0),
            ]);
        }
        print!("{table}");
        println!(
            "(each row is bit-identical to a full re-simulation with that \
             bit flipped; `d useless` is the glitch-transition change vs \
             the baseline's {})",
            base_totals.useless
        );
    }
    telemetry.finish()
}

const CHECK_SPEC: Spec = Spec {
    options: &[
        "cycles",
        "seed",
        "seeds",
        "jobs",
        "delay",
        "engine",
        "frequency-mhz",
        "tech",
        "budget",
        "budgets",
        "stable",
        "flip",
        "trace-out",
    ],
    flags: &["json", "x-init", "hazards", "strict", "metrics-json"],
    optional: &["metrics"],
};

/// Builds the checker suite from the `check` arguments (reading the
/// `--budgets` file first, since [`params::build_check_suite`] takes its
/// contents).
fn build_check_suite(args: &Args, netlist: &Netlist) -> Result<CheckSuite, CliError> {
    let budgets_text = match args.option("budgets") {
        Some(file) => Some((
            file,
            fs::read_to_string(file).map_err(|e| run_err(format!("{file}: {e}")))?,
        )),
        None => None,
    };
    Ok(params::build_check_suite(
        netlist,
        args.option("budget"),
        budgets_text
            .as_ref()
            .map(|(file, text)| (*file, text.as_str())),
        args.flag("hazards"),
        args.option("stable"),
    )?)
}

/// One verdict line: `PASS` / `FAIL (n violations in m checkers)`.
fn verdict_line(report: &VerifyReport) -> String {
    match report.verdict() {
        Verdict::Pass => "PASS".to_string(),
        Verdict::Fail => format!(
            "FAIL ({} violations in {} checkers)",
            report.total_violations(),
            report.failed_checkers()
        ),
    }
}

/// Prints a report as the checker table plus located violations.
fn print_verify_text(report: &VerifyReport, netlist: &Netlist) {
    let mut table = TextTable::new(vec!["checker", "verdict", "violations", "summary"]);
    for outcome in report.outcomes() {
        table.add_row(vec![
            outcome.checker.clone(),
            outcome.verdict.as_str().to_string(),
            outcome.total_violations.to_string(),
            outcome.summary.clone(),
        ]);
    }
    print!("{table}");
    for outcome in report.outcomes() {
        if outcome.verdict.passed() || outcome.violations.is_empty() {
            continue;
        }
        let shown = outcome.violations.len().min(5);
        println!(
            "{} violations ({} of {} shown):",
            outcome.checker, shown, outcome.total_violations
        );
        for v in &outcome.violations[..shown] {
            // The Violation fields are overloaded per checker (see the
            // `glitch_verify::Violation` docs); label them accordingly.
            if outcome.checker == "x-propagation" {
                println!(
                    "  `{}`: first X at cycle end {}, unknown for {} cycle ends",
                    netlist.net(v.net).name(),
                    v.cycle,
                    v.time
                );
            } else {
                println!(
                    "  `{}`: cycle {}, t={}, budget {}",
                    netlist.net(v.net).name(),
                    v.cycle,
                    v.time,
                    v.budget
                );
            }
        }
    }
}

fn cmd_check(raw: &[String]) -> Result<(), CliError> {
    let args = Args::parse(raw, &CHECK_SPEC).map_err(CliError::Usage)?;
    let mut telemetry = Telemetry::from_args(&args);
    let (netlist, path) = {
        let _span = telemetry.span("parse");
        load(&args)?
    };
    telemetry.cone_index_phase(&netlist);
    let library = library_for(&args)?;
    let mut config = analysis_config(&args, &library)?;
    if args.flag("x-init") {
        config.options = SimOptions::x_init();
    }
    let mut suite = build_check_suite(&args, &netlist)?;
    if telemetry.enabled() {
        suite = suite.with_timing();
    }
    if let Some(spec) = args.option("flip") {
        if args.option("seeds").is_some() {
            return Err(CliError::Usage(
                "--flip applies to single-seed runs; drop --seeds or --flip".into(),
            ));
        }
        reject_engine_for(&config, "flip")?;
        return cmd_check_flip(
            &netlist,
            &path,
            &args,
            &config,
            &suite,
            spec,
            &mut telemetry,
        );
    }
    let (seeds, jobs) = seeds_and_jobs(&args, 1)?;
    let json = args.flag("json");
    let seed_list = stimulus_seeds(config.seed, seeds);
    let analyzer = GlitchAnalyzer::new(config.clone());
    let program = compile_program(&netlist, &config, &telemetry)?;
    let batch_start = telemetry.now_micros();
    let checked = {
        let _span = telemetry.span("simulate");
        analyzer
            .check_seeds_compiled(
                &netlist,
                &input_buses(&netlist),
                &[],
                &suite,
                &seed_list,
                jobs,
                program.as_ref(),
            )
            .map_err(|e| run_err(format!("simulation failed: {e}")))?
    };
    telemetry.record_shard_spans(batch_start, checked.analysis.aggregate.shards());
    if let Some(kernel) = &checked.analysis.kernel {
        telemetry.record_kernel(kernel);
    }
    let merge_start = telemetry.now_micros();
    telemetry.record_aggregate(&checked.analysis.aggregate);
    telemetry.record_check(&checked.report, &checked.checker_micros);
    telemetry.record_span_since("merge", merge_start);
    let report = &checked.report;

    if json {
        println!(
            "{}",
            report::check_json(
                &path,
                &netlist,
                config.cycles,
                seeds,
                jobs,
                args.flag("x-init"),
                &checked,
            )
        );
    } else {
        println!("== {path}: `{}` ==", netlist.name());
        println!(
            "verification: {seeds} seeds x {} cycles on {jobs} jobs; x-init {}; \
             {} checkers ({} cycles total, worst settle time {})",
            config.cycles,
            if args.flag("x-init") { "on" } else { "off" },
            suite.checker_count(),
            checked.analysis.total_cycles(),
            checked.analysis.aggregate.max_settle_time()
        );
        println!();
        print_verify_text(report, &netlist);
        println!("verdict: {}", verdict_line(report));
    }
    telemetry.finish()?;
    strict_exit(&args, report)
}

/// The `check --flip` fast path: check the recorded baseline, then
/// incrementally re-check it with the listed input bits changed. Both
/// verdicts are reported; the flipped one is bit-identical to a full
/// re-simulation of the changed stimulus.
#[allow(clippy::too_many_arguments)]
fn cmd_check_flip(
    netlist: &Netlist,
    path: &str,
    args: &Args,
    config: &AnalysisConfig,
    suite: &CheckSuite,
    spec: &str,
    telemetry: &mut Telemetry,
) -> Result<(), CliError> {
    let flips = params::parse_flips(spec, netlist)?;
    params::check_flip_cycles(&flips, config.cycles)?;
    let json = args.flag("json");
    let analyzer = GlitchAnalyzer::new(config.clone());
    let (base_report, _, baseline) = {
        let _span = telemetry.span("simulate");
        analyzer
            .check_baseline(netlist, &input_buses(netlist), &[], suite)
            .map_err(|e| run_err(format!("simulation failed: {e}")))?
    };

    let (delta, applied) = params::flips_to_delta(&flips, &baseline)?;
    let flipped = {
        let _span = telemetry.span("incremental");
        analyzer
            .check_delta(netlist, &baseline, &delta, suite)
            .map_err(|e| run_err(format!("incremental simulation failed: {e}")))?
    };
    telemetry.record_incremental(&flipped.incremental);
    telemetry.record_check(&flipped.report, &[]);

    if json {
        println!(
            "{}",
            report::check_flip_json(
                path,
                netlist,
                baseline.cycle_count(),
                args.flag("x-init"),
                &applied,
                &base_report,
                &flipped,
            )
        );
    } else {
        println!("== {path}: `{}` ==", netlist.name());
        println!(
            "verification (incremental): {} cycles; x-init {}; {} checkers",
            baseline.cycle_count(),
            if args.flag("x-init") { "on" } else { "off" },
            suite.checker_count()
        );
        for (name, cycle, value) in &applied {
            println!("flip: `{name}` -> {} in cycle {cycle}", u8::from(*value));
        }
        println!("{}", incremental_line(&flipped.incremental));
        println!();
        println!("baseline verdict: {}", verdict_line(&base_report));
        println!("flipped verdict:  {}", verdict_line(&flipped.report));
        println!();
        print_verify_text(&flipped.report, netlist);
        println!(
            "(flipped verdicts are bit-identical to a full re-simulation of \
             the changed stimulus)"
        );
    }
    telemetry.finish()?;
    strict_exit(args, &flipped.report)
}

/// Applies `--strict`: a failing verdict becomes a command error.
fn strict_exit(args: &Args, report: &VerifyReport) -> Result<(), CliError> {
    if args.flag("strict") && !report.passed() {
        return Err(run_err(format!(
            "verification verdict: {}",
            verdict_line(report)
        )));
    }
    Ok(())
}

const RETIME_SPEC: Spec = Spec {
    options: &[
        "ranks",
        "cycles",
        "seed",
        "delay",
        "frequency-mhz",
        "tech",
        "emit-blif",
    ],
    flags: &["no-input-rank"],
    optional: &[],
};

fn cmd_retime(raw: &[String]) -> Result<(), CliError> {
    let args = Args::parse(raw, &RETIME_SPEC).map_err(CliError::Usage)?;
    let (netlist, path) = load(&args)?;
    let library = library_for(&args)?;
    let ranks: usize = args.parsed_option("ranks", 1).map_err(CliError::Usage)?;
    let options = PipelineOptions {
        register_inputs: !args.flag("no-input-rank"),
    };
    let config = analysis_config(&args, &library)?;

    let piped = pipeline_netlist(&netlist, ranks, options)
        .map_err(|e| run_err(format!("{path}: cannot retime: {e}")))?;

    let before = analyze_netlist(&netlist, &config)?;
    let after = analyze_netlist(&piped.netlist, &config)?;

    let mut table = TextTable::new(vec![
        "circuit",
        "flipflops",
        "useful",
        "useless",
        "L/F",
        "logic (mW)",
        "ff (mW)",
        "clock (mW)",
        "total (mW)",
    ]);
    for (label, netlist, analysis) in [
        ("original", &netlist, &before),
        ("retimed", &piped.netlist, &after),
    ] {
        let totals = analysis.activity.totals();
        let power = &analysis.power.breakdown;
        table.add_row(vec![
            label.to_string(),
            netlist.dff_count().to_string(),
            totals.useful.to_string(),
            totals.useless.to_string(),
            format!("{:.3}", totals.useless_to_useful()),
            format!("{:.3}", power.logic * 1e3),
            format!("{:.3}", power.flipflop * 1e3),
            format!("{:.3}", power.clock * 1e3),
            format!("{:.3}", power.total() * 1e3),
        ]);
    }
    println!(
        "inserted {ranks} register rank(s) into `{}` (latency +{} cycles):",
        netlist.name(),
        piped.latency
    );
    print!("{table}");

    if let Some(out) = args.option("emit-blif") {
        write_file(out, &emit_blif(&piped.netlist))?;
    }
    Ok(())
}

const REDUCE_SPEC: Spec = Spec {
    options: &[
        "moves",
        "target",
        "max-iters",
        "cycles",
        "seed",
        "seeds",
        "jobs",
        "delay",
        "engine",
        "frequency-mhz",
        "tech",
        "emit-blif",
        "trace-out",
    ],
    flags: &["json", "metrics-json", "progress"],
    optional: &["metrics"],
};

fn cmd_reduce(raw: &[String]) -> Result<(), CliError> {
    let args = Args::parse(raw, &REDUCE_SPEC).map_err(CliError::Usage)?;
    let mut telemetry = Telemetry::from_args(&args);
    let (netlist, path) = {
        let _span = telemetry.span("parse");
        load(&args)?
    };
    telemetry.cone_index_phase(&netlist);
    let library = library_for(&args)?;
    let config = analysis_config(&args, &library)?;
    if config.engine == EngineKind::Kernel {
        return Err(CliError::Usage(
            "the kernel engine has no glitch model to score moves with; \
             use --engine queue or hybrid"
                .into(),
        ));
    }
    let (seeds, jobs) = seeds_and_jobs(&args, 1)?;
    let moves = glitch_reduce::parse_moves(args.option("moves").unwrap_or_default())
        .map_err(|e| CliError::Usage(e.to_string()))?;
    let target: Option<f64> = parsed_presence(&args, "target")?;
    let defaults = glitch_reduce::ReduceOptions::default();
    let max_iters: usize = args
        .parsed_option("max-iters", defaults.max_iters)
        .map_err(CliError::Usage)?;
    let options = glitch_reduce::ReduceOptions {
        moves,
        target_percent: target,
        max_iters,
        ..defaults
    };
    let seed_list = params::stimulus_seeds(config.seed, seeds);
    let cycles = config.cycles;
    let session = glitch_core::ReduceSession::new(config, seed_list, jobs);
    let start = telemetry.now_micros();
    let reducer = glitch_reduce::Reducer::new(session, options);
    let report = if args.flag("progress") {
        // The same rows the daemon streams for `"progress": true`, minus
        // the request id — printed as they happen, before the report.
        struct PrintProgress<'a>(&'a str);
        impl glitch_reduce::ProgressSink for PrintProgress<'_> {
            fn iteration(&mut self, event: &glitch_reduce::ProgressEvent<'_>) {
                println!("{}", report::reduce_progress_json(self.0, event, None));
                use std::io::Write as _;
                std::io::stdout().flush().ok();
            }
        }
        reducer.run_with_progress(
            &netlist,
            &input_buses(&netlist),
            &[],
            &mut PrintProgress(&path),
        )
    } else {
        reducer.run(&netlist, &input_buses(&netlist), &[])
    }
    .map_err(|e| run_err(format!("{path}: reduction failed: {e}")))?;
    telemetry.record_span_since("reduce", start);
    telemetry.add_counter("reduce.iterations", report.iterations as u64);
    telemetry.add_counter("reduce.proposed", report.proposed as u64);
    telemetry.add_counter("reduce.screened", report.screened as u64);
    telemetry.add_counter("reduce.confirmed", report.confirmed as u64);
    telemetry.add_counter("reduce.accepted", report.moves.len() as u64);

    if args.flag("json") {
        println!(
            "{}",
            report::reduce_json(&path, &report, seeds, jobs, cycles)
        );
    } else {
        println!(
            "== {path}: `{}` — {} iteration(s), {} proposed / {} screened / {} confirmed ==",
            report.circuit, report.iterations, report.proposed, report.screened, report.confirmed
        );
        if report.moves.is_empty() {
            println!("no improving move found; the netlist is unchanged");
        } else {
            let mut table = TextTable::new(vec!["iter", "move", "glitch power (mW)", "latency"]);
            for m in &report.moves {
                table.add_row(vec![
                    m.iteration.to_string(),
                    m.description.clone(),
                    format!(
                        "{:.6} -> {:.6}",
                        m.glitch_power_before * 1e3,
                        m.glitch_power_after * 1e3
                    ),
                    format!("+{}", m.latency_added),
                ]);
            }
            print!("{table}");
        }
        println!(
            "glitch power {:.6} mW -> {:.6} mW; total {:.6} mW -> {:.6} mW; latency +{} cycle(s)",
            report.initial_glitch_power * 1e3,
            report.final_glitch_power * 1e3,
            report.initial_total_power * 1e3,
            report.final_total_power * 1e3,
            report.latency
        );
        println!(
            "equivalence: {} ({} checks, {} output values compared)",
            if report.equivalence.passed() {
                "PASS"
            } else {
                "FAIL"
            },
            report.equivalence.checks.len(),
            report.equivalence.compared()
        );
        println!("{}", report.headline());
    }

    if let Some(out) = args.option("emit-blif") {
        write_file(out, &emit_blif(&report.netlist))?;
    }
    telemetry.finish()
}

const SERVE_SPEC: Spec = Spec {
    options: &[
        "port",
        "jobs",
        "cache-bytes",
        "trace-out",
        "access-log",
        "access-log-max-bytes",
    ],
    flags: &[],
    optional: &[],
};

fn cmd_serve(raw: &[String]) -> Result<(), CliError> {
    let args = Args::parse(raw, &SERVE_SPEC).map_err(CliError::Usage)?;
    if let Some(extra) = args.positional().first() {
        return Err(CliError::Usage(format!(
            "serve takes no netlist argument (circuits arrive per request), got `{extra}`"
        )));
    }
    let port: u16 = args.parsed_option("port", 0).map_err(CliError::Usage)?;
    let hardware = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let jobs: usize = args
        .parsed_option("jobs", hardware)
        .map_err(CliError::Usage)?;
    if jobs == 0 {
        return Err(CliError::Usage("--jobs must be at least 1".into()));
    }
    let cache_bytes: usize = args
        .parsed_option("cache-bytes", 256 * 1024 * 1024)
        .map_err(CliError::Usage)?;
    let mut config = glitch_serve::ServeConfig::new(port, jobs, cache_bytes);
    config.trace_out = args.option("trace-out").map(str::to_string);
    config.access_log = args.option("access-log").map(str::to_string);
    config.access_log_max_bytes = args
        .parsed_option("access-log-max-bytes", config.access_log_max_bytes)
        .map_err(CliError::Usage)?;
    glitch_serve::run_server(&config).map_err(run_err)
}

const CLIENT_SPEC: Spec = Spec {
    options: &["port", "timeout-ms"],
    flags: &[],
    optional: &[],
};

/// Resolves the required `--port` for the daemon-facing subcommands.
fn required_port(args: &Args, command: &str) -> Result<u16, CliError> {
    match args.option("port") {
        Some(text) => text
            .parse()
            .map_err(|_| CliError::Usage(format!("option --port: cannot parse `{text}`"))),
        None => Err(CliError::Usage(format!("{command} requires --port <p>"))),
    }
}

fn cmd_client(raw: &[String]) -> Result<(), CliError> {
    let args = Args::parse(raw, &CLIENT_SPEC).map_err(CliError::Usage)?;
    let port = required_port(&args, "client")?;
    let timeout_ms: u64 = args
        .parsed_option("timeout-ms", 30_000)
        .map_err(CliError::Usage)?;
    let timeout = (timeout_ms > 0).then(|| std::time::Duration::from_millis(timeout_ms));
    let mut client = glitch_serve::Client::connect_with_timeout(port, timeout).map_err(run_err)?;
    let mut errors = 0usize;
    let mut relay = |client: &mut glitch_serve::Client, line: &str| -> Result<(), CliError> {
        let response = client
            .request_streaming(line, |interim| println!("{interim}"))
            .map_err(run_err)?;
        if response.starts_with("{\"error\"") {
            errors += 1;
        }
        println!("{response}");
        Ok(())
    };
    if args.positional().is_empty() {
        // No request arguments: relay stdin line by line.
        let stdin = std::io::stdin();
        for line in std::io::BufRead::lines(stdin.lock()) {
            let line = line.map_err(|e| run_err(format!("cannot read stdin: {e}")))?;
            if line.trim().is_empty() {
                continue;
            }
            relay(&mut client, &line)?;
        }
    } else {
        for line in args.positional() {
            relay(&mut client, line)?;
        }
    }
    if errors > 0 {
        return Err(run_err(format!(
            "daemon answered {errors} request(s) with an error"
        )));
    }
    Ok(())
}

const STATUS_SPEC: Spec = Spec {
    options: &["port"],
    flags: &["json"],
    optional: &[],
};

fn cmd_status(raw: &[String]) -> Result<(), CliError> {
    let args = Args::parse(raw, &STATUS_SPEC).map_err(CliError::Usage)?;
    let port = required_port(&args, "status")?;
    let line = fetch_status(port)?;
    if args.flag("json") {
        println!("{line}");
    } else {
        print!("{}", render_status_dashboard(&line, port)?);
    }
    Ok(())
}

const TOP_SPEC: Spec = Spec {
    options: &["port", "interval", "count"],
    flags: &[],
    optional: &[],
};

fn cmd_top(raw: &[String]) -> Result<(), CliError> {
    let args = Args::parse(raw, &TOP_SPEC).map_err(CliError::Usage)?;
    let port = required_port(&args, "top")?;
    let interval_ms: u64 = args
        .parsed_option("interval", 1_000)
        .map_err(CliError::Usage)?;
    let count: usize = args.parsed_option("count", 0).map_err(CliError::Usage)?;
    let mut frames = 0usize;
    loop {
        let dashboard = render_status_dashboard(&fetch_status(port)?, port)?;
        // Plain ANSI home+clear redraw: no terminal library, and a dumb
        // pipe just sees frames separated by the escape sequence.
        print!("\x1b[H\x1b[2J{dashboard}");
        use std::io::Write as _;
        std::io::stdout().flush().ok();
        frames += 1;
        if count > 0 && frames >= count {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(10)));
    }
}

fn fetch_status(port: u16) -> Result<String, CliError> {
    let timeout = Some(std::time::Duration::from_millis(5_000));
    let mut client = glitch_serve::Client::connect_with_timeout(port, timeout).map_err(run_err)?;
    let line = client.request("{\"op\":\"status\"}").map_err(run_err)?;
    if line.starts_with("{\"error\"") {
        return Err(run_err(format!(
            "daemon rejected the status request: {line}"
        )));
    }
    Ok(line)
}

/// Renders one `status` response as the plain-text dashboard `status` and
/// `top` share.
fn render_status_dashboard(line: &str, port: u16) -> Result<String, CliError> {
    use glitch_serve::jsonin::{parse_json, JsonValue};
    use std::fmt::Write as _;

    fn object(value: &JsonValue) -> &std::collections::BTreeMap<String, JsonValue> {
        static EMPTY: std::sync::OnceLock<std::collections::BTreeMap<String, JsonValue>> =
            std::sync::OnceLock::new();
        match value {
            JsonValue::Object(map) => map,
            _ => EMPTY.get_or_init(std::collections::BTreeMap::new),
        }
    }
    fn field<'a>(
        map: &'a std::collections::BTreeMap<String, JsonValue>,
        key: &str,
    ) -> &'a JsonValue {
        map.get(key).unwrap_or(&JsonValue::Null)
    }
    fn sum(map: &std::collections::BTreeMap<String, JsonValue>) -> u64 {
        map.values().filter_map(JsonValue::as_u64).sum()
    }

    let status = parse_json(line)
        .map_err(|e| run_err(format!("cannot parse status response: {e}: {line}")))?;
    let status = object(&status);
    let counts = object(field(status, "counts"));
    let requests = object(field(counts, "requests"));
    let errors = object(field(counts, "errors"));
    let shed = object(field(counts, "shed"));
    let cache = object(field(status, "cache"));
    let latency = object(field(status, "latency"));
    let uptime_s = field(status, "uptime_us").as_u64().unwrap_or(0) as f64 / 1e6;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "glitch-serve 127.0.0.1:{port} — up {uptime_s:.1}s — {} request(s), {} error(s), {} shed",
        sum(requests),
        sum(errors),
        sum(shed)
    );
    let _ = writeln!(
        out,
        "workers {}/{} busy, queue depth {}; cache {} circuit(s), {} baseline(s), {} byte(s)",
        field(status, "busy_workers").as_u64().unwrap_or(0),
        field(status, "workers").as_u64().unwrap_or(0),
        field(status, "queue_depth").as_u64().unwrap_or(0),
        field(cache, "circuits").as_u64().unwrap_or(0),
        field(cache, "baselines").as_u64().unwrap_or(0),
        field(cache, "bytes").as_u64().unwrap_or(0),
    );
    let mut table = TextTable::new(vec![
        "op",
        "reqs",
        "errs",
        "shed",
        "q p50/1m",
        "q p99/1m",
        "h p50/1m",
        "h p99/1m",
        "h p99/tot",
    ]);
    let mut ops: Vec<&String> = requests.keys().chain(shed.keys()).collect();
    ops.sort();
    ops.dedup();
    for op in ops {
        let lat = object(field(latency, op));
        let queue_wait = object(field(lat, "queue_wait_us"));
        let handle = object(field(lat, "handle_us"));
        let pick = |windowed: &std::collections::BTreeMap<String, JsonValue>,
                    window: &str,
                    quantile: &str| {
            field(object(field(windowed, window)), quantile)
                .as_u64()
                .map_or_else(|| "-".to_string(), |v| format!("{v}us"))
        };
        table.add_row(vec![
            op.clone(),
            field(requests, op).as_u64().unwrap_or(0).to_string(),
            field(errors, op).as_u64().unwrap_or(0).to_string(),
            field(shed, op).as_u64().unwrap_or(0).to_string(),
            pick(queue_wait, "1m", "p50"),
            pick(queue_wait, "1m", "p99"),
            pick(handle, "1m", "p50"),
            pick(handle, "1m", "p99"),
            pick(handle, "total", "p99"),
        ]);
    }
    let _ = write!(out, "{table}");
    Ok(out)
}
