//! The subcommands: parse, stats, analyze, simulate, power, retime.

use std::fmt;
use std::fs;
use std::path::Path;

use glitch_core::netlist::{Bus, DotOptions, Netlist};
use glitch_core::power::Technology;
use glitch_core::retime::{pipeline_netlist, PipelineOptions};
use glitch_core::sim::{
    RandomStimulus, SessionReport, SimSession, UnitDelay, VcdProbe, WaveCsvProbe,
};
use glitch_core::{Analysis, AnalysisConfig, DelayKind, GlitchAnalyzer, TextTable};
use glitch_io::{emit_blif, parse_netlist, Format, GateLibrary};

use crate::args::{Args, Spec};
use crate::json::JsonObject;

/// The usage text printed on argument errors and by `help`.
pub const USAGE: &str = "\
usage: glitch-cli <command> <netlist> [options]

The netlist is a .blif file or a structural-Verilog .v file.

commands:
  parse     parse and validate; print a one-line summary
              --emit-blif <file>   write the circuit back out as BLIF
              --dot <file>         write a Graphviz rendering
  stats     print netlist statistics (cells, nets, depth, histogram)
              --json               machine-readable output instead of text
  analyze   the full paper pipeline in one simulation pass: simulate
            random vectors, classify every node's transitions into useful
            work and glitches, estimate the three-component dynamic power
              --cycles <n>         random vectors to simulate [1000]
              --seed <n>           stimulus seed [3665697173]
              --delay <model>      unit | zero | adder | library [unit]
              --frequency-mhz <f>  clock for the power estimate [5]
              --tech <name>        0.8um | 65nm [0.8um]
              --csv <file>         write per-node activity as CSV
              --vcd <file>         write a value-change dump
              --wave-csv <file>    write per-transition rows as CSV
              --dot <file>         write a Graphviz rendering
              --json               machine-readable report on stdout
            (every artefact is recorded by a probe on the same single
            simulation session — no re-simulation per output)
  simulate  run the event-driven simulator and report settling behaviour
              --cycles/--seed/--vcd as above
  power     the power report only (one simulation pass)
              --cycles/--seed/--frequency-mhz/--tech as above
  retime    cutset pipelining of a combinational circuit, with a
            before/after activity and power comparison
              --ranks <n>          register ranks to insert [1]
              --no-input-rank      place all ranks inside the logic instead
                                   of spending the first on the inputs
              --cycles/--seed/--frequency-mhz/--tech as above
              --emit-blif <file>   write the retimed circuit as BLIF
  help      print this text";

/// Errors surfaced to `main`.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line; `main` appends the usage text.
    Usage(String),
    /// Anything that failed after argument parsing, already formatted.
    Run(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Run(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for CliError {}

fn run_err(message: impl Into<String>) -> CliError {
    CliError::Run(message.into())
}

/// Entry point: resolves the subcommand and runs it.
///
/// # Errors
///
/// Returns [`CliError::Usage`] for command-line problems and
/// [`CliError::Run`] for everything downstream.
pub fn dispatch(raw: &[String]) -> Result<(), CliError> {
    let Some(command) = raw.first() else {
        return Err(CliError::Usage("missing command".into()));
    };
    let rest = &raw[1..];
    match command.as_str() {
        "parse" => cmd_parse(rest),
        "stats" => cmd_stats(rest),
        "analyze" => cmd_analyze(rest),
        "simulate" => cmd_simulate(rest),
        "power" => cmd_power(rest),
        "retime" => cmd_retime(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

/// Loads and parses the netlist named by the first positional argument.
fn load(args: &Args) -> Result<(Netlist, String), CliError> {
    let path = args
        .positional()
        .first()
        .ok_or_else(|| CliError::Usage("missing netlist file".into()))?;
    if args.positional().len() > 1 {
        return Err(CliError::Usage(format!(
            "unexpected argument `{}`",
            args.positional()[1]
        )));
    }
    let format = Format::from_extension(path).ok_or_else(|| {
        run_err(format!(
            "{path}: unknown netlist format (expected .blif or .v)"
        ))
    })?;
    let text = fs::read_to_string(path).map_err(|e| run_err(format!("{path}: {e}")))?;
    let library = library_for(args)?;
    let netlist =
        parse_netlist(&text, format, &library).map_err(|e| run_err(format!("{path}: {e}")))?;
    Ok((netlist, path.clone()))
}

fn library_for(args: &Args) -> Result<GateLibrary, CliError> {
    let library = GateLibrary::standard();
    Ok(match args.option("tech") {
        None | Some("0.8um") => library,
        Some("65nm") => library.with_technology(Technology::cmos_65nm_1v2()),
        Some(other) => {
            return Err(CliError::Usage(format!(
                "--tech must be 0.8um or 65nm, got `{other}`"
            )));
        }
    })
}

fn write_file(path: &str, contents: &str) -> Result<(), CliError> {
    fs::write(Path::new(path), contents).map_err(|e| run_err(format!("{path}: {e}")))?;
    println!("wrote {path}");
    Ok(())
}

/// Groups the primary inputs into buses of at most 32 bits so the random
/// stimulus can drive arbitrarily wide circuits.
fn input_buses(netlist: &Netlist) -> Vec<Bus> {
    netlist
        .inputs()
        .chunks(32)
        .map(|chunk| Bus::new(chunk.to_vec()))
        .collect()
}

fn delay_config(args: &Args, library: &GateLibrary) -> Result<DelayKind, CliError> {
    Ok(match args.option("delay") {
        None | Some("unit") => DelayKind::Unit,
        Some("zero") => DelayKind::Zero,
        Some("adder") => DelayKind::RealisticAdderCells,
        Some("library") => DelayKind::Custom(library.cell_delay()),
        Some(other) => {
            return Err(CliError::Usage(format!(
                "--delay must be unit, zero, adder or library, got `{other}`"
            )));
        }
    })
}

fn analysis_config(args: &Args, library: &GateLibrary) -> Result<AnalysisConfig, CliError> {
    let defaults = AnalysisConfig::default();
    let frequency_mhz: f64 = args
        .parsed_option("frequency-mhz", defaults.frequency / 1e6)
        .map_err(CliError::Usage)?;
    Ok(AnalysisConfig {
        cycles: args
            .parsed_option("cycles", defaults.cycles)
            .map_err(CliError::Usage)?,
        seed: args
            .parsed_option("seed", defaults.seed)
            .map_err(CliError::Usage)?,
        frequency: frequency_mhz * 1e6,
        technology: *library.technology(),
        delay: delay_config(args, library)?,
    })
}

fn analyze_netlist(netlist: &Netlist, config: &AnalysisConfig) -> Result<Analysis, CliError> {
    GlitchAnalyzer::new(config.clone())
        .analyze(netlist, &input_buses(netlist), &[])
        .map_err(|e| run_err(format!("simulation failed: {e}")))
}

fn maybe_dot(netlist: &Netlist, args: &Args) -> Result<(), CliError> {
    if let Some(path) = args.option("dot") {
        write_file(path, &netlist.to_dot(&DotOptions::default()))?;
    }
    Ok(())
}

// ---------------------------------------------------------------- commands

const PARSE_SPEC: Spec = Spec {
    options: &["emit-blif", "dot", "tech"],
    flags: &[],
};

fn cmd_parse(raw: &[String]) -> Result<(), CliError> {
    let args = Args::parse(raw, &PARSE_SPEC).map_err(CliError::Usage)?;
    let (netlist, path) = load(&args)?;
    println!(
        "{path}: `{}` ok — {} cells, {} nets, {} flipflops, {} inputs, {} outputs",
        netlist.name(),
        netlist.cell_count(),
        netlist.net_count(),
        netlist.dff_count(),
        netlist.inputs().len(),
        netlist.outputs().len()
    );
    if let Some(out) = args.option("emit-blif") {
        write_file(out, &emit_blif(&netlist))?;
    }
    maybe_dot(&netlist, &args)
}

const STATS_SPEC: Spec = Spec {
    options: &["tech"],
    flags: &["json"],
};

fn cmd_stats(raw: &[String]) -> Result<(), CliError> {
    let args = Args::parse(raw, &STATS_SPEC).map_err(CliError::Usage)?;
    let (netlist, path) = load(&args)?;
    let stats = netlist.stats();
    if args.flag("json") {
        let mut cells = JsonObject::new();
        for (kind, count) in stats.cells_by_kind() {
            cells = cells.usize(kind, *count);
        }
        let json = JsonObject::new()
            .str("file", &path)
            .str("netlist", netlist.name())
            .usize("cells", stats.cell_count())
            .usize("nets", stats.net_count())
            .usize("flipflops", stats.dff_count())
            .usize("inputs", stats.input_count())
            .usize("outputs", stats.output_count())
            .usize("max_fanout", stats.max_fanout())
            .f64("gate_equivalents", stats.gate_equivalents())
            .opt_usize("combinational_depth", stats.combinational_depth())
            .raw("cells_by_kind", &cells.render())
            .render();
        println!("{json}");
    } else {
        print!("{stats}");
    }
    Ok(())
}

const ANALYZE_SPEC: Spec = Spec {
    options: &[
        "cycles",
        "seed",
        "delay",
        "frequency-mhz",
        "tech",
        "csv",
        "vcd",
        "wave-csv",
        "dot",
    ],
    flags: &["json"],
};

fn cmd_analyze(raw: &[String]) -> Result<(), CliError> {
    let args = Args::parse(raw, &ANALYZE_SPEC).map_err(CliError::Usage)?;
    let (netlist, path) = load(&args)?;
    let library = library_for(&args)?;
    // Resolve every option before printing anything, so a bad value fails
    // cleanly instead of after half a report.
    let config = analysis_config(&args, &library)?;
    let json = args.flag("json");

    if !json {
        println!("== {path}: `{}` ==", netlist.name());
        print!("{}", netlist.stats());
    }

    // One session, one simulation pass: the analyzer's activity and power
    // probes plus one extra probe per requested artefact.
    let analyzer = GlitchAnalyzer::new(config.clone());
    let mut session = analyzer.session(&netlist, &input_buses(&netlist), &[]);
    if args.option("vcd").is_some() {
        session = session.probe(VcdProbe::default());
    }
    if args.option("wave-csv").is_some() {
        session = session.probe(WaveCsvProbe::new());
    }
    let mut report = session
        .run()
        .map_err(|e| run_err(format!("simulation failed: {e}")))?;

    let vcd_text = report.take_probe::<VcdProbe>().map(VcdProbe::into_vcd);
    let wave_csv = report
        .take_probe::<WaveCsvProbe>()
        .map(WaveCsvProbe::into_csv);
    let passes = report.passes();
    let events = report.total_events();
    let max_settle = report.max_settle_time();
    let analysis = GlitchAnalyzer::analysis(&netlist, report);
    let totals = analysis.activity.totals();

    if json {
        let activity = JsonObject::new()
            .u64("transitions", totals.transitions)
            .u64("useful", totals.useful)
            .u64("useless", totals.useless)
            .u64("glitches", totals.glitches())
            .f64("lf_ratio", totals.useless_to_useful())
            .f64(
                "balance_reduction_factor",
                totals.balance_reduction_factor(),
            );
        let power = &analysis.power;
        let power_json = JsonObject::new()
            .f64("logic_w", power.breakdown.logic)
            .f64("flipflop_w", power.breakdown.flipflop)
            .f64("clock_w", power.breakdown.clock)
            .f64("total_w", power.breakdown.total())
            .f64("frequency_hz", power.frequency)
            .usize("flipflops", power.flipflops)
            .f64("clock_capacitance_f", power.clock_capacitance)
            .f64("switched_cap_per_cycle_f", power.switched_cap_per_cycle);
        let out = JsonObject::new()
            .str("file", &path)
            .str("netlist", netlist.name())
            .u64("cycles", analysis.cycles)
            .u64("passes", passes)
            .u64("events", events)
            .u64("max_settle_time", max_settle)
            .raw("activity", &activity.render())
            .raw("power", &power_json.render())
            .render();
        println!("{out}");
    } else {
        println!();
        println!(
            "one simulation pass: {} cycles, {events} events, worst settle time {max_settle}",
            analysis.cycles
        );
        println!();
        print!("{}", analysis.activity);
        println!(
            "useless/useful ratio L/F = {:.3}; balancing all delay paths would cut \
             combinational activity by a factor of {:.2}",
            totals.useless_to_useful(),
            analysis.balance_reduction_factor()
        );
        println!();
        print!("{}", analysis.power);
    }

    if let Some(csv_path) = args.option("csv") {
        write_file(csv_path, &analysis.activity.to_csv())?;
    }
    if let Some(vcd_path) = args.option("vcd") {
        write_file(vcd_path, &vcd_text.expect("VcdProbe attached above"))?;
    }
    if let Some(wave_path) = args.option("wave-csv") {
        write_file(wave_path, &wave_csv.expect("WaveCsvProbe attached above"))?;
    }
    maybe_dot(&netlist, &args)
}

const SIMULATE_SPEC: Spec = Spec {
    options: &["cycles", "seed", "tech", "vcd"],
    flags: &[],
};

fn cmd_simulate(raw: &[String]) -> Result<(), CliError> {
    let args = Args::parse(raw, &SIMULATE_SPEC).map_err(CliError::Usage)?;
    let (netlist, path) = load(&args)?;
    let cycles: u64 = args
        .parsed_option("cycles", 1000)
        .map_err(CliError::Usage)?;
    let seed: u64 = args
        .parsed_option("seed", AnalysisConfig::default().seed)
        .map_err(CliError::Usage)?;

    let mut session = SimSession::new(&netlist)
        .delay_model(UnitDelay)
        .stimulus(RandomStimulus::new(input_buses(&netlist), cycles, seed));
    if args.option("vcd").is_some() {
        session = session.probe(VcdProbe::default());
    }
    let mut report: SessionReport = session
        .run()
        .map_err(|e| run_err(format!("{path}: simulation failed: {e}")))?;

    println!(
        "simulated {cycles} cycles of `{}` (seed {seed}): {} transitions, \
         {} events, worst settle time {}",
        netlist.name(),
        report.total_transitions(),
        report.total_events(),
        report.max_settle_time()
    );
    println!("final primary outputs:");
    for &out in netlist.outputs() {
        let value = match report.net_bool(out) {
            Some(true) => "1",
            Some(false) => "0",
            None => "x",
        };
        println!("  {:<24} {value}", netlist.net(out).name());
    }
    if let Some(vcd_path) = args.option("vcd") {
        let vcd = report
            .take_probe::<VcdProbe>()
            .expect("recorder was attached above")
            .into_vcd();
        write_file(vcd_path, &vcd)?;
    }
    Ok(())
}

const POWER_SPEC: Spec = Spec {
    options: &["cycles", "seed", "delay", "frequency-mhz", "tech"],
    flags: &[],
};

fn cmd_power(raw: &[String]) -> Result<(), CliError> {
    let args = Args::parse(raw, &POWER_SPEC).map_err(CliError::Usage)?;
    let (netlist, _) = load(&args)?;
    let library = library_for(&args)?;
    let config = analysis_config(&args, &library)?;
    let analysis = analyze_netlist(&netlist, &config)?;
    print!("{}", analysis.power);
    Ok(())
}

const RETIME_SPEC: Spec = Spec {
    options: &[
        "ranks",
        "cycles",
        "seed",
        "delay",
        "frequency-mhz",
        "tech",
        "emit-blif",
    ],
    flags: &["no-input-rank"],
};

fn cmd_retime(raw: &[String]) -> Result<(), CliError> {
    let args = Args::parse(raw, &RETIME_SPEC).map_err(CliError::Usage)?;
    let (netlist, path) = load(&args)?;
    let library = library_for(&args)?;
    let ranks: usize = args.parsed_option("ranks", 1).map_err(CliError::Usage)?;
    let options = PipelineOptions {
        register_inputs: !args.flag("no-input-rank"),
    };
    let config = analysis_config(&args, &library)?;

    let piped = pipeline_netlist(&netlist, ranks, options)
        .map_err(|e| run_err(format!("{path}: cannot retime: {e}")))?;

    let before = analyze_netlist(&netlist, &config)?;
    let after = analyze_netlist(&piped.netlist, &config)?;

    let mut table = TextTable::new(vec![
        "circuit",
        "flipflops",
        "useful",
        "useless",
        "L/F",
        "logic (mW)",
        "ff (mW)",
        "clock (mW)",
        "total (mW)",
    ]);
    for (label, netlist, analysis) in [
        ("original", &netlist, &before),
        ("retimed", &piped.netlist, &after),
    ] {
        let totals = analysis.activity.totals();
        let power = &analysis.power.breakdown;
        table.add_row(vec![
            label.to_string(),
            netlist.dff_count().to_string(),
            totals.useful.to_string(),
            totals.useless.to_string(),
            format!("{:.3}", totals.useless_to_useful()),
            format!("{:.3}", power.logic * 1e3),
            format!("{:.3}", power.flipflop * 1e3),
            format!("{:.3}", power.clock * 1e3),
            format!("{:.3}", power.total() * 1e3),
        ]);
    }
    println!(
        "inserted {ranks} register rank(s) into `{}` (latency +{} cycles):",
        netlist.name(),
        piped.latency
    );
    print!("{table}");

    if let Some(out) = args.option("emit-blif") {
        write_file(out, &emit_blif(&piped.netlist))?;
    }
    Ok(())
}
