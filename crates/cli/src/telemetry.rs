//! CLI-side observability: the shared `--metrics[=FILE]`, `--metrics-json`
//! and `--trace-out FILE` wiring of `analyze`, `power`, `sweep` and
//! `check`.
//!
//! The split mirrors `glitch-obs`'s contract. Deterministic quantities
//! (cycle, event, evaluation and queue counts) go into one
//! [`MetricsRegistry`], folded in job order, so `--metrics-json` output is
//! byte-identical across runs and at any `--jobs` count. Wall-clock time
//! goes into timing spans only — the Chrome trace (`--trace-out`) and the
//! appendix of the human-readable dump — and never into the registry.

use std::fs;
use std::path::Path;

use glitch_core::netlist::{ConeIndex, Netlist};
use glitch_core::sim::{MetricsProbe, SessionReport};
use glitch_core::{AggregateReport, IncrementalStats, KernelTelemetry, ShardSummary};
use glitch_obs::export::{chrome_trace, metrics_json, metrics_text};
use glitch_obs::{MetricsRegistry, Span, SpanLog};

use crate::args::Args;
use crate::commands::CliError;

/// Where the metrics dump goes.
enum MetricsDest {
    /// `--metrics` (bare) or `--metrics-json` alone: stdout, as the final
    /// line(s) of the command, so scripts can parse the tail.
    Stdout,
    /// `--metrics=FILE`.
    File(String),
}

/// Per-command telemetry state, constructed from the parsed arguments.
///
/// When none of the telemetry options are given, every method is a cheap
/// no-op and the instrumented commands run their untouched bare paths (no
/// extra probes, no cone index build) — the property the `metrics_overhead`
/// bench gate pins.
pub struct Telemetry {
    dest: Option<MetricsDest>,
    json: bool,
    trace_path: Option<String>,
    spans: SpanLog,
    registry: MetricsRegistry,
}

impl Telemetry {
    /// Reads `--metrics[=FILE]`, `--metrics-json` and `--trace-out FILE`.
    pub fn from_args(args: &Args) -> Telemetry {
        let json = args.flag("metrics-json");
        let dest = match args.option("metrics") {
            Some("") => Some(MetricsDest::Stdout),
            Some(path) => Some(MetricsDest::File(path.to_string())),
            // --metrics-json alone implies metrics-to-stdout.
            None if json => Some(MetricsDest::Stdout),
            None => None,
        };
        Telemetry {
            dest,
            json,
            trace_path: args.option("trace-out").map(str::to_string),
            spans: SpanLog::new(glitch_obs::Clock::new()),
            registry: MetricsRegistry::new(),
        }
    }

    /// `true` when any telemetry output was requested; gates every piece
    /// of instrumentation (extra probes, cone index, timing spans).
    pub fn enabled(&self) -> bool {
        self.dest.is_some() || self.trace_path.is_some()
    }

    /// Microseconds since this command's telemetry clock started.
    pub fn now_micros(&self) -> u64 {
        self.spans.clock().now_micros()
    }

    /// Opens a RAII timing span named `name` (recorded on drop). Returns
    /// `None` when telemetry is off so disabled runs never touch the clock.
    pub fn span(&self, name: &str) -> Option<Span<'_>> {
        self.enabled().then(|| self.spans.span(name))
    }

    /// Closes a span opened by hand: records `name` from `start_micros`
    /// to now. Used where the RAII [`Telemetry::span`] guard would hold an
    /// immutable borrow across registry mutations.
    pub fn record_span_since(&self, name: &str, start_micros: u64) {
        if !self.enabled() {
            return;
        }
        let dur = self.now_micros().saturating_sub(start_micros);
        self.spans.record(name.to_string(), 0, start_micros, dur);
    }

    /// Takes the [`MetricsProbe`] out of a finished session report (if
    /// any), attributes the session's event-queue traffic to it, and folds
    /// its registry into the command-wide one. Call once per report *in
    /// job order* — that ordering is what keeps the merged registry
    /// bit-identical at any `--jobs` count.
    pub fn absorb_session(&mut self, report: &mut SessionReport) {
        if let Some(mut probe) = report.take_probe::<MetricsProbe>() {
            probe.record_queue_stats(report.queue_stats());
            self.registry.merge(probe.into_registry());
        }
    }

    /// Records the deterministic side of a reduced multi-shard aggregate:
    /// cycle/event/evaluation totals and merged queue traffic. Used by the
    /// paths that cannot attach per-session probes (`check`, `sweep`).
    pub fn record_aggregate(&mut self, aggregate: &AggregateReport) {
        if !self.enabled() {
            return;
        }
        self.add_counter("sim.cycles", aggregate.total_cycles());
        self.add_counter("sim.events", aggregate.total_events());
        self.add_counter("sim.cell_evals", aggregate.total_cell_evals());
        self.observe_gauge("sim.max_settle_time", aggregate.max_settle_time());
        let queue = aggregate.queue_stats();
        self.add_counter("queue.pushes", queue.pushes);
        self.add_counter("queue.pops", queue.pops);
        self.observe_gauge("queue.peak_depth", queue.peak_depth);
    }

    /// Records the `kernel.*` counters of a compiled-kernel or hybrid run:
    /// lane/cycle/pair classification and functional work. Deterministic
    /// (plane diffs and word-wide popcounts), so it lives in the registry.
    pub fn record_kernel(&mut self, kernel: &KernelTelemetry) {
        if !self.enabled() {
            return;
        }
        self.add_counter("kernel.lanes", kernel.lanes as u64);
        self.add_counter("kernel.cycles_total", kernel.total_cycles);
        self.add_counter("kernel.cycles_quiet", kernel.quiet_cycles);
        self.add_counter("kernel.pairs_total", kernel.total_pairs);
        self.add_counter("kernel.pairs_quiet", kernel.quiet_pairs);
        self.add_counter(
            "kernel.functional_transitions",
            kernel.functional_transitions,
        );
        self.add_counter("kernel.functional_cell_evals", kernel.functional_cell_evals);
        self.observe_gauge("kernel.program_ops", kernel.program_ops as u64);
        self.observe_gauge("kernel.program_bytes", kernel.program_bytes as u64);
    }

    /// Records the work accounting of one incremental (dirty-region)
    /// re-simulation: replay/re-settle split, dirty-cone peak, flipflop
    /// divergence fallbacks.
    pub fn record_incremental(&mut self, stats: &IncrementalStats) {
        if !self.enabled() {
            return;
        }
        self.add_counter("incremental.replayed_cycles", stats.replayed_cycles);
        self.add_counter("incremental.simulated_cycles", stats.simulated_cycles);
        self.add_counter("incremental.cells_evaluated", stats.cells_evaluated);
        self.add_counter(
            "incremental.dff_divergence_reseeds",
            stats.dff_divergence_reseeds,
        );
        self.observe_gauge(
            "incremental.peak_dirty_cone_nets",
            stats.peak_dirty_cone_nets,
        );
    }

    /// Builds the netlist's fanout/level cone index under a `cone-index`
    /// span and records its size. Telemetry-only work: the bare command
    /// paths never build an index, so this runs only when enabled.
    pub fn cone_index_phase(&mut self, netlist: &Netlist) {
        if !self.enabled() {
            return;
        }
        let built = {
            let _span = self.spans.span("cone-index");
            ConeIndex::build(netlist)
        };
        self.observe_gauge("netlist.cells", netlist.cell_count() as u64);
        self.observe_gauge("netlist.nets", netlist.net_count() as u64);
        if built.is_ok() {
            self.add_counter("cone.index_builds", 1);
        }
    }

    /// Synthesizes one trace span per shard from the wall-clock fields of
    /// a reduced batch: each shard's bar starts at `batch_start_micros`
    /// plus its queue wait and spans its session wall time, on its own
    /// trace track.
    pub fn record_shard_spans(&self, batch_start_micros: u64, shards: &[ShardSummary]) {
        if !self.enabled() {
            return;
        }
        for (index, shard) in shards.iter().enumerate() {
            let name = if shard.label.is_empty() {
                format!("shard seed={}", shard.seed)
            } else {
                format!("shard {} seed={}", shard.label, shard.seed)
            };
            self.spans.record(
                name,
                index as u64 + 1,
                batch_start_micros + shard.queue_wait_micros,
                shard.wall_micros,
            );
        }
    }

    /// Records per-checker wall time (from
    /// [`glitch_core::CheckAnalysis::checker_micros`]) as trace spans and
    /// `check.*` violation counters from the verdict report.
    pub fn record_check(
        &mut self,
        report: &glitch_core::verify::VerifyReport,
        checker_micros: &[(String, u64)],
    ) {
        if !self.enabled() {
            return;
        }
        self.add_counter("check.violations_total", report.total_violations());
        self.add_counter("check.violations_retained", report.retained_violations());
        self.add_counter("check.violations_dropped", report.dropped_violations());
        for outcome in report.outcomes() {
            self.add_counter(
                &format!("check.{}.violations", outcome.checker),
                outcome.total_violations,
            );
        }
        let mut cursor = self.now_micros();
        for (name, micros) in checker_micros {
            self.spans
                .record(format!("checker:{name}"), 0, cursor, *micros);
            cursor += micros;
        }
    }

    /// Adds `n` to the counter `name` (created on first use).
    pub fn add_counter(&mut self, name: &str, n: u64) {
        if !self.enabled() {
            return;
        }
        let handle = self.registry.counter(name);
        self.registry.add(handle, n);
    }

    /// Raises the gauge `name` to at least `value`.
    pub fn observe_gauge(&mut self, name: &str, value: u64) {
        if !self.enabled() {
            return;
        }
        let handle = self.registry.gauge(name);
        self.registry.observe_max(handle, value);
    }

    /// Writes the requested outputs: the Chrome trace file first, then the
    /// metrics dump — so a stdout metrics dump is the command's final
    /// output and scripts can parse the last line(s).
    ///
    /// The JSON dump contains only the deterministic registry. The human
    /// text dump appends a wall-clock appendix (span summary) that is
    /// explicitly non-deterministic.
    pub fn finish(&self) -> Result<(), CliError> {
        if let Some(path) = &self.trace_path {
            write(path, &chrome_trace(&self.spans))?;
            println!("wrote {path}");
        }
        match &self.dest {
            None => {}
            Some(MetricsDest::File(path)) => {
                let dump = if self.json {
                    metrics_json(&self.registry)
                } else {
                    self.text_dump()
                };
                write(path, &dump)?;
                println!("wrote {path}");
            }
            Some(MetricsDest::Stdout) => {
                if self.json {
                    println!("{}", metrics_json(&self.registry));
                } else {
                    print!("{}", self.text_dump());
                }
            }
        }
        Ok(())
    }

    /// The human-readable dump: registry summary plus the span appendix.
    fn text_dump(&self) -> String {
        let mut out = metrics_text(&self.registry);
        let records = self.spans.records();
        if !records.is_empty() {
            out.push_str("spans (wall clock, non-deterministic):\n");
            for record in &records {
                out.push_str(&format!(
                    "  {:<28} {:>10} us (track {})\n",
                    record.name, record.dur_micros, record.tid
                ));
            }
        }
        out
    }
}

fn write(path: &str, contents: &str) -> Result<(), CliError> {
    fs::write(Path::new(path), contents).map_err(|e| CliError::Run(format!("{path}: {e}")))
}
