//! Tiny dependency-free command-line argument parsing: positional
//! arguments, `--key value` / `--key=value` options and `--flag` switches,
//! checked against a per-command specification.

use std::collections::HashMap;

/// The argument specification of one subcommand.
pub struct Spec {
    /// Option names (without `--`) that take a value.
    pub options: &'static [&'static str],
    /// Flag names (without `--`) that take no value.
    pub flags: &'static [&'static str],
    /// Option names (without `--`) whose value is optional: `--name` alone
    /// records an empty value, `--name=V` records `V`. A bare `--name`
    /// never consumes the next token (so `--metrics out.blif` keeps
    /// `out.blif` positional).
    pub optional: &'static [&'static str],
}

/// Parsed arguments.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses raw arguments against `spec`.
    ///
    /// # Errors
    ///
    /// Returns a usage message for unknown options, missing option values
    /// and malformed tokens.
    pub fn parse(raw: &[String], spec: &Spec) -> Result<Args, String> {
        let mut args = Args::default();
        let mut i = 0usize;
        while i < raw.len() {
            let token = &raw[i];
            if let Some(body) = token.strip_prefix("--") {
                let (name, inline_value) = match body.split_once('=') {
                    Some((n, v)) => (n, Some(v.to_string())),
                    None => (body, None),
                };
                if spec.flags.contains(&name) {
                    if let Some(v) = inline_value {
                        return Err(format!("flag --{name} does not take a value (got `{v}`)"));
                    }
                    args.flags.push(name.to_string());
                } else if spec.optional.contains(&name) {
                    args.options
                        .insert(name.to_string(), inline_value.unwrap_or_default());
                } else if spec.options.contains(&name) {
                    let value = match inline_value {
                        Some(v) => v,
                        None => {
                            i += 1;
                            raw.get(i)
                                .cloned()
                                .ok_or_else(|| format!("option --{name} needs a value"))?
                        }
                    };
                    args.options.insert(name.to_string(), value);
                } else {
                    return Err(format!("unknown option --{name}"));
                }
            } else {
                args.positional.push(token.clone());
            }
            i += 1;
        }
        Ok(args)
    }

    /// The positional arguments, in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// The raw value of option `name`, if given.
    pub fn option(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Whether flag `name` was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The value of option `name` parsed as `T`, or `default` when absent.
    pub fn parsed_option<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.option(name) {
            None => Ok(default),
            Some(text) => text
                .parse()
                .map_err(|_| format!("option --{name}: cannot parse `{text}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: Spec = Spec {
        options: &["cycles", "vcd"],
        flags: &["quiet"],
        optional: &["metrics"],
    };

    fn raw(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn parses_positional_options_and_flags() {
        let args = Args::parse(
            &raw(&["file.blif", "--cycles", "500", "--quiet", "--vcd=w.vcd"]),
            &SPEC,
        )
        .unwrap();
        assert_eq!(args.positional(), ["file.blif"]);
        assert_eq!(args.option("cycles"), Some("500"));
        assert_eq!(args.option("vcd"), Some("w.vcd"));
        assert!(args.flag("quiet"));
        assert_eq!(args.parsed_option("cycles", 0u64).unwrap(), 500);
        assert_eq!(args.parsed_option("missing", 7u64).unwrap(), 7);
    }

    #[test]
    fn optional_value_options_never_consume_the_next_token() {
        let args = Args::parse(&raw(&["--metrics", "file.blif"]), &SPEC).unwrap();
        assert_eq!(args.option("metrics"), Some(""));
        assert_eq!(args.positional(), ["file.blif"]);
        let args = Args::parse(&raw(&["--metrics=m.txt"]), &SPEC).unwrap();
        assert_eq!(args.option("metrics"), Some("m.txt"));
        let args = Args::parse(&raw(&["file.blif"]), &SPEC).unwrap();
        assert_eq!(args.option("metrics"), None);
    }

    #[test]
    fn rejects_unknown_and_malformed() {
        assert!(Args::parse(&raw(&["--nope"]), &SPEC).is_err());
        assert!(Args::parse(&raw(&["--cycles"]), &SPEC).is_err());
        assert!(Args::parse(&raw(&["--quiet=1"]), &SPEC).is_err());
        assert!(Args::parse(&raw(&["--cycles", "abc"]), &SPEC)
            .unwrap()
            .parsed_option("cycles", 0u64)
            .is_err());
    }
}
