//! `glitch-cli`: the paper's full analysis pipeline on external netlists.
//!
//! Parse a BLIF or structural-Verilog circuit, validate it, simulate it
//! with seeded random stimuli under a chosen delay model, classify every
//! node's transitions into useful work and glitches by parity evaluation,
//! estimate the three-component dynamic power and, for combinational
//! circuits, explore cutset retiming — with DOT and VCD export along the
//! way.

mod args;
mod commands;
mod telemetry;

use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&raw) {
        Ok(()) => ExitCode::SUCCESS,
        Err(commands::CliError::Usage(message)) => {
            eprintln!("glitch-cli: {message}");
            eprintln!("{}", commands::USAGE);
            ExitCode::from(2)
        }
        Err(err) => {
            eprintln!("glitch-cli: {err}");
            ExitCode::FAILURE
        }
    }
}
