//! End-to-end tests of the CLI telemetry surface: `--metrics[=FILE]`,
//! `--metrics-json` and `--trace-out FILE`.
//!
//! The load-bearing assertion is jobs-invariance: the merged metrics
//! registry is folded in seed order, so the `--metrics-json` dump must be
//! byte-identical at any `--jobs` count (the CLI-level face of the
//! `MergeableProbe` discipline pinned in `glitch-sim` and `glitch-obs`).

use std::path::PathBuf;
use std::process::{Command, Output};

fn data(file: &str) -> String {
    format!("{}/../../tests/data/{file}", env!("CARGO_MANIFEST_DIR"))
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_glitch-cli"))
        .args(args)
        .output()
        .expect("the binary must spawn")
}

fn stdout_of(args: &[&str]) -> String {
    let output = run(args);
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("output is UTF-8")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("glitch_telemetry_{}_{name}", std::process::id()))
}

#[test]
fn metrics_json_is_bit_identical_across_jobs() {
    let last_line = |jobs: &str| -> String {
        stdout_of(&[
            "analyze",
            &data("counter4.blif"),
            "--cycles",
            "120",
            "--seeds",
            "4",
            "--jobs",
            jobs,
            "--metrics-json",
        ])
        .lines()
        .last()
        .expect("metrics line")
        .to_string()
    };
    let serial = last_line("1");
    assert!(serial.starts_with('{') && serial.ends_with('}'));
    assert!(
        serial.contains("\"sim.cycles\":480"),
        "4 seeds x 120 cycles must aggregate: {serial}"
    );
    for jobs in ["2", "8"] {
        assert_eq!(last_line(jobs), serial, "--jobs {jobs} changed the metrics");
    }
}

#[test]
fn metrics_json_is_the_final_stdout_line_with_the_expected_sections() {
    let text = stdout_of(&[
        "analyze",
        &data("c17.blif"),
        "--cycles",
        "100",
        "--metrics-json",
    ]);
    let last = text.lines().last().unwrap();
    assert!(last.starts_with("{\"counters\":{"), "got: {last}");
    for section in ["\"gauges\":{", "\"histograms\":{", "\"sim.cell_evals\""] {
        assert!(last.contains(section), "missing {section}: {last}");
    }
    // The human report still precedes it.
    assert!(text.contains("power @"));
}

#[test]
fn trace_out_writes_chrome_trace_events_for_every_phase() {
    let trace_path = tmp("analyze.trace.json");
    stdout_of(&[
        "analyze",
        &data("counter4.blif"),
        "--cycles",
        "100",
        "--seeds",
        "3",
        "--jobs",
        "2",
        "--trace-out",
        trace_path.to_str().unwrap(),
    ]);
    let trace = std::fs::read_to_string(&trace_path).expect("trace file written");
    std::fs::remove_file(&trace_path).ok();
    let trimmed = trace.trim();
    assert!(trimmed.starts_with('[') && trimmed.ends_with(']'));
    for needle in [
        "\"ph\":\"X\"",
        "\"cat\":\"glitch\"",
        "\"name\":\"parse\"",
        "\"name\":\"cone-index\"",
        "\"name\":\"simulate\"",
        "\"name\":\"shard ",
        "\"name\":\"merge\"",
    ] {
        assert!(trimmed.contains(needle), "missing {needle} in {trimmed}");
    }
}

#[test]
fn check_telemetry_reports_checker_spans_and_violation_counters() {
    let trace_path = tmp("check.trace.json");
    let text = stdout_of(&[
        "check",
        &data("counter4.blif"),
        "--x-init",
        "--cycles",
        "80",
        "--seeds",
        "2",
        "--metrics",
        "--trace-out",
        trace_path.to_str().unwrap(),
    ]);
    let trace = std::fs::read_to_string(&trace_path).expect("trace file written");
    std::fs::remove_file(&trace_path).ok();
    assert!(trace.contains("\"name\":\"checker:x-propagation\""));
    // The human metrics dump follows the report, counters included.
    assert!(text.contains("check.violations_total"));
    assert!(text.contains("check.x-propagation.violations"));
    assert!(text.contains("spans (wall clock, non-deterministic):"));
}

#[test]
fn metrics_file_option_writes_the_dump_instead_of_stdout() {
    let metrics_path = tmp("metrics.txt");
    let arg = format!("--metrics={}", metrics_path.display());
    let text = stdout_of(&["power", &data("c17.blif"), "--cycles", "50", &arg]);
    let dump = std::fs::read_to_string(&metrics_path).expect("metrics file written");
    std::fs::remove_file(&metrics_path).ok();
    assert!(dump.contains("sim.cycles"));
    assert!(!text.contains("sim.cycles"), "dump must not hit stdout");
    // A bare `--metrics out.txt` must not swallow `out.txt`: the value is
    // only attached with `=`.
    let output = run(&["power", &data("c17.blif"), "--metrics", "nonsense.txt"]);
    assert!(!output.status.success(), "two positional args must fail");
}

#[test]
fn telemetry_off_keeps_the_bare_output_clean() {
    let text = stdout_of(&["analyze", &data("c17.blif"), "--cycles", "50"]);
    assert!(!text.contains("counters"));
    assert!(!text.contains("spans (wall clock"));
}
