//! End-to-end tests of the `glitch-cli` binary over the bundled corpus:
//! the full parse → validate → simulate → classify-glitches → power
//! pipeline must run on every shipped circuit, including the sequential
//! counter, and the exporters must produce well-formed artefacts.

use std::path::PathBuf;
use std::process::{Command, Output};

fn data(file: &str) -> String {
    format!("{}/../../tests/data/{file}", env!("CARGO_MANIFEST_DIR"))
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_glitch-cli"))
        .args(args)
        .output()
        .expect("the binary must spawn")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

#[test]
fn analyze_runs_the_full_pipeline_on_every_bundled_blif() {
    // The acceptance bar: parse → validate → simulate → classify → power
    // on at least 3 bundled circuits, one of them sequential.
    let circuits = ["c17.blif", "rca4.blif", "counter4.blif", "alu_slice.blif"];
    let mut sequential_seen = false;
    for circuit in circuits {
        let output = run(&["analyze", &data(circuit), "--cycles", "200"]);
        assert!(output.status.success(), "{circuit}: {}", stderr(&output));
        let text = stdout(&output);
        assert!(
            text.contains("transition activity"),
            "{circuit}: no activity section"
        );
        assert!(
            text.contains("useless/useful ratio L/F"),
            "{circuit}: no classification"
        );
        assert!(text.contains("power @"), "{circuit}: no power section");
        if text.contains("flipflops: 4") {
            sequential_seen = true;
            assert!(
                text.contains("flipflop"),
                "{circuit}: sequential power must show up"
            );
        }
    }
    assert!(
        sequential_seen,
        "counter4.blif must be analyzed as a sequential circuit"
    );
}

#[test]
fn analyze_accepts_verilog_input() {
    let output = run(&["analyze", &data("c17.v"), "--cycles", "100"]);
    assert!(output.status.success(), "{}", stderr(&output));
    assert!(stdout(&output).contains("`c17`"));
}

#[test]
fn delay_models_change_glitching_but_not_useful_work() {
    let unit = run(&[
        "analyze",
        &data("rca4.blif"),
        "--cycles",
        "300",
        "--delay",
        "unit",
    ]);
    let zero = run(&[
        "analyze",
        &data("rca4.blif"),
        "--cycles",
        "300",
        "--delay",
        "zero",
    ]);
    assert!(unit.status.success() && zero.status.success());
    let useful = |text: &str| -> u64 {
        // "total 1287 (useful 843 / useless 444), ..."
        let at = text.find("useful ").expect("activity line") + "useful ".len();
        text[at..]
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    assert_eq!(useful(&stdout(&unit)), useful(&stdout(&zero)));
    assert!(
        stdout(&zero).contains("useless 0)"),
        "zero delay cannot glitch"
    );
}

#[test]
fn parse_emits_blif_and_dot() {
    let dir = std::env::temp_dir().join("glitch_cli_test_parse");
    std::fs::create_dir_all(&dir).unwrap();
    let blif_out = dir.join("rt.blif");
    let dot_out = dir.join("rt.dot");
    let output = run(&[
        "parse",
        &data("counter4.blif"),
        "--emit-blif",
        blif_out.to_str().unwrap(),
        "--dot",
        dot_out.to_str().unwrap(),
    ]);
    assert!(output.status.success(), "{}", stderr(&output));
    assert!(stdout(&output).contains("4 flipflops"));
    let emitted = std::fs::read_to_string(&blif_out).unwrap();
    assert!(emitted.contains(".latch"));
    let dot = std::fs::read_to_string(&dot_out).unwrap();
    assert!(dot.starts_with("digraph"));

    // The emitted file must itself be accepted.
    let reparse = run(&["parse", blif_out.to_str().unwrap()]);
    assert!(reparse.status.success(), "{}", stderr(&reparse));
    assert!(stdout(&reparse).contains("4 flipflops"));
}

#[test]
fn simulate_writes_a_vcd() {
    let dir = std::env::temp_dir().join("glitch_cli_test_vcd");
    std::fs::create_dir_all(&dir).unwrap();
    let vcd_out: PathBuf = dir.join("c17.vcd");
    let output = run(&[
        "simulate",
        &data("c17.blif"),
        "--cycles",
        "20",
        "--vcd",
        vcd_out.to_str().unwrap(),
    ]);
    assert!(output.status.success(), "{}", stderr(&output));
    let vcd = std::fs::read_to_string(&vcd_out).unwrap();
    assert!(vcd.contains("$timescale"));
    assert!(vcd.contains("$enddefinitions"));
}

#[test]
fn analyze_produces_every_artefact_from_one_simulation_pass() {
    // The acceptance bar of the session redesign: `analyze --vcd --csv`
    // (plus the per-transition CSV) costs exactly one simulation pass.
    let dir = std::env::temp_dir().join("glitch_cli_test_one_pass");
    std::fs::create_dir_all(&dir).unwrap();
    let vcd_out = dir.join("out.vcd");
    let csv_out = dir.join("out.csv");
    let wave_out = dir.join("wave.csv");
    let output = run(&[
        "analyze",
        &data("c17.blif"),
        "--cycles",
        "200",
        "--vcd",
        vcd_out.to_str().unwrap(),
        "--csv",
        csv_out.to_str().unwrap(),
        "--wave-csv",
        wave_out.to_str().unwrap(),
    ]);
    assert!(output.status.success(), "{}", stderr(&output));
    let text = stdout(&output);
    assert!(
        text.contains("one simulation pass: 200 cycles"),
        "missing one-pass marker: {text}"
    );
    let vcd = std::fs::read_to_string(&vcd_out).unwrap();
    assert!(vcd.contains("$enddefinitions"));
    let csv = std::fs::read_to_string(&csv_out).unwrap();
    assert!(csv.lines().count() > 1, "activity CSV has rows");
    let wave = std::fs::read_to_string(&wave_out).unwrap();
    assert!(wave.starts_with("cycle,time,net,value,kind"));
    assert!(wave.lines().count() > 1, "wave CSV has rows");
}

#[test]
fn analyze_json_emits_a_machine_readable_report() {
    let output = run(&["analyze", &data("c17.blif"), "--cycles", "150", "--json"]);
    assert!(output.status.success(), "{}", stderr(&output));
    let text = stdout(&output);
    let json = text.trim();
    assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
    assert!(json.contains("\"netlist\":\"c17\""), "{json}");
    assert!(json.contains("\"cycles\":150"), "{json}");
    assert!(json.contains("\"passes\":1"), "{json}");
    assert!(json.contains("\"activity\":{"), "{json}");
    assert!(json.contains("\"power\":{"), "{json}");
    assert!(json.contains("\"lf_ratio\":"), "{json}");
    // JSON mode suppresses the human-readable report.
    assert!(!text.contains("transition activity"), "{text}");
}

#[test]
fn stats_json_emits_the_histogram() {
    let output = run(&["stats", &data("counter4.blif"), "--json"]);
    assert!(output.status.success(), "{}", stderr(&output));
    let json = stdout(&output);
    assert!(json.contains("\"netlist\":\"counter4\""), "{json}");
    assert!(json.contains("\"flipflops\":4"), "{json}");
    assert!(json.contains("\"cells_by_kind\":{"), "{json}");
    assert!(json.contains("\"DFF\":4"), "{json}");
}

#[test]
fn retime_reports_a_comparison_table() {
    let output = run(&[
        "retime",
        &data("rca4.blif"),
        "--ranks",
        "2",
        "--cycles",
        "200",
    ]);
    assert!(output.status.success(), "{}", stderr(&output));
    let text = stdout(&output);
    assert!(text.contains("original"));
    assert!(text.contains("retimed"));
    assert!(text.contains("register rank(s)"));
}

#[test]
fn retime_rejects_sequential_circuits() {
    let output = run(&["retime", &data("counter4.blif")]);
    assert!(!output.status.success());
    assert!(stderr(&output).contains("cannot retime"));
}

#[test]
fn parse_errors_carry_file_and_location() {
    let dir = std::env::temp_dir().join("glitch_cli_test_err");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.blif");
    std::fs::write(
        &bad,
        ".model t\n.inputs a\n.outputs y\n.subckt nope a=a y=y\n.end\n",
    )
    .unwrap();
    let output = run(&["parse", bad.to_str().unwrap()]);
    assert!(!output.status.success());
    let err = stderr(&output);
    assert!(err.contains("bad.blif"), "{err}");
    assert!(err.contains("line 4"), "{err}");
    assert!(err.contains("unknown cell `nope`"), "{err}");
}

#[test]
fn usage_errors_print_usage() {
    let output = run(&["frobnicate"]);
    assert_eq!(output.status.code(), Some(2));
    assert!(stderr(&output).contains("usage: glitch-cli"));

    let help = run(&["help"]);
    assert!(help.status.success());
    assert!(stdout(&help).contains("analyze"));
}

#[test]
fn power_command_reports_the_three_components() {
    let output = run(&[
        "power",
        &data("counter4.blif"),
        "--cycles",
        "100",
        "--tech",
        "65nm",
    ]);
    assert!(output.status.success(), "{}", stderr(&output));
    let text = stdout(&output);
    assert!(text.contains("logic"));
    assert!(text.contains("flipflop"));
    assert!(text.contains("clock"));
}

#[test]
fn multi_seed_analyze_aggregate_is_independent_of_the_worker_count() {
    // `--seeds N --jobs J`: the aggregate (text and JSON) must be
    // bit-identical for J = 1 and J = 4 — parallelism must never change
    // results.
    let base = [
        "analyze",
        &data("counter4.blif"),
        "--cycles",
        "150",
        "--seeds",
        "4",
    ];
    let mut serial_args: Vec<&str> = base.to_vec();
    serial_args.extend(["--jobs", "1", "--json"]);
    let mut parallel_args: Vec<&str> = base.to_vec();
    parallel_args.extend(["--jobs", "4", "--json"]);
    let serial = run(&serial_args);
    let parallel = run(&parallel_args);
    assert!(serial.status.success(), "{}", stderr(&serial));
    assert!(parallel.status.success(), "{}", stderr(&parallel));
    // Everything except the echoed worker count must match bit for bit.
    assert_eq!(
        stdout(&serial).replace("\"jobs\":1,", "\"jobs\":-,"),
        stdout(&parallel).replace("\"jobs\":4,", "\"jobs\":-,")
    );
    let json = stdout(&parallel);
    assert!(json.contains("\"seeds\":4"), "{json}");
    assert!(json.contains("\"total_cycles\":600"), "{json}");
    assert!(json.contains("\"spread\""), "{json}");
    assert!(json.contains("\"per_seed\":["), "{json}");

    // The human-readable form reports the per-seed spread.
    let text_run = run(&[
        "analyze",
        &data("counter4.blif"),
        "--cycles",
        "150",
        "--seeds",
        "4",
        "--jobs",
        "2",
    ]);
    assert!(text_run.status.success(), "{}", stderr(&text_run));
    let text = stdout(&text_run);
    assert!(
        text.contains("parallel sweep: 4 seeds x 150 cycles"),
        "{text}"
    );
    assert!(text.contains("per-seed spread"), "{text}");
    assert!(
        text.contains("aggregate over the combined activity"),
        "{text}"
    );
}

#[test]
fn windowed_activity_csv_covers_the_run() {
    let dir = std::env::temp_dir().join("glitch-cli-window-test");
    std::fs::create_dir_all(&dir).unwrap();
    let csv_path = dir.join("windows.csv");
    let output = run(&[
        "analyze",
        &data("counter4.blif"),
        "--cycles",
        "100",
        "--window",
        "20",
        "--window-csv",
        csv_path.to_str().unwrap(),
    ]);
    assert!(output.status.success(), "{}", stderr(&output));
    assert!(stdout(&output).contains("windowed activity: 5 windows of 20 cycles"));
    let csv = std::fs::read_to_string(&csv_path).unwrap();
    assert!(csv.starts_with("window,start_cycle,cycles,transitions,useful,useless,glitches"));
    assert_eq!(csv.lines().count(), 1 + 5, "{csv}");
    // The windows jointly cover all 100 cycles.
    let total_cycles: u64 = csv
        .lines()
        .skip(1)
        .map(|l| l.split(',').nth(2).unwrap().parse::<u64>().unwrap())
        .sum();
    assert_eq!(total_cycles, 100);

    // Window flags compose with the multi-seed path (merged heatmap).
    let merged = run(&[
        "analyze",
        &data("counter4.blif"),
        "--cycles",
        "100",
        "--seeds",
        "3",
        "--jobs",
        "2",
        "--window",
        "20",
        "--window-csv",
        csv_path.to_str().unwrap(),
    ]);
    assert!(merged.status.success(), "{}", stderr(&merged));
    let csv = std::fs::read_to_string(&csv_path).unwrap();
    let total_cycles: u64 = csv
        .lines()
        .skip(1)
        .map(|l| l.split(',').nth(2).unwrap().parse::<u64>().unwrap())
        .sum();
    assert_eq!(total_cycles, 300, "3 seeds x 100 cycles merged");
}

#[test]
fn sweep_compares_delay_models_on_identical_seeds() {
    let output = run(&[
        "sweep",
        &data("rca4.blif"),
        "--cycles",
        "100",
        "--seeds",
        "2",
        "--jobs",
        "2",
    ]);
    assert!(output.status.success(), "{}", stderr(&output));
    let text = stdout(&output);
    assert!(text.contains("delay-model sweep"), "{text}");
    for model in ["unit", "zero", "adder"] {
        assert!(text.contains(model), "{text}");
    }
    // The zero-delay row is the glitch-free reference.
    let zero_row = text
        .lines()
        .find(|l| l.trim_start().starts_with("zero"))
        .expect("zero-delay row");
    assert!(zero_row.contains("0.0 +/- 0.0"), "{zero_row}");

    let json_run = run(&[
        "sweep",
        &data("rca4.blif"),
        "--cycles",
        "100",
        "--seeds",
        "2",
        "--delays",
        "unit,zero",
        "--json",
    ]);
    assert!(json_run.status.success(), "{}", stderr(&json_run));
    let json = stdout(&json_run);
    assert!(json.contains("\"points\":["), "{json}");
    assert!(json.contains("\"delay\":\"unit\""), "{json}");
    assert!(json.contains("\"glitch_spread\""), "{json}");
}

#[test]
fn multi_seed_power_reports_the_spread() {
    let output = run(&[
        "power",
        &data("counter4.blif"),
        "--cycles",
        "100",
        "--seeds",
        "3",
        "--jobs",
        "2",
    ]);
    assert!(output.status.success(), "{}", stderr(&output));
    let text = stdout(&output);
    assert!(text.contains("aggregate of 3 seeds"), "{text}");
    assert!(text.contains("per-seed total power"), "{text}");
    assert!(text.contains("300 cycles of activity"), "{text}");
}

#[test]
fn analyze_flip_runs_the_incremental_fast_path() {
    let output = run(&[
        "analyze",
        &data("rca4.blif"),
        "--cycles",
        "200",
        "--flip",
        "50:a1,120:b2=1",
    ]);
    assert!(output.status.success(), "{}", stderr(&output));
    let text = stdout(&output);
    assert!(
        text.contains("incremental re-simulation: re-evaluated"),
        "{text}"
    );
    assert!(text.contains("% of cells"), "{text}");
    assert!(text.contains("replayed"), "{text}");
    assert!(text.contains("baseline"), "{text}");
    assert!(text.contains("flipped"), "{text}");
    // A sparse flip must replay the overwhelming majority of the run.
    let replayed: u64 = text
        .split("replayed ")
        .nth(1)
        .and_then(|t| t.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .expect("replayed count in output");
    assert!(replayed >= 190, "expected >=190 replayed cycles: {text}");

    let json_run = run(&[
        "analyze",
        &data("rca4.blif"),
        "--cycles",
        "150",
        "--flip",
        "30:cin",
        "--json",
    ]);
    assert!(json_run.status.success(), "{}", stderr(&json_run));
    let json = stdout(&json_run);
    assert!(
        json.contains("\"flips\":[{\"net\":\"cin\",\"cycle\":30"),
        "{json}"
    );
    assert!(
        json.contains("\"incremental\":{\"replayed_cycles\":"),
        "{json}"
    );
    assert!(json.contains("\"baseline\":{\"activity\""), "{json}");
    assert!(json.contains("\"delta\":{\"activity\""), "{json}");
}

#[test]
fn analyze_flip_rejects_bad_specs() {
    let bad_net = run(&["analyze", &data("rca4.blif"), "--flip", "10:nope"]);
    assert!(!bad_net.status.success());
    assert!(stderr(&bad_net).contains("no net named `nope`"));

    let not_input = run(&["analyze", &data("rca4.blif"), "--flip", "10:s0"]);
    assert_eq!(not_input.status.code(), Some(2));
    assert!(stderr(&not_input).contains("not a primary input"));

    let bad_cycle = run(&[
        "analyze",
        &data("rca4.blif"),
        "--cycles",
        "50",
        "--flip",
        "50:a1",
    ]);
    assert_eq!(bad_cycle.status.code(), Some(2));
    assert!(stderr(&bad_cycle).contains("beyond the 50-cycle run"));

    let with_seeds = run(&[
        "analyze",
        &data("rca4.blif"),
        "--flip",
        "1:a1",
        "--seeds",
        "2",
    ]);
    assert_eq!(with_seeds.status.code(), Some(2));
    assert!(stderr(&with_seeds).contains("--flip applies to single-seed runs"));
}

#[test]
fn sweep_flip_inputs_reports_sensitivity_per_input() {
    let output = run(&[
        "sweep",
        &data("rca4.blif"),
        "--cycles",
        "150",
        "--flip-inputs",
        "all",
        "--flip-cycle",
        "40",
        "--jobs",
        "2",
    ]);
    assert!(output.status.success(), "{}", stderr(&output));
    let text = stdout(&output);
    assert!(text.contains("input-flip sensitivity sweep"), "{text}");
    assert!(
        text.contains("incremental re-simulation: re-evaluated"),
        "{text}"
    );
    assert!(text.contains("one shared baseline"), "{text}");
    // One row per primary input of rca4.
    for input in ["a0", "b3", "cin"] {
        assert!(text.contains(input), "missing row for {input}: {text}");
    }

    // Worker count must not change the rows.
    let serial = run(&[
        "sweep",
        &data("rca4.blif"),
        "--cycles",
        "150",
        "--flip-inputs",
        "all",
        "--flip-cycle",
        "40",
        "--jobs",
        "1",
        "--json",
    ]);
    let parallel = run(&[
        "sweep",
        &data("rca4.blif"),
        "--cycles",
        "150",
        "--flip-inputs",
        "all",
        "--flip-cycle",
        "40",
        "--jobs",
        "3",
        "--json",
    ]);
    assert!(serial.status.success() && parallel.status.success());
    assert_eq!(
        stdout(&serial).replace("\"jobs\":1,", "\"jobs\":-,"),
        stdout(&parallel).replace("\"jobs\":3,", "\"jobs\":-,")
    );
    let json = stdout(&parallel);
    assert!(json.contains("\"points\":[{\"input\":\"a0\""), "{json}");
    assert!(json.contains("\"evaluated_fraction\":"), "{json}");

    let with_delays = run(&[
        "sweep",
        &data("rca4.blif"),
        "--flip-inputs",
        "all",
        "--delays",
        "unit,zero",
    ]);
    assert_eq!(with_delays.status.code(), Some(2));
    assert!(stderr(&with_delays).contains("does not combine"));
}

#[test]
fn per_seed_artefact_flags_reject_multi_seed_runs() {
    let output = run(&[
        "analyze",
        &data("c17.blif"),
        "--seeds",
        "2",
        "--vcd",
        "/tmp/never-written.vcd",
    ]);
    assert_eq!(output.status.code(), Some(2));
    assert!(stderr(&output).contains("--vcd applies to single-seed runs"));

    let bad_window = run(&[
        "analyze",
        &data("c17.blif"),
        "--window-csv",
        "/tmp/never-written.csv",
    ]);
    assert_eq!(bad_window.status.code(), Some(2));
    assert!(stderr(&bad_window).contains("--window-csv requires --window"));
}

// ------------------------------------------------------------------ check

#[test]
fn check_detects_the_seeded_x_propagation_bug() {
    // The seeded bug: an uninitialised latch in an XOR feedback loop —
    // its X reaches output `y` and never clears.
    let bug = run(&[
        "check",
        &data("xinit_bug.blif"),
        "--x-init",
        "--cycles",
        "60",
    ]);
    assert!(bug.status.success(), "{}", stderr(&bug));
    let text = stdout(&bug);
    assert!(text.contains("x-propagation"), "{text}");
    assert!(text.contains("verdict: FAIL"), "{text}");
    assert!(text.contains("`y`: first X at cycle end 0"), "{text}");

    // The well-initialised reference passes: explicit latch inits clear
    // the unknown region within the first cycle.
    let ok = run(&[
        "check",
        &data("xinit_ok.blif"),
        "--x-init",
        "--cycles",
        "60",
    ]);
    assert!(ok.status.success(), "{}", stderr(&ok));
    let text = stdout(&ok);
    assert!(text.contains("verdict: PASS"), "{text}");
    assert!(text.contains("X cleared within the first cycle"), "{text}");

    // --strict turns the failing verdict into a nonzero exit.
    let strict = run(&[
        "check",
        &data("xinit_bug.blif"),
        "--x-init",
        "--cycles",
        "60",
        "--strict",
    ]);
    assert_eq!(strict.status.code(), Some(1));
    assert!(stderr(&strict).contains("verification verdict: FAIL"));
    let strict_ok = run(&[
        "check",
        &data("xinit_ok.blif"),
        "--x-init",
        "--cycles",
        "60",
        "--strict",
    ]);
    assert!(strict_ok.status.success());
}

#[test]
fn check_detects_the_seeded_settle_budget_violation() {
    // The 4-bit multiplier's sum outputs settle as late as t=8 under unit
    // delay; a 4-unit output budget is the seeded violation.
    let output = run(&[
        "check",
        &data("mult4.blif"),
        "--budget",
        "outputs=4",
        "--cycles",
        "60",
    ]);
    assert!(output.status.success(), "{}", stderr(&output));
    let text = stdout(&output);
    assert!(text.contains("settle-budget"), "{text}");
    assert!(text.contains("verdict: FAIL"), "{text}");
    assert!(text.contains("budget 4"), "{text}");

    // `*=cycle` (the combinational depth) is met by construction.
    let relaxed = run(&[
        "check",
        &data("mult4.blif"),
        "--budget",
        "*=cycle",
        "--cycles",
        "60",
    ]);
    assert!(relaxed.status.success());
    assert!(
        stdout(&relaxed).contains("verdict: PASS"),
        "{}",
        stdout(&relaxed)
    );

    // Budget files load, and bad specs are rejected with locations.
    let from_file = run(&[
        "check",
        &data("rca4.blif"),
        "--budgets",
        &data("budgets.toml"),
        "--cycles",
        "40",
    ]);
    assert!(from_file.status.success(), "{}", stderr(&from_file));
    assert!(stdout(&from_file).contains("settle-budget"));
    let bad = run(&["check", &data("rca4.blif"), "--budget", "cout=abc"]);
    assert_eq!(bad.status.code(), Some(2));
    assert!(stderr(&bad).contains("budget entries"), "{}", stderr(&bad));
    let unknown = run(&["check", &data("rca4.blif"), "--budget", "ghost=3"]);
    assert!(!unknown.status.success());
    assert!(stderr(&unknown).contains("ghost"), "{}", stderr(&unknown));
}

#[test]
fn check_verdicts_are_bit_identical_at_any_jobs_count() {
    let run_jobs = |jobs: &str| {
        let output = run(&[
            "check",
            &data("counter4.blif"),
            "--x-init",
            "--hazards",
            "--budget",
            "*=cycle",
            "--cycles",
            "80",
            "--seeds",
            "4",
            "--jobs",
            jobs,
            "--json",
        ]);
        assert!(output.status.success(), "{}", stderr(&output));
        stdout(&output)
    };
    let serial = run_jobs("1");
    // counter4's latches carry init digit 2 (don't care): under x-init the
    // state is genuinely uninitialised and the verdict must say so.
    assert!(serial.contains("\"verdict\":\"fail\""), "{serial}");
    assert!(serial.contains("\"name\":\"x-propagation\""), "{serial}");
    for jobs in ["2", "8"] {
        let parallel = run_jobs(jobs);
        // Bit-identical stdout apart from the jobs count itself.
        let normalize = |s: &str| {
            s.replace(&format!("\"jobs\":{jobs},"), "\"jobs\":N,")
                .replace("\"jobs\":1,", "\"jobs\":N,")
        };
        assert_eq!(normalize(&parallel), normalize(&serial), "jobs={jobs}");
    }
}

#[test]
fn check_stability_assertions_flag_watched_cycles() {
    let output = run(&[
        "check",
        &data("counter4.blif"),
        "--stable",
        "q3@0..2",
        "--cycles",
        "40",
    ]);
    assert!(output.status.success(), "{}", stderr(&output));
    let text = stdout(&output);
    // q3 cannot toggle before cycle 8 (it is the high counter bit), so the
    // assertion over cycles 0..=2 holds.
    assert!(text.contains("stability"), "{text}");
    assert!(text.contains("verdict: PASS"), "{text}");

    // q0 toggles constantly whenever en is high: watching all cycles fails.
    let failing = run(&[
        "check",
        &data("counter4.blif"),
        "--stable",
        "q0",
        "--cycles",
        "40",
    ]);
    assert!(failing.status.success());
    assert!(
        stdout(&failing).contains("verdict: FAIL"),
        "{}",
        stdout(&failing)
    );

    let bad = run(&["check", &data("counter4.blif"), "--stable", "q0@5"]);
    assert_eq!(bad.status.code(), Some(2));
    assert!(stderr(&bad).contains("net@from..to"), "{}", stderr(&bad));

    // An inverted range would be a vacuous always-pass assertion; reject
    // it at parse time.
    let inverted = run(&["check", &data("counter4.blif"), "--stable", "q0@10..2"]);
    assert_eq!(inverted.status.code(), Some(2));
    assert!(
        stderr(&inverted).contains("empty cycle range 10..2"),
        "{}",
        stderr(&inverted)
    );
}

#[test]
fn check_flip_reports_both_verdicts_and_replays_no_op_flips() {
    // Flip `en` to the value it already has in cycle 10 (the stimulus
    // seed drives it deterministically): the merged stimulus is identical,
    // every cycle replays, and the flipped verdict equals the baseline's.
    let json_run = run(&[
        "check",
        &data("xinit_bug.blif"),
        "--x-init",
        "--cycles",
        "40",
        "--flip",
        "10:en",
        "--json",
    ]);
    assert!(json_run.status.success(), "{}", stderr(&json_run));
    let json = stdout(&json_run);
    assert!(
        json.contains("\"baseline\":{\"verdict\":\"fail\""),
        "{json}"
    );
    assert!(json.contains("\"flipped\":{\"verdict\":\"fail\""), "{json}");
    assert!(
        json.contains("\"incremental\":{\"replayed_cycles\":"),
        "{json}"
    );

    let text_run = run(&[
        "check",
        &data("xinit_ok.blif"),
        "--x-init",
        "--cycles",
        "40",
        "--flip",
        "10:en",
    ]);
    assert!(text_run.status.success(), "{}", stderr(&text_run));
    let text = stdout(&text_run);
    assert!(text.contains("baseline verdict: PASS"), "{text}");
    assert!(text.contains("flipped verdict:  PASS"), "{text}");
    assert!(text.contains("incremental re-simulation"), "{text}");

    // Duplicate cycle:net pairs in the flip list are rejected, located.
    let dup = run(&[
        "check",
        &data("xinit_ok.blif"),
        "--cycles",
        "40",
        "--flip",
        "10:en,10:en=1",
    ]);
    assert_eq!(dup.status.code(), Some(2));
    assert!(
        stderr(&dup).contains("duplicate override for `en` in cycle 10"),
        "{}",
        stderr(&dup)
    );
}

#[test]
fn analyze_flip_rejects_duplicate_flips_with_location() {
    let dup = run(&[
        "analyze",
        &data("rca4.blif"),
        "--cycles",
        "100",
        "--flip",
        "40:a1,40:a1=0",
    ]);
    assert_eq!(dup.status.code(), Some(2));
    let err = stderr(&dup);
    assert!(
        err.contains("duplicate override for `a1` in cycle 40"),
        "{err}"
    );
    // Same net in different cycles — or different nets in the same cycle —
    // stay legal.
    let ok = run(&[
        "analyze",
        &data("rca4.blif"),
        "--cycles",
        "100",
        "--flip",
        "40:a1,41:a1,40:b1",
    ]);
    assert!(ok.status.success(), "{}", stderr(&ok));
}

#[test]
fn analyze_flip_baseline_file_skips_the_recording_pass() {
    let dir = std::env::temp_dir().join(format!("glitch_cli_baseline_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("rca4.baseline");
    let file = file.to_str().unwrap();

    let first = run(&[
        "analyze",
        &data("rca4.blif"),
        "--cycles",
        "120",
        "--flip",
        "30:a1",
        "--baseline",
        file,
    ]);
    assert!(first.status.success(), "{}", stderr(&first));
    assert!(
        stdout(&first).contains("wrote baseline to"),
        "{}",
        stdout(&first)
    );

    let second = run(&[
        "analyze",
        &data("rca4.blif"),
        "--cycles",
        "120",
        "--flip",
        "30:a1",
        "--baseline",
        file,
    ]);
    assert!(second.status.success(), "{}", stderr(&second));
    let second_text = stdout(&second);
    assert!(
        second_text.contains("loaded baseline from"),
        "{second_text}"
    );

    // Apart from the wrote/loaded note the two runs are identical — the
    // loaded baseline replays bit-identically.
    let strip_note = |s: &str| {
        s.lines()
            .filter(|l| !l.contains("baseline to") && !l.contains("baseline from"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip_note(&stdout(&first)), strip_note(&second_text));

    // Mismatched parameters are caught before any simulation.
    let wrong_cycles = run(&[
        "analyze",
        &data("rca4.blif"),
        "--cycles",
        "80",
        "--flip",
        "30:a1",
        "--baseline",
        file,
    ]);
    assert!(!wrong_cycles.status.success());
    assert!(
        stderr(&wrong_cycles).contains("records 120 cycles but --cycles is 80"),
        "{}",
        stderr(&wrong_cycles)
    );
    let wrong_delay = run(&[
        "analyze",
        &data("rca4.blif"),
        "--cycles",
        "120",
        "--delay",
        "zero",
        "--flip",
        "30:a1",
        "--baseline",
        file,
    ]);
    assert!(!wrong_delay.status.success());
    assert!(
        stderr(&wrong_delay).contains("different delay model"),
        "{}",
        stderr(&wrong_delay)
    );
    // The seed is not stored in the file; the regenerated-stimulus
    // comparison must still catch a mismatch.
    let wrong_seed = run(&[
        "analyze",
        &data("rca4.blif"),
        "--cycles",
        "120",
        "--seed",
        "12345",
        "--flip",
        "30:a1",
        "--baseline",
        file,
    ]);
    assert!(!wrong_seed.status.success());
    assert!(
        stderr(&wrong_seed).contains("--seed mismatch"),
        "{}",
        stderr(&wrong_seed)
    );
    let wrong_netlist = run(&[
        "analyze",
        &data("counter4.blif"),
        "--cycles",
        "120",
        "--flip",
        "10:en",
        "--baseline",
        file,
    ]);
    assert!(!wrong_netlist.status.success());
    assert!(
        stderr(&wrong_netlist).contains("was recorded on `rca4`"),
        "{}",
        stderr(&wrong_netlist)
    );

    // --baseline without --flip is a usage error.
    let no_flip = run(&[
        "analyze",
        &data("rca4.blif"),
        "--cycles",
        "120",
        "--baseline",
        file,
    ]);
    assert_eq!(no_flip.status.code(), Some(2));
    assert!(
        stderr(&no_flip).contains("add --flip"),
        "{}",
        stderr(&no_flip)
    );

    std::fs::remove_dir_all(&dir).ok();
}
