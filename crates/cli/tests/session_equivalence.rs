//! Probe-equivalence suite: a single multi-probe session must reproduce
//! the seed's two-pass results **bit-for-bit** on the bundled corpus —
//! activity totals, the per-node glitch histogram, power joules and the
//! VCD transition count — while simulating exactly once (asserted via a
//! cycle-counting probe).

use std::fs;
use std::path::PathBuf;

use glitch_core::activity::ActivityReport;
use glitch_core::netlist::{Bus, Netlist};
use glitch_core::power::Technology;
use glitch_core::sim::{
    ActivityProbe, CycleStats, PowerProbe, Probe, RandomStimulus, SimSession, VcdProbe,
    WaveCsvProbe,
};
use glitch_core::{AnalysisConfig, GlitchAnalyzer};
use glitch_io::{parse_netlist, Format, GateLibrary};

const CYCLES: u64 = 120;
const SEED: u64 = 0xDA7E_1995;

/// Counts lifecycle hooks; the "exactly one simulation pass" witness.
#[derive(Debug, Default)]
struct PassCounter {
    run_starts: u64,
    run_ends: u64,
    cycle_starts: u64,
    cycle_ends: u64,
}

impl Probe for PassCounter {
    fn on_run_start(&mut self, _netlist: &Netlist) {
        self.run_starts += 1;
    }
    fn on_cycle_start(&mut self, _cycle: u64) {
        self.cycle_starts += 1;
    }
    fn on_cycle_end(&mut self, _cycle: u64, _stats: &CycleStats) {
        self.cycle_ends += 1;
    }
    fn on_run_end(&mut self, _netlist: &Netlist) {
        self.run_ends += 1;
    }
}

fn corpus() -> Vec<(String, Netlist)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/data");
    let library = GateLibrary::standard();
    let mut circuits = Vec::new();
    let mut entries: Vec<_> = fs::read_dir(&dir)
        .expect("tests/data exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "blif"))
        .collect();
    entries.sort();
    for path in entries {
        let text = fs::read_to_string(&path).expect("corpus file reads");
        let netlist = parse_netlist(&text, Format::Blif, &library).expect("corpus file parses");
        circuits.push((
            path.file_name().unwrap().to_string_lossy().into_owned(),
            netlist,
        ));
    }
    assert!(circuits.len() >= 4, "corpus should have several circuits");
    circuits
}

fn input_buses(netlist: &Netlist) -> Vec<Bus> {
    netlist
        .inputs()
        .chunks(32)
        .map(|chunk| Bus::new(chunk.to_vec()))
        .collect()
}

fn stimulus(netlist: &Netlist) -> RandomStimulus {
    RandomStimulus::new(input_buses(netlist), CYCLES, SEED)
}

#[test]
fn multi_probe_session_matches_single_probe_sessions_bit_for_bit() {
    let tech = Technology::cmos_0p8um_5v();
    for (name, netlist) in corpus() {
        // The new way: every observable from ONE pass.
        let multi = SimSession::new(&netlist)
            .stimulus(stimulus(&netlist))
            .probe(ActivityProbe::new())
            .probe(PowerProbe::new(tech, 5e6))
            .probe(VcdProbe::default())
            .probe(WaveCsvProbe::new())
            .probe(PassCounter::default())
            .run()
            .expect("corpus circuits simulate");

        // The seed's way: one dedicated simulation per artefact.
        let activity_pass = SimSession::new(&netlist)
            .stimulus(stimulus(&netlist))
            .probe(ActivityProbe::new())
            .run()
            .unwrap();
        let power_pass = SimSession::new(&netlist)
            .stimulus(stimulus(&netlist))
            .probe(PowerProbe::new(tech, 5e6))
            .run()
            .unwrap();
        let vcd_pass = SimSession::new(&netlist)
            .stimulus(stimulus(&netlist))
            .probe(VcdProbe::default())
            .run()
            .unwrap();

        // Exactly one pass: the counter saw one run and CYCLES cycles.
        let counter = multi.probe::<PassCounter>().unwrap();
        assert_eq!(counter.run_starts, 1, "{name}: multiple run starts");
        assert_eq!(counter.run_ends, 1, "{name}: multiple run ends");
        assert_eq!(counter.cycle_starts, CYCLES, "{name}: cycle count");
        assert_eq!(counter.cycle_ends, CYCLES, "{name}: cycle count");
        assert_eq!(multi.cycles(), CYCLES);
        assert_eq!(multi.passes(), 1);

        // Activity: the whole per-node trace (and therefore every per-node
        // useful/useless histogram bucket) is identical.
        let multi_trace = multi.probe::<ActivityProbe>().unwrap().trace();
        let solo_trace = activity_pass.probe::<ActivityProbe>().unwrap().trace();
        assert_eq!(multi_trace, solo_trace, "{name}: traces differ");
        let multi_report = ActivityReport::from_trace(&netlist, multi_trace);
        let solo_report = ActivityReport::from_trace(&netlist, solo_trace);
        assert_eq!(multi_report.totals(), solo_report.totals(), "{name}");
        // Glitch histogram per node.
        for i in 0..netlist.net_count() {
            assert_eq!(
                multi_trace.node(i).glitches(),
                solo_trace.node(i).glitches(),
                "{name}: glitch histogram differs at node {i}"
            );
        }

        // Power: the report (logic/flipflop/clock watts, switched
        // capacitance) is bit-for-bit equal, f64 equality included.
        let multi_power = multi.probe::<PowerProbe>().unwrap().report().unwrap();
        let solo_power = power_pass.probe::<PowerProbe>().unwrap().report().unwrap();
        assert_eq!(multi_power, solo_power, "{name}: power reports differ");

        // VCD: identical transition count and identical rendered text.
        let multi_vcd = multi.probe::<VcdProbe>().unwrap();
        let solo_vcd = vcd_pass.probe::<VcdProbe>().unwrap();
        assert_eq!(
            multi_vcd.change_count(),
            solo_vcd.change_count(),
            "{name}: VCD transition counts differ"
        );
        assert_eq!(multi_vcd.vcd(), solo_vcd.vcd(), "{name}: VCD text differs");

        // The wave CSV saw the same transitions as the VCD recorder.
        assert_eq!(
            multi.probe::<WaveCsvProbe>().unwrap().row_count(),
            multi_vcd.change_count(),
            "{name}: wave CSV rows != VCD changes"
        );
    }
}

#[test]
fn analyzer_session_with_extra_probes_matches_plain_analyze() {
    // Attaching artefact probes to the analyzer's session must not perturb
    // the analysis itself: `analyze --vcd --csv` equals plain `analyze`.
    let (name, netlist) = corpus()
        .into_iter()
        .find(|(n, _)| n == "c17.blif")
        .expect("c17.blif is in the corpus");
    let config = AnalysisConfig {
        cycles: 200,
        ..AnalysisConfig::default()
    };
    let analyzer = GlitchAnalyzer::new(config);
    let buses = input_buses(&netlist);

    let plain = analyzer.analyze(&netlist, &buses, &[]).unwrap();

    let mut report = analyzer
        .session(&netlist, &buses, &[])
        .probe(VcdProbe::default())
        .probe(WaveCsvProbe::new())
        .probe(PassCounter::default())
        .run()
        .unwrap();
    let counter = report.take_probe::<PassCounter>().unwrap();
    assert_eq!(counter.run_starts, 1, "{name}: exactly one pass");
    assert_eq!(counter.cycle_starts, 200, "{name}: exactly 200 cycles");
    let vcd = report.take_probe::<VcdProbe>().unwrap().into_vcd();
    let wave = report.take_probe::<WaveCsvProbe>().unwrap().into_csv();
    let with_probes = GlitchAnalyzer::analysis(&netlist, report);

    assert_eq!(with_probes.trace, plain.trace, "{name}: traces differ");
    assert_eq!(
        with_probes.activity.totals(),
        plain.activity.totals(),
        "{name}"
    );
    assert_eq!(with_probes.power, plain.power, "{name}: power differs");
    assert!(vcd.contains("$enddefinitions"));
    assert!(wave.starts_with("cycle,time,net,value,kind\n"));
}
