//! End-to-end tests of the `glitch-cli serve` daemon and its `client`
//! companion over the JSON-lines protocol: job responses must be
//! byte-identical to the matching one-shot `--json` runs, repeated flips
//! must hit the baseline cache, stale fingerprints must be rejected, and
//! `shutdown` must drain and exit 0.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Output, Stdio};

fn data(file: &str) -> String {
    format!("{}/../../tests/data/{file}", env!("CARGO_MANIFEST_DIR"))
}

/// A daemon spawned on an ephemeral loopback port, killed on drop if a
/// test panics before shutting it down.
struct Daemon {
    child: Child,
    port: u16,
}

impl Daemon {
    fn spawn(extra_args: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_glitch-cli"))
            .args(["serve", "--jobs", "2"])
            .args(extra_args)
            .stdout(Stdio::piped())
            .spawn()
            .expect("the daemon must spawn");
        // The ephemeral port is announced on the first stdout line.
        let stdout = child.stdout.take().expect("stdout is piped");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("the daemon must print its listening line");
        let port = line
            .trim()
            .rsplit(':')
            .next()
            .and_then(|p| p.parse().ok())
            .unwrap_or_else(|| panic!("no port in listening line {line:?}"));
        Daemon { child, port }
    }

    /// Sends request lines through the `client` subcommand and returns
    /// one response line per request.
    fn client(&self, requests: &[&str]) -> Vec<String> {
        let output = Command::new(env!("CARGO_BIN_EXE_glitch-cli"))
            .args(["client", "--port", &self.port.to_string()])
            .args(requests)
            .output()
            .expect("the client must spawn");
        assert!(
            output.status.success(),
            "client failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        let text = String::from_utf8(output.stdout).expect("responses are UTF-8");
        let lines: Vec<String> = text.lines().map(str::to_string).collect();
        assert_eq!(lines.len(), requests.len(), "one response per request");
        lines
    }

    /// Requests shutdown and waits for a clean exit.
    fn shutdown(mut self) {
        let response = self.client(&[r#"{"op":"shutdown"}"#]);
        assert_eq!(response[0], r#"{"ok":true}"#);
        let status = self.child.wait().expect("the daemon must be waitable");
        assert!(status.success(), "daemon exited with {status}");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        // Normal paths call `shutdown`; this only fires on panic.
        if self.child.try_wait().map(|s| s.is_none()).unwrap_or(false) {
            self.child.kill().ok();
            self.child.wait().ok();
        }
    }
}

fn one_shot_json(args: &[&str]) -> String {
    let output: Output = Command::new(env!("CARGO_BIN_EXE_glitch-cli"))
        .args(args)
        .output()
        .expect("the binary must spawn");
    assert!(
        output.status.success(),
        "one-shot failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout)
        .expect("reports are UTF-8")
        .trim_end()
        .to_string()
}

#[test]
fn daemon_responses_are_byte_identical_to_one_shot_json() {
    let daemon = Daemon::spawn(&[]);
    let counter = data("counter4.blif");
    let mult = data("mult4.blif");

    // (request line, equivalent one-shot invocation) pairs across every
    // job op, including a multi-seed analyze and a checker suite.
    let cases: Vec<(String, Vec<&str>)> = vec![
        (
            format!(r#"{{"op":"analyze","file":"{counter}","cycles":120}}"#),
            vec!["analyze", &counter, "--cycles", "120", "--json"],
        ),
        (
            format!(r#"{{"op":"analyze","file":"{mult}","cycles":60,"seeds":3,"jobs":2}}"#),
            vec![
                "analyze", &mult, "--cycles", "60", "--seeds", "3", "--jobs", "2", "--json",
            ],
        ),
        (
            format!(r#"{{"op":"check","file":"{mult}","cycles":80,"hazards":true}}"#),
            vec!["check", &mult, "--cycles", "80", "--hazards", "--json"],
        ),
        (
            format!(r#"{{"op":"flip","file":"{counter}","cycles":100,"flips":"3:en"}}"#),
            vec![
                "analyze", &counter, "--cycles", "100", "--flip", "3:en", "--json",
            ],
        ),
        (
            format!(r#"{{"op":"sweep","file":"{counter}","cycles":50,"delays":"unit,zero"}}"#),
            vec![
                "sweep",
                &counter,
                "--cycles",
                "50",
                "--delays",
                "unit,zero",
                "--json",
            ],
        ),
        (
            format!(
                r#"{{"op":"reduce","file":"{mult}","cycles":96,"seeds":2,"jobs":1,"max_iters":2}}"#
            ),
            vec![
                "reduce",
                &mult,
                "--cycles",
                "96",
                "--seeds",
                "2",
                "--jobs",
                "1",
                "--max-iters",
                "2",
                "--json",
            ],
        ),
    ];

    let requests: Vec<&str> = cases.iter().map(|(line, _)| line.as_str()).collect();
    let responses = daemon.client(&requests);
    for ((request, one_shot), response) in cases.iter().zip(&responses) {
        assert_eq!(
            response,
            &one_shot_json(one_shot),
            "daemon response for {request} diverges from the one-shot run"
        );
    }
    daemon.shutdown();
}

#[test]
fn repeated_flips_are_served_from_the_baseline_cache() {
    let daemon = Daemon::spawn(&[]);
    let counter = data("counter4.blif");
    let flip = format!(r#"{{"op":"flip","file":"{counter}","cycles":80,"flips":"2:en"}}"#);
    let other = format!(r#"{{"op":"flip","file":"{counter}","cycles":80,"flips":"5:en"}}"#);

    let responses = daemon.client(&[&flip, &other, &flip, r#"{"op":"metrics"}"#]);
    assert_eq!(
        responses[0], responses[2],
        "the same flip must render identically on a cache hit"
    );
    assert_ne!(responses[0], responses[1]);
    let metrics = &responses[3];
    // One baseline recording (first flip), two hits sharing it.
    assert!(
        metrics.contains(r#""cache.baseline_misses":1"#),
        "expected exactly one baseline recording in {metrics}"
    );
    assert!(
        metrics.contains(r#""cache.baseline_hits":2"#),
        "expected two baseline cache hits in {metrics}"
    );
    assert!(
        metrics.contains(r#""cache.netlist_misses":1"#),
        "expected one parsed netlist shared by all flips in {metrics}"
    );
    daemon.shutdown();
}

#[test]
fn stale_fingerprints_and_protocol_errors_are_rejected() {
    let daemon = Daemon::spawn(&[]);
    let counter = data("counter4.blif");

    let stale = format!(
        r#"{{"op":"analyze","file":"{counter}","cycles":40,"fingerprint":"0000000000000001"}}"#
    );
    let responses = daemon.client(&[&stale, r#"{"op":"explode"}"#, r#"{"op":"ping"}"#]);
    assert!(
        responses[0].starts_with(r#"{"error":"stale fingerprint"#),
        "expected a stale-fingerprint rejection, got {}",
        responses[0]
    );
    assert!(responses[1].starts_with(r#"{"error":"unknown op"#));
    assert!(responses[2].contains(r#""ok":true"#));
    daemon.shutdown();
}

#[test]
fn shutdown_drains_in_flight_jobs_and_flushes_the_trace() {
    let trace = std::env::temp_dir().join(format!("glitch-serve-test-{}.json", std::process::id()));
    let trace_path = trace.to_str().expect("temp path is UTF-8").to_string();
    let daemon = Daemon::spawn(&["--trace-out", &trace_path]);
    let counter = data("counter4.blif");

    // The job and the shutdown ride the same connection: the daemon must
    // answer the job before acknowledging the shutdown.
    let responses = daemon.client(&[
        &format!(r#"{{"op":"analyze","file":"{counter}","cycles":200}}"#),
        r#"{"op":"shutdown"}"#,
    ]);
    assert!(responses[0].starts_with(r#"{"file":"#));
    assert_eq!(responses[1], r#"{"ok":true}"#);

    let mut daemon = daemon;
    let status = daemon.child.wait().expect("the daemon must be waitable");
    assert!(status.success(), "daemon exited with {status}");

    let trace_text =
        std::fs::read_to_string(&trace).expect("the trace must be flushed at shutdown");
    assert!(trace_text.trim_start().starts_with('['));
    assert!(
        trace_text.contains(r#""name":"worker-1""#),
        "worker tracks must be named in the trace"
    );
    assert!(
        trace_text.contains(r#""ph":"X""#) && trace_text.contains("analyze"),
        "the request span must land in the trace"
    );
    std::fs::remove_file(&trace).ok();
}
