//! End-to-end tests of the `glitch-cli serve` daemon and its `client`
//! companion over the JSON-lines protocol: job responses must be
//! byte-identical to the matching one-shot `--json` runs, repeated flips
//! must hit the baseline cache, stale fingerprints must be rejected,
//! `shutdown` must drain and exit 0, `status` must report live telemetry
//! (with deterministic counts at any worker count), the access log must
//! carry every request exactly once with monotonic ids, and a streaming
//! `reduce` must emit progress lines before a final line byte-identical
//! to the non-streaming run.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Output, Stdio};

use glitch_serve::jsonin::{parse_json, JsonValue};

fn data(file: &str) -> String {
    format!("{}/../../tests/data/{file}", env!("CARGO_MANIFEST_DIR"))
}

/// A daemon spawned on an ephemeral loopback port, killed on drop if a
/// test panics before shutting it down.
struct Daemon {
    child: Child,
    port: u16,
}

impl Daemon {
    fn spawn(extra_args: &[&str]) -> Daemon {
        Daemon::spawn_with_jobs("2", extra_args)
    }

    fn spawn_with_jobs(jobs: &str, extra_args: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_glitch-cli"))
            .args(["serve", "--jobs", jobs])
            .args(extra_args)
            .stdout(Stdio::piped())
            .spawn()
            .expect("the daemon must spawn");
        // The ephemeral port is announced on the first stdout line.
        let stdout = child.stdout.take().expect("stdout is piped");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("the daemon must print its listening line");
        let port = line
            .trim()
            .rsplit(':')
            .next()
            .and_then(|p| p.parse().ok())
            .unwrap_or_else(|| panic!("no port in listening line {line:?}"));
        Daemon { child, port }
    }

    /// Sends request lines through the `client` subcommand and returns
    /// one response line per request. The client exits nonzero exactly
    /// when a response was an error object; both outcomes are asserted.
    fn client(&self, requests: &[&str]) -> Vec<String> {
        self.client_lines(requests, requests.len())
    }

    /// Like [`Daemon::client`] for streaming requests, where interim
    /// progress lines make stdout longer than the request list.
    fn client_lines(&self, requests: &[&str], expected_lines: usize) -> Vec<String> {
        let output = Command::new(env!("CARGO_BIN_EXE_glitch-cli"))
            .args(["client", "--port", &self.port.to_string()])
            .args(requests)
            .output()
            .expect("the client must spawn");
        let text = String::from_utf8(output.stdout).expect("responses are UTF-8");
        let lines: Vec<String> = text.lines().map(str::to_string).collect();
        assert_eq!(lines.len(), expected_lines, "unexpected response count");
        let errors = lines.iter().any(|l| l.starts_with(r#"{"error""#));
        assert_eq!(
            output.status.success(),
            !errors,
            "client exit code must track error responses: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        lines
    }

    /// Requests shutdown and waits for a clean exit.
    fn shutdown(mut self) {
        let response = self.client(&[r#"{"op":"shutdown"}"#]);
        assert_eq!(response[0], r#"{"ok":true}"#);
        let status = self.child.wait().expect("the daemon must be waitable");
        assert!(status.success(), "daemon exited with {status}");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        // Normal paths call `shutdown`; this only fires on panic.
        if self.child.try_wait().map(|s| s.is_none()).unwrap_or(false) {
            self.child.kill().ok();
            self.child.wait().ok();
        }
    }
}

fn one_shot_json(args: &[&str]) -> String {
    let output: Output = Command::new(env!("CARGO_BIN_EXE_glitch-cli"))
        .args(args)
        .output()
        .expect("the binary must spawn");
    assert!(
        output.status.success(),
        "one-shot failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout)
        .expect("reports are UTF-8")
        .trim_end()
        .to_string()
}

#[test]
fn daemon_responses_are_byte_identical_to_one_shot_json() {
    let daemon = Daemon::spawn(&[]);
    let counter = data("counter4.blif");
    let mult = data("mult4.blif");

    // (request line, equivalent one-shot invocation) pairs across every
    // job op, including a multi-seed analyze and a checker suite.
    let cases: Vec<(String, Vec<&str>)> = vec![
        (
            format!(r#"{{"op":"analyze","file":"{counter}","cycles":120}}"#),
            vec!["analyze", &counter, "--cycles", "120", "--json"],
        ),
        (
            format!(r#"{{"op":"analyze","file":"{mult}","cycles":60,"seeds":3,"jobs":2}}"#),
            vec![
                "analyze", &mult, "--cycles", "60", "--seeds", "3", "--jobs", "2", "--json",
            ],
        ),
        (
            format!(r#"{{"op":"check","file":"{mult}","cycles":80,"hazards":true}}"#),
            vec!["check", &mult, "--cycles", "80", "--hazards", "--json"],
        ),
        (
            format!(r#"{{"op":"flip","file":"{counter}","cycles":100,"flips":"3:en"}}"#),
            vec![
                "analyze", &counter, "--cycles", "100", "--flip", "3:en", "--json",
            ],
        ),
        (
            format!(r#"{{"op":"sweep","file":"{counter}","cycles":50,"delays":"unit,zero"}}"#),
            vec![
                "sweep",
                &counter,
                "--cycles",
                "50",
                "--delays",
                "unit,zero",
                "--json",
            ],
        ),
        (
            format!(
                r#"{{"op":"reduce","file":"{mult}","cycles":96,"seeds":2,"jobs":1,"max_iters":2}}"#
            ),
            vec![
                "reduce",
                &mult,
                "--cycles",
                "96",
                "--seeds",
                "2",
                "--jobs",
                "1",
                "--max-iters",
                "2",
                "--json",
            ],
        ),
    ];

    let requests: Vec<&str> = cases.iter().map(|(line, _)| line.as_str()).collect();
    let responses = daemon.client(&requests);
    for ((request, one_shot), response) in cases.iter().zip(&responses) {
        assert_eq!(
            response,
            &one_shot_json(one_shot),
            "daemon response for {request} diverges from the one-shot run"
        );
    }
    daemon.shutdown();
}

#[test]
fn repeated_flips_are_served_from_the_baseline_cache() {
    let daemon = Daemon::spawn(&[]);
    let counter = data("counter4.blif");
    let flip = format!(r#"{{"op":"flip","file":"{counter}","cycles":80,"flips":"2:en"}}"#);
    let other = format!(r#"{{"op":"flip","file":"{counter}","cycles":80,"flips":"5:en"}}"#);

    let responses = daemon.client(&[&flip, &other, &flip, r#"{"op":"metrics"}"#]);
    assert_eq!(
        responses[0], responses[2],
        "the same flip must render identically on a cache hit"
    );
    assert_ne!(responses[0], responses[1]);
    let metrics = &responses[3];
    // One baseline recording (first flip), two hits sharing it.
    assert!(
        metrics.contains(r#""cache.baseline_misses":1"#),
        "expected exactly one baseline recording in {metrics}"
    );
    assert!(
        metrics.contains(r#""cache.baseline_hits":2"#),
        "expected two baseline cache hits in {metrics}"
    );
    assert!(
        metrics.contains(r#""cache.netlist_misses":1"#),
        "expected one parsed netlist shared by all flips in {metrics}"
    );
    daemon.shutdown();
}

#[test]
fn stale_fingerprints_and_protocol_errors_are_rejected() {
    let daemon = Daemon::spawn(&[]);
    let counter = data("counter4.blif");

    let stale = format!(
        r#"{{"op":"analyze","file":"{counter}","cycles":40,"fingerprint":"0000000000000001"}}"#
    );
    let responses = daemon.client(&[&stale, r#"{"op":"explode"}"#, r#"{"op":"ping"}"#]);
    assert!(
        responses[0].starts_with(r#"{"error":"stale fingerprint"#),
        "expected a stale-fingerprint rejection, got {}",
        responses[0]
    );
    assert!(responses[1].starts_with(r#"{"error":"unknown op"#));
    assert!(responses[2].contains(r#""ok":true"#));
    daemon.shutdown();
}

#[test]
fn shutdown_drains_in_flight_jobs_and_flushes_the_trace() {
    let trace = std::env::temp_dir().join(format!("glitch-serve-test-{}.json", std::process::id()));
    let trace_path = trace.to_str().expect("temp path is UTF-8").to_string();
    let daemon = Daemon::spawn(&["--trace-out", &trace_path]);
    let counter = data("counter4.blif");

    // The job and the shutdown ride the same connection: the daemon must
    // answer the job before acknowledging the shutdown.
    let responses = daemon.client(&[
        &format!(r#"{{"op":"analyze","file":"{counter}","cycles":200}}"#),
        r#"{"op":"shutdown"}"#,
    ]);
    assert!(responses[0].starts_with(r#"{"file":"#));
    assert_eq!(responses[1], r#"{"ok":true}"#);

    let mut daemon = daemon;
    let status = daemon.child.wait().expect("the daemon must be waitable");
    assert!(status.success(), "daemon exited with {status}");

    let trace_text =
        std::fs::read_to_string(&trace).expect("the trace must be flushed at shutdown");
    assert!(trace_text.trim_start().starts_with('['));
    assert!(
        trace_text.contains(r#""name":"worker-1""#),
        "worker tracks must be named in the trace"
    );
    assert!(
        trace_text.contains(r#""ph":"X""#) && trace_text.contains("analyze"),
        "the request span must land in the trace"
    );
    std::fs::remove_file(&trace).ok();
}

fn json_object(value: &JsonValue) -> &BTreeMap<String, JsonValue> {
    match value {
        JsonValue::Object(map) => map,
        other => panic!("expected an object, got {other:?}"),
    }
}

fn walk<'a>(root: &'a JsonValue, path: &[&str]) -> &'a JsonValue {
    let mut value = root;
    for key in path {
        value = json_object(value)
            .get(*key)
            .unwrap_or_else(|| panic!("missing field `{key}` in {value:?}"));
    }
    value
}

/// The byte range of the leading deterministic `counts` sub-object of a
/// `status` response (everything after it is wall-clock-dependent).
fn counts_prefix(status_line: &str) -> &str {
    let end = status_line
        .find(",\"uptime_us\"")
        .unwrap_or_else(|| panic!("no uptime_us in {status_line}"));
    &status_line[..end]
}

#[test]
fn status_reports_live_telemetry_with_deterministic_counts() {
    let counter = data("counter4.blif");
    let analyze = format!(r#"{{"op":"analyze","file":"{counter}","cycles":120}}"#);
    let mut counts = Vec::new();
    for jobs in ["1", "2", "8"] {
        let daemon = Daemon::spawn_with_jobs(jobs, &[]);
        daemon.client(&[&analyze, &analyze, r#"{"op":"ping"}"#]);

        let output = Command::new(env!("CARGO_BIN_EXE_glitch-cli"))
            .args(["status", "--port", &daemon.port.to_string(), "--json"])
            .output()
            .expect("status must spawn");
        assert!(
            output.status.success(),
            "status failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        let line = String::from_utf8(output.stdout).unwrap().trim().to_string();
        let status = parse_json(&line).expect("status is valid JSON");

        // The structural fields and the live telemetry.
        assert_eq!(
            walk(&status, &["counts", "requests", "analyze"]).as_u64(),
            Some(2)
        );
        assert_eq!(
            walk(&status, &["counts", "requests", "ping"]).as_u64(),
            Some(1)
        );
        assert_eq!(
            walk(&status, &["counts", "requests", "status"]).as_u64(),
            Some(1)
        );
        assert_eq!(walk(&status, &["queue_depth"]).as_u64(), Some(0));
        assert_eq!(walk(&status, &["workers"]).as_u64(), jobs.parse().ok());
        assert!(walk(&status, &["uptime_us"]).as_u64().unwrap() > 0);
        assert!(walk(&status, &["cache", "circuits"]).as_u64().unwrap() >= 1);
        // Nonzero handle-time percentiles over the 1-minute window.
        let handle = walk(&status, &["latency", "analyze", "handle_us", "1m"]);
        assert_eq!(walk(handle, &["count"]).as_u64(), Some(2));
        assert!(
            walk(handle, &["p50"]).as_u64().unwrap() > 0,
            "p50 in {line}"
        );
        assert!(
            walk(handle, &["p99"]).as_u64().unwrap() > 0,
            "p99 in {line}"
        );
        assert!(walk(
            &status,
            &["latency", "analyze", "queue_wait_us", "1m", "count"]
        )
        .as_u64()
        .is_some());

        // `top` renders the same telemetry as a dashboard.
        let top = Command::new(env!("CARGO_BIN_EXE_glitch-cli"))
            .args([
                "top",
                "--port",
                &daemon.port.to_string(),
                "--interval",
                "50",
                "--count",
                "2",
            ])
            .output()
            .expect("top must spawn");
        assert!(
            top.status.success(),
            "top failed: {}",
            String::from_utf8_lossy(&top.stderr)
        );
        let frames = String::from_utf8(top.stdout).unwrap();
        assert!(frames.contains("glitch-serve 127.0.0.1:"), "got: {frames}");
        assert!(frames.contains("analyze"), "got: {frames}");
        assert!(
            frames.matches("\u{1b}[H\u{1b}[2J").count() == 2,
            "two redraw frames expected: {frames:?}"
        );

        counts.push(counts_prefix(&line).to_string());
        daemon.shutdown();
    }
    assert_eq!(counts[0], counts[1], "counts must not depend on --jobs");
    assert_eq!(counts[1], counts[2], "counts must not depend on --jobs");
}

#[test]
fn the_access_log_carries_every_request_exactly_once() {
    let dir = std::env::temp_dir().join(format!("glitch-access-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("access.jsonl").to_str().unwrap().to_string();
    let trace = dir.join("trace.json").to_str().unwrap().to_string();
    let daemon = Daemon::spawn(&["--access-log", &log, "--trace-out", &trace]);
    let counter = data("counter4.blif");

    // One connection, sequential requests: ok job, error, control ops.
    daemon.client(&[
        &format!(r#"{{"op":"analyze","file":"{counter}","cycles":60}}"#),
        r#"{"op":"explode"}"#,
        r#"{"op":"ping"}"#,
        r#"{"op":"metrics"}"#,
    ]);
    daemon.shutdown();

    let text = std::fs::read_to_string(&log).expect("the access log must exist");
    let lines: Vec<&str> = text.lines().collect();
    // analyze, invalid, ping, metrics, status? no — shutdown. 5 lines.
    assert_eq!(lines.len(), 5, "one line per request: {text}");
    let mut previous_id = 0;
    for line in &lines {
        let entry = parse_json(line).unwrap_or_else(|e| panic!("unparseable line {line}: {e}"));
        let entry = json_object(&entry);
        for key in [
            "id",
            "op",
            "fingerprint",
            "cache",
            "queue_us",
            "wall_us",
            "outcome",
        ] {
            assert!(entry.contains_key(key), "missing {key} in {line}");
        }
        let id = entry["id"].as_u64().expect("id is a number");
        assert!(id > previous_id, "ids must be strictly increasing: {text}");
        previous_id = id;
    }
    let ops: Vec<String> = lines
        .iter()
        .map(|l| {
            walk(&parse_json(l).unwrap(), &["op"])
                .as_str()
                .unwrap()
                .to_string()
        })
        .collect();
    assert_eq!(ops, ["analyze", "invalid", "ping", "metrics", "shutdown"]);
    let first = parse_json(lines[0]).unwrap();
    assert_eq!(walk(&first, &["outcome"]).as_str(), Some("ok"));
    assert_eq!(walk(&first, &["cache"]).as_str(), Some("miss"));
    assert_eq!(
        walk(&first, &["fingerprint"]).as_str().map(str::len),
        Some(16)
    );
    let invalid = parse_json(lines[1]).unwrap();
    assert_eq!(walk(&invalid, &["outcome"]).as_str(), Some("error"));

    // The analyze request's id also tags its span in the Chrome trace.
    let analyze_id = walk(&first, &["id"]).as_u64().unwrap();
    let trace_text = std::fs::read_to_string(&trace).expect("trace must flush");
    assert!(
        trace_text.contains(&format!(r#""args":{{"request_id":{analyze_id}}}"#)),
        "request id {analyze_id} missing from trace: {trace_text}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn the_access_log_rotates_at_the_size_cap() {
    let dir = std::env::temp_dir().join(format!("glitch-rotate-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("access.jsonl").to_str().unwrap().to_string();
    // Each ping line is ~90 bytes; a 200-byte cap forces rotation quickly.
    let daemon = Daemon::spawn(&["--access-log", &log, "--access-log-max-bytes", "200"]);
    daemon.client(&[r#"{"op":"ping"}"#, r#"{"op":"ping"}"#, r#"{"op":"ping"}"#]);
    daemon.shutdown();

    let rotated = format!("{log}.1");
    assert!(
        std::path::Path::new(&rotated).exists(),
        "the log must rotate to {rotated}"
    );
    let mut previous_id = 0;
    for path in [&rotated, &log] {
        for line in std::fs::read_to_string(path).unwrap().lines() {
            let entry = parse_json(line).unwrap_or_else(|e| panic!("bad line {line}: {e}"));
            let id = walk(&entry, &["id"]).as_u64().expect("id is a number");
            assert!(id > previous_id, "ids must stay increasing across rotation");
            previous_id = id;
        }
    }
    assert!(
        previous_id >= 4,
        "all requests logged, got max id {previous_id}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn streamed_reduce_sends_progress_lines_before_an_identical_final_line() {
    let daemon = Daemon::spawn(&[]);
    let mult = data("mult4.blif");
    let plain = format!(
        r#"{{"op":"reduce","file":"{mult}","cycles":96,"seeds":2,"jobs":1,"max_iters":2}}"#
    );
    let streaming = format!(
        r#"{{"op":"reduce","file":"{mult}","cycles":96,"seeds":2,"jobs":1,"max_iters":2,"progress":true}}"#
    );
    let baseline = daemon.client(&[&plain])[0].clone();

    let mut interim = Vec::new();
    let mut client = glitch_serve::Client::connect(daemon.port).expect("client connects");
    let final_line = client
        .request_streaming(&streaming, |line| interim.push(line.to_string()))
        .expect("streaming reduce succeeds");
    assert!(
        !interim.is_empty(),
        "at least one progress line must precede the final response"
    );
    for line in &interim {
        let event = parse_json(line).unwrap_or_else(|e| panic!("bad progress line {line}: {e}"));
        assert_eq!(walk(&event, &["progress"]).as_str(), Some("reduce"));
        assert!(walk(&event, &["id"]).as_u64().is_some());
        assert!(walk(&event, &["iteration"]).as_u64().is_some());
        assert!(walk(&event, &["accepted"]).as_bool().is_some());
    }
    assert_eq!(
        final_line, baseline,
        "the final streamed response must be byte-identical to the plain run"
    );

    // The client subcommand prints the same stream one-shot.
    let responses = daemon.client_lines(&[&streaming], interim.len() + 1);
    assert!(responses[0].starts_with(r#"{"progress":"reduce","id":"#));
    assert_eq!(responses.last().unwrap(), &baseline);
    daemon.shutdown();
}
