//! Golden-file tests for the machine-readable CLI outputs: the exact
//! `--json` bytes of `sweep` and `analyze --window` are pinned under
//! `tests/golden/`, so neither the JSON schema nor the deterministic
//! seeded numbers can drift silently.
//!
//! The simulations are fully deterministic (fixed seeds, IEEE-754
//! arithmetic, round-tripping float formatting), so byte-for-byte
//! comparison is stable across runs and platforms.
//!
//! To regenerate after an *intentional* change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p glitch-cli --test golden_json
//! ```

use std::path::PathBuf;
use std::process::Command;

fn data(file: &str) -> String {
    format!("{}/../../tests/data/{file}", env!("CARGO_MANIFEST_DIR"))
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(format!(
        "{}/tests/golden/{name}",
        env!("CARGO_MANIFEST_DIR")
    ))
}

fn run_stdout(args: &[&str]) -> String {
    let output = Command::new(env!("CARGO_BIN_EXE_glitch-cli"))
        .args(args)
        .output()
        .expect("the binary must spawn");
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("JSON output is UTF-8")
}

fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden file; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn sweep_json_matches_golden() {
    let out = run_stdout(&[
        "sweep",
        &data("rca4.blif"),
        "--cycles",
        "120",
        "--seeds",
        "2",
        "--jobs",
        "1",
        "--delays",
        "unit,zero,adder",
        "--json",
    ]);
    assert_matches_golden("sweep_rca4.json", &out);
}

#[test]
fn sweep_flip_inputs_json_matches_golden() {
    let out = run_stdout(&[
        "sweep",
        &data("rca4.blif"),
        "--cycles",
        "120",
        "--flip-inputs",
        "all",
        "--flip-cycle",
        "60",
        "--jobs",
        "1",
        "--json",
    ]);
    assert_matches_golden("sweep_flips_rca4.json", &out);
}

#[test]
fn analyze_window_json_matches_golden() {
    let out = run_stdout(&[
        "analyze",
        &data("counter4.blif"),
        "--cycles",
        "120",
        "--window",
        "30",
        "--json",
    ]);
    assert_matches_golden("analyze_window_counter4.json", &out);
}

#[test]
fn analyze_multi_seed_window_json_matches_golden() {
    let out = run_stdout(&[
        "analyze",
        &data("counter4.blif"),
        "--cycles",
        "100",
        "--seeds",
        "3",
        "--jobs",
        "1",
        "--window",
        "25",
        "--json",
    ]);
    assert_matches_golden("analyze_seeds_window_counter4.json", &out);
}

#[test]
fn check_json_matches_golden() {
    // The full checker suite on the counter (whose don't-care latch inits
    // make x-init fail honestly), multi-seed: pins the `check --json`
    // schema — verdicts, per-checker metrics and located violations.
    let out = run_stdout(&[
        "check",
        &data("counter4.blif"),
        "--x-init",
        "--hazards",
        "--budget",
        "*=cycle",
        "--stable",
        "q3@0..2",
        "--cycles",
        "80",
        "--seeds",
        "2",
        "--jobs",
        "1",
        "--json",
    ]);
    assert_matches_golden("check_counter4.json", &out);
}

#[test]
fn check_flip_json_matches_golden() {
    // The incremental check path: baseline + flipped verdicts plus the
    // replay accounting.
    let out = run_stdout(&[
        "check",
        &data("xinit_ok.blif"),
        "--x-init",
        "--hazards",
        "--cycles",
        "60",
        "--flip",
        "20:en=1",
        "--json",
    ]);
    assert_matches_golden("check_flip_xinit_ok.json", &out);
}

#[test]
fn analyze_flip_json_matches_golden() {
    let out = run_stdout(&[
        "analyze",
        &data("rca4.blif"),
        "--cycles",
        "120",
        "--flip",
        "40:a1,90:cin=1",
        "--json",
    ]);
    assert_matches_golden("analyze_flip_rca4.json", &out);
}

#[test]
fn reduce_json_matches_golden() {
    // The full reduction loop: move list, descent history, equivalence
    // verdict. Runs twice — the report must be byte-identical before it
    // is compared against the pinned golden bytes.
    let args = [
        "reduce",
        &data("rca4.blif"),
        "--cycles",
        "96",
        "--seeds",
        "2",
        "--jobs",
        "1",
        "--json",
    ];
    let first = run_stdout(&args);
    let second = run_stdout(&args);
    assert_eq!(first, second, "reduce --json must be deterministic");
    assert_matches_golden("reduce_rca4.json", &first);
}
