//! # glitch-activity
//!
//! Transition accounting for synchronous networks: the core bookkeeping of
//! the DATE'95 paper *Analysis and Reduction of Glitches in Synchronous
//! Networks*.
//!
//! The crate receives, for every monitored circuit node and every clock
//! cycle, the number of signal transitions that occurred on that node within
//! the cycle, and classifies them with the paper's **parity evaluation**
//! rule (section 3.3):
//!
//! * an **odd** number of transitions means the node's value at the end of
//!   the cycle differs from its value at the start, so exactly **one**
//!   transition was *useful* and the remaining ones are *useless*;
//! * an **even** number of transitions means the node returned to its
//!   starting value, so **all** of them are *useless*.
//!
//! Two consecutive useless transitions form one **glitch**. The headline
//! figure of merit is the ratio `L/F` of useless to useful transitions; the
//! achievable activity reduction from perfect delay balancing is `1 + L/F`.
//!
//! ## Example
//!
//! ```
//! use glitch_activity::{split_by_parity, ActivityTrace};
//!
//! // Parity rule on a single node and a single cycle.
//! let split = split_by_parity(5);
//! assert_eq!(split.useful, 1);
//! assert_eq!(split.useless, 4);
//!
//! // Accumulating a two-node circuit over three cycles.
//! let mut trace = ActivityTrace::new(2);
//! trace.record_cycle(&[1, 4]);
//! trace.record_cycle(&[0, 3]);
//! trace.record_cycle(&[2, 2]);
//! let totals = trace.totals();
//! assert_eq!(totals.transitions, 12);
//! assert_eq!(totals.useful, 2);
//! assert_eq!(totals.useless, 10);
//! ```

mod classify;
mod group;
mod node;
mod report;
mod trace;

pub use classify::{split_by_parity, TransitionSplit};
pub use group::{BitGroup, GroupedActivity};
pub use node::NodeActivity;
pub use report::{ActivityReport, ActivityTotals};
pub use trace::ActivityTrace;
