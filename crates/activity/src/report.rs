//! Aggregate activity figures and human-readable reports.

use std::fmt;

use glitch_netlist::{NetId, Netlist};

use crate::trace::ActivityTrace;

/// Aggregated transition totals over a set of nodes and cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ActivityTotals {
    /// Total transitions.
    pub transitions: u64,
    /// Total useful transitions (`F` in the paper).
    pub useful: u64,
    /// Total useless transitions (`L` in the paper).
    pub useless: u64,
    /// Number of clock cycles the totals cover.
    pub cycles: u64,
}

impl ActivityTotals {
    /// The paper's `L/F` ratio of useless to useful transitions.
    /// Returns infinity when there are useless transitions but no useful
    /// ones, and 0 when there is no activity at all.
    #[must_use]
    pub fn useless_to_useful(&self) -> f64 {
        if self.useful == 0 {
            if self.useless == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.useless as f64 / self.useful as f64
        }
    }

    /// The factor `1 + L/F` by which combinational transition activity could
    /// be reduced if all delay paths were perfectly balanced (section 4.2 of
    /// the paper).
    #[must_use]
    pub fn balance_reduction_factor(&self) -> f64 {
        1.0 + self.useless_to_useful()
    }

    /// Number of complete glitches.
    #[must_use]
    pub fn glitches(&self) -> u64 {
        self.useless / 2
    }

    /// Average transitions per cycle over the whole node set.
    #[must_use]
    pub fn transitions_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.transitions as f64 / self.cycles as f64
        }
    }
}

impl fmt::Display for ActivityTotals {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total {} (useful {} / useless {}), L/F = {:.2}",
            self.transitions,
            self.useful,
            self.useless,
            self.useless_to_useful()
        )
    }
}

/// A per-node activity report tied to a netlist, with named rows.
#[derive(Debug, Clone)]
pub struct ActivityReport {
    rows: Vec<ReportRow>,
    totals: ActivityTotals,
    design: String,
}

#[derive(Debug, Clone)]
struct ReportRow {
    name: String,
    transitions: u64,
    useful: u64,
    useless: u64,
}

impl ActivityReport {
    /// Builds a report from a trace whose node indices are the netlist's net
    /// indices (which is how `glitch-sim` records traces). The report covers
    /// the *combinational logic* nodes, which is what the paper's
    /// transition-activity figures describe: primary-input nets are excluded
    /// because their transitions are imposed by the stimulus, and
    /// flipflop-output nets are excluded because they switch at most once
    /// per cycle and their dissipation is accounted by the per-flipflop
    /// power figure.
    #[must_use]
    pub fn from_trace(netlist: &Netlist, trace: &ActivityTrace) -> Self {
        let mut ff_output = vec![false; netlist.net_count()];
        for (_, cell) in netlist.cells() {
            if cell.is_sequential() {
                for &out in cell.outputs() {
                    ff_output[out.index()] = true;
                }
            }
        }
        let mut rows = Vec::new();
        let mut included = Vec::new();
        for (net_id, net) in netlist.nets() {
            if net.is_primary_input()
                || net_id.index() >= trace.node_count()
                || ff_output[net_id.index()]
            {
                continue;
            }
            let node = trace.node(net_id.index());
            included.push(net_id.index());
            rows.push(ReportRow {
                name: net.name().to_string(),
                transitions: node.transitions(),
                useful: node.useful(),
                useless: node.useless(),
            });
        }
        let totals = trace.totals_for(included);
        ActivityReport {
            rows,
            totals,
            design: netlist.name().to_string(),
        }
    }

    /// Aggregated totals over every reported node.
    #[must_use]
    pub fn totals(&self) -> ActivityTotals {
        self.totals
    }

    /// Name of the analysed design.
    #[must_use]
    pub fn design(&self) -> &str {
        &self.design
    }

    /// Number of reported (non-input) nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.rows.len()
    }

    /// The `n` nodes with the most useless transitions — the glitch hot
    /// spots a designer would attack first.
    #[must_use]
    pub fn worst_nodes(&self, n: usize) -> Vec<(&str, u64)> {
        let mut indexed: Vec<(&str, u64)> = self
            .rows
            .iter()
            .map(|r| (r.name.as_str(), r.useless))
            .collect();
        indexed.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        indexed.truncate(n);
        indexed
    }

    /// Totals restricted to nets whose index is listed in `nets`, looked up
    /// by name in the report.
    #[must_use]
    pub fn totals_for_nets(&self, netlist: &Netlist, nets: &[NetId]) -> ActivityTotals {
        let mut totals = ActivityTotals {
            cycles: self.totals.cycles,
            ..Default::default()
        };
        for &net in nets {
            let name = netlist.net(net).name();
            if let Some(row) = self.rows.iter().find(|r| r.name == name) {
                totals.transitions += row.transitions;
                totals.useful += row.useful;
                totals.useless += row.useless;
            }
        }
        totals
    }

    /// Renders the report as comma-separated values (`node,transitions,useful,useless`).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("node,transitions,useful,useless\n");
        for row in &self.rows {
            out.push_str(&format!(
                "{},{},{},{}\n",
                row.name, row.transitions, row.useful, row.useless
            ));
        }
        out
    }
}

impl fmt::Display for ActivityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "transition activity for `{}` over {} cycles",
            self.design, self.totals.cycles
        )?;
        writeln!(f, "  {}", self.totals)?;
        writeln!(f, "  nodes monitored: {}", self.rows.len())?;
        writeln!(f, "  worst glitching nodes:")?;
        for (name, useless) in self.worst_nodes(5) {
            writeln!(f, "    {name:<24} useless {useless}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_netlist_and_trace() -> (Netlist, ActivityTrace) {
        let mut nl = Netlist::new("tiny");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.and2(a, b, "x");
        let y = nl.xor2(x, b, "y");
        nl.mark_output(y);
        let mut trace = ActivityTrace::new(nl.net_count());
        // a, b, x, y transition counts over two cycles.
        trace.record_cycle(&[1, 1, 2, 3]);
        trace.record_cycle(&[0, 1, 0, 1]);
        (nl, trace)
    }

    #[test]
    fn report_excludes_primary_inputs() {
        let (nl, trace) = tiny_netlist_and_trace();
        let report = ActivityReport::from_trace(&nl, &trace);
        assert_eq!(report.node_count(), 2);
        let totals = report.totals();
        // Only x and y are counted: x = 2 (all useless), y = 3 + 1 (two
        // useful, two useless).
        assert_eq!(totals.transitions, 6);
        assert_eq!(totals.useful, 2);
        assert_eq!(totals.useless, 4);
        assert_eq!(report.design(), "tiny");
    }

    #[test]
    fn lf_ratio_and_balance_factor() {
        let totals = ActivityTotals {
            transitions: 10,
            useful: 4,
            useless: 6,
            cycles: 2,
        };
        assert!((totals.useless_to_useful() - 1.5).abs() < 1e-12);
        assert!((totals.balance_reduction_factor() - 2.5).abs() < 1e-12);
        assert_eq!(totals.glitches(), 3);
        assert!((totals.transitions_per_cycle() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_lf_ratios() {
        let silent = ActivityTotals::default();
        assert_eq!(silent.useless_to_useful(), 0.0);
        let only_glitches = ActivityTotals {
            transitions: 4,
            useful: 0,
            useless: 4,
            cycles: 1,
        };
        assert!(only_glitches.useless_to_useful().is_infinite());
    }

    #[test]
    fn worst_nodes_sorted_by_useless() {
        let (nl, trace) = tiny_netlist_and_trace();
        let report = ActivityReport::from_trace(&nl, &trace);
        let worst = report.worst_nodes(2);
        assert_eq!(worst.len(), 2);
        // x and y both have two useless transitions; ties break by name.
        assert_eq!(worst[0], ("x", 2));
        assert_eq!(worst[1], ("y", 2));
    }

    #[test]
    fn csv_and_display_render() {
        let (nl, trace) = tiny_netlist_and_trace();
        let report = ActivityReport::from_trace(&nl, &trace);
        let csv = report.to_csv();
        assert!(csv.starts_with("node,transitions"));
        assert!(csv.contains("y,4,"));
        let text = report.to_string();
        assert!(text.contains("tiny"));
        assert!(text.contains("L/F"));
    }

    #[test]
    fn totals_for_named_nets() {
        let (nl, trace) = tiny_netlist_and_trace();
        let report = ActivityReport::from_trace(&nl, &trace);
        let y = nl.find_net("y").unwrap();
        let totals = report.totals_for_nets(&nl, &[y]);
        assert_eq!(totals.transitions, 4);
    }
}
