//! The parity-evaluation classification rule.

/// Split of one cycle's transition count into useful and useless transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TransitionSplit {
    /// Transitions needed for the node to reach its new steady-state value
    /// (0 or 1 per node per cycle).
    pub useful: u64,
    /// Transitions that only charge and discharge the node capacitance
    /// without contributing to the final value.
    pub useless: u64,
}

impl TransitionSplit {
    /// Total number of transitions in the cycle.
    #[must_use]
    pub fn total(self) -> u64 {
        self.useful + self.useless
    }

    /// Number of complete glitches (pairs of consecutive useless
    /// transitions).
    #[must_use]
    pub fn glitches(self) -> u64 {
        self.useless / 2
    }
}

/// Classifies the `count` transitions a node made within one clock cycle
/// using the parity rule of section 3.3 of the paper:
///
/// * odd `count`  → one useful transition, `count - 1` useless ones;
/// * even `count` → zero useful transitions, `count` useless ones.
///
/// ```
/// use glitch_activity::split_by_parity;
///
/// assert_eq!(split_by_parity(0).total(), 0);
/// assert_eq!(split_by_parity(1).useful, 1);
/// assert_eq!(split_by_parity(4).useless, 4);
/// assert_eq!(split_by_parity(7).useless, 6);
/// assert_eq!(split_by_parity(7).glitches(), 3);
/// ```
#[must_use]
pub fn split_by_parity(count: u64) -> TransitionSplit {
    if count % 2 == 1 {
        TransitionSplit {
            useful: 1,
            useless: count - 1,
        }
    } else {
        TransitionSplit {
            useful: 0,
            useless: count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_cases_match_paper_figure_4() {
        // Figure 4: signal 1 makes 2 useful transitions over 2 cycles
        // (1 per cycle), signal 2 makes 2 useless transitions in one cycle,
        // signal 3 makes 1 useful + 2 useless in one cycle.
        assert_eq!(
            split_by_parity(1),
            TransitionSplit {
                useful: 1,
                useless: 0
            }
        );
        assert_eq!(
            split_by_parity(2),
            TransitionSplit {
                useful: 0,
                useless: 2
            }
        );
        assert_eq!(
            split_by_parity(3),
            TransitionSplit {
                useful: 1,
                useless: 2
            }
        );
    }

    #[test]
    fn zero_transitions() {
        let s = split_by_parity(0);
        assert_eq!(s.total(), 0);
        assert_eq!(s.glitches(), 0);
    }

    proptest! {
        #[test]
        fn split_is_conservative(count in 0u64..100_000) {
            let s = split_by_parity(count);
            prop_assert_eq!(s.total(), count);
            prop_assert!(s.useful <= 1);
            prop_assert_eq!(s.useless % 2, 0);
            prop_assert_eq!(s.useful == 1, count % 2 == 1);
        }

        #[test]
        fn glitches_are_half_the_useless(count in 0u64..100_000) {
            let s = split_by_parity(count);
            prop_assert_eq!(s.glitches() * 2, s.useless);
        }
    }
}
