//! Whole-circuit transition accumulation across clock cycles.

use crate::node::NodeActivity;
use crate::report::ActivityTotals;

/// Transition statistics for every monitored node of a circuit, accumulated
/// cycle by cycle.
///
/// The trace stores running totals rather than per-cycle histories, so its
/// memory footprint is `O(nodes)` regardless of how many cycles are
/// simulated (the paper's Figure 5 experiment runs 4000 cycles over a few
/// hundred nodes).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ActivityTrace {
    nodes: Vec<NodeActivity>,
    cycles: u64,
}

impl ActivityTrace {
    /// Creates a trace for `node_count` monitored nodes.
    #[must_use]
    pub fn new(node_count: usize) -> Self {
        ActivityTrace {
            nodes: vec![NodeActivity::new(); node_count],
            cycles: 0,
        }
    }

    /// Number of monitored nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of cycles recorded so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Records one clock cycle given the per-node transition counts.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len()` differs from the node count the trace was
    /// created with.
    pub fn record_cycle(&mut self, counts: &[u32]) {
        assert_eq!(
            counts.len(),
            self.nodes.len(),
            "cycle record has {} counts but the trace monitors {} nodes",
            counts.len(),
            self.nodes.len()
        );
        for (node, &count) in self.nodes.iter_mut().zip(counts) {
            node.record_cycle(u64::from(count));
        }
        self.cycles += 1;
    }

    /// Per-node statistics.
    #[must_use]
    pub fn node(&self, index: usize) -> &NodeActivity {
        &self.nodes[index]
    }

    /// Iterates over `(node index, statistics)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &NodeActivity)> {
        self.nodes.iter().enumerate()
    }

    /// Totals over every monitored node.
    #[must_use]
    pub fn totals(&self) -> ActivityTotals {
        self.totals_for(0..self.nodes.len())
    }

    /// Totals over a subset of nodes (e.g. excluding primary inputs, or only
    /// the sum bits of an adder).
    ///
    /// Node indices outside the trace are ignored.
    #[must_use]
    pub fn totals_for<I>(&self, nodes: I) -> ActivityTotals
    where
        I: IntoIterator<Item = usize>,
    {
        let mut totals = ActivityTotals::default();
        for index in nodes {
            if let Some(node) = self.nodes.get(index) {
                totals.transitions += node.transitions();
                totals.useful += node.useful();
                totals.useless += node.useless();
            }
        }
        totals.cycles = self.cycles;
        totals
    }

    /// Merges another trace recorded over the same node set (e.g. partial
    /// traces produced by chunked simulation).
    ///
    /// # Panics
    ///
    /// Panics if the node counts differ.
    pub fn merge(&mut self, other: &ActivityTrace) {
        assert_eq!(
            self.nodes.len(),
            other.nodes.len(),
            "cannot merge traces of different widths"
        );
        for (mine, theirs) in self.nodes.iter_mut().zip(&other.nodes) {
            mine.merge(theirs);
        }
        self.cycles += other.cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn totals_aggregate_across_nodes_and_cycles() {
        let mut trace = ActivityTrace::new(3);
        trace.record_cycle(&[1, 2, 0]);
        trace.record_cycle(&[3, 0, 1]);
        let totals = trace.totals();
        assert_eq!(totals.transitions, 7);
        assert_eq!(totals.useful, 3);
        assert_eq!(totals.useless, 4);
        assert_eq!(totals.cycles, 2);
        assert_eq!(trace.cycles(), 2);
        assert_eq!(trace.node(0).transitions(), 4);
    }

    #[test]
    fn subset_totals() {
        let mut trace = ActivityTrace::new(4);
        trace.record_cycle(&[1, 1, 1, 1]);
        trace.record_cycle(&[2, 2, 2, 2]);
        let subset = trace.totals_for([1, 3]);
        assert_eq!(subset.transitions, 6);
        assert_eq!(subset.useful, 2);
        assert_eq!(subset.useless, 4);
        // Out-of-range indices are ignored.
        let same = trace.totals_for([1, 3, 99]);
        assert_eq!(same, subset);
    }

    #[test]
    #[should_panic(expected = "monitors")]
    fn wrong_width_cycle_panics() {
        let mut trace = ActivityTrace::new(2);
        trace.record_cycle(&[1, 2, 3]);
    }

    #[test]
    fn merge_combines_cycles() {
        let mut a = ActivityTrace::new(2);
        a.record_cycle(&[1, 0]);
        let mut b = ActivityTrace::new(2);
        b.record_cycle(&[2, 2]);
        b.record_cycle(&[1, 1]);
        a.merge(&b);
        assert_eq!(a.cycles(), 3);
        assert_eq!(a.totals().transitions, 7);
    }

    /// Builds a 5-node trace from a list of per-cycle count rows.
    fn trace_from_rows(rows: &[Vec<u32>]) -> ActivityTrace {
        let mut trace = ActivityTrace::new(5);
        for row in rows {
            trace.record_cycle(row);
        }
        trace
    }

    fn merged(mut left: ActivityTrace, right: &ActivityTrace) -> ActivityTrace {
        left.merge(right);
        left
    }

    proptest! {
        /// `merge` is associative and commutative on random traces — the
        /// property that makes the parallel shard fold independent of how
        /// the reduction tree is shaped.
        #[test]
        fn merge_is_associative_and_commutative(
            a_rows in proptest::collection::vec(proptest::collection::vec(0u32..8, 5), 0..30),
            b_rows in proptest::collection::vec(proptest::collection::vec(0u32..8, 5), 0..30),
            c_rows in proptest::collection::vec(proptest::collection::vec(0u32..8, 5), 0..30),
        ) {
            let (a, b, c) = (trace_from_rows(&a_rows), trace_from_rows(&b_rows), trace_from_rows(&c_rows));
            // Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
            let left = merged(merged(a.clone(), &b), &c);
            let right = merged(a.clone(), &merged(b.clone(), &c));
            prop_assert_eq!(&left, &right);
            // Commutativity: a ⊕ b == b ⊕ a.
            prop_assert_eq!(merged(a.clone(), &b), merged(b.clone(), &a));
            // Identity: merging an empty trace changes nothing.
            prop_assert_eq!(merged(a.clone(), &ActivityTrace::new(5)), a);
        }

        #[test]
        fn totals_equal_sum_of_nodes(
            rows in proptest::collection::vec(proptest::collection::vec(0u32..8, 5), 1..50)
        ) {
            let mut trace = ActivityTrace::new(5);
            for row in &rows {
                trace.record_cycle(row);
            }
            let totals = trace.totals();
            let by_nodes: u64 = (0..5).map(|i| trace.node(i).transitions()).sum();
            prop_assert_eq!(totals.transitions, by_nodes);
            prop_assert_eq!(totals.transitions, totals.useful + totals.useless);
        }
    }
}
