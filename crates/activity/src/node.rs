//! Per-node accumulation of transition statistics across many cycles.

use crate::classify::split_by_parity;

/// Running transition statistics of one circuit node (net).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeActivity {
    transitions: u64,
    useful: u64,
    useless: u64,
    cycles: u64,
}

impl NodeActivity {
    /// A node that has not been observed yet.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one clock cycle in which the node made `count` transitions.
    pub fn record_cycle(&mut self, count: u64) {
        let split = split_by_parity(count);
        self.transitions += count;
        self.useful += split.useful;
        self.useless += split.useless;
        self.cycles += 1;
    }

    /// Merges another node's statistics into this one (used when grouping
    /// nodes, e.g. all carry bits of an adder).
    pub fn merge(&mut self, other: &NodeActivity) {
        self.transitions += other.transitions;
        self.useful += other.useful;
        self.useless += other.useless;
        self.cycles += other.cycles;
    }

    /// Total transitions observed.
    #[must_use]
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Total useful transitions observed.
    #[must_use]
    pub fn useful(&self) -> u64 {
        self.useful
    }

    /// Total useless transitions observed.
    #[must_use]
    pub fn useless(&self) -> u64 {
        self.useless
    }

    /// Total complete glitches observed (useless transitions / 2).
    #[must_use]
    pub fn glitches(&self) -> u64 {
        self.useless / 2
    }

    /// Number of cycles recorded.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Average transitions per cycle — the paper's transition ratio `TR`.
    /// Returns 0 when no cycles have been recorded.
    #[must_use]
    pub fn transition_ratio(&self) -> f64 {
        ratio(self.transitions, self.cycles)
    }

    /// Average useful transitions per cycle — the paper's `UFTR`.
    #[must_use]
    pub fn useful_ratio(&self) -> f64 {
        ratio(self.useful, self.cycles)
    }

    /// Average useless transitions per cycle — the paper's `ULTR`.
    #[must_use]
    pub fn useless_ratio(&self) -> f64 {
        ratio(self.useless, self.cycles)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ratios_over_cycles() {
        let mut node = NodeActivity::new();
        node.record_cycle(1);
        node.record_cycle(3);
        node.record_cycle(0);
        node.record_cycle(2);
        assert_eq!(node.transitions(), 6);
        assert_eq!(node.useful(), 2);
        assert_eq!(node.useless(), 4);
        assert_eq!(node.glitches(), 2);
        assert_eq!(node.cycles(), 4);
        assert!((node.transition_ratio() - 1.5).abs() < 1e-12);
        assert!((node.useful_ratio() - 0.5).abs() < 1e-12);
        assert!((node.useless_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_node_has_zero_ratios() {
        let node = NodeActivity::new();
        assert_eq!(node.transition_ratio(), 0.0);
        assert_eq!(node.useful_ratio(), 0.0);
        assert_eq!(node.useless_ratio(), 0.0);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = NodeActivity::new();
        a.record_cycle(3);
        let mut b = NodeActivity::new();
        b.record_cycle(2);
        b.record_cycle(1);
        a.merge(&b);
        assert_eq!(a.transitions(), 6);
        assert_eq!(a.useful(), 2);
        assert_eq!(a.useless(), 4);
        assert_eq!(a.cycles(), 3);
    }

    proptest! {
        #[test]
        fn invariants_hold_for_random_histories(counts in proptest::collection::vec(0u64..16, 0..200)) {
            let mut node = NodeActivity::new();
            for &c in &counts {
                node.record_cycle(c);
            }
            prop_assert_eq!(node.transitions(), node.useful() + node.useless());
            prop_assert!(node.useful() <= node.cycles());
            prop_assert_eq!(node.cycles(), counts.len() as u64);
            let expected: u64 = counts.iter().sum();
            prop_assert_eq!(node.transitions(), expected);
        }
    }
}
