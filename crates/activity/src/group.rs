//! Grouping of node activity by bit position — the view needed to reproduce
//! the per-bit histograms of Figure 5 of the paper.

use std::fmt;

use glitch_netlist::{NetId, Netlist};

use crate::node::NodeActivity;
use crate::trace::ActivityTrace;

/// Activity of one bit position within a named bus (e.g. sum bit 3 of an
/// adder).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitGroup {
    /// Bit index within the bus.
    pub bit: usize,
    /// Name of the underlying net.
    pub net_name: String,
    /// Accumulated activity of the bit.
    pub activity: NodeActivity,
}

/// Per-bit activity of a named bus, e.g. all sum outputs `S0..S15` of a
/// ripple-carry adder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupedActivity {
    label: String,
    bits: Vec<BitGroup>,
}

impl GroupedActivity {
    /// Collects per-bit activity for an ordered list of nets (LSB first)
    /// from a trace recorded over the owning netlist.
    #[must_use]
    pub fn from_nets(
        label: impl Into<String>,
        netlist: &Netlist,
        trace: &ActivityTrace,
        nets: &[NetId],
    ) -> Self {
        let bits = nets
            .iter()
            .enumerate()
            .map(|(bit, &net)| BitGroup {
                bit,
                net_name: netlist.net(net).name().to_string(),
                activity: *trace.node(net.index()),
            })
            .collect();
        GroupedActivity {
            label: label.into(),
            bits,
        }
    }

    /// Group label (e.g. `"sum"` or `"carry"`).
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Per-bit rows, LSB first.
    #[must_use]
    pub fn bits(&self) -> &[BitGroup] {
        &self.bits
    }

    /// Useful transitions per bit, LSB first (one series of Figure 5).
    #[must_use]
    pub fn useful_series(&self) -> Vec<u64> {
        self.bits.iter().map(|b| b.activity.useful()).collect()
    }

    /// Useless transitions per bit, LSB first (the other series of Figure 5).
    #[must_use]
    pub fn useless_series(&self) -> Vec<u64> {
        self.bits.iter().map(|b| b.activity.useless()).collect()
    }

    /// Total transitions per bit, LSB first.
    #[must_use]
    pub fn transition_series(&self) -> Vec<u64> {
        self.bits.iter().map(|b| b.activity.transitions()).collect()
    }

    /// Sum of all useful transitions in the group.
    #[must_use]
    pub fn total_useful(&self) -> u64 {
        self.bits.iter().map(|b| b.activity.useful()).sum()
    }

    /// Sum of all useless transitions in the group.
    #[must_use]
    pub fn total_useless(&self) -> u64 {
        self.bits.iter().map(|b| b.activity.useless()).sum()
    }

    /// Sum of all transitions in the group.
    #[must_use]
    pub fn total_transitions(&self) -> u64 {
        self.bits.iter().map(|b| b.activity.transitions()).sum()
    }
}

impl fmt::Display for GroupedActivity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<10} {:>8} {:>10} {:>10} {:>10}",
            self.label, "bit", "total", "useful", "useless"
        )?;
        for bit in &self.bits {
            writeln!(
                f,
                "{:<10} {:>8} {:>10} {:>10} {:>10}",
                "",
                bit.bit,
                bit.activity.transitions(),
                bit.activity.useful(),
                bit.activity.useless()
            )?;
        }
        writeln!(
            f,
            "{:<10} {:>8} {:>10} {:>10} {:>10}",
            "",
            "all",
            self.total_transitions(),
            self.total_useful(),
            self.total_useless()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouping_by_bus() {
        let mut nl = Netlist::new("grp");
        let a = nl.add_input_bus("a", 3);
        let b = nl.add_input_bus("b", 3);
        let mut sums = Vec::new();
        for i in 0..3 {
            sums.push(nl.xor2(a.bit(i), b.bit(i), &format!("s[{i}]")));
        }
        let mut trace = ActivityTrace::new(nl.net_count());
        let mut counts = vec![0u32; nl.net_count()];
        counts[sums[0].index()] = 1;
        counts[sums[1].index()] = 2;
        counts[sums[2].index()] = 3;
        trace.record_cycle(&counts);

        let grouped = GroupedActivity::from_nets("sum", &nl, &trace, &sums);
        assert_eq!(grouped.label(), "sum");
        assert_eq!(grouped.bits().len(), 3);
        assert_eq!(grouped.transition_series(), vec![1, 2, 3]);
        assert_eq!(grouped.useful_series(), vec![1, 0, 1]);
        assert_eq!(grouped.useless_series(), vec![0, 2, 2]);
        assert_eq!(grouped.total_transitions(), 6);
        assert_eq!(grouped.total_useful(), 2);
        assert_eq!(grouped.total_useless(), 4);
        assert_eq!(grouped.bits()[1].net_name, "s[1]");
        let text = grouped.to_string();
        assert!(text.contains("sum"));
        assert!(text.contains("all"));
    }
}
