//! The Phideo "direction detector" processing unit — Figure 8 of the paper.
//!
//! The direction detector is part of a progressive-scan-conversion algorithm:
//! for a pixel to be interpolated it receives three samples from the line
//! above (`a[0..3]`) and three from the line below (`b[0..3]`), computes the
//! absolute differences along the three candidate interpolation directions,
//! picks the direction with the smallest difference, and falls back to the
//! default (vertical) direction when even the best match is worse than a
//! threshold.
//!
//! The exact cell-level contents of the Philips implementation are not
//! public; this generator follows the block diagram of Figure 8 (absolute
//! differences → find min/max → select min/max → threshold compare → final
//! direction select). The resulting datapath has the same deep, unbalanced
//! comparator/subtractor chains that give the paper's unit its L/F ≈ 3.8
//! glitch ratio.

use glitch_netlist::{Bus, NetId, Netlist};

use crate::abs_diff::build_abs_diff;
use crate::compare::{build_greater_equal, build_min_max};
use crate::style::AdderStyle;

/// Interpolation-direction codes produced by the detector, LSB first on the
/// `direction` bus: `00` = left diagonal, `01` = vertical (default), `10` =
/// right diagonal.
pub const DIRECTION_LEFT: u64 = 0;
/// Vertical / default direction code.
pub const DIRECTION_VERTICAL: u64 = 1;
/// Right-diagonal direction code.
pub const DIRECTION_RIGHT: u64 = 2;

/// The generated direction-detector circuit and its ports.
#[derive(Debug, Clone)]
pub struct DirectionDetector {
    /// The generated netlist.
    pub netlist: Netlist,
    /// Samples from the line above, three buses of `width` bits.
    pub a: [Bus; 3],
    /// Samples from the line below, three buses of `width` bits.
    pub b: [Bus; 3],
    /// Match threshold input bus.
    pub threshold: Bus,
    /// Selected interpolation direction (2 bits, see the `DIRECTION_*`
    /// constants).
    pub direction: Bus,
    /// Smallest directional difference.
    pub min: Bus,
    /// Largest directional difference.
    pub max: Bus,
    /// High when the best match beat the threshold (so a diagonal direction
    /// may be selected).
    pub below_threshold: NetId,
}

impl DirectionDetector {
    /// Builds a direction detector for `width`-bit samples with registered
    /// data inputs (the 6·`width` input flipflops correspond to the 48
    /// flipflops of the least-retimed layout in Table 3 of the paper).
    #[must_use]
    pub fn new(width: usize) -> Self {
        Self::with_options(width, true, AdderStyle::CompoundCell)
    }

    /// Builds a direction detector, optionally without input registers and
    /// with a chosen adder style.
    ///
    /// # Panics
    ///
    /// Panics if `width` is smaller than 2.
    #[must_use]
    pub fn with_options(width: usize, register_inputs: bool, style: AdderStyle) -> Self {
        assert!(width >= 2, "sample width must be at least 2 bits");
        let mut nl = Netlist::new(format!("direction_detector_w{width}"));

        let a_in: Vec<Bus> = (0..3)
            .map(|i| nl.add_input_bus(&format!("a{i}"), width))
            .collect();
        let b_in: Vec<Bus> = (0..3)
            .map(|i| nl.add_input_bus(&format!("b{i}"), width))
            .collect();
        let threshold = nl.add_input_bus("threshold", width);

        let (a, b): (Vec<Bus>, Vec<Bus>) = if register_inputs {
            (
                a_in.iter()
                    .enumerate()
                    .map(|(i, bus)| nl.register_bus(bus, &format!("a{i}_q")))
                    .collect(),
                b_in.iter()
                    .enumerate()
                    .map(|(i, bus)| nl.register_bus(bus, &format!("b{i}_q")))
                    .collect(),
            )
        } else {
            (a_in.clone(), b_in.clone())
        };

        // Stage 1: absolute differences along the three candidate
        // interpolation directions.
        let d_left = build_abs_diff(&mut nl, &a[0], &b[2], "d_left", style);
        let d_vert = build_abs_diff(&mut nl, &a[1], &b[1], "d_vert", style);
        let d_right = build_abs_diff(&mut nl, &a[2], &b[0], "d_right", style);

        // Stage 2: find and select min/max over the three differences.
        let lm = build_min_max(&mut nl, &d_left.magnitude, &d_vert.magnitude, "lm", style);
        let min3 = build_min_max(&mut nl, &lm.min, &d_right.magnitude, "min3", style);
        let max3 = build_min_max(&mut nl, &lm.max, &d_right.magnitude, "max3", style);
        let min = min3.min.clone();
        let max = max3.max.clone();

        // Stage 3: direction of the minimum difference.
        // lm.a_ge_b        : left >= vertical  -> best of (left, vertical) is vertical
        // min3.a_ge_b      : min(left, vert) >= right -> overall best is right
        let best_is_right = min3.a_ge_b;
        let not_right = nl.inv(best_is_right, "not_right");
        let dir0_raw = nl.and2(not_right, lm.a_ge_b, "dir0_raw");
        let dir1_raw = nl.buf(best_is_right, "dir1_raw");

        // Stage 4: threshold compare — fall back to the vertical direction
        // when even the best match is not good enough.
        let min_ge_threshold = build_greater_equal(&mut nl, &min, &threshold, "thr", style);
        let below_threshold = nl.inv(min_ge_threshold, "below_threshold");
        let default0 = nl.constant(true, "default_dir0");
        let default1 = nl.constant(false, "default_dir1");
        let dir0 = nl.mux2(below_threshold, default0, dir0_raw, "direction[0]");
        let dir1 = nl.mux2(below_threshold, default1, dir1_raw, "direction[1]");
        let direction = Bus::new(vec![dir0, dir1]);

        nl.mark_output_bus(&direction);
        nl.mark_output_bus(&min);
        nl.mark_output_bus(&max);
        nl.mark_output(below_threshold);

        let a: [Bus; 3] = [a_in[0].clone(), a_in[1].clone(), a_in[2].clone()];
        let b: [Bus; 3] = [b_in[0].clone(), b_in[1].clone(), b_in[2].clone()];
        DirectionDetector {
            netlist: nl,
            a,
            b,
            threshold,
            direction,
            min,
            max,
            below_threshold,
        }
    }

    /// Sample width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.a[0].width()
    }

    /// Reference model of the detector, for verification: returns
    /// `(direction, min, max, below_threshold)` for the given samples.
    #[must_use]
    pub fn reference(a: [u64; 3], b: [u64; 3], threshold: u64) -> (u64, u64, u64, bool) {
        let d_left = a[0].abs_diff(b[2]);
        let d_vert = a[1].abs_diff(b[1]);
        let d_right = a[2].abs_diff(b[0]);
        // Mirror the hardware's tie-breaking exactly: ">=" prefers the
        // second operand of each comparison.
        let (lm_min, lm_is_vert) = if d_left >= d_vert {
            (d_vert, true)
        } else {
            (d_left, false)
        };
        let (min, best_is_right) = if lm_min >= d_right {
            (d_right, true)
        } else {
            (lm_min, false)
        };
        let max = d_left.max(d_vert).max(d_right);
        let below = min < threshold;
        let direction = if !below {
            DIRECTION_VERTICAL
        } else if best_is_right {
            DIRECTION_RIGHT
        } else if lm_is_vert {
            DIRECTION_VERTICAL
        } else {
            DIRECTION_LEFT
        };
        (direction, min, max, below)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitch_sim::{ClockedSimulator, InputAssignment, UnitDelay};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn drive(det: &DirectionDetector, a: [u64; 3], b: [u64; 3], threshold: u64) -> InputAssignment {
        let mut v = InputAssignment::new();
        for i in 0..3 {
            v.set_bus(&det.a[i], a[i]);
            v.set_bus(&det.b[i], b[i]);
        }
        v.set_bus(&det.threshold, threshold);
        v
    }

    #[test]
    fn matches_the_reference_model_on_random_vectors() {
        let det = DirectionDetector::with_options(8, false, AdderStyle::CompoundCell);
        det.netlist.validate().unwrap();
        let mut sim = ClockedSimulator::new(&det.netlist, UnitDelay).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..200 {
            let a = [
                rng.gen_range(0..256),
                rng.gen_range(0..256),
                rng.gen_range(0..256),
            ];
            let b = [
                rng.gen_range(0..256),
                rng.gen_range(0..256),
                rng.gen_range(0..256),
            ];
            let threshold = rng.gen_range(0..256);
            sim.step(drive(&det, a, b, threshold)).unwrap();
            let (dir, min, max, below) = DirectionDetector::reference(a, b, threshold);
            assert_eq!(
                sim.bus_value(&det.direction).unwrap(),
                dir,
                "a={a:?} b={b:?} t={threshold}"
            );
            assert_eq!(sim.bus_value(&det.min).unwrap(), min);
            assert_eq!(sim.bus_value(&det.max).unwrap(), max);
            assert_eq!(sim.net_bool(det.below_threshold).unwrap(), below);
        }
    }

    #[test]
    fn registered_variant_has_one_cycle_of_latency_and_48_flipflops() {
        let det = DirectionDetector::new(8);
        assert_eq!(det.netlist.dff_count(), 48);
        assert_eq!(det.width(), 8);
        let mut sim = ClockedSimulator::new(&det.netlist, UnitDelay).unwrap();
        let a = [10, 20, 30];
        let b = [30, 25, 10];
        let threshold = 4;
        sim.step(drive(&det, a, b, threshold)).unwrap();
        sim.step(drive(&det, a, b, threshold)).unwrap();
        let (dir, min, max, below) = DirectionDetector::reference(a, b, threshold);
        assert_eq!(sim.bus_value(&det.direction).unwrap(), dir);
        assert_eq!(sim.bus_value(&det.min).unwrap(), min);
        assert_eq!(sim.bus_value(&det.max).unwrap(), max);
        assert_eq!(sim.net_bool(det.below_threshold).unwrap(), below);
    }

    #[test]
    fn default_direction_wins_when_threshold_is_zero() {
        // threshold = 0 means no difference can be "below threshold", so the
        // detector must always fall back to the vertical default.
        let det = DirectionDetector::with_options(6, false, AdderStyle::CompoundCell);
        let mut sim = ClockedSimulator::new(&det.netlist, UnitDelay).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let a = [
                rng.gen_range(0..64),
                rng.gen_range(0..64),
                rng.gen_range(0..64),
            ];
            let b = [
                rng.gen_range(0..64),
                rng.gen_range(0..64),
                rng.gen_range(0..64),
            ];
            sim.step(drive(&det, a, b, 0)).unwrap();
            assert_eq!(sim.bus_value(&det.direction).unwrap(), DIRECTION_VERTICAL);
            assert!(!sim.net_bool(det.below_threshold).unwrap());
        }
    }

    #[test]
    fn obvious_directional_matches_are_detected() {
        let det = DirectionDetector::with_options(8, false, AdderStyle::CompoundCell);
        let mut sim = ClockedSimulator::new(&det.netlist, UnitDelay).unwrap();
        // Perfect left-diagonal match: a0 == b2, others far apart.
        sim.step(drive(&det, [100, 0, 0], [200, 200, 100], 10))
            .unwrap();
        assert_eq!(sim.bus_value(&det.direction).unwrap(), DIRECTION_LEFT);
        // Perfect right-diagonal match: a2 == b0.
        sim.step(drive(&det, [0, 0, 150], [150, 200, 200], 10))
            .unwrap();
        assert_eq!(sim.bus_value(&det.direction).unwrap(), DIRECTION_RIGHT);
        // Perfect vertical match.
        sim.step(drive(&det, [0, 77, 0], [200, 77, 200], 10))
            .unwrap();
        assert_eq!(sim.bus_value(&det.direction).unwrap(), DIRECTION_VERTICAL);
    }

    #[test]
    fn gate_style_detector_also_matches_reference() {
        let det = DirectionDetector::with_options(4, false, AdderStyle::Gates);
        let mut sim = ClockedSimulator::new(&det.netlist, UnitDelay).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..50 {
            let a = [
                rng.gen_range(0..16),
                rng.gen_range(0..16),
                rng.gen_range(0..16),
            ];
            let b = [
                rng.gen_range(0..16),
                rng.gen_range(0..16),
                rng.gen_range(0..16),
            ];
            let threshold = rng.gen_range(0..16);
            sim.step(drive(&det, a, b, threshold)).unwrap();
            let (dir, min, max, below) = DirectionDetector::reference(a, b, threshold);
            assert_eq!(sim.bus_value(&det.direction).unwrap(), dir);
            assert_eq!(sim.bus_value(&det.min).unwrap(), min);
            assert_eq!(sim.bus_value(&det.max).unwrap(), max);
            assert_eq!(sim.net_bool(det.below_threshold).unwrap(), below);
        }
    }
}
