//! Shared adder-cell instantiation helpers used by every generator.

use glitch_netlist::{NetId, Netlist};

use crate::style::AdderStyle;

/// Adds one full adder (in the requested style) to `nl` and returns
/// `(sum, carry)`.
pub(crate) fn full_adder_bit(
    nl: &mut Netlist,
    a: NetId,
    b: NetId,
    cin: NetId,
    prefix: &str,
    style: AdderStyle,
) -> (NetId, NetId) {
    match style {
        AdderStyle::CompoundCell => nl.full_adder(a, b, cin, prefix),
        AdderStyle::Gates => {
            let axb = nl.xor2(a, b, &format!("{prefix}_axb"));
            let sum = nl.xor2(axb, cin, &format!("{prefix}_s"));
            let and1 = nl.and2(a, b, &format!("{prefix}_ab"));
            let and2 = nl.and2(axb, cin, &format!("{prefix}_pc"));
            let carry = nl.or2(and1, and2, &format!("{prefix}_c"));
            (sum, carry)
        }
    }
}

/// Adds one half adder (in the requested style) to `nl` and returns
/// `(sum, carry)`.
pub(crate) fn half_adder_bit(
    nl: &mut Netlist,
    a: NetId,
    b: NetId,
    prefix: &str,
    style: AdderStyle,
) -> (NetId, NetId) {
    match style {
        AdderStyle::CompoundCell => nl.half_adder(a, b, prefix),
        AdderStyle::Gates => {
            let sum = nl.xor2(a, b, &format!("{prefix}_s"));
            let carry = nl.and2(a, b, &format!("{prefix}_c"));
            (sum, carry)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitch_sim::{ClockedSimulator, InputAssignment, UnitDelay};

    #[test]
    fn both_styles_implement_the_same_functions() {
        for style in AdderStyle::all() {
            let mut nl = Netlist::new("cells");
            let a = nl.add_input("a");
            let b = nl.add_input("b");
            let c = nl.add_input("c");
            let (fs, fc) = full_adder_bit(&mut nl, a, b, c, "fa", style);
            let (hs, hc) = half_adder_bit(&mut nl, a, b, "ha", style);
            for net in [fs, fc, hs, hc] {
                nl.mark_output(net);
            }
            let mut sim = ClockedSimulator::new(&nl, UnitDelay).unwrap();
            for bits in 0..8u8 {
                let (av, bv, cv) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0);
                sim.step(InputAssignment::new().with(a, av).with(b, bv).with(c, cv))
                    .unwrap();
                let full = u8::from(av) + u8::from(bv) + u8::from(cv);
                let half = u8::from(av) + u8::from(bv);
                assert_eq!(
                    u8::from(sim.net_bool(fs).unwrap()) + 2 * u8::from(sim.net_bool(fc).unwrap()),
                    full
                );
                assert_eq!(
                    u8::from(sim.net_bool(hs).unwrap()) + 2 * u8::from(sim.net_bool(hc).unwrap()),
                    half
                );
            }
        }
    }
}
