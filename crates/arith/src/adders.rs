//! Alternative adder architectures: carry-lookahead and carry-select.
//!
//! The paper's second glitch-reduction lever (besides inserting flipflops)
//! is *choosing a different architecture* with better-balanced delay paths.
//! The ripple-carry adder of section 3 is the worst case — the carry travels
//! through every bit — while lookahead and select structures shorten and
//! balance the carry paths, trading gates for glitches. These generators
//! make that trade-off measurable with the same analysis flow.

use glitch_netlist::{Bus, NetId, Netlist};

use crate::rca::build_rca;
use crate::style::AdderStyle;

/// An N-bit adder built from 4-bit carry-lookahead blocks whose block
/// carries ripple.
#[derive(Debug, Clone)]
pub struct CarryLookaheadAdder {
    /// The generated netlist.
    pub netlist: Netlist,
    /// Operand A input bus.
    pub a: Bus,
    /// Operand B input bus.
    pub b: Bus,
    /// Carry-in input.
    pub cin: NetId,
    /// Sum output bus.
    pub sum: Bus,
    /// Carry out.
    pub cout: NetId,
}

impl CarryLookaheadAdder {
    /// Builds an `bits`-bit carry-lookahead adder (4-bit lookahead blocks).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    #[must_use]
    pub fn new(bits: usize) -> Self {
        assert!(bits > 0, "adder width must be at least 1");
        let mut nl = Netlist::new(format!("cla{bits}"));
        let a = nl.add_input_bus("a", bits);
        let b = nl.add_input_bus("b", bits);
        let cin = nl.add_input("cin");

        let mut sum_bits = Vec::with_capacity(bits);
        let mut block_cin = cin;
        let mut bit = 0usize;
        let mut block = 0usize;
        while bit < bits {
            let width = (bits - bit).min(4);
            // Generate and propagate signals for the block.
            let mut g = Vec::with_capacity(width);
            let mut p = Vec::with_capacity(width);
            for k in 0..width {
                let i = bit + k;
                g.push(nl.and2(a.bit(i), b.bit(i), &format!("g{block}_{k}")));
                p.push(nl.xor2(a.bit(i), b.bit(i), &format!("p{block}_{k}")));
            }
            // Lookahead carries: c[k+1] = g[k] | p[k]·g[k-1] | … | p[k]…p[0]·cin,
            // each built as a two-level AND/OR network so every carry of the
            // block is available after a constant number of gate delays.
            let mut carries = Vec::with_capacity(width + 1);
            carries.push(block_cin);
            for k in 0..width {
                let mut terms: Vec<NetId> = Vec::with_capacity(k + 2);
                terms.push(g[k]);
                for j in (0..=k).rev() {
                    // p[k]·p[k-1]…p[j]·(g[j-1] or cin)
                    let chain: Vec<NetId> = (j..=k).map(|m| p[m]).collect();
                    let mut and_inputs = chain;
                    and_inputs.push(if j == 0 { block_cin } else { g[j - 1] });
                    terms.push(nl.and(&and_inputs, &format!("cla{block}_{k}_{j}")));
                }
                let carry = if terms.len() == 1 {
                    terms[0]
                } else {
                    nl.or(&terms, &format!("c{block}_{k}"))
                };
                carries.push(carry);
            }
            // Sums.
            for k in 0..width {
                sum_bits.push(nl.xor2(p[k], carries[k], &format!("sum[{}]", bit + k)));
            }
            block_cin = carries[width];
            bit += width;
            block += 1;
        }

        let sum = Bus::new(sum_bits);
        nl.mark_output_bus(&sum);
        nl.mark_output(block_cin);
        CarryLookaheadAdder {
            netlist: nl,
            a,
            b,
            cin,
            sum,
            cout: block_cin,
        }
    }

    /// Adder width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.a.width()
    }
}

/// An N-bit carry-select adder: each block (after the first) computes both
/// possible results and a multiplexer picks the right one when the block
/// carry arrives.
#[derive(Debug, Clone)]
pub struct CarrySelectAdder {
    /// The generated netlist.
    pub netlist: Netlist,
    /// Operand A input bus.
    pub a: Bus,
    /// Operand B input bus.
    pub b: Bus,
    /// Carry-in input.
    pub cin: NetId,
    /// Sum output bus.
    pub sum: Bus,
    /// Carry out.
    pub cout: NetId,
    /// Block size used.
    pub block_size: usize,
}

impl CarrySelectAdder {
    /// Builds an `bits`-bit carry-select adder with the given block size.
    ///
    /// # Panics
    ///
    /// Panics if `bits` or `block_size` is zero.
    #[must_use]
    pub fn new(bits: usize, block_size: usize, style: AdderStyle) -> Self {
        assert!(bits > 0, "adder width must be at least 1");
        assert!(block_size > 0, "block size must be at least 1");
        let mut nl = Netlist::new(format!("csla{bits}_b{block_size}"));
        let a = nl.add_input_bus("a", bits);
        let b = nl.add_input_bus("b", bits);
        let cin = nl.add_input("cin");

        let mut sum_bits = Vec::with_capacity(bits);
        let mut carry = cin;
        let mut bit = 0usize;
        let mut block = 0usize;
        while bit < bits {
            let width = (bits - bit).min(block_size);
            let a_slice = Bus::new((0..width).map(|k| a.bit(bit + k)).collect());
            let b_slice = Bus::new((0..width).map(|k| b.bit(bit + k)).collect());
            if block == 0 {
                // The first block sees the true carry-in directly.
                let ports = build_rca(
                    &mut nl,
                    &a_slice,
                    &b_slice,
                    carry,
                    &format!("blk{block}"),
                    style,
                );
                sum_bits.extend(ports.sum.bits().iter().copied());
                carry = ports.cout;
            } else {
                // Speculative blocks: one copy assumes carry-in 0, the other 1.
                let zero = nl.constant(false, &format!("blk{block}_c0"));
                let one = nl.constant(true, &format!("blk{block}_c1"));
                let lo = build_rca(
                    &mut nl,
                    &a_slice,
                    &b_slice,
                    zero,
                    &format!("blk{block}_lo"),
                    style,
                );
                let hi = build_rca(
                    &mut nl,
                    &a_slice,
                    &b_slice,
                    one,
                    &format!("blk{block}_hi"),
                    style,
                );
                for k in 0..width {
                    sum_bits.push(nl.mux2(
                        carry,
                        lo.sum.bit(k),
                        hi.sum.bit(k),
                        &format!("sum[{}]", bit + k),
                    ));
                }
                carry = nl.mux2(carry, lo.cout, hi.cout, &format!("blk{block}_cout"));
            }
            bit += width;
            block += 1;
        }

        let sum = Bus::new(sum_bits);
        nl.mark_output_bus(&sum);
        nl.mark_output(carry);
        CarrySelectAdder {
            netlist: nl,
            a,
            b,
            cin,
            sum,
            cout: carry,
            block_size,
        }
    }

    /// Adder width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.a.width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rca::RippleCarryAdder;
    use glitch_sim::{ClockedSimulator, InputAssignment, UnitDelay};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[allow(clippy::too_many_arguments)]
    fn check_adder(
        netlist: &Netlist,
        a: &Bus,
        b: &Bus,
        cin: NetId,
        sum: &Bus,
        cout: NetId,
        bits: usize,
        exhaustive: bool,
    ) {
        netlist.validate().unwrap();
        let mut sim = ClockedSimulator::new(netlist, UnitDelay).unwrap();
        let mut cases: Vec<(u64, u64, bool)> = Vec::new();
        if exhaustive {
            for x in 0..(1u64 << bits) {
                for y in 0..(1u64 << bits) {
                    cases.push((x, y, x % 2 == 0));
                }
            }
        } else {
            let mut rng = StdRng::seed_from_u64(31);
            let mask = (1u64 << bits) - 1;
            for _ in 0..200 {
                cases.push((rng.gen::<u64>() & mask, rng.gen::<u64>() & mask, rng.gen()));
            }
        }
        for (x, y, c) in cases {
            sim.step(
                InputAssignment::new()
                    .with_bus(a, x)
                    .with_bus(b, y)
                    .with(cin, c),
            )
            .unwrap();
            let got =
                sim.bus_value(sum).unwrap() + (u64::from(sim.net_bool(cout).unwrap()) << bits);
            assert_eq!(got, x + y + u64::from(c), "{x} + {y} + {c}");
        }
    }

    #[test]
    fn carry_lookahead_is_exact_for_all_4_bit_inputs() {
        let adder = CarryLookaheadAdder::new(4);
        check_adder(
            &adder.netlist,
            &adder.a,
            &adder.b,
            adder.cin,
            &adder.sum,
            adder.cout,
            4,
            true,
        );
        assert_eq!(adder.width(), 4);
    }

    #[test]
    fn carry_lookahead_is_exact_for_random_16_bit_inputs() {
        let adder = CarryLookaheadAdder::new(16);
        check_adder(
            &adder.netlist,
            &adder.a,
            &adder.b,
            adder.cin,
            &adder.sum,
            adder.cout,
            16,
            false,
        );
    }

    #[test]
    fn carry_lookahead_handles_widths_that_are_not_multiples_of_four() {
        for bits in [1usize, 3, 6, 13] {
            let adder = CarryLookaheadAdder::new(bits);
            check_adder(
                &adder.netlist,
                &adder.a,
                &adder.b,
                adder.cin,
                &adder.sum,
                adder.cout,
                bits,
                bits <= 4,
            );
        }
    }

    #[test]
    fn carry_select_is_exact_for_all_4_bit_inputs() {
        let adder = CarrySelectAdder::new(4, 2, AdderStyle::CompoundCell);
        check_adder(
            &adder.netlist,
            &adder.a,
            &adder.b,
            adder.cin,
            &adder.sum,
            adder.cout,
            4,
            true,
        );
        assert_eq!(adder.block_size, 2);
        assert_eq!(adder.width(), 4);
    }

    #[test]
    fn carry_select_is_exact_for_random_16_bit_inputs_in_both_styles() {
        for style in AdderStyle::all() {
            let adder = CarrySelectAdder::new(16, 4, style);
            check_adder(
                &adder.netlist,
                &adder.a,
                &adder.b,
                adder.cin,
                &adder.sum,
                adder.cout,
                16,
                false,
            );
        }
    }

    #[test]
    fn lookahead_is_much_shallower_than_ripple() {
        let rca = RippleCarryAdder::new(16, AdderStyle::CompoundCell);
        let cla = CarryLookaheadAdder::new(16);
        let csla = CarrySelectAdder::new(16, 4, AdderStyle::CompoundCell);
        let rca_depth = rca.netlist.combinational_depth().unwrap();
        let cla_depth = cla.netlist.combinational_depth().unwrap();
        let csla_depth = csla.netlist.combinational_depth().unwrap();
        assert!(cla_depth < rca_depth, "cla {cla_depth} vs rca {rca_depth}");
        assert!(
            csla_depth < rca_depth,
            "csla {csla_depth} vs rca {rca_depth}"
        );
    }
}
