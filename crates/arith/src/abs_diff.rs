//! Subtractors and absolute-difference units — the front end of the
//! direction detector (Figure 8 of the paper).

use glitch_netlist::{Bus, NetId, Netlist};

use crate::rca::build_rca;
use crate::style::AdderStyle;

/// Ports of a subtractor built by [`build_subtractor`].
#[derive(Debug, Clone)]
pub struct SubtractorPorts {
    /// Difference bits `a - b` (two's complement, truncated to the operand
    /// width), LSB first.
    pub difference: Bus,
    /// High when `a >= b` (i.e. no borrow occurred).
    pub no_borrow: NetId,
}

/// Ports of an absolute-difference unit built by [`build_abs_diff`].
#[derive(Debug, Clone)]
pub struct AbsDiffPorts {
    /// `|a - b|`, LSB first.
    pub magnitude: Bus,
    /// High when `a >= b`.
    pub a_ge_b: NetId,
}

/// Builds `a - b` as `a + !b + 1` with a ripple-carry adder. The adder's
/// carry out doubles as the "no borrow" (`a >= b`) flag.
///
/// # Panics
///
/// Panics if the operand widths differ or are zero.
pub fn build_subtractor(
    nl: &mut Netlist,
    a: &Bus,
    b: &Bus,
    prefix: &str,
    style: AdderStyle,
) -> SubtractorPorts {
    assert_eq!(a.width(), b.width(), "operand widths differ");
    let b_inverted = Bus::new(
        b.bits()
            .iter()
            .enumerate()
            .map(|(i, &bit)| nl.inv(bit, &format!("{prefix}_nb{i}")))
            .collect(),
    );
    let one = nl.constant(true, &format!("{prefix}_one"));
    let ports = build_rca(nl, a, &b_inverted, one, prefix, style);
    SubtractorPorts {
        difference: ports.sum,
        no_borrow: ports.cout,
    }
}

/// Builds `|a - b|` by computing both `a - b` and `b - a` and selecting the
/// non-negative one with the borrow flag — the structure used by the
/// direction detector's difference stage.
///
/// # Panics
///
/// Panics if the operand widths differ or are zero.
pub fn build_abs_diff(
    nl: &mut Netlist,
    a: &Bus,
    b: &Bus,
    prefix: &str,
    style: AdderStyle,
) -> AbsDiffPorts {
    let ab = build_subtractor(nl, a, b, &format!("{prefix}_ab"), style);
    let ba = build_subtractor(nl, b, a, &format!("{prefix}_ba"), style);
    // When a >= b take (a - b), otherwise take (b - a). Mux semantics:
    // sel = 0 selects the first data input.
    let magnitude = Bus::new(
        (0..a.width())
            .map(|i| {
                nl.mux2(
                    ab.no_borrow,
                    ba.difference.bit(i),
                    ab.difference.bit(i),
                    &format!("{prefix}_m{i}"),
                )
            })
            .collect(),
    );
    AbsDiffPorts {
        magnitude,
        a_ge_b: ab.no_borrow,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitch_sim::{ClockedSimulator, InputAssignment, UnitDelay};

    fn abs_diff_circuit(bits: usize) -> (Netlist, Bus, Bus, AbsDiffPorts) {
        let mut nl = Netlist::new("absdiff");
        let a = nl.add_input_bus("a", bits);
        let b = nl.add_input_bus("b", bits);
        let ports = build_abs_diff(&mut nl, &a, &b, "d", AdderStyle::CompoundCell);
        nl.mark_output_bus(&ports.magnitude);
        nl.mark_output(ports.a_ge_b);
        (nl, a, b, ports)
    }

    #[test]
    fn subtractor_matches_wrapping_subtraction() {
        let mut nl = Netlist::new("sub");
        let a = nl.add_input_bus("a", 4);
        let b = nl.add_input_bus("b", 4);
        let ports = build_subtractor(&mut nl, &a, &b, "s", AdderStyle::CompoundCell);
        nl.mark_output_bus(&ports.difference);
        nl.mark_output(ports.no_borrow);
        let mut sim = ClockedSimulator::new(&nl, UnitDelay).unwrap();
        for av in 0..16u64 {
            for bv in 0..16u64 {
                sim.step(InputAssignment::new().with_bus(&a, av).with_bus(&b, bv))
                    .unwrap();
                let diff = sim.bus_value(&ports.difference).unwrap();
                let no_borrow = sim.net_bool(ports.no_borrow).unwrap();
                assert_eq!(diff, (av.wrapping_sub(bv)) & 0xF, "a={av} b={bv}");
                assert_eq!(no_borrow, av >= bv, "a={av} b={bv}");
            }
        }
    }

    #[test]
    fn absolute_difference_is_exact_for_all_4_bit_pairs() {
        let (nl, a, b, ports) = abs_diff_circuit(4);
        nl.validate().unwrap();
        let mut sim = ClockedSimulator::new(&nl, UnitDelay).unwrap();
        for av in 0..16u64 {
            for bv in 0..16u64 {
                sim.step(InputAssignment::new().with_bus(&a, av).with_bus(&b, bv))
                    .unwrap();
                let got = sim.bus_value(&ports.magnitude).unwrap();
                assert_eq!(got, av.abs_diff(bv), "a={av} b={bv}");
                assert_eq!(sim.net_bool(ports.a_ge_b).unwrap(), av >= bv);
            }
        }
    }

    #[test]
    fn abs_diff_spot_checks_at_8_bits() {
        let (nl, a, b, ports) = abs_diff_circuit(8);
        let mut sim = ClockedSimulator::new(&nl, UnitDelay).unwrap();
        for (av, bv) in [(0u64, 255u64), (255, 0), (200, 200), (17, 113), (250, 249)] {
            sim.step(InputAssignment::new().with_bus(&a, av).with_bus(&b, bv))
                .unwrap();
            assert_eq!(sim.bus_value(&ports.magnitude).unwrap(), av.abs_diff(bv));
        }
    }

    #[test]
    #[should_panic(expected = "widths differ")]
    fn mismatched_widths_are_rejected() {
        let mut nl = Netlist::new("bad");
        let a = nl.add_input_bus("a", 4);
        let b = nl.add_input_bus("b", 5);
        let _ = build_abs_diff(&mut nl, &a, &b, "d", AdderStyle::CompoundCell);
    }
}
