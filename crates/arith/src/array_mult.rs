//! Carry-save array multiplier — Figure 6 of the paper.
//!
//! The array multiplier is the "many unbalanced delay paths" architecture of
//! the comparison in section 4.1: partial products ripple through a
//! rectangular array of multiplier cells (AND gate + full adder) row by row,
//! and a final ripple-carry adder resolves the carries of the last row. Data
//! arriving early at the top-left cells races data arriving late from long
//! ripple paths, which is exactly what produces the large useless-transition
//! counts of Table 1.

use glitch_netlist::{Bus, NetId, Netlist};

use crate::cells::full_adder_bit;
use crate::rca::build_rca;
use crate::style::AdderStyle;

/// An unsigned N×N carry-save array multiplier with a final ripple-carry
/// adder row.
#[derive(Debug, Clone)]
pub struct ArrayMultiplier {
    /// The generated netlist.
    pub netlist: Netlist,
    /// Multiplicand input bus (`X` in Figure 6).
    pub x: Bus,
    /// Multiplier input bus (`Y` in Figure 6).
    pub y: Bus,
    /// Product output bus, `2N` bits, LSB first.
    pub product: Bus,
}

impl ArrayMultiplier {
    /// Builds an `bits × bits` array multiplier for unsigned operands.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is smaller than 2.
    #[must_use]
    pub fn new(bits: usize, style: AdderStyle) -> Self {
        assert!(bits >= 2, "array multiplier needs at least 2 bits");
        let n = bits;
        let mut nl = Netlist::new(format!("array_mult_{n}x{n}"));
        let x = nl.add_input_bus("x", n);
        let y = nl.add_input_bus("y", n);
        let zero = nl.constant(false, "zero");

        let partial = |nl: &mut Netlist, i: usize, j: usize| -> NetId {
            nl.and2(y.bit(i), x.bit(j), &format!("pp_{i}_{j}"))
        };

        // Virtual row 0 is just the first partial-product row; cells of row i
        // (i >= 1) combine their own partial product with the sum of the
        // cell diagonally above and the carry of the cell directly above.
        let mut prev_sum: Vec<NetId> = (0..n).map(|j| partial(&mut nl, 0, j)).collect();
        let mut prev_carry: Vec<NetId> = vec![zero; n];
        let mut product_bits: Vec<NetId> = vec![prev_sum[0]];

        for i in 1..n {
            let mut cur_sum = Vec::with_capacity(n);
            let mut cur_carry = Vec::with_capacity(n);
            for j in 0..n {
                let p = partial(&mut nl, i, j);
                let above_sum = if j + 1 < n { prev_sum[j + 1] } else { zero };
                let above_carry = prev_carry[j];
                let (s, c) = full_adder_bit(
                    &mut nl,
                    p,
                    above_sum,
                    above_carry,
                    &format!("cell_{i}_{j}"),
                    style,
                );
                cur_sum.push(s);
                cur_carry.push(c);
            }
            product_bits.push(cur_sum[0]);
            prev_sum = cur_sum;
            prev_carry = cur_carry;
        }

        // Final ripple-carry adder over the surviving sum and carry bits of
        // the last row (weights N .. 2N-1).
        let mut a_bits: Vec<NetId> = prev_sum[1..].to_vec();
        a_bits.push(zero);
        let a_bus = Bus::new(a_bits);
        let b_bus = Bus::new(prev_carry);
        let final_add = build_rca(&mut nl, &a_bus, &b_bus, zero, "final", style);
        product_bits.extend(final_add.sum.bits().iter().copied());

        let product = Bus::new(product_bits);
        nl.mark_output_bus(&product);
        ArrayMultiplier {
            netlist: nl,
            x,
            y,
            product,
        }
    }

    /// Operand width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.x.width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitch_sim::{ClockedSimulator, InputAssignment, UnitDelay};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn exhaustive_4x4_products_are_exact() {
        let mult = ArrayMultiplier::new(4, AdderStyle::CompoundCell);
        mult.netlist.validate().unwrap();
        assert_eq!(mult.product.width(), 8);
        let mut sim = ClockedSimulator::new(&mult.netlist, UnitDelay).unwrap();
        for a in 0..16u64 {
            for b in 0..16u64 {
                sim.step(
                    InputAssignment::new()
                        .with_bus(&mult.x, a)
                        .with_bus(&mult.y, b),
                )
                .unwrap();
                assert_eq!(sim.bus_value(&mult.product).unwrap(), a * b, "{a} * {b}");
            }
        }
    }

    #[test]
    fn random_8x8_products_are_exact_in_both_styles() {
        for style in AdderStyle::all() {
            let mult = ArrayMultiplier::new(8, style);
            let mut sim = ClockedSimulator::new(&mult.netlist, UnitDelay).unwrap();
            let mut rng = StdRng::seed_from_u64(11);
            for _ in 0..100 {
                let a: u64 = rng.gen_range(0..256);
                let b: u64 = rng.gen_range(0..256);
                sim.step(
                    InputAssignment::new()
                        .with_bus(&mult.x, a)
                        .with_bus(&mult.y, b),
                )
                .unwrap();
                assert_eq!(
                    sim.bus_value(&mult.product).unwrap(),
                    a * b,
                    "{a} * {b} ({style:?})"
                );
            }
        }
    }

    #[test]
    fn structure_is_deeply_unbalanced() {
        let mult = ArrayMultiplier::new(8, AdderStyle::CompoundCell);
        // The carry/sum ripple path grows with both dimensions of the array;
        // it must be much deeper than the Wallace tree of the same size.
        let depth = mult.netlist.combinational_depth().unwrap();
        assert!(depth >= 2 * 8, "depth {depth}");
        assert_eq!(mult.width(), 8);
    }

    #[test]
    #[should_panic(expected = "at least 2 bits")]
    fn tiny_widths_are_rejected() {
        let _ = ArrayMultiplier::new(1, AdderStyle::CompoundCell);
    }
}
