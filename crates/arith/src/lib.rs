//! # glitch-arith
//!
//! Gate-level generators for the circuits the DATE'95 glitch paper
//! evaluates:
//!
//! * [`RippleCarryAdder`] — the N-bit adder of section 3 (probability
//!   analysis and the Figure 5 histogram),
//! * [`ArrayMultiplier`] and [`WallaceTreeMultiplier`] — the delay-imbalance
//!   comparison of section 4.1 (Tables 1 and 2),
//! * [`DirectionDetector`] — the Phideo video-processing unit of section 4.2
//!   and the retiming/power experiment of section 5,
//! * reusable datapath pieces ([`build_rca`], [`build_abs_diff`],
//!   [`build_min_max`], …) for composing further circuits.
//!
//! Every generator produces a plain [`glitch_netlist::Netlist`] plus named
//! port buses, so the circuits can be simulated, retimed and power-analysed
//! by the other crates in the workspace.
//!
//! ## Example
//!
//! ```
//! use glitch_arith::{AdderStyle, RippleCarryAdder};
//!
//! let adder = RippleCarryAdder::new(8, AdderStyle::CompoundCell);
//! assert_eq!(adder.a.width(), 8);
//! assert_eq!(adder.sum.width(), 8);
//! assert_eq!(adder.netlist.dff_count(), 0);
//! adder.netlist.validate().unwrap();
//! ```

mod abs_diff;
mod adders;
mod array_mult;
mod cells;
mod compare;
mod direction;
mod rca;
mod style;
mod wallace;

pub use abs_diff::{build_abs_diff, build_subtractor, AbsDiffPorts, SubtractorPorts};
pub use adders::{CarryLookaheadAdder, CarrySelectAdder};
pub use array_mult::ArrayMultiplier;
pub use compare::{build_greater_equal, build_min_max, MinMaxPorts};
pub use direction::DirectionDetector;
pub use rca::{build_rca, RcaPorts, RippleCarryAdder};
pub use style::AdderStyle;
pub use wallace::WallaceTreeMultiplier;
