//! Structural style of adder cells.

/// How full adders (and half adders) are instantiated by the generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AdderStyle {
    /// One compound `FA`/`HA` cell per bit. This matches the paper's
    /// "multiplier cell" abstraction and lets a delay model give the sum and
    /// carry outputs different delays (`d_sum = 2·d_carry`, Table 2).
    #[default]
    CompoundCell,
    /// Expand every adder into XOR/AND/OR gates. Useful when a strictly
    /// gate-level netlist is wanted (e.g. to stress the retimer with more
    /// vertices).
    Gates,
}

impl AdderStyle {
    /// All supported styles, for parameter sweeps.
    #[must_use]
    pub fn all() -> [AdderStyle; 2] {
        [AdderStyle::CompoundCell, AdderStyle::Gates]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_compound() {
        assert_eq!(AdderStyle::default(), AdderStyle::CompoundCell);
        assert_eq!(AdderStyle::all().len(), 2);
    }
}
