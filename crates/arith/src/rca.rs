//! Ripple-carry adders.

use glitch_netlist::{Bus, NetId, Netlist};

use crate::cells::full_adder_bit;
use crate::style::AdderStyle;

/// Ports of a ripple-carry adder built into an existing netlist by
/// [`build_rca`].
#[derive(Debug, Clone)]
pub struct RcaPorts {
    /// Sum bits, LSB first.
    pub sum: Bus,
    /// Internal carry nets `C1..CN` (carry out of each full adder), LSB
    /// first. `carries.bit(i)` is the carry out of full adder `FAi`.
    pub carries: Bus,
    /// Final carry out (same net as the last element of `carries`).
    pub cout: NetId,
}

/// Builds an N-bit ripple-carry adder `sum = a + b + cin` into an existing
/// netlist and returns its ports. `a` and `b` must have the same width.
///
/// # Panics
///
/// Panics if the buses are empty or have different widths.
pub fn build_rca(
    nl: &mut Netlist,
    a: &Bus,
    b: &Bus,
    cin: NetId,
    prefix: &str,
    style: AdderStyle,
) -> RcaPorts {
    assert!(!a.bits().is_empty(), "adder width must be at least 1");
    assert_eq!(a.width(), b.width(), "operand widths differ");
    let mut sum_bits = Vec::with_capacity(a.width());
    let mut carry_bits = Vec::with_capacity(a.width());
    let mut carry = cin;
    for i in 0..a.width() {
        let (s, c) = full_adder_bit(
            nl,
            a.bit(i),
            b.bit(i),
            carry,
            &format!("{prefix}_fa{i}"),
            style,
        );
        sum_bits.push(s);
        carry_bits.push(c);
        carry = c;
    }
    RcaPorts {
        sum: Bus::new(sum_bits),
        carries: Bus::new(carry_bits),
        cout: carry,
    }
}

/// A standalone N-bit ripple-carry adder circuit with primary-input operands
/// — the test vehicle of section 3 of the paper.
#[derive(Debug, Clone)]
pub struct RippleCarryAdder {
    /// The generated netlist.
    pub netlist: Netlist,
    /// Operand A input bus.
    pub a: Bus,
    /// Operand B input bus.
    pub b: Bus,
    /// Carry-in input.
    pub cin: NetId,
    /// Sum output bus.
    pub sum: Bus,
    /// Internal carries `C1..CN`.
    pub carries: Bus,
    /// Carry out.
    pub cout: NetId,
}

impl RippleCarryAdder {
    /// Builds an `bits`-bit ripple-carry adder whose operands are primary
    /// inputs (new values arrive at the start of every clock cycle, exactly
    /// the unit-delay setting of section 3).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    #[must_use]
    pub fn new(bits: usize, style: AdderStyle) -> Self {
        let mut nl = Netlist::new(format!("rca{bits}"));
        let a = nl.add_input_bus("a", bits);
        let b = nl.add_input_bus("b", bits);
        let cin = nl.add_input("cin");
        let ports = build_rca(&mut nl, &a, &b, cin, "add", style);
        nl.mark_output_bus(&ports.sum);
        nl.mark_output(ports.cout);
        RippleCarryAdder {
            netlist: nl,
            a,
            b,
            cin,
            sum: ports.sum,
            carries: ports.carries,
            cout: ports.cout,
        }
    }

    /// Adder width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.a.width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitch_sim::{
        ClockedSimulator, ExhaustiveStimulus, InputAssignment, StimulusProgram, UnitDelay,
    };

    fn check_functionality(bits: usize, style: AdderStyle) {
        let adder = RippleCarryAdder::new(bits, style);
        adder.netlist.validate().unwrap();
        let mut sim = ClockedSimulator::new(&adder.netlist, UnitDelay).unwrap();
        let mut gen = ExhaustiveStimulus::new(vec![adder.a.clone(), adder.b.clone()]);
        while let Some(mut vector) = gen.next_vector() {
            vector.set(adder.cin, false);
            sim.step(vector).unwrap();
            let a = sim.bus_value(&adder.a).unwrap();
            let b = sim.bus_value(&adder.b).unwrap();
            let sum = sim.bus_value(&adder.sum).unwrap();
            let cout = u64::from(sim.net_bool(adder.cout).unwrap());
            assert_eq!(sum + (cout << bits), a + b, "a={a} b={b}");
        }
    }

    #[test]
    fn compound_cell_adder_is_functionally_correct() {
        check_functionality(4, AdderStyle::CompoundCell);
    }

    #[test]
    fn gate_level_adder_is_functionally_correct() {
        check_functionality(4, AdderStyle::Gates);
    }

    #[test]
    fn carry_in_is_honoured() {
        let adder = RippleCarryAdder::new(6, AdderStyle::CompoundCell);
        let mut sim = ClockedSimulator::new(&adder.netlist, UnitDelay).unwrap();
        sim.step(
            InputAssignment::new()
                .with_bus(&adder.a, 13)
                .with_bus(&adder.b, 29)
                .with(adder.cin, true),
        )
        .unwrap();
        assert_eq!(sim.bus_value(&adder.sum).unwrap(), 43);
    }

    #[test]
    fn structure_matches_width() {
        use glitch_netlist::CellKind;
        let adder = RippleCarryAdder::new(16, AdderStyle::CompoundCell);
        let stats = adder.netlist.stats();
        assert_eq!(stats.count_of(CellKind::FullAdder), 16);
        assert_eq!(adder.carries.width(), 16);
        assert_eq!(adder.cout, adder.carries.bit(15));
        // The ripple chain is the critical path: depth equals the bit count.
        assert_eq!(adder.netlist.combinational_depth().unwrap(), 16);
        assert_eq!(adder.width(), 16);
    }

    #[test]
    fn gate_style_has_no_compound_cells() {
        use glitch_netlist::CellKind;
        let adder = RippleCarryAdder::new(8, AdderStyle::Gates);
        let stats = adder.netlist.stats();
        assert_eq!(stats.count_of(CellKind::FullAdder), 0);
        assert_eq!(stats.count_of(CellKind::Xor), 16);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_width_is_rejected() {
        let mut nl = Netlist::new("t");
        let cin = nl.add_input("cin");
        let empty = Bus::new(vec![]);
        let _ = build_rca(&mut nl, &empty, &empty, cin, "x", AdderStyle::CompoundCell);
    }
}
