//! Magnitude comparison and min/max selection — the middle stage of the
//! direction detector (Figure 8 of the paper).

use glitch_netlist::{Bus, NetId, Netlist};

use crate::abs_diff::build_subtractor;
use crate::style::AdderStyle;

/// Ports of a min/max selector built by [`build_min_max`].
#[derive(Debug, Clone)]
pub struct MinMaxPorts {
    /// Element-wise minimum of the two operands.
    pub min: Bus,
    /// Element-wise maximum of the two operands.
    pub max: Bus,
    /// High when the first operand is greater than or equal to the second.
    pub a_ge_b: NetId,
}

/// Builds an unsigned `a >= b` comparator (a subtractor whose borrow output
/// is the answer) and returns the flag net.
///
/// # Panics
///
/// Panics if the operand widths differ or are zero.
pub fn build_greater_equal(
    nl: &mut Netlist,
    a: &Bus,
    b: &Bus,
    prefix: &str,
    style: AdderStyle,
) -> NetId {
    build_subtractor(nl, a, b, prefix, style).no_borrow
}

/// Builds a min/max selector: compares the operands and routes each to the
/// appropriate output with a row of multiplexers.
///
/// # Panics
///
/// Panics if the operand widths differ or are zero.
pub fn build_min_max(
    nl: &mut Netlist,
    a: &Bus,
    b: &Bus,
    prefix: &str,
    style: AdderStyle,
) -> MinMaxPorts {
    let a_ge_b = build_greater_equal(nl, a, b, &format!("{prefix}_cmp"), style);
    // sel = 0 picks the first data input of the mux.
    let min = Bus::new(
        (0..a.width())
            .map(|i| nl.mux2(a_ge_b, a.bit(i), b.bit(i), &format!("{prefix}_min{i}")))
            .collect(),
    );
    let max = Bus::new(
        (0..a.width())
            .map(|i| nl.mux2(a_ge_b, b.bit(i), a.bit(i), &format!("{prefix}_max{i}")))
            .collect(),
    );
    MinMaxPorts { min, max, a_ge_b }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitch_sim::{ClockedSimulator, InputAssignment, UnitDelay};

    #[test]
    fn comparator_is_exact_for_all_4_bit_pairs() {
        let mut nl = Netlist::new("cmp");
        let a = nl.add_input_bus("a", 4);
        let b = nl.add_input_bus("b", 4);
        let ge = build_greater_equal(&mut nl, &a, &b, "c", AdderStyle::CompoundCell);
        nl.mark_output(ge);
        let mut sim = ClockedSimulator::new(&nl, UnitDelay).unwrap();
        for av in 0..16u64 {
            for bv in 0..16u64 {
                sim.step(InputAssignment::new().with_bus(&a, av).with_bus(&b, bv))
                    .unwrap();
                assert_eq!(sim.net_bool(ge).unwrap(), av >= bv, "a={av} b={bv}");
            }
        }
    }

    #[test]
    fn min_max_routes_operands_correctly() {
        let mut nl = Netlist::new("minmax");
        let a = nl.add_input_bus("a", 5);
        let b = nl.add_input_bus("b", 5);
        let ports = build_min_max(&mut nl, &a, &b, "mm", AdderStyle::CompoundCell);
        nl.mark_output_bus(&ports.min);
        nl.mark_output_bus(&ports.max);
        nl.validate().unwrap();
        let mut sim = ClockedSimulator::new(&nl, UnitDelay).unwrap();
        for (av, bv) in [(0u64, 31u64), (31, 0), (12, 12), (7, 23), (30, 29)] {
            sim.step(InputAssignment::new().with_bus(&a, av).with_bus(&b, bv))
                .unwrap();
            assert_eq!(
                sim.bus_value(&ports.min).unwrap(),
                av.min(bv),
                "a={av} b={bv}"
            );
            assert_eq!(
                sim.bus_value(&ports.max).unwrap(),
                av.max(bv),
                "a={av} b={bv}"
            );
            assert_eq!(sim.net_bool(ports.a_ge_b).unwrap(), av >= bv);
        }
    }
}
