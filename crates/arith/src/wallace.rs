//! Wallace-tree multiplier — Figure 7 of the paper.
//!
//! The Wallace tree is the "balanced" architecture of the section 4.1
//! comparison: all partial products are generated in parallel, reduced by
//! layers of carry-save (3:2) compressors whose depth grows only
//! logarithmically with the operand width, and summed by one final
//! ripple-carry adder. Because all paths through the reduction tree have
//! nearly the same length, far fewer useless transitions occur than in the
//! array multiplier.

use glitch_netlist::{Bus, NetId, Netlist};

use crate::cells::{full_adder_bit, half_adder_bit};
use crate::rca::build_rca;
use crate::style::AdderStyle;

/// An unsigned N×N Wallace-tree multiplier.
#[derive(Debug, Clone)]
pub struct WallaceTreeMultiplier {
    /// The generated netlist.
    pub netlist: Netlist,
    /// Multiplicand input bus.
    pub x: Bus,
    /// Multiplier input bus.
    pub y: Bus,
    /// Product output bus, `2N` bits, LSB first.
    pub product: Bus,
    /// Number of carry-save reduction layers that were needed.
    pub reduction_layers: usize,
}

impl WallaceTreeMultiplier {
    /// Builds an `bits × bits` Wallace-tree multiplier for unsigned
    /// operands.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is smaller than 2.
    #[must_use]
    pub fn new(bits: usize, style: AdderStyle) -> Self {
        assert!(bits >= 2, "wallace multiplier needs at least 2 bits");
        let n = bits;
        let width = 2 * n;
        let mut nl = Netlist::new(format!("wallace_mult_{n}x{n}"));
        let x = nl.add_input_bus("x", n);
        let y = nl.add_input_bus("y", n);

        // Partial products grouped into columns by weight. Columns above
        // `width - 1` can only ever carry bits that are provably zero (the
        // product fits in 2N bits); they are kept so the netlist stays
        // structurally complete but are not part of the product.
        let mut columns: Vec<Vec<NetId>> = vec![Vec::new(); width + 1];
        for i in 0..n {
            for j in 0..n {
                let pp = nl.and2(y.bit(i), x.bit(j), &format!("pp_{i}_{j}"));
                columns[i + j].push(pp);
            }
        }

        fn push_bit(columns: &mut Vec<Vec<NetId>>, weight: usize, bit: NetId) {
            while columns.len() <= weight {
                columns.push(Vec::new());
            }
            columns[weight].push(bit);
        }

        // Carry-save reduction: compress every column with full adders
        // (3 bits -> sum + carry) and half adders (2 bits) until no column
        // holds more than two bits.
        let mut layers = 0usize;
        while columns.iter().any(|c| c.len() > 2) {
            layers += 1;
            let mut next: Vec<Vec<NetId>> = vec![Vec::new(); columns.len()];
            for (w, col) in columns.iter().enumerate() {
                let mut idx = 0usize;
                while col.len() - idx >= 3 {
                    let (s, c) = full_adder_bit(
                        &mut nl,
                        col[idx],
                        col[idx + 1],
                        col[idx + 2],
                        &format!("csa{layers}_{w}_{idx}"),
                        style,
                    );
                    push_bit(&mut next, w, s);
                    push_bit(&mut next, w + 1, c);
                    idx += 3;
                }
                if col.len() - idx == 2 {
                    let (s, c) = half_adder_bit(
                        &mut nl,
                        col[idx],
                        col[idx + 1],
                        &format!("ha{layers}_{w}_{idx}"),
                        style,
                    );
                    push_bit(&mut next, w, s);
                    push_bit(&mut next, w + 1, c);
                } else if col.len() - idx == 1 {
                    push_bit(&mut next, w, col[idx]);
                }
            }
            columns = next;
        }

        // Final carry-propagate addition of the two remaining rows. Columns
        // below the first two-bit column are already final product bits.
        let zero = nl.constant(false, "zero");
        let first_wide = columns
            .iter()
            .take(width)
            .position(|c| c.len() == 2)
            .unwrap_or(width);
        let mut product_bits: Vec<NetId> = Vec::with_capacity(width);
        for col in columns.iter().take(first_wide) {
            product_bits.push(col.first().copied().unwrap_or(zero));
        }
        if first_wide < width {
            let a_bits: Vec<NetId> = (first_wide..width)
                .map(|w| columns[w].first().copied().unwrap_or(zero))
                .collect();
            let b_bits: Vec<NetId> = (first_wide..width)
                .map(|w| columns[w].get(1).copied().unwrap_or(zero))
                .collect();
            let final_add = build_rca(
                &mut nl,
                &Bus::new(a_bits),
                &Bus::new(b_bits),
                zero,
                "final",
                style,
            );
            product_bits.extend(final_add.sum.bits().iter().copied());
        }

        let product = Bus::new(product_bits);
        nl.mark_output_bus(&product);
        WallaceTreeMultiplier {
            netlist: nl,
            x,
            y,
            product,
            reduction_layers: layers,
        }
    }

    /// Operand width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.x.width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array_mult::ArrayMultiplier;
    use glitch_sim::{ClockedSimulator, InputAssignment, UnitDelay};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn exhaustive_4x4_products_are_exact() {
        let mult = WallaceTreeMultiplier::new(4, AdderStyle::CompoundCell);
        mult.netlist.validate().unwrap();
        assert_eq!(mult.product.width(), 8);
        let mut sim = ClockedSimulator::new(&mult.netlist, UnitDelay).unwrap();
        for a in 0..16u64 {
            for b in 0..16u64 {
                sim.step(
                    InputAssignment::new()
                        .with_bus(&mult.x, a)
                        .with_bus(&mult.y, b),
                )
                .unwrap();
                assert_eq!(sim.bus_value(&mult.product).unwrap(), a * b, "{a} * {b}");
            }
        }
    }

    #[test]
    fn random_8x8_products_are_exact_in_both_styles() {
        for style in AdderStyle::all() {
            let mult = WallaceTreeMultiplier::new(8, style);
            let mut sim = ClockedSimulator::new(&mult.netlist, UnitDelay).unwrap();
            let mut rng = StdRng::seed_from_u64(23);
            for _ in 0..100 {
                let a: u64 = rng.gen_range(0..256);
                let b: u64 = rng.gen_range(0..256);
                sim.step(
                    InputAssignment::new()
                        .with_bus(&mult.x, a)
                        .with_bus(&mult.y, b),
                )
                .unwrap();
                assert_eq!(
                    sim.bus_value(&mult.product).unwrap(),
                    a * b,
                    "{a} * {b} ({style:?})"
                );
            }
        }
    }

    #[test]
    fn random_16x16_products_are_exact() {
        let mult = WallaceTreeMultiplier::new(16, AdderStyle::CompoundCell);
        let mut sim = ClockedSimulator::new(&mult.netlist, UnitDelay).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let a: u64 = rng.gen_range(0..65_536);
            let b: u64 = rng.gen_range(0..65_536);
            sim.step(
                InputAssignment::new()
                    .with_bus(&mult.x, a)
                    .with_bus(&mult.y, b),
            )
            .unwrap();
            assert_eq!(sim.bus_value(&mult.product).unwrap(), a * b, "{a} * {b}");
        }
    }

    #[test]
    fn tree_is_no_deeper_than_the_array_and_reduction_is_logarithmic() {
        // Both architectures end in a ripple-carry adder, so total depth is
        // comparable at 8x8; the structural difference that matters for
        // glitches is the balanced, logarithmic carry-save reduction versus
        // the array's linear row-by-row ripple. At 16x16 the gap in depth
        // becomes visible too.
        let wallace8 = WallaceTreeMultiplier::new(8, AdderStyle::CompoundCell);
        let array8 = ArrayMultiplier::new(8, AdderStyle::CompoundCell);
        assert!(
            wallace8.netlist.combinational_depth().unwrap()
                <= array8.netlist.combinational_depth().unwrap()
        );
        assert!(wallace8.reduction_layers >= 3);
        assert!(wallace8.reduction_layers <= 6);
        assert_eq!(wallace8.width(), 8);

        let wallace16 = WallaceTreeMultiplier::new(16, AdderStyle::CompoundCell);
        let array16 = ArrayMultiplier::new(16, AdderStyle::CompoundCell);
        assert!(
            wallace16.netlist.combinational_depth().unwrap()
                <= array16.netlist.combinational_depth().unwrap()
        );
        // The carry-save reduction is logarithmic in the operand width (the
        // array's equivalent stage is linear: 15 rows at 16x16).
        assert!(wallace16.reduction_layers <= 8);
    }
}
