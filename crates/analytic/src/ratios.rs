//! Equations 2–7: average transition ratios of ripple-carry adder signals
//! under uniformly random inputs.
//!
//! All functions take the full-adder index `i` (0-based). Full adder `FAi`
//! produces sum bit `S_i` and carry-out `C_{i+1}`; the "carry" functions
//! below therefore describe `C_{i+1}`.

/// Equation 3: average transitions per clock cycle on sum bit `S_i`:
/// `TR(S_i) = 5/4 − 3/4 · (1/2)^i`.
#[must_use]
pub fn transition_ratio_sum(i: u32) -> f64 {
    1.25 - 0.75 * 0.5f64.powi(i as i32)
}

/// Equation 2: average transitions per clock cycle on carry-out `C_{i+1}` of
/// full adder `FAi`: `TR(C_{i+1}) = 3/4 − 3/4 · (1/2)^{i+1}`.
#[must_use]
pub fn transition_ratio_carry(i: u32) -> f64 {
    0.75 - 0.75 * 0.5f64.powi(i as i32 + 1)
}

/// Equation 4: average useful transitions per cycle on `S_i`:
/// `UFTR(S_i) = 1/2`.
#[must_use]
pub fn useful_ratio_sum(_i: u32) -> f64 {
    0.5
}

/// Equation 5: average useless transitions per cycle on `S_i`:
/// `ULTR(S_i) = 3/4 − 3/4 · (1/2)^i`.
#[must_use]
pub fn useless_ratio_sum(i: u32) -> f64 {
    0.75 - 0.75 * 0.5f64.powi(i as i32)
}

/// Equation 6: average useful transitions per cycle on `C_{i+1}`:
/// `UFTR(C_{i+1}) = 1/2 − 1/2 · (1/4)^{i+1}`.
#[must_use]
pub fn useful_ratio_carry(i: u32) -> f64 {
    0.5 - 0.5 * 0.25f64.powi(i as i32 + 1)
}

/// Equation 7: average useless transitions per cycle on `C_{i+1}`:
/// `ULTR(C_{i+1}) = 1/2 · ((1/2)^{i+1} − 1/2) · ((1/2)^{i+1} − 1)`.
#[must_use]
pub fn useless_ratio_carry(i: u32) -> f64 {
    let x = 0.5f64.powi(i as i32 + 1);
    0.5 * (x - 0.5) * (x - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bit_zero_values() {
        // FA0 sees both operand bits at t = 0: exactly the behaviour of a
        // lone full adder. Sum toggles with probability 1/2, carry with
        // probability 3/8 per the closed forms.
        assert!((transition_ratio_sum(0) - 0.5).abs() < 1e-12);
        assert!((useless_ratio_sum(0) - 0.0).abs() < 1e-12);
        assert!((useful_ratio_sum(0) - 0.5).abs() < 1e-12);
        assert!((transition_ratio_carry(0) - 0.375).abs() < 1e-12);
        assert!((useful_ratio_carry(0) - 0.375).abs() < 1e-12);
        assert!((useless_ratio_carry(0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn asymptotic_values() {
        // Far from the LSB the ratios approach their limits: TR(S) -> 5/4,
        // TR(C) -> 3/4, UFTR(C) -> 1/2, ULTR(C) -> 1/4, ULTR(S) -> 3/4.
        assert!((transition_ratio_sum(60) - 1.25).abs() < 1e-9);
        assert!((transition_ratio_carry(60) - 0.75).abs() < 1e-9);
        assert!((useful_ratio_carry(60) - 0.5).abs() < 1e-9);
        assert!((useless_ratio_carry(60) - 0.25).abs() < 1e-9);
        assert!((useless_ratio_sum(60) - 0.75).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn useful_plus_useless_equals_total(i in 0u32..40) {
            let sum = useful_ratio_sum(i) + useless_ratio_sum(i);
            prop_assert!((sum - transition_ratio_sum(i)).abs() < 1e-12);
            let carry = useful_ratio_carry(i) + useless_ratio_carry(i);
            prop_assert!((carry - transition_ratio_carry(i)).abs() < 1e-12);
        }

        #[test]
        fn ratios_are_monotone_in_bit_position(i in 0u32..39) {
            // Higher-order bits see more carry ripple, so every ratio except
            // the constant UFTR(S) is non-decreasing in i.
            prop_assert!(transition_ratio_sum(i + 1) >= transition_ratio_sum(i));
            prop_assert!(transition_ratio_carry(i + 1) >= transition_ratio_carry(i));
            prop_assert!(useless_ratio_sum(i + 1) >= useless_ratio_sum(i));
            prop_assert!(useless_ratio_carry(i + 1) >= useless_ratio_carry(i) - 1e-15);
            prop_assert!(useful_ratio_carry(i + 1) >= useful_ratio_carry(i));
        }

        #[test]
        fn ratios_are_probability_like(i in 0u32..40) {
            for r in [
                transition_ratio_sum(i),
                transition_ratio_carry(i),
                useful_ratio_sum(i),
                useless_ratio_sum(i),
                useful_ratio_carry(i),
                useless_ratio_carry(i),
            ] {
                prop_assert!(r >= 0.0);
                prop_assert!(r <= 1.5);
            }
        }
    }
}
