//! Expected transition totals for an N-bit ripple-carry adder — the numbers
//! behind Figure 5 of the paper.

use crate::ratios::{
    transition_ratio_carry, transition_ratio_sum, useful_ratio_carry, useful_ratio_sum,
    useless_ratio_carry, useless_ratio_sum,
};

/// Expected activity of one bit position of the adder over a whole run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BitExpectation {
    /// Full-adder index (0 = least significant).
    pub bit: u32,
    /// Expected transitions on the sum output `S_i`.
    pub sum_transitions: f64,
    /// Expected useful transitions on `S_i`.
    pub sum_useful: f64,
    /// Expected useless transitions on `S_i`.
    pub sum_useless: f64,
    /// Expected transitions on the carry output `C_{i+1}`.
    pub carry_transitions: f64,
    /// Expected useful transitions on `C_{i+1}`.
    pub carry_useful: f64,
    /// Expected useless transitions on `C_{i+1}`.
    pub carry_useless: f64,
}

/// Expected transition totals of an N-bit ripple-carry adder driven with a
/// given number of uniformly random input vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct AdderExpectation {
    bits: Vec<BitExpectation>,
    vectors: u64,
}

impl AdderExpectation {
    /// Expected activity of an `bits`-bit ripple-carry adder over `vectors`
    /// random input vectors (one vector per clock cycle).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    #[must_use]
    pub fn ripple_carry(bits: u32, vectors: u64) -> Self {
        assert!(bits > 0, "an adder needs at least one bit");
        let v = vectors as f64;
        let rows = (0..bits)
            .map(|i| BitExpectation {
                bit: i,
                sum_transitions: transition_ratio_sum(i) * v,
                sum_useful: useful_ratio_sum(i) * v,
                sum_useless: useless_ratio_sum(i) * v,
                carry_transitions: transition_ratio_carry(i) * v,
                carry_useful: useful_ratio_carry(i) * v,
                carry_useless: useless_ratio_carry(i) * v,
            })
            .collect();
        AdderExpectation {
            bits: rows,
            vectors,
        }
    }

    /// Number of random vectors the expectation covers.
    #[must_use]
    pub fn vectors(&self) -> u64 {
        self.vectors
    }

    /// Adder width in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.bits.len() as u32
    }

    /// Per-bit expected activity, LSB first.
    #[must_use]
    pub fn bits(&self) -> &[BitExpectation] {
        &self.bits
    }

    /// Expected total transitions over every sum and carry bit.
    #[must_use]
    pub fn total_transitions(&self) -> f64 {
        self.bits
            .iter()
            .map(|b| b.sum_transitions + b.carry_transitions)
            .sum()
    }

    /// Expected total useful transitions.
    #[must_use]
    pub fn total_useful(&self) -> f64 {
        self.bits
            .iter()
            .map(|b| b.sum_useful + b.carry_useful)
            .sum()
    }

    /// Expected total useless transitions.
    #[must_use]
    pub fn total_useless(&self) -> f64 {
        self.bits
            .iter()
            .map(|b| b.sum_useless + b.carry_useless)
            .sum()
    }

    /// Expected `L/F` ratio of useless to useful transitions.
    #[must_use]
    pub fn useless_to_useful(&self) -> f64 {
        self.total_useless() / self.total_useful()
    }

    /// Expected useful transitions per sum bit, LSB first — one bar series
    /// of Figure 5.
    #[must_use]
    pub fn sum_useful_series(&self) -> Vec<f64> {
        self.bits.iter().map(|b| b.sum_useful).collect()
    }

    /// Expected useless transitions per sum bit, LSB first.
    #[must_use]
    pub fn sum_useless_series(&self) -> Vec<f64> {
        self.bits.iter().map(|b| b.sum_useless).collect()
    }

    /// Expected useful transitions per carry bit, LSB first.
    #[must_use]
    pub fn carry_useful_series(&self) -> Vec<f64> {
        self.bits.iter().map(|b| b.carry_useful).collect()
    }

    /// Expected useless transitions per carry bit, LSB first.
    #[must_use]
    pub fn carry_useless_series(&self) -> Vec<f64> {
        self.bits.iter().map(|b| b.carry_useless).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_totals_for_16_bit_adder_and_4000_vectors() {
        // Section 3.3: "a total number of 119002 transitions is found…
        // 63334 of these transitions are useful. The remaining 55668
        // transitions are useless… L/F = 0.88". The paper's integers carry a
        // couple of counts of per-bit rounding, so we allow a ±5 band.
        let exp = AdderExpectation::ripple_carry(16, 4000);
        assert!((exp.total_transitions() - 119_002.0).abs() < 5.0);
        assert!((exp.total_useful() - 63_334.0).abs() < 5.0);
        assert!((exp.total_useless() - 55_668.0).abs() < 5.0);
        let lf = exp.useless_to_useful();
        assert!((lf - 0.88).abs() < 0.01, "L/F = {lf}");
    }

    #[test]
    fn per_bit_series_have_the_right_shape() {
        let exp = AdderExpectation::ripple_carry(16, 4000);
        assert_eq!(exp.width(), 16);
        assert_eq!(exp.vectors(), 4000);
        assert_eq!(exp.bits().len(), 16);
        // Sum useful is flat at vectors/2; useless grows with bit index.
        let useful = exp.sum_useful_series();
        assert!(useful.iter().all(|&u| (u - 2000.0).abs() < 1e-9));
        let useless = exp.sum_useless_series();
        assert!(useless[0] < 1.0);
        assert!(useless[15] > useless[1]);
        let carry_useless = exp.carry_useless_series();
        assert!(carry_useless[15] > carry_useless[0]);
        assert!(exp.carry_useful_series()[15] <= 2000.0);
    }

    #[test]
    fn totals_scale_linearly_with_vectors() {
        let one = AdderExpectation::ripple_carry(8, 100);
        let ten = AdderExpectation::ripple_carry(8, 1000);
        assert!((ten.total_transitions() / one.total_transitions() - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_width_rejected() {
        let _ = AdderExpectation::ripple_carry(0, 10);
    }
}
