//! Section 3.1: the worst-case transition count of a ripple-carry adder and
//! the probability of hitting it with random inputs.

/// Worst-case number of transitions any single node of an `bits`-bit
/// ripple-carry adder can make in one clock cycle.
///
/// The worst case happens on the most significant sum and carry outputs
/// (`S_{N-1}` and `C_N`), which can toggle once per ripple step: `N`
/// transitions (Figure 3 of the paper shows the N = 4 case).
#[must_use]
pub fn worst_case_transitions(bits: u32) -> u32 {
    bits
}

/// Worst-case transitions of full adder `FAi`'s outputs (`S_i` and
/// `C_{i+1}`) within one clock cycle: `i + 1`.
#[must_use]
pub fn worst_case_transitions_per_bit(i: u32) -> u32 {
    i + 1
}

/// Probability that a random input pair actually triggers the worst case in
/// an `bits`-bit ripple-carry adder: `3 · (1/8)^N` (section 3.1). Both the
/// required alternating carry pattern from the previous addition and a full
/// carry ripple must occur, each of which becomes exponentially unlikely with
/// the word size.
#[must_use]
pub fn worst_case_probability(bits: u32) -> f64 {
    3.0 * 0.125f64.powi(bits as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn figure_3_case() {
        // Figure 3 shows a 4-bit adder whose S3/C4 nodes make 4 transitions.
        assert_eq!(worst_case_transitions(4), 4);
        assert_eq!(worst_case_transitions_per_bit(0), 1);
        assert_eq!(worst_case_transitions_per_bit(3), 4);
    }

    #[test]
    fn probability_is_negligible_for_realistic_widths() {
        assert!(worst_case_probability(16) < 1e-12);
        assert!(worst_case_probability(4) < 0.001);
    }

    proptest! {
        #[test]
        fn probability_decreases_with_width(bits in 1u32..60) {
            prop_assert!(worst_case_probability(bits + 1) < worst_case_probability(bits));
            prop_assert!(worst_case_probability(bits) > 0.0);
            prop_assert!(worst_case_probability(bits) <= 3.0 / 8.0);
        }

        #[test]
        fn per_bit_worst_case_is_consistent(bits in 1u32..64) {
            prop_assert_eq!(worst_case_transitions(bits), worst_case_transitions_per_bit(bits - 1));
        }
    }
}
