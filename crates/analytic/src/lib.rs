//! # glitch-analytic
//!
//! Closed-form probability analysis of transition activity in ripple-carry
//! adders under random inputs — section 3 of the DATE'95 paper *Analysis and
//! Reduction of Glitches in Synchronous Networks* (equations 2–7 plus the
//! worst-case analysis of section 3.1).
//!
//! The unit-delay model behind the formulas: all input bits arrive at the
//! start of the clock cycle, every full adder contributes one delay unit, so
//! full adder `FAi` can re-evaluate up to `i + 1` times in one cycle as the
//! carry ripples towards it.
//!
//! ## Example
//!
//! ```
//! use glitch_analytic::{transition_ratio_sum, AdderExpectation};
//!
//! // Average transitions per cycle on sum bit 3 of a ripple-carry adder.
//! let tr = transition_ratio_sum(3);
//! assert!((tr - (1.25 - 0.75 * 0.125)).abs() < 1e-12);
//!
//! // The Figure 5 experiment: 16-bit adder, 4000 random vectors.
//! let exp = AdderExpectation::ripple_carry(16, 4000);
//! assert!((exp.total_transitions() - 119_002.0).abs() < 5.0);
//! ```

mod adder;
mod ratios;
mod worst_case;

pub use adder::{AdderExpectation, BitExpectation};
pub use ratios::{
    transition_ratio_carry, transition_ratio_sum, useful_ratio_carry, useful_ratio_sum,
    useless_ratio_carry, useless_ratio_sum,
};
pub use worst_case::{
    worst_case_probability, worst_case_transitions, worst_case_transitions_per_bit,
};
