//! Determinism of the sharded parallel layer: a parallel multi-seed run's
//! aggregate must equal the fold of the corresponding serial per-seed runs
//! **bit for bit** — activity totals, per-net histograms, power, stats.

use glitch_netlist::{Bus, Netlist};
use glitch_power::{estimate_power, Technology};
use glitch_sim::{
    ActivityProbe, AggregateReport, DelayKind, MergeableProbe, ParallelRunner, PowerProbe,
    RandomStimulus, SimJob, SimSession, StatsProbe, WindowedActivityProbe,
};

/// A glitchy sequential circuit: an XOR tree with unbalanced input arrival
/// times feeding a register bank — enough structure for non-trivial
/// activity, power and window statistics.
fn glitchy_netlist() -> (Netlist, Vec<Bus>) {
    let mut nl = Netlist::new("parallel test circuit");
    let a = nl.add_input_bus("a", 8);
    let b = nl.add_input_bus("b", 8);
    let mut sums = Vec::new();
    for i in 0..8 {
        // Unbalanced paths: bit i of `b` goes through i inverters first.
        let mut delayed = b.bit(i);
        for k in 0..i {
            delayed = nl.inv(delayed, &format!("d{i}_{k}"));
        }
        let x = nl.xor2(a.bit(i), delayed, &format!("x{i}"));
        let y = nl.and2(x, a.bit((i + 1) % 8), &format!("y{i}"));
        sums.push(y);
    }
    // Reduce pairwise so glitches propagate through a small tree.
    let mut layer = sums;
    let mut level = 0;
    while layer.len() > 1 {
        layer = layer
            .chunks(2)
            .enumerate()
            .map(|(i, pair)| {
                if pair.len() == 2 {
                    nl.xor2(pair[0], pair[1], &format!("t{level}_{i}"))
                } else {
                    pair[0]
                }
            })
            .collect();
        level += 1;
    }
    let q = nl.dff(layer[0], "q");
    nl.mark_output(q);
    (nl, vec![a, b])
}

fn jobs<'a>(netlist: &'a Netlist, buses: &[Bus], seeds: &[u64]) -> Vec<SimJob<'a>> {
    seeds
        .iter()
        .map(|&seed| SimJob::new(netlist, buses.to_vec(), 120, seed))
        .collect()
}

#[test]
fn parallel_aggregate_is_bit_identical_to_the_serial_fold() {
    let (nl, buses) = glitchy_netlist();
    let seeds = RandomStimulus::shard_seeds(0xDA7E_1995, 6);

    // Parallel run: four workers.
    let mut parallel_reports = ParallelRunner::new(4)
        .run_sessions(&jobs(&nl, &buses, &seeds))
        .expect("settles");
    let parallel = AggregateReport::reduce(&nl, &jobs(&nl, &buses, &seeds), &mut parallel_reports);

    // Serial reference: one worker, identical jobs.
    let mut serial_reports = ParallelRunner::new(1)
        .run_sessions(&jobs(&nl, &buses, &seeds))
        .expect("settles");
    let serial = AggregateReport::reduce(&nl, &jobs(&nl, &buses, &seeds), &mut serial_reports);

    // The aggregates (per-net traces, activity totals, power reports with
    // every f64, per-shard summaries) compare equal structurally.
    assert_eq!(parallel, serial);

    // And against a completely independent hand fold of single-seed
    // sessions (no runner involved at all).
    let mut folded_activity = ActivityProbe::new();
    let mut folded_power = PowerProbe::new(Technology::cmos_0p8um_5v(), 5e6);
    let mut folded_stats = StatsProbe::new();
    for &seed in &seeds {
        let mut report = SimSession::new(&nl)
            .delay(DelayKind::Unit)
            .stimulus(RandomStimulus::new(buses.clone(), 120, seed))
            .probe(ActivityProbe::new())
            .probe(PowerProbe::new(Technology::cmos_0p8um_5v(), 5e6))
            .probe(StatsProbe::new())
            .run()
            .expect("settles");
        folded_activity.merge(report.take_probe::<ActivityProbe>().unwrap());
        folded_power.merge(report.take_probe::<PowerProbe>().unwrap());
        folded_stats.merge(report.take_probe::<StatsProbe>().unwrap());
    }
    assert_eq!(parallel.merged_trace(), folded_activity.trace());
    assert_eq!(
        parallel.merged_power(),
        folded_power.report().expect("merged report")
    );
    assert_eq!(parallel.total_cycles(), folded_stats.cycles());
    assert_eq!(parallel.total_events(), folded_stats.events());
    assert_eq!(parallel.max_settle_time(), folded_stats.max_settle_time());
    assert_eq!(parallel.total_cycles(), 6 * 120);

    // The spread is over real per-seed variation.
    let glitches = parallel.glitch_spread();
    assert!(glitches.min <= glitches.mean && glitches.mean <= glitches.max);
    assert!(parallel.merged_totals().useless > 0, "circuit glitches");
    let power = parallel.power_spread();
    assert!(power.mean > 0.0);
}

#[test]
fn merged_power_probe_matches_the_trace_based_estimate_bit_for_bit() {
    // `PowerProbe::merge` recomputes its report with its own arithmetic;
    // this pins that arithmetic to `glitch_power::estimate_power` over the
    // merged activity trace (both funnel conceptually through the same
    // formula — here we prove the f64 results are identical).
    let (nl, buses) = glitchy_netlist();
    let seeds = RandomStimulus::shard_seeds(7, 4);
    let job_list = jobs(&nl, &buses, &seeds);
    let mut reports = ParallelRunner::new(2)
        .run_sessions(&job_list)
        .expect("settles");
    let aggregate = AggregateReport::reduce(&nl, &job_list, &mut reports);
    let tech = Technology::cmos_0p8um_5v();
    let reference = estimate_power(&nl, aggregate.merged_trace(), &tech, 5e6);
    assert_eq!(aggregate.merged_power(), &reference);
}

#[test]
fn multi_delay_jobs_run_in_one_batch() {
    let (nl, buses) = glitchy_netlist();
    let delays = [
        ("unit", DelayKind::Unit),
        ("zero", DelayKind::Zero),
        ("adder", DelayKind::RealisticAdderCells),
    ];
    let job_list: Vec<SimJob<'_>> = delays
        .iter()
        .map(|(label, delay)| {
            SimJob::new(&nl, buses.clone(), 80, 11)
                .with_delay(delay.clone())
                .with_label(*label)
        })
        .collect();
    let mut reports = ParallelRunner::new(3)
        .run_sessions(&job_list)
        .expect("settles");
    let aggregate = AggregateReport::reduce(&nl, &job_list, &mut reports);
    let shards = aggregate.shards();
    assert_eq!(shards.len(), 3);
    assert_eq!(shards[0].label, "unit");
    assert_eq!(shards[1].delay, DelayKind::Zero);
    // Zero delay is the glitch-free reference; unit delay glitches.
    assert_eq!(shards[1].activity.useless, 0);
    assert!(shards[0].activity.useless > 0);
    // Same useful work under every delay model (same stimulus, same seed).
    assert_eq!(shards[0].activity.useful, shards[1].activity.useful);
    assert_eq!(shards[0].activity.useful, shards[2].activity.useful);
}

#[test]
fn extra_probe_factory_yields_mergeable_window_heatmaps() {
    let (nl, buses) = glitchy_netlist();
    let seeds = RandomStimulus::shard_seeds(3, 3);
    let job_list = jobs(&nl, &buses, &seeds);
    let mut reports = ParallelRunner::new(3)
        .run_sessions_with(&job_list, &|_| {
            vec![Box::new(WindowedActivityProbe::new(30)) as Box<_>]
        })
        .expect("settles");
    let mut merged: Option<WindowedActivityProbe> = None;
    for report in &mut reports {
        let window = report
            .take_probe::<WindowedActivityProbe>()
            .expect("factory attached a window probe");
        assert_eq!(window.windows().len(), 4, "120 cycles / K=30");
        match merged.as_mut() {
            None => merged = Some(window),
            Some(m) => m.merge(window),
        }
    }
    let merged = merged.unwrap();
    // Each merged window covers 3 shards × 30 cycles.
    assert!(merged.windows().iter().all(|w| w.cycles == 90));
    let total: u64 = merged.windows().iter().map(|w| w.transitions).sum();
    assert!(total > 0);
}

#[test]
fn stats_probe_shard_merge_is_deterministic_across_worker_counts() {
    // The runner docs promise job-order determinism for *all* mergeable
    // probes; activity and power are pinned above, this pins StatsProbe:
    // the fold of the per-shard statistics must be bit-identical at any
    // worker count, and equal to an independent serial fold.
    let (nl, buses) = glitchy_netlist();
    let seeds = RandomStimulus::shard_seeds(0x57A7, 5);
    let job_list = jobs(&nl, &buses, &seeds);

    let mut serial_fold = StatsProbe::new();
    for &seed in &seeds {
        let mut report = SimSession::new(&nl)
            .delay(DelayKind::Unit)
            .stimulus(RandomStimulus::new(buses.clone(), 120, seed))
            .probe(StatsProbe::new())
            .run()
            .expect("settles");
        serial_fold.merge(report.take_probe::<StatsProbe>().unwrap());
    }

    for workers in [1, 2, 4, 8] {
        let mut reports = ParallelRunner::new(workers)
            .run_sessions(&job_list)
            .expect("settles");
        let mut folded = StatsProbe::new();
        for report in &mut reports {
            folded.merge(report.take_probe::<StatsProbe>().unwrap());
        }
        assert_eq!(
            folded, serial_fold,
            "{workers} workers must fold stats bit-identically"
        );
    }
    assert_eq!(serial_fold.cycles(), 5 * 120);
    assert!(serial_fold.events() > 0);
    assert!(serial_fold.max_settle_time() > 0);
}

#[test]
fn first_failing_job_error_is_deterministic() {
    let (nl, buses) = glitchy_netlist();
    let tight = glitch_sim::SimOptions {
        settle_budget: 0,
        ..Default::default()
    };
    // Job 1 (of 0..4) gets an impossible settle budget; the batch must
    // report that job's failure no matter how the workers interleave.
    let job_list: Vec<SimJob<'_>> = (0..4u64)
        .map(|i| {
            let job = SimJob::new(&nl, buses.clone(), 50, i);
            if i == 1 {
                job.with_options(tight)
            } else {
                job
            }
        })
        .collect();
    for workers in [1, 4] {
        let err = ParallelRunner::new(workers)
            .run_sessions(&job_list)
            .expect_err("job 1 cannot settle");
        assert!(matches!(err, glitch_sim::SimError::DidNotSettle { .. }));
    }
}
