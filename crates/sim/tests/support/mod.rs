//! Shared test support: deterministic random netlists, random stimuli and
//! random stimulus deltas, driven from plain integer words so the vendored
//! proptest's range/vec strategies can generate them.
//!
//! Used by the incremental-vs-full differential oracle
//! (`tests/incremental.rs`) and reusable by any suite that needs "some
//! random synchronous circuit". Construction is feed-forward (every gate
//! input is an already-existing net), so the netlists are structurally
//! valid by construction: no floating nets, no combinational loops.

use glitch_netlist::{NetId, Netlist};
use glitch_sim::{DeltaStimulus, InputAssignment};

/// A random synchronous netlist plus its primary inputs.
pub struct RandomNetlist {
    pub netlist: Netlist,
    pub inputs: Vec<NetId>,
}

/// Builds a random netlist from `input_count` primary inputs and one gate
/// per word in `gate_words`. Each word selects a gate kind (including
/// D-flipflops, so sequential feedback-free state shows up) and wires its
/// operands to pseudo-random existing nets.
pub fn build_netlist(input_count: usize, gate_words: &[u64]) -> RandomNetlist {
    let mut nl = Netlist::new("random oracle circuit");
    let inputs: Vec<NetId> = (0..input_count.max(1))
        .map(|i| nl.add_input(format!("in{i}")))
        .collect();
    let mut nets: Vec<NetId> = inputs.clone();
    for (g, &word) in gate_words.iter().enumerate() {
        let pick = |shift: u32| nets[(word >> shift) as usize % nets.len()];
        let a = pick(8);
        let b = pick(20);
        let c = pick(32);
        let name = format!("g{g}");
        let out = match word % 8 {
            0 => nl.inv(a, &name),
            1 => nl.and2(a, b, &name),
            2 => nl.or2(a, b, &name),
            3 => nl.xor2(a, b, &name),
            4 => nl.nand2(a, b, &name),
            5 => nl.mux2(a, b, c, &name),
            6 => nl.dff(a, &name),
            _ => nl.xnor2(a, b, &name),
        };
        nets.push(out);
    }
    // Mark the most recently created nets as outputs so the whole tail of
    // the circuit is observable.
    for &net in nets.iter().rev().take(3) {
        nl.mark_output(net);
    }
    RandomNetlist {
        netlist: nl,
        inputs,
    }
}

/// One input assignment per word: bit `i` of the word drives input `i`.
/// A word with its high bit set leaves a pseudo-random input unassigned
/// that cycle, exercising held-over values.
pub fn build_assignments(inputs: &[NetId], cycle_words: &[u64]) -> Vec<InputAssignment> {
    cycle_words
        .iter()
        .map(|&word| {
            let skip = if word & (1 << 63) != 0 {
                Some((word >> 48) as usize % inputs.len())
            } else {
                None
            };
            let mut assignment = InputAssignment::new();
            for (i, &net) in inputs.iter().enumerate() {
                if Some(i) == skip {
                    continue;
                }
                assignment.set(net, (word >> i) & 1 == 1);
            }
            assignment
        })
        .collect()
}

/// A random delta: each word overrides one input bit in one cycle, and a
/// word with bit 62 set becomes a held (every-cycle) override instead.
/// Words that would duplicate an existing `(cycle, net)` override are
/// skipped — duplicates are rejected at construction since PR 5.
pub fn build_delta(inputs: &[NetId], cycles: u64, delta_words: &[u64]) -> DeltaStimulus {
    let mut delta = DeltaStimulus::new();
    for &word in delta_words {
        let net = inputs[(word >> 8) as usize % inputs.len()];
        let value = word & 1 == 1;
        if word & (1 << 62) != 0 {
            delta = delta.hold(net, value);
        } else {
            let cycle = (word >> 24) % cycles.max(1);
            if !delta.overrides(cycle, net) {
                delta = delta.set(cycle, net, value);
            }
        }
    }
    delta
}

/// The merged stimulus an incremental run must be bit-identical to: the
/// baseline assignments with the delta applied cycle by cycle via the
/// public [`DeltaStimulus::apply_to`] contract.
pub fn merged_stimulus(
    baseline: &[InputAssignment],
    delta: &DeltaStimulus,
) -> Vec<InputAssignment> {
    baseline
        .iter()
        .enumerate()
        .map(|(cycle, base)| delta.apply_to(cycle as u64, base))
        .collect()
}
