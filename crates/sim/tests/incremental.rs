//! The differential testing oracle for incremental re-simulation.
//!
//! Every property pits [`IncrementalSession`] against a *full* simulation
//! of the merged stimulus on random netlists (combinational and
//! sequential) under random deltas, and demands **bit-identity** of the
//! probe artefacts: activity traces and rising counts, power reports
//! (every `f64`), whole-run statistics, windowed heatmaps, and the VCD /
//! wave-CSV event streams. Event-pruning shortcuts that silently change
//! glitch behaviour (the failure mode Függer, Nowak and Schmid document
//! for binary circuit models) cannot survive this oracle.

mod support;

use glitch_power::Technology;
use glitch_sim::{
    ActivityProbe, DelayKind, DeltaStimulus, IncrementalSession, PowerProbe, SimSession,
    StatsProbe, VcdProbe, WaveCsvProbe, WindowedActivityProbe,
};
use proptest::prelude::*;

use support::{build_assignments, build_delta, build_netlist, merged_stimulus};

/// The delay models the oracle sweeps: unit delay (the paper's default)
/// and the unbalanced adder-cell model keep the event queue non-trivial;
/// zero delay exercises the delta-cycle path.
fn delay_for(word: u64) -> DelayKind {
    match word % 3 {
        0 => DelayKind::Unit,
        1 => DelayKind::Zero,
        _ => DelayKind::RealisticAdderCells,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Activity traces and per-net rising-transition counts are
    /// bit-identical to the full simulation of the merged stimulus.
    #[test]
    fn incremental_activity_is_bit_identical_to_full(
        input_count in 2usize..6,
        gate_words in proptest::collection::vec(0u64..u64::MAX, 4..40),
        cycle_words in proptest::collection::vec(0u64..u64::MAX, 2..30),
        delta_words in proptest::collection::vec(0u64..u64::MAX, 0..5),
        delay_word in 0u64..3,
    ) {
        let circuit = build_netlist(input_count, &gate_words);
        let nl = &circuit.netlist;
        let baseline_stim = build_assignments(&circuit.inputs, &cycle_words);
        let delta = build_delta(&circuit.inputs, baseline_stim.len() as u64, &delta_words);
        let delay = delay_for(delay_word);

        let (_, baseline) = SimSession::new(nl)
            .delay(delay.clone())
            .stimulus(baseline_stim.clone())
            .record_baseline()
            .expect("baseline settles");

        let full = SimSession::new(nl)
            .delay(delay)
            .stimulus(merged_stimulus(&baseline_stim, &delta))
            .probe(ActivityProbe::new())
            .run()
            .expect("full run settles");

        let incremental = IncrementalSession::new(nl, &baseline)
            .probe(ActivityProbe::new())
            .delta(delta)
            .run()
            .expect("incremental run settles");

        let full_probe = full.probe::<ActivityProbe>().unwrap();
        let inc_probe = incremental.session().probe::<ActivityProbe>().unwrap();
        prop_assert_eq!(inc_probe.trace(), full_probe.trace());
        for (id, _) in nl.nets() {
            prop_assert_eq!(
                inc_probe.rising_transitions(id),
                full_probe.rising_transitions(id)
            );
            prop_assert_eq!(incremental.session().net_value(id), full.net_value(id));
        }
        let stats = incremental.stats();
        prop_assert_eq!(stats.total_cycles(), full.cycles());
        prop_assert!(stats.cells_evaluated <= baseline.total_cell_evals() + stats.cells_evaluated);
    }

    /// Power reports (every f64 of the three-component breakdown) and the
    /// whole-run statistics probe are bit-identical to the full run.
    #[test]
    fn incremental_power_and_stats_are_bit_identical_to_full(
        input_count in 2usize..6,
        gate_words in proptest::collection::vec(0u64..u64::MAX, 4..40),
        cycle_words in proptest::collection::vec(0u64..u64::MAX, 2..30),
        delta_words in proptest::collection::vec(0u64..u64::MAX, 0..5),
        delay_word in 0u64..3,
    ) {
        let circuit = build_netlist(input_count, &gate_words);
        let nl = &circuit.netlist;
        let baseline_stim = build_assignments(&circuit.inputs, &cycle_words);
        let delta = build_delta(&circuit.inputs, baseline_stim.len() as u64, &delta_words);
        let delay = delay_for(delay_word);
        let tech = Technology::cmos_0p8um_5v();

        let (_, baseline) = SimSession::new(nl)
            .delay(delay.clone())
            .stimulus(baseline_stim.clone())
            .record_baseline()
            .expect("baseline settles");

        let full = SimSession::new(nl)
            .delay(delay)
            .stimulus(merged_stimulus(&baseline_stim, &delta))
            .probe(PowerProbe::new(tech, 5e6))
            .probe(StatsProbe::new())
            .run()
            .expect("full run settles");

        let incremental = IncrementalSession::new(nl, &baseline)
            .probe(PowerProbe::new(tech, 5e6))
            .probe(StatsProbe::new())
            .delta(delta)
            .run()
            .expect("incremental run settles");

        let full_power = full.probe::<PowerProbe>().unwrap();
        let inc_power = incremental.session().probe::<PowerProbe>().unwrap();
        prop_assert_eq!(inc_power.report(), full_power.report());
        prop_assert_eq!(inc_power.energy_joules(), full_power.energy_joules());
        prop_assert_eq!(
            incremental.session().probe::<StatsProbe>().unwrap(),
            full.probe::<StatsProbe>().unwrap()
        );
        prop_assert_eq!(incremental.session().cycle_stats(), full.cycle_stats());
    }

    /// The raw event streams — the VCD text and the per-transition CSV —
    /// are identical byte for byte, including report order within a cycle.
    #[test]
    fn incremental_event_streams_are_byte_identical_to_full(
        input_count in 2usize..6,
        gate_words in proptest::collection::vec(0u64..u64::MAX, 4..30),
        cycle_words in proptest::collection::vec(0u64..u64::MAX, 2..20),
        delta_words in proptest::collection::vec(0u64..u64::MAX, 0..4),
        delay_word in 0u64..3,
    ) {
        let circuit = build_netlist(input_count, &gate_words);
        let nl = &circuit.netlist;
        let baseline_stim = build_assignments(&circuit.inputs, &cycle_words);
        let delta = build_delta(&circuit.inputs, baseline_stim.len() as u64, &delta_words);
        let delay = delay_for(delay_word);

        let (_, baseline) = SimSession::new(nl)
            .delay(delay.clone())
            .stimulus(baseline_stim.clone())
            .record_baseline()
            .expect("baseline settles");

        let mut full = SimSession::new(nl)
            .delay(delay)
            .stimulus(merged_stimulus(&baseline_stim, &delta))
            .probe(VcdProbe::default())
            .probe(WaveCsvProbe::new())
            .run()
            .expect("full run settles");

        let mut incremental = IncrementalSession::new(nl, &baseline)
            .probe(VcdProbe::default())
            .probe(WaveCsvProbe::new())
            .delta(delta)
            .run()
            .expect("incremental run settles");

        prop_assert_eq!(
            incremental.session_mut().take_probe::<VcdProbe>().unwrap().into_vcd(),
            full.take_probe::<VcdProbe>().unwrap().into_vcd()
        );
        prop_assert_eq!(
            incremental.session_mut().take_probe::<WaveCsvProbe>().unwrap().into_csv(),
            full.take_probe::<WaveCsvProbe>().unwrap().into_csv()
        );
    }

    /// The windowed "heatmap over cycles" probe is bit-identical too —
    /// replayed and simulated cycles land in the right buckets.
    #[test]
    fn incremental_windowed_heatmap_is_bit_identical_to_full(
        input_count in 2usize..6,
        gate_words in proptest::collection::vec(0u64..u64::MAX, 4..30),
        cycle_words in proptest::collection::vec(0u64..u64::MAX, 4..24),
        delta_words in proptest::collection::vec(0u64..u64::MAX, 0..4),
        window in 1u64..6,
    ) {
        let circuit = build_netlist(input_count, &gate_words);
        let nl = &circuit.netlist;
        let baseline_stim = build_assignments(&circuit.inputs, &cycle_words);
        let delta = build_delta(&circuit.inputs, baseline_stim.len() as u64, &delta_words);

        let (_, baseline) = SimSession::new(nl)
            .stimulus(baseline_stim.clone())
            .record_baseline()
            .expect("baseline settles");

        let full = SimSession::new(nl)
            .stimulus(merged_stimulus(&baseline_stim, &delta))
            .probe(WindowedActivityProbe::new(window))
            .run()
            .expect("full run settles");

        let incremental = IncrementalSession::new(nl, &baseline)
            .probe(WindowedActivityProbe::new(window))
            .delta(delta)
            .run()
            .expect("incremental run settles");

        prop_assert_eq!(
            incremental
                .session()
                .probe::<WindowedActivityProbe>()
                .unwrap()
                .windows(),
            full.probe::<WindowedActivityProbe>().unwrap().windows()
        );
    }

    /// An empty delta replays the whole run: zero cell evaluations, and
    /// probes identical to the baseline's own.
    #[test]
    fn empty_delta_is_a_pure_replay(
        input_count in 2usize..6,
        gate_words in proptest::collection::vec(0u64..u64::MAX, 4..30),
        cycle_words in proptest::collection::vec(0u64..u64::MAX, 1..20),
    ) {
        let circuit = build_netlist(input_count, &gate_words);
        let nl = &circuit.netlist;
        let baseline_stim = build_assignments(&circuit.inputs, &cycle_words);

        let (baseline_report, baseline) = SimSession::new(nl)
            .stimulus(baseline_stim.clone())
            .probe(ActivityProbe::new())
            .record_baseline()
            .expect("baseline settles");

        let incremental = IncrementalSession::new(nl, &baseline)
            .probe(ActivityProbe::new())
            .run()
            .expect("incremental run settles");

        let stats = incremental.stats();
        prop_assert_eq!(stats.simulated_cycles, 0);
        prop_assert_eq!(stats.cells_evaluated, 0);
        prop_assert_eq!(stats.replayed_cycles, baseline.cycle_count());
        prop_assert_eq!(stats.evaluated_fraction(), 0.0);
        prop_assert_eq!(
            incremental.session().probe::<ActivityProbe>().unwrap().trace(),
            baseline_report.probe::<ActivityProbe>().unwrap().trace()
        );
    }
}

/// A pipelined circuit whose flipflop state diverges after a flip: the
/// session must fall back to full evaluation until the state reconverges,
/// and still match the full run bit for bit.
#[test]
fn flipflop_divergence_falls_back_to_full_evaluation_until_reconvergence() {
    use glitch_netlist::Netlist;
    use glitch_sim::InputAssignment;

    let mut nl = Netlist::new("pipe");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let x = nl.xor2(a, b, "x");
    // Three pipeline stages: a flipped input keeps the state diverged for
    // three cycles after the dirty cycle.
    let q = nl.dff_chain(x, 3, "q");
    let y = nl.inv(q, "y");
    nl.mark_output(y);

    let stimulus: Vec<InputAssignment> = (0..24)
        .map(|i| {
            InputAssignment::new()
                .with(a, i % 2 == 0)
                .with(b, i % 3 == 0)
        })
        .collect();
    let (_, baseline) = SimSession::new(&nl)
        .stimulus(stimulus.clone())
        .record_baseline()
        .unwrap();

    let delta = DeltaStimulus::new().set(8, a, false); // baseline has a=1 at cycle 8
    let full = SimSession::new(&nl)
        .stimulus(merged_stimulus(&stimulus, &delta))
        .probe(ActivityProbe::new())
        .run()
        .unwrap();
    let incremental = IncrementalSession::new(&nl, &baseline)
        .probe(ActivityProbe::new())
        .delta(delta)
        .run()
        .unwrap();

    assert_eq!(
        incremental
            .session()
            .probe::<ActivityProbe>()
            .unwrap()
            .trace(),
        full.probe::<ActivityProbe>().unwrap().trace()
    );
    let stats = incremental.stats();
    // The dirty cycle, the reconvergence cycle and the three cycles the
    // pipeline keeps the flipped value alive must all simulate...
    assert!(
        stats.simulated_cycles >= 4,
        "state divergence must force simulation: {stats:?}"
    );
    // ...but the run reconverges and the tail replays.
    assert!(
        stats.replayed_cycles >= 12,
        "the tail must replay after reconvergence: {stats:?}"
    );
    assert!(stats.evaluated_fraction() < 1.0);
}

/// Held overrides (mode sweeps) keep every cycle dirty — a permanently
/// diverged input means no cycle can replay — so they cost about one full
/// run, but stay bit-identical. The speedup story belongs to *sparse*
/// deltas (single flips); this test documents the trade-off honestly.
#[test]
fn held_override_dirties_every_cycle_but_stays_bit_identical() {
    use glitch_netlist::Netlist;
    use glitch_sim::InputAssignment;

    // Two independent halves: flipping `mode` must never re-evaluate the
    // (much larger) right half.
    let mut nl = Netlist::new("halves");
    let mode = nl.add_input("mode");
    let a = nl.add_input("a");
    let left = nl.xor2(mode, a, "left");
    nl.mark_output(left);
    let b = nl.add_input("b");
    let mut cur = b;
    for i in 0..32 {
        cur = nl.inv(cur, &format!("r{i}"));
    }
    let right = nl.xor2(cur, a, "right");
    nl.mark_output(right);

    let stimulus: Vec<InputAssignment> = (0..30)
        .map(|i| {
            InputAssignment::new()
                .with(mode, false)
                .with(a, i % 2 == 0)
                .with(b, i % 5 == 0)
        })
        .collect();
    let (_, baseline) = SimSession::new(&nl)
        .stimulus(stimulus.clone())
        .record_baseline()
        .unwrap();

    let delta = DeltaStimulus::new().hold(mode, true);
    let full = SimSession::new(&nl)
        .stimulus(merged_stimulus(&stimulus, &delta))
        .probe(ActivityProbe::new())
        .run()
        .unwrap();
    let incremental = IncrementalSession::new(&nl, &baseline)
        .probe(ActivityProbe::new())
        .delta(delta)
        .run()
        .unwrap();

    assert_eq!(
        incremental
            .session()
            .probe::<ActivityProbe>()
            .unwrap()
            .trace(),
        full.probe::<ActivityProbe>().unwrap().trace()
    );
    let stats = incremental.stats();
    assert_eq!(
        stats.simulated_cycles, 30,
        "a held flip dirties every cycle"
    );
    assert_eq!(stats.replayed_cycles, 0);
    // Every dirty cycle pays the full event-driven settle (bit-identical
    // streams require re-processing the baseline churn too), so the work
    // is about one full run — give or take the mode cone itself.
    let fraction = stats.evaluated_fraction();
    assert!(
        (0.8..=1.5).contains(&fraction),
        "held-delta work should be about one full run, got {fraction:.3}"
    );
}

/// A shared cone index across sessions gives the same results as letting
/// each session build its own.
#[test]
fn shared_cone_index_matches_per_run_index() {
    use glitch_sim::InputAssignment;

    let circuit = build_netlist(4, &[3, 1 << 9, 5 | (2 << 8), 6 | (3 << 8), 2 | (7 << 20)]);
    let nl = &circuit.netlist;
    let stimulus: Vec<InputAssignment> =
        build_assignments(&circuit.inputs, &[7, 2, 13, 4, 9, 1, 14, 11]);
    let (_, baseline) = SimSession::new(nl)
        .stimulus(stimulus)
        .record_baseline()
        .unwrap();
    let index = nl.cone_index().unwrap();
    let delta = DeltaStimulus::new().set(3, circuit.inputs[0], true);

    let shared = IncrementalSession::new(nl, &baseline)
        .cone_index(&index)
        .probe(ActivityProbe::new())
        .delta(delta.clone())
        .run()
        .unwrap();
    let owned = IncrementalSession::new(nl, &baseline)
        .probe(ActivityProbe::new())
        .delta(delta)
        .run()
        .unwrap();
    assert_eq!(shared.stats(), owned.stats());
    assert_eq!(
        shared.session().probe::<ActivityProbe>().unwrap().trace(),
        owned.session().probe::<ActivityProbe>().unwrap().trace()
    );
}
