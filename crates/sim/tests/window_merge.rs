//! Algebraic properties of [`WindowedActivityProbe::merge`], mirroring the
//! `ActivityTrace::merge` associativity/commutativity/identity suite: the
//! windowed heatmap is one of the probes the parallel shard fold reduces,
//! so the fold must be independent of the reduction tree's shape.

use glitch_netlist::Netlist;
use glitch_sim::{InputAssignment, MergeableProbe, SimSession, WindowedActivityProbe};
use proptest::prelude::*;

const WINDOW: u64 = 3;

/// Runs a two-net inverter circuit for `rows.len()` cycles — each row's
/// low bit drives the input — and returns the finished windowed probe.
/// Going through a real session keeps the probes *finished* (merge is
/// defined on finished probes).
fn probe_from_rows(rows: &[u64]) -> WindowedActivityProbe {
    let mut nl = Netlist::new("window merge");
    let a = nl.add_input("a");
    let y = nl.inv(a, "y");
    nl.mark_output(y);
    let stimulus: Vec<InputAssignment> = rows
        .iter()
        .map(|&row| InputAssignment::new().with(a, row & 1 == 1))
        .collect();
    let mut report = SimSession::new(&nl)
        .probe(WindowedActivityProbe::new(WINDOW))
        .stimulus(stimulus)
        .run()
        .expect("settles");
    report
        .take_probe::<WindowedActivityProbe>()
        .expect("attached above")
}

fn merged(mut left: WindowedActivityProbe, right: WindowedActivityProbe) -> WindowedActivityProbe {
    left.merge(right);
    left
}

fn windows_of(probe: &WindowedActivityProbe) -> Vec<glitch_sim::ActivityWindow> {
    probe.windows().to_vec()
}

proptest! {
    /// `merge` is associative and commutative on probes of aligned window
    /// size, with the freshly-constructed probe as identity — the algebra
    /// the deterministic parallel fold relies on.
    #[test]
    fn merge_is_associative_commutative_with_identity(
        a_rows in proptest::collection::vec(0u64..2, 0..20),
        b_rows in proptest::collection::vec(0u64..2, 0..20),
        c_rows in proptest::collection::vec(0u64..2, 0..20),
    ) {
        let (a, b, c) = (
            probe_from_rows(&a_rows),
            probe_from_rows(&b_rows),
            probe_from_rows(&c_rows),
        );

        // Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
        let left = merged(merged(a.clone(), b.clone()), c.clone());
        let right = merged(a.clone(), merged(b.clone(), c.clone()));
        prop_assert_eq!(windows_of(&left), windows_of(&right));

        // Commutativity: a ⊕ b == b ⊕ a (shorter runs align window-wise
        // with longer ones because every shard starts at cycle 0).
        prop_assert_eq!(
            windows_of(&merged(a.clone(), b.clone())),
            windows_of(&merged(b.clone(), a.clone()))
        );

        // Identity: a probe that never ran merges as a neutral element,
        // on both sides.
        prop_assert_eq!(
            windows_of(&merged(a.clone(), WindowedActivityProbe::new(WINDOW))),
            windows_of(&a)
        );
        prop_assert_eq!(
            windows_of(&merged(WindowedActivityProbe::new(WINDOW), a.clone())),
            windows_of(&a)
        );
    }

    /// Merged window totals are the element-wise sums of the inputs, and
    /// the merged cycle coverage is the sum of the runs' cycle counts.
    #[test]
    fn merge_sums_aligned_windows(
        a_rows in proptest::collection::vec(0u64..2, 1..20),
        b_rows in proptest::collection::vec(0u64..2, 1..20),
    ) {
        let (a, b) = (probe_from_rows(&a_rows), probe_from_rows(&b_rows));
        let both = merged(a.clone(), b.clone());
        let total = |p: &WindowedActivityProbe| -> (u64, u64, u64, u64) {
            p.windows().iter().fold((0, 0, 0, 0), |acc, w| {
                (
                    acc.0 + w.cycles,
                    acc.1 + w.transitions,
                    acc.2 + w.useful,
                    acc.3 + w.useless,
                )
            })
        };
        let (ac, at, auf, aul) = total(&a);
        let (bc, bt, buf, bul) = total(&b);
        let (mc, mt, muf, mul) = total(&both);
        prop_assert_eq!(mc, ac + bc);
        prop_assert_eq!(mt, at + bt);
        prop_assert_eq!(muf, auf + buf);
        prop_assert_eq!(mul, aul + bul);
        prop_assert_eq!(
            both.windows().len(),
            a.windows().len().max(b.windows().len())
        );
        for window in both.windows() {
            prop_assert_eq!(window.useful + window.useless, window.transitions);
        }
    }
}
