//! Baseline persistence: [`SimBaseline`] to and from a compact binary file.
//!
//! A recorded baseline is the expensive half of every incremental what-if
//! run ([`crate::IncrementalSession`]): it costs one full simulation pass.
//! Saving it to disk lets repeated `analyze --flip` invocations (and any
//! other delta consumer) skip the re-recording entirely — load, validate
//! against the netlist, and go straight to the dirty-region fast path.
//!
//! The format is a little-endian binary stream with a magic/version
//! header: netlist identity (name, net count, flipflop count), the delay
//! kind (including custom per-cell tables, serialised in sorted canonical
//! order so the bytes are deterministic), the simulator options, and per
//! cycle the stimulus entries, the transition stream and the cycle
//! statistics. No external serialisation dependency is involved.

use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use glitch_netlist::CellKind;

use crate::clocked::{CycleStats, InputAssignment, SimOptions, XEval};
use crate::delay::{CellDelay, DelayKind};
use crate::incremental::{BaselineCycle, SimBaseline};
use crate::probe::{Transition, TransitionKind};
use crate::value::Value;

/// `b"GLBL"` — glitch baseline.
const MAGIC: [u8; 4] = *b"GLBL";
const VERSION: u16 = 1;

/// Why a baseline file could not be written or read.
#[derive(Debug)]
pub enum BaselineFileError {
    /// The underlying I/O operation failed.
    Io(io::Error),
    /// The bytes are not a baseline file this version understands; the
    /// message names the offending field.
    Format(String),
}

impl fmt::Display for BaselineFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineFileError::Io(e) => write!(f, "baseline file I/O failed: {e}"),
            BaselineFileError::Format(m) => write!(f, "not a valid baseline file: {m}"),
        }
    }
}

impl std::error::Error for BaselineFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BaselineFileError::Io(e) => Some(e),
            BaselineFileError::Format(_) => None,
        }
    }
}

impl From<io::Error> for BaselineFileError {
    fn from(e: io::Error) -> Self {
        BaselineFileError::Io(e)
    }
}

fn format_err(message: impl Into<String>) -> BaselineFileError {
    BaselineFileError::Format(message.into())
}

// ---------------------------------------------------------------- encoding

/// Stable on-disk code of a [`CellKind`] (the enum itself carries no
/// guaranteed discriminants).
fn kind_code(kind: CellKind) -> u8 {
    match kind {
        CellKind::Const(false) => 0,
        CellKind::Const(true) => 1,
        CellKind::Buf => 2,
        CellKind::Inv => 3,
        CellKind::And => 4,
        CellKind::Or => 5,
        CellKind::Nand => 6,
        CellKind::Nor => 7,
        CellKind::Xor => 8,
        CellKind::Xnor => 9,
        CellKind::Mux2 => 10,
        CellKind::Maj3 => 11,
        CellKind::HalfAdder => 12,
        CellKind::FullAdder => 13,
        CellKind::Dff => 14,
    }
}

fn kind_from_code(code: u8) -> Result<CellKind, BaselineFileError> {
    Ok(match code {
        0 => CellKind::Const(false),
        1 => CellKind::Const(true),
        2 => CellKind::Buf,
        3 => CellKind::Inv,
        4 => CellKind::And,
        5 => CellKind::Or,
        6 => CellKind::Nand,
        7 => CellKind::Nor,
        8 => CellKind::Xor,
        9 => CellKind::Xnor,
        10 => CellKind::Mux2,
        11 => CellKind::Maj3,
        12 => CellKind::HalfAdder,
        13 => CellKind::FullAdder,
        14 => CellKind::Dff,
        other => return Err(format_err(format!("unknown cell-kind code {other}"))),
    })
}

fn value_code(value: Value) -> u8 {
    match value {
        Value::Zero => 0,
        Value::One => 1,
        Value::X => 2,
    }
}

fn value_from_code(code: u8) -> Result<Value, BaselineFileError> {
    Ok(match code {
        0 => Value::Zero,
        1 => Value::One,
        2 => Value::X,
        other => return Err(format_err(format!("unknown value code {other}"))),
    })
}

fn transition_kind_code(kind: TransitionKind) -> u8 {
    match kind {
        TransitionKind::Rise => 0,
        TransitionKind::Fall => 1,
        TransitionKind::Unknown => 2,
    }
}

fn transition_kind_from_code(code: u8) -> Result<TransitionKind, BaselineFileError> {
    Ok(match code {
        0 => TransitionKind::Rise,
        1 => TransitionKind::Fall,
        2 => TransitionKind::Unknown,
        other => return Err(format_err(format!("unknown transition-kind code {other}"))),
    })
}

// ---------------------------------------------------------- write helpers

fn write_u8(w: &mut impl Write, v: u8) -> io::Result<()> {
    w.write_all(&[v])
}

fn write_u16(w: &mut impl Write, v: u16) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_str(w: &mut impl Write, s: &str) -> io::Result<()> {
    write_len(w, s.len())?;
    w.write_all(s.as_bytes())
}

/// Length prefixes share one bound with the reader ([`MAX_LEN`]): a
/// baseline too large for `load` must fail loudly at `save` time instead
/// of producing a file the reader rejects (or, past `u32::MAX`, a
/// silently truncated prefix and a corrupt file).
fn write_len(w: &mut impl Write, len: usize) -> io::Result<()> {
    if len > MAX_LEN as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("baseline section of {len} entries exceeds the format limit of {MAX_LEN}"),
        ));
    }
    write_u32(w, len as u32)
}

// ----------------------------------------------------------- read helpers

fn read_u8(r: &mut impl Read) -> Result<u8, BaselineFileError> {
    let mut buf = [0u8; 1];
    r.read_exact(&mut buf)?;
    Ok(buf[0])
}

fn read_u16(r: &mut impl Read) -> Result<u16, BaselineFileError> {
    let mut buf = [0u8; 2];
    r.read_exact(&mut buf)?;
    Ok(u16::from_le_bytes(buf))
}

fn read_u32(r: &mut impl Read) -> Result<u32, BaselineFileError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64(r: &mut impl Read) -> Result<u64, BaselineFileError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Upper bound on serialized string/collection lengths — a corrupt length
/// prefix must not trigger a giant allocation.
const MAX_LEN: u32 = 64 * 1024 * 1024;

fn read_len(r: &mut impl Read, what: &str) -> Result<usize, BaselineFileError> {
    let len = read_u32(r)?;
    if len > MAX_LEN {
        return Err(format_err(format!("{what} length {len} is implausible")));
    }
    Ok(len as usize)
}

fn read_str(r: &mut impl Read, what: &str) -> Result<String, BaselineFileError> {
    let len = read_len(r, what)?;
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| format_err(format!("{what} is not UTF-8")))
}

// ------------------------------------------------------------- delay kind

fn write_delay(w: &mut impl Write, delay: &DelayKind) -> io::Result<()> {
    match delay {
        DelayKind::Unit => write_u8(w, 0),
        DelayKind::Zero => write_u8(w, 1),
        DelayKind::RealisticAdderCells => write_u8(w, 2),
        DelayKind::Custom(table) => {
            write_u8(w, 3)?;
            let (default, by_kind, by_kind_output) = table.parts();
            write_u64(w, default)?;
            write_len(w, by_kind.len())?;
            for (kind, d) in by_kind {
                write_u8(w, kind_code(kind))?;
                write_u64(w, d)?;
            }
            write_len(w, by_kind_output.len())?;
            for (kind, pin, d) in by_kind_output {
                write_u8(w, kind_code(kind))?;
                write_u8(w, pin as u8)?;
                write_u64(w, d)?;
            }
            Ok(())
        }
    }
}

fn read_delay(r: &mut impl Read) -> Result<DelayKind, BaselineFileError> {
    Ok(match read_u8(r)? {
        0 => DelayKind::Unit,
        1 => DelayKind::Zero,
        2 => DelayKind::RealisticAdderCells,
        3 => {
            let default = read_u64(r)?;
            let mut table = CellDelay::new().with_default(default);
            for _ in 0..read_len(r, "delay by-kind table")? {
                let kind = kind_from_code(read_u8(r)?)?;
                table = table.with_kind(kind, read_u64(r)?);
            }
            for _ in 0..read_len(r, "delay by-output table")? {
                let kind = kind_from_code(read_u8(r)?)?;
                let pin = read_u8(r)? as usize;
                table = table.with_output(kind, pin, read_u64(r)?);
            }
            DelayKind::Custom(table)
        }
        other => return Err(format_err(format!("unknown delay-kind tag {other}"))),
    })
}

// ---------------------------------------------------------------- options

fn write_options(w: &mut impl Write, options: SimOptions) -> io::Result<()> {
    write_u8(w, value_code(options.dff_init))?;
    write_u64(w, options.settle_budget)?;
    write_u8(
        w,
        match options.x_eval {
            XEval::Coarse => 0,
            XEval::TriTable => 1,
        },
    )
}

fn read_options(r: &mut impl Read) -> Result<SimOptions, BaselineFileError> {
    let dff_init = value_from_code(read_u8(r)?)?;
    let settle_budget = read_u64(r)?;
    let x_eval = match read_u8(r)? {
        0 => XEval::Coarse,
        1 => XEval::TriTable,
        other => return Err(format_err(format!("unknown x-eval code {other}"))),
    };
    Ok(SimOptions {
        dff_init,
        settle_budget,
        x_eval,
    })
}

// --------------------------------------------------------------- baseline

/// Serialises a baseline into `writer`; see the module docs for the
/// format. The bytes are deterministic for a given baseline.
///
/// # Errors
///
/// Returns [`BaselineFileError::Io`] on write failures.
pub fn save_baseline_to(
    baseline: &SimBaseline,
    writer: &mut impl Write,
) -> Result<(), BaselineFileError> {
    let w = writer;
    w.write_all(&MAGIC)?;
    write_u16(w, VERSION)?;
    write_str(w, &baseline.netlist_name)?;
    write_u64(w, baseline.netlist_fingerprint)?;
    write_u32(w, baseline.net_count as u32)?;
    write_u32(w, baseline.dff_count as u32)?;
    write_delay(w, &baseline.delay)?;
    write_options(w, baseline.options)?;
    write_u64(w, baseline.total_cell_evals)?;
    write_len(w, baseline.cycles.len())?;
    for cycle in &baseline.cycles {
        write_len(w, cycle.assignment.assignments().len())?;
        for &(net, value) in cycle.assignment.assignments() {
            write_u32(w, net.index() as u32)?;
            write_u8(w, u8::from(value))?;
        }
        write_len(w, cycle.transitions.len())?;
        for t in &cycle.transitions {
            write_u32(w, t.net.index() as u32)?;
            write_u64(w, t.time)?;
            write_u8(w, value_code(t.value))?;
            write_u8(w, transition_kind_code(t.kind))?;
        }
        write_u64(w, cycle.stats.transitions)?;
        write_u64(w, cycle.stats.settle_time)?;
        write_u64(w, cycle.stats.events)?;
        write_u64(w, cycle.stats.cell_evals)?;
    }
    Ok(())
}

/// Deserialises a baseline from `reader`.
///
/// # Errors
///
/// Returns [`BaselineFileError::Format`] for wrong magic/version or
/// malformed fields and [`BaselineFileError::Io`] for read failures.
pub fn load_baseline_from(reader: &mut impl Read) -> Result<SimBaseline, BaselineFileError> {
    let r = reader;
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(format_err("wrong magic bytes (expected GLBL)"));
    }
    let version = read_u16(r)?;
    if version != VERSION {
        return Err(format_err(format!(
            "unsupported baseline version {version} (this build reads {VERSION})"
        )));
    }
    let netlist_name = read_str(r, "netlist name")?;
    let netlist_fingerprint = read_u64(r)?;
    let net_count = read_u32(r)? as usize;
    let dff_count = read_u32(r)? as usize;
    let delay = read_delay(r)?;
    let options = read_options(r)?;
    let total_cell_evals = read_u64(r)?;
    let cycle_count = read_len(r, "cycle list")?;
    // Length prefixes are untrusted until the entries actually parse:
    // cap the upfront reservation so a corrupt 4-byte prefix yields a
    // Format error from the entry loop, not a gigabyte allocation here.
    let mut cycles = Vec::with_capacity(cycle_count.min(4096));
    for cycle_index in 0..cycle_count {
        let mut assignment = InputAssignment::new();
        for _ in 0..read_len(r, "assignment list")? {
            let net = read_net(r, net_count)?;
            assignment.set(net, read_u8(r)? != 0);
        }
        let transition_count = read_len(r, "transition list")?;
        let mut transitions = Vec::with_capacity(transition_count.min(4096));
        for _ in 0..transition_count {
            let net = read_net(r, net_count)?;
            let time = read_u64(r)?;
            let value = value_from_code(read_u8(r)?)?;
            let kind = transition_kind_from_code(read_u8(r)?)?;
            transitions.push(Transition {
                net,
                cycle: cycle_index as u64,
                time,
                value,
                kind,
            });
        }
        let stats = CycleStats {
            transitions: read_u64(r)?,
            settle_time: read_u64(r)?,
            events: read_u64(r)?,
            cell_evals: read_u64(r)?,
        };
        cycles.push(BaselineCycle {
            assignment,
            transitions,
            stats,
        });
    }
    // Trailing garbage means the file is not what it claims to be.
    let mut trailing = [0u8; 1];
    match r.read(&mut trailing)? {
        0 => {}
        _ => return Err(format_err("trailing bytes after the last cycle")),
    }
    Ok(SimBaseline {
        netlist_name,
        netlist_fingerprint,
        net_count,
        dff_count,
        delay,
        options,
        cycles,
        total_cell_evals,
    })
}

fn read_net(
    r: &mut impl Read,
    net_count: usize,
) -> Result<glitch_netlist::NetId, BaselineFileError> {
    let index = read_u32(r)? as usize;
    if index >= net_count {
        return Err(format_err(format!(
            "net index {index} out of range (netlist has {net_count} nets)"
        )));
    }
    Ok(glitch_netlist::NetId::from_index(index))
}

/// The sibling temp path `save_baseline` stages its bytes in before the
/// atomic rename. Pid-qualified so concurrent savers (several daemon
/// workers, a daemon plus a CLI run) never clobber each other mid-write.
pub(crate) fn staging_path(path: &Path) -> std::path::PathBuf {
    let mut temp = path.as_os_str().to_os_string();
    temp.push(format!(".tmp.{}", std::process::id()));
    temp.into()
}

/// Saves a baseline to `path` (buffered, created or truncated).
///
/// The bytes are staged in a pid-qualified `<path>.tmp.<pid>` sibling and
/// renamed into place only once fully written, so a crashed or killed
/// writer never leaves a truncated file where `load` expects a baseline —
/// readers see either the old complete file or the new complete file,
/// never a partial one. A failed save cleans its temp file up.
///
/// # Errors
///
/// As for [`save_baseline_to`].
pub fn save_baseline(
    baseline: &SimBaseline,
    path: impl AsRef<Path>,
) -> Result<(), BaselineFileError> {
    let path = path.as_ref();
    let temp = staging_path(path);
    let written: Result<(), BaselineFileError> = (|| {
        let mut writer = BufWriter::new(File::create(&temp)?);
        save_baseline_to(baseline, &mut writer)?;
        writer.flush()?;
        Ok(())
    })();
    let renamed = written.and_then(|()| std::fs::rename(&temp, path).map_err(Into::into));
    if renamed.is_err() {
        let _ = std::fs::remove_file(&temp);
    }
    renamed
}

/// Loads a baseline from `path` (buffered).
///
/// # Errors
///
/// As for [`load_baseline_from`].
pub fn load_baseline(path: impl AsRef<Path>) -> Result<SimBaseline, BaselineFileError> {
    load_baseline_from(&mut BufReader::new(File::open(path)?))
}

impl SimBaseline {
    /// Saves this baseline to a compact binary file; load it back with
    /// [`SimBaseline::load`]. See the module docs of [`crate::baseline_io`]
    /// for the format.
    ///
    /// # Errors
    ///
    /// Returns a [`BaselineFileError`] on I/O failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), BaselineFileError> {
        save_baseline(self, path)
    }

    /// Loads a baseline previously written by [`SimBaseline::save`].
    /// Callers should confirm [`SimBaseline::matches_netlist`] before
    /// handing the result to an [`crate::IncrementalSession`].
    ///
    /// # Errors
    ///
    /// Returns a [`BaselineFileError`] for I/O failures and malformed or
    /// version-mismatched files.
    pub fn load(path: impl AsRef<Path>) -> Result<SimBaseline, BaselineFileError> {
        load_baseline(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clocked::InputAssignment;
    use crate::probe::ActivityProbe;
    use crate::session::SimSession;
    use crate::DeltaStimulus;
    use glitch_netlist::Netlist;

    fn recorded_baseline(delay: DelayKind, options: SimOptions) -> (Netlist, SimBaseline) {
        let mut nl = Netlist::new("roundtrip");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let q = nl.dff(b, "q");
        let y = nl.xor2(a, q, "y");
        nl.mark_output(y);
        let stimulus: Vec<InputAssignment> = (0..12)
            .map(|i| {
                InputAssignment::new()
                    .with(a, i % 2 == 0)
                    .with(b, i % 3 == 0)
            })
            .collect();
        let (_, baseline) = SimSession::new(&nl)
            .delay(delay)
            .options(options)
            .stimulus(stimulus)
            .record_baseline()
            .unwrap();
        (nl, baseline)
    }

    fn roundtrip(baseline: &SimBaseline) -> SimBaseline {
        let mut bytes = Vec::new();
        save_baseline_to(baseline, &mut bytes).unwrap();
        load_baseline_from(&mut bytes.as_slice()).unwrap()
    }

    #[test]
    fn roundtrip_preserves_every_field_and_replays_identically() {
        for delay in [
            DelayKind::Unit,
            DelayKind::Zero,
            DelayKind::RealisticAdderCells,
            DelayKind::Custom(
                CellDelay::new()
                    .with_default(2)
                    .with_kind(glitch_netlist::CellKind::Xor, 3)
                    .with_output(glitch_netlist::CellKind::FullAdder, 0, 5),
            ),
        ] {
            let (nl, baseline) = recorded_baseline(delay.clone(), SimOptions::x_init());
            let loaded = roundtrip(&baseline);
            assert_eq!(loaded.netlist_name(), baseline.netlist_name());
            assert_eq!(loaded.cycle_count(), baseline.cycle_count());
            assert_eq!(loaded.total_cell_evals(), baseline.total_cell_evals());
            assert_eq!(loaded.delay(), &delay);
            assert_eq!(loaded.options(), baseline.options());
            assert!(loaded.matches_netlist(&nl));

            // The loaded baseline replays bit-identically to the original.
            let from_original = crate::IncrementalSession::new(&nl, &baseline)
                .probe(ActivityProbe::new())
                .run()
                .unwrap();
            let from_loaded = crate::IncrementalSession::new(&nl, &loaded)
                .probe(ActivityProbe::new())
                .run()
                .unwrap();
            assert_eq!(
                from_loaded
                    .session()
                    .probe::<ActivityProbe>()
                    .unwrap()
                    .trace(),
                from_original
                    .session()
                    .probe::<ActivityProbe>()
                    .unwrap()
                    .trace()
            );
            assert_eq!(from_loaded.stats(), from_original.stats());
        }
    }

    #[test]
    fn loaded_baseline_supports_delta_reruns() {
        let (nl, baseline) = recorded_baseline(DelayKind::Unit, SimOptions::default());
        let loaded = roundtrip(&baseline);
        let a = nl.find_net("a").unwrap();
        let delta = DeltaStimulus::new().set(5, a, baseline.input_value(5, a) != Value::One);
        let original = crate::IncrementalSession::new(&nl, &baseline)
            .probe(ActivityProbe::new())
            .delta(delta.clone())
            .run()
            .unwrap();
        let reloaded = crate::IncrementalSession::new(&nl, &loaded)
            .probe(ActivityProbe::new())
            .delta(delta)
            .run()
            .unwrap();
        assert_eq!(
            reloaded.session().probe::<ActivityProbe>().unwrap().trace(),
            original.session().probe::<ActivityProbe>().unwrap().trace()
        );
        assert_eq!(reloaded.stats(), original.stats());
    }

    #[test]
    fn save_and_load_via_files() {
        let (nl, baseline) = recorded_baseline(DelayKind::Unit, SimOptions::default());
        let path = std::env::temp_dir().join(format!(
            "glitch_baseline_roundtrip_{}.bin",
            std::process::id()
        ));
        baseline.save(&path).unwrap();
        let loaded = SimBaseline::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(loaded.matches_netlist(&nl));
        assert_eq!(loaded.cycle_count(), baseline.cycle_count());
    }

    #[test]
    fn save_is_atomic_and_cleans_its_staging_file() {
        let (_, baseline) = recorded_baseline(DelayKind::Unit, SimOptions::default());
        let dir = std::env::temp_dir().join(format!("glitch_atomic_save_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.bin");
        let temp = staging_path(&path);

        // A stale truncated staging file — what a killed writer leaves
        // behind — must never be visible as the baseline itself: the load
        // path only ever sees `path`, and a fresh save replaces the
        // stale temp rather than tripping over it.
        std::fs::write(&temp, b"GLBL\x01\x00trunca").unwrap();
        assert!(
            SimBaseline::load(&path).is_err(),
            "a staging file must not satisfy a load of the real path"
        );
        baseline.save(&path).unwrap();
        assert!(!temp.exists(), "save must consume its staging file");
        let loaded = SimBaseline::load(&path).unwrap();
        assert_eq!(loaded.cycle_count(), baseline.cycle_count());

        // Overwriting an existing (corrupt) file goes through the same
        // rename, so a reader never observes a half-written state.
        std::fs::write(&path, b"corrupt").unwrap();
        baseline.save(&path).unwrap();
        assert!(!temp.exists());
        assert!(SimBaseline::load(&path).is_ok());

        // A failed save (unwritable target directory) leaves no debris.
        let missing = dir.join("no_such_dir").join("baseline.bin");
        assert!(baseline.save(&missing).is_err());
        assert!(!staging_path(&missing).exists());
        assert!(!missing.exists());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn edited_netlist_with_identical_counts_is_rejected_by_fingerprint() {
        // Two structurally different circuits with the same name, net
        // count, cell count and flipflop count: only the fingerprint can
        // tell a stale baseline file from a matching one.
        let build = |xor: bool| {
            let mut nl = Netlist::new("twin");
            let a = nl.add_input("a");
            let b = nl.add_input("b");
            let y = if xor {
                nl.xor2(a, b, "y")
            } else {
                nl.and2(a, b, "y")
            };
            nl.mark_output(y);
            (nl, a, b)
        };
        let (original, a, b) = build(true);
        let (edited, ..) = build(false);
        assert_eq!(original.net_count(), edited.net_count());
        assert_eq!(original.cell_count(), edited.cell_count());
        assert_ne!(original.fingerprint(), edited.fingerprint());

        let (_, baseline) = SimSession::new(&original)
            .stimulus(vec![InputAssignment::new().with(a, true).with(b, false)])
            .record_baseline()
            .unwrap();
        let loaded = roundtrip(&baseline);
        assert!(loaded.matches_netlist(&original));
        assert!(
            !loaded.matches_netlist(&edited),
            "a stale baseline must not replay against an edited circuit"
        );
    }

    #[test]
    fn oversized_sections_fail_at_save_time() {
        // A length prefix over the format bound must be rejected while
        // writing, not discovered as a corrupt file at load time. (The
        // writer and reader share the same MAX_LEN bound.)
        let mut sink = Vec::new();
        let err = write_len(&mut sink, MAX_LEN as usize + 1).unwrap_err();
        assert!(err.to_string().contains("format limit"), "{err}");
        assert!(sink.is_empty(), "nothing written for a rejected length");
        write_len(&mut sink, MAX_LEN as usize).unwrap();
        assert_eq!(sink.len(), 4);
    }

    #[test]
    fn malformed_files_are_rejected_with_reasons() {
        let (_, baseline) = recorded_baseline(DelayKind::Unit, SimOptions::default());
        let mut bytes = Vec::new();
        save_baseline_to(&baseline, &mut bytes).unwrap();

        // Wrong magic.
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        let err = load_baseline_from(&mut wrong_magic.as_slice()).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");

        // Future version.
        let mut future = bytes.clone();
        future[4] = 0xFF;
        let err = load_baseline_from(&mut future.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");

        // Truncation.
        let err =
            load_baseline_from(&mut bytes[..bytes.len() / 2].to_vec().as_slice()).unwrap_err();
        assert!(matches!(err, BaselineFileError::Io(_)), "{err}");

        // Trailing garbage.
        let mut padded = bytes.clone();
        padded.push(0);
        let err = load_baseline_from(&mut padded.as_slice()).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");

        // Missing file.
        assert!(SimBaseline::load("/nonexistent/glitch/baseline.bin").is_err());
    }
}
