//! Internal event queue used by the clocked simulator.

use std::collections::BTreeMap;

use glitch_netlist::NetId;

use crate::value::Value;

/// A time-ordered queue of pending net-value changes within one clock cycle.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    slots: BTreeMap<u64, Vec<(NetId, Value)>>,
    len: usize,
}

impl EventQueue {
    pub(crate) fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `net` to take `value` at `time`.
    pub(crate) fn push(&mut self, time: u64, net: NetId, value: Value) {
        self.slots.entry(time).or_default().push((net, value));
        self.len += 1;
    }

    /// Removes and returns all events at the earliest pending time.
    #[cfg(test)]
    pub(crate) fn pop_earliest(&mut self) -> Option<(u64, Vec<(NetId, Value)>)> {
        let (&time, _) = self.slots.iter().next()?;
        let events = self.slots.remove(&time).unwrap_or_default();
        self.len -= events.len();
        Some((time, events))
    }

    /// Earliest pending time, if any.
    pub(crate) fn earliest_time(&self) -> Option<u64> {
        self.slots.keys().next().copied()
    }

    /// Removes and returns the events scheduled exactly at `time`, or `None`
    /// when nothing is pending at that time.
    pub(crate) fn pop_at(&mut self, time: u64) -> Option<Vec<(NetId, Value)>> {
        let events = self.slots.remove(&time)?;
        self.len -= events.len();
        Some(events)
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    pub(crate) fn clear(&mut self) {
        self.slots.clear();
        self.len = 0;
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_come_out_in_time_order() {
        let mut q = EventQueue::new();
        let n = NetId::from_index(0);
        q.push(5, n, Value::One);
        q.push(1, n, Value::Zero);
        q.push(5, n, Value::Zero);
        assert_eq!(q.len(), 3);
        let (t, evs) = q.pop_earliest().unwrap();
        assert_eq!(t, 1);
        assert_eq!(evs.len(), 1);
        let (t, evs) = q.pop_earliest().unwrap();
        assert_eq!(t, 5);
        assert_eq!(evs.len(), 2);
        assert!(q.pop_earliest().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn clear_empties_the_queue() {
        let mut q = EventQueue::new();
        q.push(3, NetId::from_index(1), Value::One);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }
}
