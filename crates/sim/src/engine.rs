//! Internal event queue used by the clocked simulator.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use glitch_netlist::NetId;

use crate::value::Value;

/// One pending net-value change.
///
/// The ordering is *reversed* on `(time, seq)` so that the max-heap
/// [`BinaryHeap`] pops the earliest event first, and events pushed at the
/// same time come out in push order (`seq` is a monotone counter). Stable
/// same-time ordering keeps the simulator deterministic: the delta loop sees
/// events exactly in the order the evaluation front produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    time: u64,
    seq: u64,
    net: NetId,
    value: Value,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Cumulative traffic statistics of the engine's event queue over a
/// whole run.
///
/// These counters are deterministic — the event stream is a pure function
/// of netlist, stimulus and delay model — so they may participate in the
/// engine's bit-identity guarantees (and in `ShardSummary` equality),
/// unlike wall-clock timings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events ever scheduled.
    pub pushes: u64,
    /// Events ever delivered to the delta loop.
    pub pops: u64,
    /// Largest number of simultaneously pending events.
    pub peak_depth: u64,
}

impl QueueStats {
    /// Folds another run's statistics into this one (counts add, the peak
    /// combines by maximum) — shard-order merging, as everywhere else.
    pub fn merge(&mut self, other: QueueStats) {
        self.pushes += other.pushes;
        self.pops += other.pops;
        self.peak_depth = self.peak_depth.max(other.peak_depth);
    }
}

/// A time-ordered queue of pending net-value changes within one clock cycle.
///
/// Backed by a [`BinaryHeap`] keyed on `(time, insertion sequence)`: pushes
/// and pops are `O(log n)` without the per-timestamp allocation churn of the
/// previous `BTreeMap<u64, Vec<_>>` representation.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Event>,
    seq: u64,
    /// Cumulative over the queue's lifetime: [`EventQueue::clear`] runs at
    /// the start of every cycle and must not reset run-level statistics.
    stats: QueueStats,
}

impl EventQueue {
    pub(crate) fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `net` to take `value` at `time`.
    pub(crate) fn push(&mut self, time: u64, net: NetId, value: Value) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Event {
            time,
            seq,
            net,
            value,
        });
        self.stats.pushes += 1;
        self.stats.peak_depth = self.stats.peak_depth.max(self.heap.len() as u64);
    }

    /// Removes and returns all events at the earliest pending time.
    #[cfg(test)]
    pub(crate) fn pop_earliest(&mut self) -> Option<(u64, Vec<(NetId, Value)>)> {
        let time = self.earliest_time()?;
        let events = self.pop_at(time)?;
        Some((time, events))
    }

    /// Earliest pending time, if any.
    pub(crate) fn earliest_time(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the events scheduled exactly at `time` (in push
    /// order), or `None` when nothing is pending at that time.
    pub(crate) fn pop_at(&mut self, time: u64) -> Option<Vec<(NetId, Value)>> {
        if self.heap.peek().map(|e| e.time) != Some(time) {
            return None;
        }
        let mut events = Vec::new();
        while let Some(e) = self.heap.peek() {
            if e.time != time {
                break;
            }
            let e = self.heap.pop().expect("peeked event exists");
            events.push((e.net, e.value));
        }
        self.stats.pops += events.len() as u64;
        Some(events)
    }

    /// Cumulative traffic statistics since construction (or
    /// [`EventQueue::reset_stats`]); *not* reset by [`EventQueue::clear`].
    pub(crate) fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Resets the cumulative statistics (a full simulator reset, not the
    /// per-cycle clear).
    pub(crate) fn reset_stats(&mut self) {
        self.stats = QueueStats::default();
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub(crate) fn clear(&mut self) {
        self.heap.clear();
        self.seq = 0;
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_come_out_in_time_order() {
        let mut q = EventQueue::new();
        let n = NetId::from_index(0);
        q.push(5, n, Value::One);
        q.push(1, n, Value::Zero);
        q.push(5, n, Value::Zero);
        assert_eq!(q.len(), 3);
        let (t, evs) = q.pop_earliest().unwrap();
        assert_eq!(t, 1);
        assert_eq!(evs.len(), 1);
        let (t, evs) = q.pop_earliest().unwrap();
        assert_eq!(t, 5);
        assert_eq!(evs.len(), 2);
        assert!(q.pop_earliest().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn same_time_events_preserve_push_order() {
        let mut q = EventQueue::new();
        let nets: Vec<NetId> = (0..8).map(NetId::from_index).collect();
        // Interleave two timestamps; within each, push order must survive.
        for (i, &net) in nets.iter().enumerate() {
            let time = if i % 2 == 0 { 3 } else { 7 };
            let value = if i % 3 == 0 { Value::One } else { Value::Zero };
            q.push(time, net, value);
        }
        let at3 = q.pop_at(3).unwrap();
        assert_eq!(
            at3.iter().map(|(n, _)| n.index()).collect::<Vec<_>>(),
            vec![0, 2, 4, 6],
            "same-time events must come out in push order"
        );
        // Nothing left at 3; time 7 is next.
        assert!(q.pop_at(3).is_none());
        let at7 = q.pop_at(7).unwrap();
        assert_eq!(
            at7.iter().map(|(n, _)| n.index()).collect::<Vec<_>>(),
            vec![1, 3, 5, 7]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn same_time_push_during_delta_iteration_is_seen_by_next_pop() {
        // The delta loop pops all events at time t, evaluates, and newly
        // scheduled time-t events must surface on the next pop_at(t).
        let mut q = EventQueue::new();
        let a = NetId::from_index(1);
        let b = NetId::from_index(2);
        q.push(4, a, Value::One);
        let first = q.pop_at(4).unwrap();
        assert_eq!(first, vec![(a, Value::One)]);
        q.push(4, b, Value::Zero);
        let second = q.pop_at(4).unwrap();
        assert_eq!(second, vec![(b, Value::Zero)]);
        assert!(q.pop_at(4).is_none());
    }

    #[test]
    fn pop_at_wrong_time_returns_none_and_keeps_events() {
        let mut q = EventQueue::new();
        let n = NetId::from_index(0);
        q.push(2, n, Value::One);
        assert!(q.pop_at(1).is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(q.earliest_time(), Some(2));
    }

    #[test]
    fn clear_empties_the_queue() {
        let mut q = EventQueue::new();
        q.push(3, NetId::from_index(1), Value::One);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.earliest_time(), None);
    }

    #[test]
    fn stats_survive_clear_and_count_traffic() {
        let mut q = EventQueue::new();
        let n = NetId::from_index(0);
        q.push(1, n, Value::One);
        q.push(1, n, Value::Zero);
        q.push(2, n, Value::One);
        assert_eq!(q.stats().peak_depth, 3);
        let _ = q.pop_at(1);
        q.clear();
        let stats = q.stats();
        assert_eq!(stats.pushes, 3);
        assert_eq!(stats.pops, 2);
        assert_eq!(stats.peak_depth, 3);
        q.reset_stats();
        assert_eq!(q.stats(), QueueStats::default());
    }

    #[test]
    fn queue_stats_merge_adds_and_maxes() {
        let mut a = QueueStats {
            pushes: 3,
            pops: 2,
            peak_depth: 5,
        };
        a.merge(QueueStats {
            pushes: 4,
            pops: 4,
            peak_depth: 2,
        });
        assert_eq!(
            a,
            QueueStats {
                pushes: 7,
                pops: 6,
                peak_depth: 5
            }
        );
    }
}
