//! Three-valued simulation logic: 0, 1 and X (unknown).

use std::fmt;

/// A simulated logic value.
///
/// `X` models an uninitialised or unknown node; it appears only before the
/// first cycle assigns every flipflop and input a defined value. Transitions
/// from or to `X` are not counted as signal transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Value {
    /// Logic low.
    Zero,
    /// Logic high.
    One,
    /// Unknown / uninitialised.
    #[default]
    X,
}

impl Value {
    /// `true` when the value is 0 or 1.
    #[must_use]
    pub fn is_known(self) -> bool {
        !matches!(self, Value::X)
    }

    /// Converts to `bool`, or `None` for `X`.
    #[must_use]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Value::Zero => Some(false),
            Value::One => Some(true),
            Value::X => None,
        }
    }

    /// Is the change `self -> next` a countable signal transition?
    ///
    /// Only 0→1 and 1→0 changes between known values count; assignments out
    /// of or into `X` are initialisation, not switching activity.
    #[must_use]
    pub fn transitions_to(self, next: Value) -> bool {
        self.is_known() && next.is_known() && self != next
    }

    /// Is `self -> next` a power-consuming (0→1, charging) transition?
    #[must_use]
    pub fn is_rising_to(self, next: Value) -> bool {
        self == Value::Zero && next == Value::One
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        if b {
            Value::One
        } else {
            Value::Zero
        }
    }
}

// `Value` (the simulator's net-value plane) and `glitch_netlist::Tri` (the
// evaluation domain of the three-valued cell tables) are the same
// three-point lattice; the conversions are the bridge the simulator's
// `XEval::TriTable` mode crosses on every cell evaluation.

impl From<glitch_netlist::Tri> for Value {
    fn from(t: glitch_netlist::Tri) -> Self {
        match t {
            glitch_netlist::Tri::Zero => Value::Zero,
            glitch_netlist::Tri::One => Value::One,
            glitch_netlist::Tri::X => Value::X,
        }
    }
}

impl From<Value> for glitch_netlist::Tri {
    fn from(v: Value) -> Self {
        match v {
            Value::Zero => glitch_netlist::Tri::Zero,
            Value::One => glitch_netlist::Tri::One,
            Value::X => glitch_netlist::Tri::X,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Zero => f.write_str("0"),
            Value::One => f.write_str("1"),
            Value::X => f.write_str("x"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(true), Value::One);
        assert_eq!(Value::from(false), Value::Zero);
        assert_eq!(Value::One.to_bool(), Some(true));
        assert_eq!(Value::Zero.to_bool(), Some(false));
        assert_eq!(Value::X.to_bool(), None);
        assert_eq!(Value::default(), Value::X);
    }

    #[test]
    fn transition_rules() {
        assert!(Value::Zero.transitions_to(Value::One));
        assert!(Value::One.transitions_to(Value::Zero));
        assert!(!Value::Zero.transitions_to(Value::Zero));
        assert!(!Value::X.transitions_to(Value::One));
        assert!(!Value::One.transitions_to(Value::X));
        assert!(Value::Zero.is_rising_to(Value::One));
        assert!(!Value::One.is_rising_to(Value::Zero));
        assert!(!Value::X.is_rising_to(Value::One));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Zero.to_string(), "0");
        assert_eq!(Value::One.to_string(), "1");
        assert_eq!(Value::X.to_string(), "x");
    }
}
