//! Minimal VCD (value change dump) recording for debugging glitch traces.
//!
//! The recorder stores every net value change with a global timestamp of
//! `cycle * cycle_period + settle_time` and can render a standard VCD file
//! that waveform viewers (GTKWave and friends) understand.

use std::fmt::Write as _;

use glitch_netlist::{NetId, Netlist};

use crate::value::Value;

/// Records value changes during simulation for later export as a VCD file.
#[derive(Debug, Clone)]
pub struct VcdRecorder {
    cycle_period: u64,
    changes: Vec<(u64, NetId, Value)>,
}

impl Default for VcdRecorder {
    fn default() -> Self {
        Self::new(1_000)
    }
}

impl VcdRecorder {
    /// Creates a recorder. `cycle_period` is the number of VCD time units
    /// allotted to one clock cycle; intra-cycle settle times beyond it are
    /// clamped so cycles never overlap in the waveform.
    #[must_use]
    pub fn new(cycle_period: u64) -> Self {
        VcdRecorder {
            cycle_period: cycle_period.max(1),
            changes: Vec::new(),
        }
    }

    /// Number of recorded value changes.
    #[must_use]
    pub fn change_count(&self) -> usize {
        self.changes.len()
    }

    /// Records a value change (called by the simulator).
    pub fn change(&mut self, cycle: u64, time: u64, net: NetId, value: Value) {
        let offset = time.min(self.cycle_period - 1);
        self.changes
            .push((cycle * self.cycle_period + offset, net, value));
    }

    /// Renders the recording as VCD text, naming signals after the netlist's
    /// nets.
    #[must_use]
    pub fn to_vcd(&self, netlist: &Netlist) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$timescale 1ns $end");
        let _ = writeln!(out, "$scope module {} $end", sanitize(netlist.name()));
        for (id, net) in netlist.nets() {
            let _ = writeln!(
                out,
                "$var wire 1 {} {} $end",
                code(id),
                sanitize(net.name())
            );
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");

        let mut sorted = self.changes.clone();
        sorted.sort_by_key(|&(t, net, _)| (t, net.index()));
        let mut last_time = None;
        for (t, net, value) in sorted {
            if last_time != Some(t) {
                let _ = writeln!(out, "#{t}");
                last_time = Some(t);
            }
            let _ = writeln!(out, "{}{}", value, code(net));
        }
        out
    }
}

/// VCD identifier code for a net: a printable-ASCII base-94 encoding.
fn code(net: NetId) -> String {
    let mut n = net.index();
    let mut s = String::new();
    loop {
        s.push((33 + (n % 94)) as u8 as char);
        n /= 94;
        if n == 0 {
            break;
        }
    }
    s
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitch_netlist::Netlist;

    #[test]
    fn vcd_output_has_header_and_changes() {
        let mut nl = Netlist::new("vcd test");
        let a = nl.add_input("a");
        let y = nl.inv(a, "y");
        nl.mark_output(y);
        let mut rec = VcdRecorder::new(10);
        rec.change(0, 0, a, Value::One);
        rec.change(0, 1, y, Value::Zero);
        rec.change(1, 0, a, Value::Zero);
        assert_eq!(rec.change_count(), 3);
        let text = rec.to_vcd(&nl);
        assert!(text.contains("$timescale"));
        assert!(text.contains("vcd_test"));
        assert!(text.contains("$var wire 1"));
        assert!(text.contains("#0"));
        assert!(text.contains("#10"));
    }

    #[test]
    fn settle_times_are_clamped_to_the_cycle_period() {
        let mut nl = Netlist::new("clamp");
        let a = nl.add_input("a");
        let mut rec = VcdRecorder::new(5);
        rec.change(2, 100, a, Value::One);
        let text = rec.to_vcd(&nl);
        // cycle 2 * period 5 + clamped offset 4 = 14
        assert!(text.contains("#14"));
    }

    #[test]
    fn identifier_codes_are_unique_for_many_nets() {
        let ids: Vec<String> = (0..500).map(|i| code(NetId::from_index(i))).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }
}
