//! Windowed transition activity: the glitch "heatmap over cycles".
//!
//! [`WindowedActivityProbe`] buckets the run into fixed-size windows of `K`
//! clock cycles and records each window's transition totals (split into
//! useful work and glitches by the paper's parity rule). Where the flat
//! [`crate::ActivityProbe`] answers *which nets* glitch, the windowed probe
//! answers *when* they glitch — burst behaviour after a stimulus change,
//! warm-up transients, periodic patterns in sequential circuits.
//!
//! The probe is [`MergeableProbe`]: per-seed shards of a parallel run all
//! start at cycle 0, so their windows align and merge element-wise into an
//! aggregate heatmap. Shards that split one run's *cycle range* would only
//! merge correctly if every shard length were a multiple of the window
//! size; the merge asserts on window-size mismatches and documents the
//! alignment requirement, mirroring the semantics choice made by
//! [`crate::RandomStimulus::shard_seeds`].

use std::fmt::Write as _;

use glitch_activity::split_by_parity;
use glitch_netlist::Netlist;

use crate::clocked::CycleStats;
use crate::probe::{MergeableProbe, Probe, Transition, TransitionKind};

/// Transition totals of one `K`-cycle window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActivityWindow {
    /// First cycle (0-based, inclusive) the window covers.
    pub start_cycle: u64,
    /// Number of cycles actually recorded in the window (the final window
    /// of a run may be shorter than `K`).
    pub cycles: u64,
    /// Total switching transitions in the window.
    pub transitions: u64,
    /// Useful transitions (parity rule, per net per cycle).
    pub useful: u64,
    /// Useless (glitch) transitions.
    pub useless: u64,
}

impl ActivityWindow {
    /// Number of complete glitches in the window.
    #[must_use]
    pub fn glitches(&self) -> u64 {
        self.useless / 2
    }
}

/// Accumulates per-window transition totals over a run; see the module
/// documentation.
#[derive(Debug, Clone, Default)]
pub struct WindowedActivityProbe {
    window: u64,
    windows: Vec<ActivityWindow>,
    /// Per-net transition counts of the in-flight cycle (parity is a
    /// per-net, per-cycle property, so per-cycle counts cannot be summed
    /// before classification).
    counts: Vec<u32>,
    current: Option<ActivityWindow>,
}

impl WindowedActivityProbe {
    /// Creates a probe bucketing activity into windows of `window` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn new(window: u64) -> Self {
        assert!(window > 0, "window size must be at least one cycle");
        WindowedActivityProbe {
            window,
            windows: Vec::new(),
            counts: Vec::new(),
            current: None,
        }
    }

    /// The configured window size, in cycles.
    #[must_use]
    pub fn window(&self) -> u64 {
        self.window
    }

    /// The completed windows, in cycle order.
    #[must_use]
    pub fn windows(&self) -> &[ActivityWindow] {
        &self.windows
    }

    /// Renders the heatmap as CSV
    /// (`window,start_cycle,cycles,transitions,useful,useless,glitches`).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("window,start_cycle,cycles,transitions,useful,useless,glitches\n");
        for (i, w) in self.windows.iter().enumerate() {
            let _ = writeln!(
                out,
                "{i},{},{},{},{},{},{}",
                w.start_cycle,
                w.cycles,
                w.transitions,
                w.useful,
                w.useless,
                w.glitches()
            );
        }
        out
    }

    fn flush_current(&mut self) {
        if let Some(window) = self.current.take() {
            if window.cycles > 0 {
                self.windows.push(window);
            }
        }
    }
}

impl Probe for WindowedActivityProbe {
    fn on_run_start(&mut self, netlist: &Netlist) {
        self.counts = vec![0; netlist.net_count()];
        self.windows.clear();
        self.current = None;
    }

    fn on_cycle_start(&mut self, cycle: u64) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        if cycle.is_multiple_of(self.window) {
            self.flush_current();
        }
        if self.current.is_none() {
            self.current = Some(ActivityWindow {
                start_cycle: cycle - cycle % self.window,
                ..ActivityWindow::default()
            });
        }
    }

    fn on_transition(&mut self, transition: &Transition) {
        if matches!(transition.kind, TransitionKind::Rise | TransitionKind::Fall) {
            self.counts[transition.net.index()] += 1;
        }
    }

    // Committed at cycle *end*, like `ActivityProbe`: a cycle that errors
    // mid-settle must not contribute partial counts to its window.
    fn on_cycle_end(&mut self, _cycle: u64, _stats: &CycleStats) {
        let window = self
            .current
            .as_mut()
            .expect("on_cycle_start opens a window before any cycle ends");
        for &count in &self.counts {
            if count == 0 {
                continue;
            }
            let split = split_by_parity(u64::from(count));
            window.transitions += u64::from(count);
            window.useful += split.useful;
            window.useless += split.useless;
        }
        window.cycles += 1;
    }

    fn on_run_end(&mut self, _netlist: &Netlist) {
        self.flush_current();
    }
}

impl MergeableProbe for WindowedActivityProbe {
    /// Merges another run's heatmap element-wise: window `i` of `other` is
    /// added onto window `i` of `self`, and trailing windows are appended.
    /// This is exact for shards that all start at cycle 0 (per-seed
    /// shards); see the module documentation for the alignment caveat.
    ///
    /// # Panics
    ///
    /// Panics if the window sizes differ.
    fn merge(&mut self, other: WindowedActivityProbe) {
        assert_eq!(
            self.window, other.window,
            "cannot merge windowed probes with different window sizes"
        );
        for (i, theirs) in other.windows.into_iter().enumerate() {
            if let Some(mine) = self.windows.get_mut(i) {
                debug_assert_eq!(mine.start_cycle, theirs.start_cycle);
                mine.cycles += theirs.cycles;
                mine.transitions += theirs.transitions;
                mine.useful += theirs.useful;
                mine.useless += theirs.useless;
            } else {
                self.windows.push(theirs);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clocked::InputAssignment;
    use crate::session::SimSession;
    use glitch_netlist::NetId;

    fn inv_netlist() -> (Netlist, NetId) {
        let mut nl = Netlist::new("windowed");
        let a = nl.add_input("a");
        let y = nl.inv(a, "y");
        nl.mark_output(y);
        (nl, a)
    }

    fn toggling(a: NetId, cycles: u64) -> impl Iterator<Item = InputAssignment> {
        (0..cycles).map(move |i| InputAssignment::new().with(a, i % 2 == 0))
    }

    #[test]
    fn windows_cover_the_run_and_sum_to_the_flat_totals() {
        let (nl, a) = inv_netlist();
        let report = SimSession::new(&nl)
            .probe(crate::ActivityProbe::new())
            .probe(WindowedActivityProbe::new(4))
            .stimulus(toggling(a, 10))
            .run()
            .unwrap();
        let windowed = report.probe::<WindowedActivityProbe>().unwrap();
        // 10 cycles at K=4: windows of 4, 4 and 2 cycles.
        assert_eq!(windowed.window(), 4);
        let windows = windowed.windows();
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0].start_cycle, 0);
        assert_eq!(windows[1].start_cycle, 4);
        assert_eq!(windows[2].start_cycle, 8);
        assert_eq!(
            windows.iter().map(|w| w.cycles).collect::<Vec<_>>(),
            [4, 4, 2]
        );
        // Per-window totals sum to the flat activity trace's totals.
        let flat = report.probe::<crate::ActivityProbe>().unwrap().trace();
        let totals = flat.totals();
        assert_eq!(
            windows.iter().map(|w| w.transitions).sum::<u64>(),
            totals.transitions
        );
        assert_eq!(windows.iter().map(|w| w.useful).sum::<u64>(), totals.useful);
        assert_eq!(
            windows.iter().map(|w| w.useless).sum::<u64>(),
            totals.useless
        );
    }

    #[test]
    fn csv_renders_one_row_per_window() {
        let (nl, a) = inv_netlist();
        let report = SimSession::new(&nl)
            .probe(WindowedActivityProbe::new(2))
            .stimulus(toggling(a, 6))
            .run()
            .unwrap();
        let csv = report.probe::<WindowedActivityProbe>().unwrap().to_csv();
        assert!(csv.starts_with("window,start_cycle,cycles,"));
        assert_eq!(csv.lines().count(), 1 + 3);
        assert!(csv.lines().nth(2).unwrap().starts_with("1,2,2,"));
    }

    #[test]
    fn merge_sums_aligned_windows_and_appends_the_tail() {
        let (nl, a) = inv_netlist();
        let run = |cycles: u64| {
            let report = SimSession::new(&nl)
                .probe(WindowedActivityProbe::new(3))
                .stimulus(toggling(a, cycles))
                .run()
                .unwrap();
            let mut report = report;
            report.take_probe::<WindowedActivityProbe>().unwrap()
        };
        let mut merged = WindowedActivityProbe::new(3);
        let first = run(6);
        let second = run(9);
        merged.merge(first.clone());
        merged.merge(second.clone());
        assert_eq!(merged.windows().len(), 3);
        for i in 0..2 {
            assert_eq!(
                merged.windows()[i].transitions,
                first.windows()[i].transitions + second.windows()[i].transitions
            );
            assert_eq!(
                merged.windows()[i].cycles,
                first.windows()[i].cycles + second.windows()[i].cycles
            );
        }
        // The third window only exists in the longer run.
        assert_eq!(merged.windows()[2], second.windows()[2]);
    }

    #[test]
    #[should_panic(expected = "different window sizes")]
    fn merge_rejects_mismatched_window_sizes() {
        let (nl, a) = inv_netlist();
        let mut report = SimSession::new(&nl)
            .probe(WindowedActivityProbe::new(2))
            .stimulus(toggling(a, 4))
            .run()
            .unwrap();
        let mut two = report.take_probe::<WindowedActivityProbe>().unwrap();
        let mut report = SimSession::new(&nl)
            .probe(WindowedActivityProbe::new(3))
            .stimulus(toggling(a, 4))
            .run()
            .unwrap();
        let three = report.take_probe::<WindowedActivityProbe>().unwrap();
        two.merge(three);
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_window_is_rejected() {
        let _ = WindowedActivityProbe::new(0);
    }
}
