//! Incremental dirty-region re-simulation.
//!
//! The paper's analysis workloads (seed sweeps, held-input mode sweeps,
//! input-sensitivity studies) re-run near-identical stimuli: only a few
//! primary input bits differ between runs. A full [`crate::SimSession`]
//! pays the whole event-driven settle for every cycle anyway. This module
//! adds the fast path:
//!
//! * [`SimBaseline`] — the replay log of one full run, recorded by
//!   [`crate::SimSession::record_baseline`]: per cycle the stimulus, the
//!   reported transition stream and the cycle statistics;
//! * [`DeltaStimulus`] — the *difference* to re-simulate: changed input
//!   bits per cycle, plus inputs held to new values on every cycle;
//! * [`IncrementalSession`] — re-runs the baseline under the delta. Cycles
//!   whose inputs, flipflop state and net values provably match the
//!   baseline are **replayed** to the probes in `O(transitions)`; all other
//!   cycles are event-simulated normally, with the netlist's static
//!   [`ConeIndex`] (computed once, shareable across jobs) bounding which
//!   nets must be diffed against the baseline to detect reconvergence.
//!
//! **The headline guarantee is bit-identity.** For every probe — activity,
//! power, stats, windowed heatmaps, VCD and CSV event streams — an
//! incremental run produces exactly the hook sequence a full simulation of
//! the merged stimulus would have produced, so every derived artefact is
//! identical bit for bit. *Unfaithful Glitch Propagation in Existing
//! Binary Circuit Models* (Függer, Nowak, Schmid) documents how easily
//! event-pruning shortcuts silently change glitch behaviour; the
//! differential proptest oracle in `tests/incremental.rs` pins this
//! guarantee against the full simulator on random netlists and random
//! deltas.
//!
//! Why replay is sound: a cycle is replayed only when (a) its merged
//! stimulus is entry-for-entry identical to the baseline stimulus apart
//! from no-op appends, (b) no net value diverges from the rolling baseline
//! state, and (c) the sampled flipflop state matches. Identical inputs to
//! the deterministic event engine produce identical outputs, so the
//! recorded stream *is* what a live cycle would emit. Divergence can only
//! spread through the combinational fanout of a changed net (and across
//! cycle boundaries through flipflops, which are re-seeded from their Q
//! nets when the sampled state differs), so diffing the cone union is
//! exhaustive — this is the fallback to full evaluation when flipflop
//! state diverges.

use std::any::Any;

use glitch_netlist::{ConeIndex, NetId, Netlist};

use crate::clocked::{ClockedSimulator, CycleStats, InputAssignment, SimOptions};
use crate::delay::DelayKind;
use crate::error::SimError;
use crate::probe::{Probe, Transition};
use crate::session::{SessionError, SessionReport};
use crate::value::Value;

// ---------------------------------------------------------------- baseline

/// One recorded cycle of a baseline run.
#[derive(Debug, Clone)]
pub(crate) struct BaselineCycle {
    /// The stimulus applied at the start of the cycle, as given.
    pub(crate) assignment: InputAssignment,
    /// Every transition the cycle reported to its probes, in report order.
    pub(crate) transitions: Vec<Transition>,
    /// The cycle's statistics (settle time, events, cell evaluations).
    pub(crate) stats: CycleStats,
}

/// The replay log of one full simulation run; see the module docs.
///
/// Recorded by [`crate::SimSession::record_baseline`] and consumed by any
/// number of [`IncrementalSession`]s (it is immutable and `Sync`, so
/// parallel delta jobs share one baseline by reference).
#[derive(Debug, Clone)]
pub struct SimBaseline {
    pub(crate) netlist_name: String,
    pub(crate) netlist_fingerprint: u64,
    pub(crate) net_count: usize,
    pub(crate) dff_count: usize,
    pub(crate) delay: DelayKind,
    pub(crate) options: SimOptions,
    pub(crate) cycles: Vec<BaselineCycle>,
    pub(crate) total_cell_evals: u64,
}

impl SimBaseline {
    /// Number of recorded cycles.
    #[must_use]
    pub fn cycle_count(&self) -> u64 {
        self.cycles.len() as u64
    }

    /// The name of the netlist the baseline was recorded on.
    #[must_use]
    pub fn netlist_name(&self) -> &str {
        &self.netlist_name
    }

    /// Whether this baseline was recorded on a structurally matching
    /// netlist — same name, same counts, and the same structural
    /// [`Netlist::fingerprint`] (kinds, connectivity, flipflop inits), so
    /// an edited circuit that happens to preserve its name and element
    /// counts is still rejected. Offered as a predicate so callers
    /// loading baselines from disk ([`crate::load_baseline`]) can fail
    /// gracefully where [`IncrementalSession::new`] panics.
    #[must_use]
    pub fn matches_netlist(&self, netlist: &Netlist) -> bool {
        self.netlist_name == netlist.name()
            && self.net_count == netlist.net_count()
            && self.dff_count == netlist.dff_count()
            && self.netlist_fingerprint == netlist.fingerprint()
    }

    /// Total combinational cell evaluations the baseline run performed —
    /// the denominator of the "re-evaluated N% of cells" figure.
    #[must_use]
    pub fn total_cell_evals(&self) -> u64 {
        self.total_cell_evals
    }

    /// The delay model the baseline ran under (re-runs must match).
    #[must_use]
    pub fn delay(&self) -> &DelayKind {
        &self.delay
    }

    /// The simulator options the baseline ran under.
    #[must_use]
    pub fn options(&self) -> SimOptions {
        self.options
    }

    /// The effective value of a primary input during `cycle`: the last
    /// value the stimulus assigned at or before that cycle, or
    /// [`Value::X`] if it was never assigned.
    #[must_use]
    pub fn input_value(&self, cycle: u64, net: NetId) -> Value {
        let upto = (cycle as usize).min(self.cycles.len().saturating_sub(1));
        for recorded in self.cycles[..=upto].iter().rev() {
            for &(assigned, value) in recorded.assignment.assignments().iter().rev() {
                if assigned == net {
                    return Value::from(value);
                }
            }
        }
        Value::X
    }

    /// The stimulus assignment recorded for `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` is out of range.
    #[must_use]
    pub fn assignment(&self, cycle: u64) -> &InputAssignment {
        &self.cycles[cycle as usize].assignment
    }

    /// Approximate in-memory footprint in bytes — the per-cycle stimulus
    /// entries and transition stream dominate. Used by cache byte budgets;
    /// an estimate, not an allocator-exact figure.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        let per_cycle: usize = self
            .cycles
            .iter()
            .map(|cycle| {
                std::mem::size_of_val(cycle.assignment.assignments())
                    + cycle.transitions.len() * std::mem::size_of::<Transition>()
            })
            .sum();
        std::mem::size_of::<Self>()
            + self.netlist_name.len()
            + self.cycles.len() * std::mem::size_of::<BaselineCycle>()
            + per_cycle
    }
}

/// Internal probe that captures the per-cycle transition stream during
/// baseline recording. Attached last, so user probes observe the run
/// exactly as they would without it.
#[derive(Debug, Default)]
struct CycleRecorder {
    finished: Vec<Vec<Transition>>,
    current: Vec<Transition>,
}

impl Probe for CycleRecorder {
    fn on_cycle_start(&mut self, _cycle: u64) {
        self.current.clear();
    }

    fn on_transition(&mut self, transition: &Transition) {
        self.current.push(*transition);
    }

    fn on_cycle_end(&mut self, _cycle: u64, _stats: &CycleStats) {
        self.finished.push(std::mem::take(&mut self.current));
    }
}

/// A [`SessionError`] for failures before the probes ever started.
fn untouched_probes_error(
    netlist: &Netlist,
    probes: Vec<Box<dyn Probe>>,
    error: SimError,
) -> SessionError {
    SessionError {
        error,
        report: Box::new(SessionReport::from_parts(
            0,
            Vec::new(),
            vec![Value::X; netlist.net_count()],
            probes,
        )),
    }
}

/// The implementation behind [`crate::SimSession::record_baseline`].
pub(crate) fn record_baseline<'a>(
    netlist: &'a Netlist,
    delay: DelayKind,
    options: SimOptions,
    probes: Vec<Box<dyn Probe>>,
    stimulus: Option<Box<dyn Iterator<Item = InputAssignment> + 'a>>,
) -> Result<(SessionReport, SimBaseline), SessionError> {
    let mut sim = match ClockedSimulator::with_options(netlist, delay.clone().into_model(), options)
    {
        Ok(sim) => sim,
        Err(error) => return Err(untouched_probes_error(netlist, probes, error)),
    };
    for probe in probes {
        sim.attach_probe(probe);
    }
    sim.attach_probe(Box::new(CycleRecorder::default()));

    let mut assignments: Vec<InputAssignment> = Vec::new();
    let mut cycle_stats: Vec<CycleStats> = Vec::new();
    let mut failure = None;
    if let Some(stimulus) = stimulus {
        for assignment in stimulus {
            let recorded = assignment.clone();
            match sim.step(assignment) {
                Ok(stats) => {
                    assignments.push(recorded);
                    cycle_stats.push(stats);
                }
                Err(error) => {
                    failure = Some(error);
                    break;
                }
            }
        }
    }

    let mut probes = sim.detach_probes();
    let recorder_index = probes
        .iter()
        .position(|p| {
            let any: &dyn Any = p.as_ref();
            any.is::<CycleRecorder>()
        })
        .expect("the recorder was attached above");
    let recorder: Box<dyn Any> = probes.remove(recorder_index);
    let recorder = recorder
        .downcast::<CycleRecorder>()
        .expect("type checked above");

    let final_values = (0..netlist.net_count())
        .map(|i| sim.net_value(NetId::from_index(i)))
        .collect();
    let mut report =
        SessionReport::from_parts(sim.cycle_count(), cycle_stats.clone(), final_values, probes);
    report.set_queue_stats(sim.queue_stats());
    if let Some(error) = failure {
        return Err(SessionError {
            error,
            report: Box::new(report),
        });
    }

    let total_cell_evals = cycle_stats.iter().map(|s| s.cell_evals).sum();
    let cycles = assignments
        .into_iter()
        .zip(recorder.finished)
        .zip(cycle_stats)
        .map(|((assignment, transitions), stats)| BaselineCycle {
            assignment,
            transitions,
            stats,
        })
        .collect();
    Ok((
        report,
        SimBaseline {
            netlist_name: netlist.name().to_string(),
            netlist_fingerprint: netlist.fingerprint(),
            net_count: netlist.net_count(),
            dff_count: netlist.dff_count(),
            delay,
            options,
            cycles,
            total_cell_evals,
        },
    ))
}

// ------------------------------------------------------------------- delta

/// The difference between a baseline stimulus and the stimulus to
/// re-simulate: changed input bits per cycle plus inputs held to a new
/// value on every cycle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaStimulus {
    held: Vec<(NetId, bool)>,
    sets: Vec<(u64, NetId, bool)>,
}

impl DeltaStimulus {
    /// An empty delta (re-simulates the baseline unchanged — every cycle
    /// replays).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides one input bit in one cycle (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the same `(cycle, net)` pair is already overridden — a
    /// silent last-write-wins would discard the earlier value. Use
    /// [`DeltaStimulus::try_set`] to handle the duplicate as a recoverable
    /// error (CLI flip lists do).
    #[must_use]
    pub fn set(self, cycle: u64, net: NetId, value: bool) -> Self {
        match self.try_set(cycle, net, value) {
            Ok(delta) => delta,
            Err(error) => panic!("{error}"),
        }
    }

    /// Overrides one input bit in one cycle, rejecting duplicates.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DuplicateDelta`] (with the offending cycle and
    /// net) if this `(cycle, net)` pair already has an override.
    pub fn try_set(mut self, cycle: u64, net: NetId, value: bool) -> Result<Self, SimError> {
        if self.overrides(cycle, net) {
            return Err(SimError::DuplicateDelta { cycle, net });
        }
        self.sets.push((cycle, net, value));
        Ok(self)
    }

    /// Whether a per-cycle override for `(cycle, net)` already exists
    /// (held overrides do not count; they apply to every cycle and are
    /// replaced by per-cycle sets where both exist).
    #[must_use]
    pub fn overrides(&self, cycle: u64, net: NetId) -> bool {
        self.sets.iter().any(|&(c, n, _)| c == cycle && n == net)
    }

    /// Overrides one input bit on *every* cycle (builder style) — the
    /// held-input mode sweep shape.
    #[must_use]
    pub fn hold(mut self, net: NetId, value: bool) -> Self {
        self.held.push((net, value));
        self
    }

    /// `true` when the delta changes nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.held.is_empty() && self.sets.is_empty()
    }

    /// The largest cycle any per-cycle override targets.
    #[must_use]
    pub fn max_cycle(&self) -> Option<u64> {
        self.sets.iter().map(|&(c, _, _)| c).max()
    }

    /// The nets this delta touches (with repeats, in application order).
    pub fn nets(&self) -> impl Iterator<Item = NetId> + '_ {
        self.held
            .iter()
            .map(|&(n, _)| n)
            .chain(self.sets.iter().map(|&(_, n, _)| n))
    }

    /// The overrides that apply to `cycle`: held bits first, then the
    /// per-cycle sets in insertion order (later overrides win).
    fn overrides_for(&self, cycle: u64) -> impl Iterator<Item = (NetId, bool)> + '_ {
        self.held.iter().copied().chain(
            self.sets
                .iter()
                .filter(move |&&(c, _, _)| c == cycle)
                .map(|&(_, n, v)| (n, v)),
        )
    }

    /// The merged per-cycle entry list: the baseline entries with
    /// overridden nets replaced in place (every occurrence), and overrides
    /// of nets the baseline does not assign appended at the end.
    fn merged_entries(&self, cycle: u64, base: &InputAssignment) -> Vec<(NetId, bool)> {
        let mut entries: Vec<(NetId, bool)> = base.assignments().to_vec();
        for (net, value) in self.overrides_for(cycle) {
            let mut found = false;
            for entry in &mut entries {
                if entry.0 == net {
                    entry.1 = value;
                    found = true;
                }
            }
            if !found {
                entries.push((net, value));
            }
        }
        entries
    }

    /// Applies the delta to one baseline cycle's assignment, producing the
    /// assignment the merged (full) stimulus would use for that cycle.
    ///
    /// This is the *definition* of the merged stimulus: simulating every
    /// cycle's `apply_to` output from scratch is the reference an
    /// incremental run is bit-identical to.
    #[must_use]
    pub fn apply_to(&self, cycle: u64, base: &InputAssignment) -> InputAssignment {
        let mut merged = InputAssignment::new();
        for (net, value) in self.merged_entries(cycle, base) {
            merged.set(net, value);
        }
        merged
    }
}

// ----------------------------------------------------------- incremental

/// Work accounting of one incremental run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IncrementalStats {
    /// Cycles served by replaying the baseline transition stream.
    pub replayed_cycles: u64,
    /// Cycles that went through full event-driven evaluation.
    pub simulated_cycles: u64,
    /// Combinational cell evaluations the incremental run performed.
    pub cells_evaluated: u64,
    /// Cell evaluations of the baseline run (the full-run reference cost).
    pub baseline_cell_evals: u64,
    /// Largest suspicion-set (dirty-cone union) size reached, in nets —
    /// how far divergence spread before reconverging.
    pub peak_dirty_cone_nets: u64,
    /// Dirty cycles whose dirtiness was (re-)seeded by a diverged
    /// flipflop state — the cross-cycle fallback path where divergence
    /// escaped the combinational cone through a register.
    pub dff_divergence_reseeds: u64,
}

impl IncrementalStats {
    /// Cell evaluations as a fraction of the baseline's (0.0 when the
    /// baseline performed none) — the "re-evaluated N% of cells" figure.
    #[must_use]
    pub fn evaluated_fraction(&self) -> f64 {
        if self.baseline_cell_evals == 0 {
            0.0
        } else {
            self.cells_evaluated as f64 / self.baseline_cell_evals as f64
        }
    }

    /// Total cycles of the run.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.replayed_cycles + self.simulated_cycles
    }
}

/// The result of one [`IncrementalSession::run`]: a normal
/// [`SessionReport`] (bit-identical to a full run of the merged stimulus)
/// plus the incremental work accounting.
#[derive(Debug)]
pub struct IncrementalReport {
    session: SessionReport,
    stats: IncrementalStats,
}

impl IncrementalReport {
    /// The session report — probes, per-cycle statistics, final values.
    #[must_use]
    pub fn session(&self) -> &SessionReport {
        &self.session
    }

    /// Mutable access to the session report (e.g. to take probes out).
    pub fn session_mut(&mut self) -> &mut SessionReport {
        &mut self.session
    }

    /// Consumes the report, returning the session report.
    #[must_use]
    pub fn into_session(self) -> SessionReport {
        self.session
    }

    /// The incremental work accounting.
    #[must_use]
    pub fn stats(&self) -> IncrementalStats {
        self.stats
    }
}

/// Re-simulates a recorded baseline under a [`DeltaStimulus`], replaying
/// clean cycles and event-simulating dirty ones; see the module docs.
///
/// ```
/// use glitch_netlist::Netlist;
/// use glitch_sim::{
///     ActivityProbe, DeltaStimulus, IncrementalSession, InputAssignment, SimSession,
/// };
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut nl = Netlist::new("demo");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let y = nl.xor2(a, b, "y");
/// nl.mark_output(y);
///
/// let stimulus: Vec<InputAssignment> = (0..32)
///     .map(|i| InputAssignment::new().with(a, i % 2 == 0).with(b, i % 3 == 0))
///     .collect();
/// let (_, baseline) = SimSession::new(&nl)
///     .stimulus(stimulus)
///     .probe(ActivityProbe::new())
///     .record_baseline()?;
///
/// // Flip one bit of one cycle; only the dirty region re-simulates.
/// let report = IncrementalSession::new(&nl, &baseline)
///     .probe(ActivityProbe::new())
///     .delta(DeltaStimulus::new().set(7, a, false))
///     .run()?;
/// assert_eq!(report.stats().total_cycles(), 32);
/// assert!(report.stats().replayed_cycles >= 30);
/// assert!(report.stats().evaluated_fraction() < 0.5);
/// # Ok(())
/// # }
/// ```
pub struct IncrementalSession<'a> {
    netlist: &'a Netlist,
    baseline: &'a SimBaseline,
    cone_index: Option<&'a ConeIndex>,
    probes: Vec<Box<dyn Probe>>,
    delta: DeltaStimulus,
}

impl<'a> IncrementalSession<'a> {
    /// Starts an incremental session over a recorded baseline.
    ///
    /// # Panics
    ///
    /// Panics if `baseline` was recorded on a structurally different
    /// netlist (name, net count or flipflop count mismatch).
    #[must_use]
    pub fn new(netlist: &'a Netlist, baseline: &'a SimBaseline) -> Self {
        assert!(
            baseline.netlist_name == netlist.name()
                && baseline.net_count == netlist.net_count()
                && baseline.dff_count == netlist.dff_count(),
            "baseline was recorded on `{}` ({} nets, {} flipflops), \
             not on `{}` ({} nets, {} flipflops)",
            baseline.netlist_name,
            baseline.net_count,
            baseline.dff_count,
            netlist.name(),
            netlist.net_count(),
            netlist.dff_count(),
        );
        IncrementalSession {
            netlist,
            baseline,
            cone_index: None,
            probes: Vec::new(),
            delta: DeltaStimulus::new(),
        }
    }

    /// Attaches an observer; probes see events in attachment order.
    #[must_use]
    pub fn probe(mut self, probe: impl Probe) -> Self {
        self.probes.push(Box::new(probe));
        self
    }

    /// Attaches an already-boxed observer.
    #[must_use]
    pub fn boxed_probe(mut self, probe: Box<dyn Probe>) -> Self {
        self.probes.push(probe);
        self
    }

    /// Sets the delta to re-simulate.
    #[must_use]
    pub fn delta(mut self, delta: DeltaStimulus) -> Self {
        self.delta = delta;
        self
    }

    /// Uses a pre-built [`ConeIndex`] instead of building one per run —
    /// share it when fanning many deltas of the same netlist across
    /// workers.
    #[must_use]
    pub fn cone_index(mut self, index: &'a ConeIndex) -> Self {
        self.cone_index = Some(index);
        self
    }

    /// Runs the incremental re-simulation.
    ///
    /// # Errors
    ///
    /// Returns a [`SessionError`] wrapping [`SimError::DeltaOutOfRange`]
    /// for overrides beyond the baseline, [`SimError::NotAnInput`] for
    /// overrides of non-input nets, or any simulator error a dirty cycle
    /// raises (the carried report holds everything observed before the
    /// failure, exactly like [`crate::SimSession::run`]).
    pub fn run(self) -> Result<IncrementalReport, SessionError> {
        let IncrementalSession {
            netlist,
            baseline,
            cone_index,
            probes,
            delta,
        } = self;

        // Validate the delta before starting any probe.
        if let Some(max) = delta.max_cycle() {
            if max >= baseline.cycle_count() {
                return Err(untouched_probes_error(
                    netlist,
                    probes,
                    SimError::DeltaOutOfRange {
                        cycle: max,
                        baseline_cycles: baseline.cycle_count(),
                    },
                ));
            }
        }
        if let Some(bad) = delta
            .nets()
            .find(|&net| !netlist.net(net).is_primary_input())
        {
            return Err(untouched_probes_error(
                netlist,
                probes,
                SimError::NotAnInput(bad),
            ));
        }

        let built_index;
        let cone_index = match cone_index {
            Some(index) => index,
            None => {
                built_index = match ConeIndex::build(netlist) {
                    Ok(index) => index,
                    Err(error) => {
                        return Err(untouched_probes_error(netlist, probes, error.into()));
                    }
                };
                &built_index
            }
        };

        let mut sim = match ClockedSimulator::with_options(
            netlist,
            baseline.delay.clone().into_model(),
            baseline.options,
        ) {
            Ok(sim) => sim,
            Err(error) => return Err(untouched_probes_error(netlist, probes, error)),
        };
        for probe in probes {
            sim.attach_probe(probe);
        }

        // Rolling baseline state: net values and sampled flipflop state at
        // the *current* cycle boundary, advanced by replaying the recorded
        // transitions. This is what the incremental run diffs itself
        // against, O(transitions) per cycle instead of per-cycle snapshots.
        let (dff_inputs, dff_outputs): (Vec<NetId>, Vec<NetId>) = netlist
            .dff_cells()
            .map(|id| {
                let cell = netlist.cell(id);
                (cell.inputs()[0], cell.outputs()[0])
            })
            .unzip();
        let mut base_values: Vec<Value> = vec![Value::X; netlist.net_count()];
        let mut base_dff_state: Vec<Value> = sim.dff_state().to_vec();

        // The suspicion set: the union of fanout cones of every net whose
        // behaviour has differed from the baseline since the last full
        // reconvergence. Divergence cannot escape it (cones are
        // transitively closed; flipflop crossings re-seed from Q below).
        let mut suspect_mark = vec![false; netlist.net_count()];
        let mut suspects: Vec<NetId> = Vec::new();
        let mut diverged = 0usize;

        let mut stats = IncrementalStats {
            baseline_cell_evals: baseline.total_cell_evals,
            ..IncrementalStats::default()
        };
        let mut cycle_stats: Vec<CycleStats> = Vec::new();
        let mut failure = None;

        for (cycle, recorded) in baseline.cycles.iter().enumerate() {
            // Seed nets whose cycle-start behaviour differs from the
            // baseline: stimulus entries with changed values, appended
            // overrides that actually change a net, and flipflops whose
            // sampled state diverged.
            let entries = delta.merged_entries(cycle as u64, &recorded.assignment);
            let base_entries = recorded.assignment.assignments();
            let mut seeds: Vec<NetId> = Vec::new();
            for (i, &(net, value)) in entries.iter().enumerate() {
                let differs = match base_entries.get(i) {
                    Some(&(base_net, base_value)) => {
                        debug_assert_eq!(net, base_net, "merge replaces in place");
                        value != base_value
                    }
                    // Appended override: a no-op unless it changes the
                    // net's current (held-over) value.
                    None => Value::from(value) != sim.net_value(net),
                };
                if differs {
                    seeds.push(net);
                }
            }
            let mut dff_reseeded = false;
            for (i, &q) in dff_outputs.iter().enumerate() {
                if sim.dff_state()[i] != base_dff_state[i] {
                    seeds.push(q);
                    dff_reseeded = true;
                }
            }
            if dff_reseeded {
                stats.dff_divergence_reseeds += 1;
            }

            let clean = seeds.is_empty() && diverged == 0;
            if clean {
                sim.replay_cycle(&recorded.transitions, &recorded.stats);
                cycle_stats.push(recorded.stats);
                stats.replayed_cycles += 1;
            } else {
                // Extend the suspicion set by the cones of the new seeds.
                let fresh: Vec<NetId> = seeds
                    .iter()
                    .copied()
                    .filter(|n| !suspect_mark[n.index()])
                    .collect();
                if !fresh.is_empty() {
                    for net in cone_index.cone(fresh).nets() {
                        if !suspect_mark[net.index()] {
                            suspect_mark[net.index()] = true;
                            suspects.push(*net);
                        }
                    }
                }
                stats.peak_dirty_cone_nets = stats.peak_dirty_cone_nets.max(suspects.len() as u64);
                let mut assignment = InputAssignment::new();
                for (net, value) in entries {
                    assignment.set(net, value);
                }
                match sim.step(assignment) {
                    Ok(step_stats) => {
                        stats.cells_evaluated += step_stats.cell_evals;
                        cycle_stats.push(step_stats);
                        stats.simulated_cycles += 1;
                    }
                    Err(error) => {
                        failure = Some(error);
                        break;
                    }
                }
            }

            // Advance the rolling baseline state past this cycle.
            for t in &recorded.transitions {
                base_values[t.net.index()] = t.value;
            }
            for (state, &d) in base_dff_state.iter_mut().zip(&dff_inputs) {
                *state = base_values[d.index()];
            }

            if !clean {
                // Reconvergence check, bounded by the suspicion set: only
                // nets inside it can differ from the baseline.
                diverged = suspects
                    .iter()
                    .filter(|n| sim.net_value(**n) != base_values[n.index()])
                    .count();
                if diverged == 0 && sim.dff_state() == base_dff_state.as_slice() {
                    for n in suspects.drain(..) {
                        suspect_mark[n.index()] = false;
                    }
                }
            }
        }

        let queue = sim.queue_stats();
        let probes = sim.detach_probes();
        let final_values = (0..netlist.net_count())
            .map(|i| sim.net_value(NetId::from_index(i)))
            .collect();
        let mut report =
            SessionReport::from_parts(sim.cycle_count(), cycle_stats, final_values, probes);
        report.set_queue_stats(queue);
        match failure {
            None => Ok(IncrementalReport {
                session: report,
                stats,
            }),
            Some(error) => Err(SessionError {
                error,
                report: Box::new(report),
            }),
        }
    }
}

impl std::fmt::Debug for IncrementalSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IncrementalSession")
            .field("netlist", &self.netlist.name())
            .field("baseline_cycles", &self.baseline.cycle_count())
            .field("probes", &self.probes.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::ActivityProbe;
    use crate::session::SimSession;

    fn xor_pair() -> (Netlist, NetId, NetId, NetId) {
        let mut nl = Netlist::new("inc unit");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.xor2(a, b, "y");
        nl.mark_output(y);
        (nl, a, b, y)
    }

    fn toggling(a: NetId, b: NetId, cycles: u64) -> Vec<InputAssignment> {
        (0..cycles)
            .map(|i| {
                InputAssignment::new()
                    .with(a, i % 2 == 0)
                    .with(b, i % 4 < 2)
            })
            .collect()
    }

    #[test]
    fn empty_delta_replays_every_cycle_without_evaluating_cells() {
        let (nl, a, b, y) = xor_pair();
        let (baseline_report, baseline) = SimSession::new(&nl)
            .stimulus(toggling(a, b, 16))
            .probe(ActivityProbe::new())
            .record_baseline()
            .unwrap();
        assert!(baseline.total_cell_evals() > 0);
        assert_eq!(baseline.cycle_count(), 16);

        let report = IncrementalSession::new(&nl, &baseline)
            .probe(ActivityProbe::new())
            .run()
            .unwrap();
        let stats = report.stats();
        assert_eq!(stats.replayed_cycles, 16);
        assert_eq!(stats.simulated_cycles, 0);
        assert_eq!(stats.cells_evaluated, 0);
        assert_eq!(stats.evaluated_fraction(), 0.0);
        // The replayed probes match the baseline's bit for bit.
        assert_eq!(
            report.session().probe::<ActivityProbe>().unwrap().trace(),
            baseline_report.probe::<ActivityProbe>().unwrap().trace()
        );
        assert_eq!(report.session().net_value(y), baseline_report.net_value(y));
        assert_eq!(report.session().cycles(), 16);
    }

    #[test]
    fn single_flip_simulates_the_dirty_cycles_only() {
        let (nl, a, b, _) = xor_pair();
        let (_, baseline) = SimSession::new(&nl)
            .stimulus(toggling(a, b, 20))
            .record_baseline()
            .unwrap();
        let report = IncrementalSession::new(&nl, &baseline)
            .delta(DeltaStimulus::new().set(9, a, true))
            .run()
            .unwrap();
        let stats = report.stats();
        assert_eq!(stats.total_cycles(), 20);
        // Cycle 9 differs (a flipped); cycle 10 starts from diverged net
        // values but the stimulus assigns every input, so the run
        // reconverges and the rest replays. A flip equal to the baseline
        // value would replay everything.
        assert!(stats.simulated_cycles >= 1 && stats.simulated_cycles <= 3);
        assert!(stats.cells_evaluated > 0);
        assert!(stats.evaluated_fraction() < 1.0);
    }

    #[test]
    fn flip_equal_to_the_baseline_value_is_a_full_replay() {
        let (nl, a, b, _) = xor_pair();
        let (_, baseline) = SimSession::new(&nl)
            .stimulus(toggling(a, b, 12))
            .record_baseline()
            .unwrap();
        // Cycle 4: `a` is already true (4 % 2 == 0).
        assert_eq!(baseline.input_value(4, a), Value::One);
        let report = IncrementalSession::new(&nl, &baseline)
            .delta(DeltaStimulus::new().set(4, a, true))
            .run()
            .unwrap();
        assert_eq!(report.stats().replayed_cycles, 12);
        assert_eq!(report.stats().cells_evaluated, 0);
    }

    #[test]
    fn delta_beyond_the_baseline_is_an_error() {
        let (nl, a, b, _) = xor_pair();
        let (_, baseline) = SimSession::new(&nl)
            .stimulus(toggling(a, b, 5))
            .record_baseline()
            .unwrap();
        let err = IncrementalSession::new(&nl, &baseline)
            .delta(DeltaStimulus::new().set(5, a, true))
            .run()
            .unwrap_err();
        assert!(matches!(
            err.error,
            SimError::DeltaOutOfRange {
                cycle: 5,
                baseline_cycles: 5
            }
        ));
        assert!(err.to_string().contains("0 complete cycles"));
    }

    #[test]
    fn delta_on_a_non_input_is_an_error() {
        let (nl, a, b, y) = xor_pair();
        let (_, baseline) = SimSession::new(&nl)
            .stimulus(toggling(a, b, 5))
            .record_baseline()
            .unwrap();
        let err = IncrementalSession::new(&nl, &baseline)
            .delta(DeltaStimulus::new().set(1, y, true))
            .run()
            .unwrap_err();
        assert!(matches!(err.error, SimError::NotAnInput(net) if net == y));
    }

    #[test]
    #[should_panic(expected = "baseline was recorded on")]
    fn mismatched_netlist_is_rejected() {
        let (nl, a, b, _) = xor_pair();
        let (_, baseline) = SimSession::new(&nl)
            .stimulus(toggling(a, b, 3))
            .record_baseline()
            .unwrap();
        let (other, ..) = {
            let mut nl = Netlist::new("different");
            let a = nl.add_input("a");
            let y = nl.inv(a, "y");
            nl.mark_output(y);
            (nl, a, y)
        };
        let _ = IncrementalSession::new(&other, &baseline);
    }

    #[test]
    #[should_panic(expected = "record_baseline requires")]
    fn custom_model_objects_cannot_record_baselines() {
        let (nl, ..) = xor_pair();
        let _ = SimSession::new(&nl)
            .delay_model(crate::UnitDelay)
            .record_baseline();
    }

    #[test]
    fn baseline_input_value_resolves_held_over_assignments() {
        let (nl, a, b, _) = xor_pair();
        let stimulus = vec![
            InputAssignment::new().with(a, true).with(b, false),
            InputAssignment::new().with(b, true),
            InputAssignment::new(),
        ];
        let (_, baseline) = SimSession::new(&nl)
            .stimulus(stimulus)
            .record_baseline()
            .unwrap();
        assert_eq!(baseline.input_value(0, a), Value::One);
        assert_eq!(baseline.input_value(1, a), Value::One, "held over");
        assert_eq!(baseline.input_value(2, b), Value::One);
        assert_eq!(baseline.input_value(0, b), Value::Zero);
        assert_eq!(baseline.assignment(1).len(), 1);
    }

    #[test]
    fn duplicate_delta_overrides_are_rejected_with_location() {
        let (_, a, b, _) = xor_pair();
        let delta = DeltaStimulus::new().set(3, a, true);
        assert!(delta.overrides(3, a));
        assert!(!delta.overrides(3, b));
        assert!(!delta.overrides(2, a));
        // Same cycle:net again — even with the same value — is an error.
        let err = delta.clone().try_set(3, a, true).unwrap_err();
        assert_eq!(err, SimError::DuplicateDelta { cycle: 3, net: a });
        assert!(err.to_string().contains("twice in cycle 3"));
        // A different cycle or net is fine.
        let delta = delta.try_set(4, a, false).unwrap();
        let delta = delta.try_set(3, b, false).unwrap();
        assert_eq!(delta.nets().count(), 3);
    }

    #[test]
    #[should_panic(expected = "twice in cycle 7")]
    fn duplicate_set_panics_in_builder_form() {
        let (_, a, _, _) = xor_pair();
        let _ = DeltaStimulus::new().set(7, a, true).set(7, a, false);
    }

    #[test]
    fn delta_builders_and_apply_to() {
        let (_, a, b, _) = xor_pair();
        let delta = DeltaStimulus::new().hold(b, true).set(2, a, false);
        assert!(!delta.is_empty());
        assert_eq!(delta.max_cycle(), Some(2));
        assert_eq!(delta.nets().count(), 2);
        let base = InputAssignment::new().with(a, true).with(b, false);
        // Cycle 2: both overrides apply, replacing in place.
        let merged = delta.apply_to(2, &base);
        assert_eq!(merged.assignments(), [(a, false), (b, true)]);
        // Other cycles: only the held override applies.
        let merged = delta.apply_to(0, &base);
        assert_eq!(merged.assignments(), [(a, true), (b, true)]);
        // Overrides of unassigned nets append.
        let merged = delta.apply_to(2, &InputAssignment::new().with(b, false));
        assert_eq!(merged.assignments(), [(b, true), (a, false)]);
        assert!(DeltaStimulus::new().is_empty());
        assert_eq!(DeltaStimulus::new().max_cycle(), None);
    }
}
