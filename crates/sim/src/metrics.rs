//! The [`MetricsProbe`]: the bridge between the simulator's probe hook
//! stream and a [`glitch_obs::MetricsRegistry`].
//!
//! Attached like any other probe, it accumulates the *deterministic*
//! engine metrics — cycle, transition, event and cell-evaluation totals
//! plus per-cycle distributions — into a per-shard registry. Shard
//! registries merge in job order ([`crate::MergeableProbe`] discipline),
//! so the merged metrics are bit-identical at any `--jobs` count.
//! Wall-clock time never enters the registry; it belongs to span logs.

use glitch_obs::{CounterHandle, GaugeHandle, HistogramHandle, MetricsRegistry};

use crate::clocked::CycleStats;
use crate::engine::QueueStats;
use crate::probe::{MergeableProbe, Probe};

/// Streams deterministic simulator statistics into a metrics registry;
/// see the module docs. Metric names (the `--metrics` glossary):
///
/// | name | kind | meaning |
/// |------|------|---------|
/// | `sim.cycles` | counter | completed clock cycles |
/// | `sim.transitions` | counter | net transitions over all cycles |
/// | `sim.events` | counter | delta-loop events processed |
/// | `sim.cell_evals` | counter | combinational cell evaluations |
/// | `sim.max_settle_time` | gauge | worst intra-cycle settle time |
/// | `cycle.settle_time` | histogram | per-cycle settle times |
/// | `cycle.events` | histogram | per-cycle event counts |
/// | `cycle.cell_evals` | histogram | per-cycle cell evaluations |
/// | `queue.pushes` | counter | events scheduled (via [`MetricsProbe::record_queue_stats`]) |
/// | `queue.pops` | counter | events delivered |
/// | `queue.peak_depth` | gauge | deepest pending-event backlog |
#[derive(Debug, Clone)]
pub struct MetricsProbe {
    registry: MetricsRegistry,
    cycles: CounterHandle,
    transitions: CounterHandle,
    events: CounterHandle,
    cell_evals: CounterHandle,
    max_settle: GaugeHandle,
    settle_hist: HistogramHandle,
    events_hist: HistogramHandle,
    evals_hist: HistogramHandle,
}

impl MetricsProbe {
    /// A probe recording into a fresh enabled registry.
    #[must_use]
    pub fn new() -> Self {
        Self::with_registry(MetricsRegistry::new())
    }

    /// A probe recording into a supplied registry (e.g. a disabled one for
    /// overhead measurements).
    #[must_use]
    pub fn with_registry(mut registry: MetricsRegistry) -> Self {
        let cycles = registry.counter("sim.cycles");
        let transitions = registry.counter("sim.transitions");
        let events = registry.counter("sim.events");
        let cell_evals = registry.counter("sim.cell_evals");
        let max_settle = registry.gauge("sim.max_settle_time");
        let settle_hist = registry.histogram("cycle.settle_time");
        let events_hist = registry.histogram("cycle.events");
        let evals_hist = registry.histogram("cycle.cell_evals");
        MetricsProbe {
            registry,
            cycles,
            transitions,
            events,
            cell_evals,
            max_settle,
            settle_hist,
            events_hist,
            evals_hist,
        }
    }

    /// Folds a run's cumulative event-queue statistics into the registry —
    /// queue traffic is owned by the simulator, not visible through probe
    /// hooks, so the driver injects it from
    /// [`crate::SessionReport::queue_stats`] after the run.
    pub fn record_queue_stats(&mut self, stats: QueueStats) {
        let pushes = self.registry.counter("queue.pushes");
        let pops = self.registry.counter("queue.pops");
        let peak = self.registry.gauge("queue.peak_depth");
        self.registry.add(pushes, stats.pushes);
        self.registry.add(pops, stats.pops);
        self.registry.observe_max(peak, stats.peak_depth);
    }

    /// The accumulated registry.
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Mutable access to the registry, for drivers folding in metrics of
    /// their own (incremental statistics, checker counts, cone sizes).
    pub fn registry_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.registry
    }

    /// Consumes the probe, returning the registry.
    #[must_use]
    pub fn into_registry(self) -> MetricsRegistry {
        self.registry
    }
}

impl Default for MetricsProbe {
    fn default() -> Self {
        Self::new()
    }
}

impl Probe for MetricsProbe {
    fn on_cycle_end(&mut self, _cycle: u64, stats: &CycleStats) {
        self.registry.inc(self.cycles);
        self.registry.add(self.transitions, stats.transitions);
        self.registry.add(self.events, stats.events);
        self.registry.add(self.cell_evals, stats.cell_evals);
        self.registry
            .observe_max(self.max_settle, stats.settle_time);
        self.registry.record(self.settle_hist, stats.settle_time);
        self.registry.record(self.events_hist, stats.events);
        self.registry.record(self.evals_hist, stats.cell_evals);
    }
}

impl MergeableProbe for MetricsProbe {
    /// Folds another shard's registry into this one (name union; counters
    /// add, gauges max, histograms add bucket-wise). Exact at any fold
    /// shape — the registry merge is associative and commutative.
    fn merge(&mut self, other: MetricsProbe) {
        self.registry.merge(other.registry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clocked::InputAssignment;
    use crate::session::SimSession;
    use glitch_netlist::Netlist;

    fn toggling_run(cycles: u64) -> MetricsProbe {
        let mut nl = Netlist::new("m");
        let a = nl.add_input("a");
        let y = nl.inv(a, "y");
        nl.mark_output(y);
        let mut report = SimSession::new(&nl)
            .probe(MetricsProbe::new())
            .stimulus((0..cycles).map(move |i| InputAssignment::new().with(a, i % 2 == 0)))
            .run()
            .unwrap();
        let queue = report.queue_stats();
        let mut probe = report.take_probe::<MetricsProbe>().unwrap();
        probe.record_queue_stats(queue);
        probe
    }

    #[test]
    fn probe_accumulates_engine_metrics() {
        let probe = toggling_run(6);
        let m = probe.registry();
        assert_eq!(m.counter_value("sim.cycles"), Some(6));
        assert!(m.counter_value("sim.transitions").unwrap() > 0);
        assert!(m.counter_value("sim.events").unwrap() > 0);
        assert!(m.counter_value("sim.cell_evals").unwrap() > 0);
        assert!(m.gauge_value("sim.max_settle_time").unwrap() >= 1);
        assert_eq!(m.histogram_value("cycle.settle_time").unwrap().count(), 6);
        assert!(m.counter_value("queue.pushes").unwrap() > 0);
        assert!(m.gauge_value("queue.peak_depth").unwrap() >= 1);
    }

    #[test]
    fn merged_shards_equal_one_long_run() {
        // Two 3-cycle runs merged vs one 6-cycle run: with this stimulus
        // (deterministic toggle, cycle 0 initialisation in each run) the
        // split runs repeat the init cycle, so compare split-vs-split
        // reassociated instead — the law the parallel fold relies on.
        let a = toggling_run(3);
        let b = toggling_run(4);
        let c = toggling_run(5);
        let mut left = a.clone();
        left.merge(b.clone());
        left.merge(c.clone());
        let mut right_tail = b;
        right_tail.merge(c);
        let mut right = a;
        right.merge(right_tail);
        assert_eq!(left.registry(), right.registry());
    }
}
