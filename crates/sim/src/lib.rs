//! # glitch-sim
//!
//! Event-driven gate-level logic simulation for glitch analysis, organised
//! around **one-pass sessions**: a [`SimSession`] runs a stimulus through
//! the simulator exactly once while any number of pluggable [`Probe`]
//! observers record what they care about — transition activity, waveforms,
//! switched energy — so no consumer ever re-simulates per artefact.
//!
//! The simulator reproduces the experimental method of the DATE'95 paper
//! *Analysis and Reduction of Glitches in Synchronous Networks*: a
//! synchronous circuit is simulated one clock cycle at a time, new primary
//! input values and flipflop outputs change **at the beginning of the clock
//! cycle**, the combinational logic settles through an event-driven
//! propagation with per-cell delays (transport-delay semantics, so glitch
//! pulses are never swallowed), and every net-value change is reported to
//! the attached probes.
//!
//! Delay models (select one with [`DelayKind`], or implement the
//! dyn-compatible [`DelayModel`] trait):
//!
//! * [`UnitDelay`] — every combinational cell takes one delay unit
//!   (the paper's default, used for Figure 5, Table 1 and the direction
//!   detector experiment);
//! * [`CellDelay`] — per-kind and per-output delays, e.g. a full adder with
//!   `d_sum = 2 * d_carry` (Table 2);
//! * [`ZeroDelay`] — ideal, glitch-free reference (what the activity would
//!   be if all delay paths were perfectly balanced).
//!
//! Built-in probes: [`ActivityProbe`], [`VcdProbe`], [`PowerProbe`],
//! [`WaveCsvProbe`], [`StatsProbe`], [`WindowedActivityProbe`]. Custom
//! observables are one [`Probe`] implementation away — see the trait's
//! documentation for a complete example.
//!
//! For multi-seed / multi-delay-model sweeps there is a sharded parallel
//! layer: [`ParallelRunner`] fans `(netlist, seed, delay)` [`SimJob`]s
//! across scoped worker threads and [`AggregateReport`] reduces the
//! per-shard results deterministically ([`MergeableProbe`] folds the
//! probes in job order), so a parallel run is bit-identical to the serial
//! fold of its shards — only faster.
//!
//! For re-running *near-identical* stimuli (a few input bits changed) there
//! is an incremental layer: [`SimSession::record_baseline`] captures a
//! replayable [`SimBaseline`], and [`IncrementalSession`] re-simulates a
//! [`DeltaStimulus`] against it by replaying unchanged cycles and
//! event-evaluating only dirty fanout cones — bit-identical to a full run
//! of the merged stimulus for every probe.
//!
//! ## Example
//!
//! ```
//! use glitch_netlist::Netlist;
//! use glitch_sim::{ActivityProbe, DelayKind, InputAssignment, SimSession};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut nl = Netlist::new("mux_demo");
//! let sel = nl.add_input("sel");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let y = nl.mux2(sel, a, b, "y");
//! nl.mark_output(y);
//!
//! let report = SimSession::new(&nl)
//!     .delay(DelayKind::Unit)
//!     .stimulus([
//!         InputAssignment::new().with(sel, false).with(a, true).with(b, false),
//!     ])
//!     .probe(ActivityProbe::new())
//!     .run()?;
//! assert_eq!(report.net_bool(y), Some(true));
//! assert_eq!(report.cycles(), 1);
//! assert!(report.max_settle_time() >= 1);
//! # Ok(())
//! # }
//! ```
//!
//! For cycle-by-cycle control (interactive debugging, mid-run inspection)
//! drop down to [`ClockedSimulator`] and attach probes directly.

pub mod baseline_io;
mod clocked;
mod delay;
mod engine;
mod error;
mod incremental;
mod kernel;
mod metrics;
mod parallel;
mod probe;
mod session;
mod stimulus;
mod value;
mod vcd;
mod window;

pub use baseline_io::{load_baseline, save_baseline, BaselineFileError};
pub use clocked::{ClockedSimulator, CycleStats, InputAssignment, SimOptions, XEval};
pub use delay::{CellDelay, DelayKind, DelayModel, UnitDelay, ZeroDelay};
pub use engine::QueueStats;
pub use error::SimError;
pub use incremental::{
    DeltaStimulus, IncrementalReport, IncrementalSession, IncrementalStats, SimBaseline,
};
pub use kernel::{kernel_eval_mode, kernel_prepass, run_kernel_jobs, KernelPrepass};
pub use metrics::MetricsProbe;
pub use parallel::{AggregateReport, ParallelRunner, ShardSummary, SimJob, Spread};
pub use probe::{
    ActivityProbe, MergeableProbe, PowerProbe, Probe, StatsProbe, Transition, TransitionKind,
    VcdProbe, WaveCsvProbe,
};
pub use session::{SessionError, SessionReport, SimSession};
pub use stimulus::{ExhaustiveStimulus, RandomStimulus, StimulusProgram};
pub use value::Value;
pub use vcd::VcdRecorder;
// The compiled-kernel backend's own types, re-exported so downstream
// crates can compile and cache programs without a direct dependency.
pub use glitch_kernel::{EvalMode, KernelProgram, KernelState};
pub use window::{ActivityWindow, WindowedActivityProbe};
