//! # glitch-sim
//!
//! Event-driven gate-level logic simulation for glitch analysis.
//!
//! The simulator reproduces the experimental method of the DATE'95 paper
//! *Analysis and Reduction of Glitches in Synchronous Networks*: a
//! synchronous circuit is simulated one clock cycle at a time, new primary
//! input values and flipflop outputs change **at the beginning of the clock
//! cycle**, the combinational logic settles through an event-driven
//! propagation with per-cell delays (transport-delay semantics, so glitch
//! pulses are never swallowed), and the number of transitions each net makes
//! within the cycle is recorded.
//!
//! Delay models:
//!
//! * [`UnitDelay`] — every combinational cell takes one delay unit
//!   (the paper's default, used for Figure 5, Table 1 and the direction
//!   detector experiment);
//! * [`CellDelay`] — per-kind and per-output delays, e.g. a full adder with
//!   `d_sum = 2 * d_carry` (Table 2);
//! * [`ZeroDelay`] — ideal, glitch-free reference (what the activity would
//!   be if all delay paths were perfectly balanced).
//!
//! ## Example
//!
//! ```
//! use glitch_netlist::Netlist;
//! use glitch_sim::{ClockedSimulator, InputAssignment, UnitDelay};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut nl = Netlist::new("mux_demo");
//! let sel = nl.add_input("sel");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let y = nl.mux2(sel, a, b, "y");
//! nl.mark_output(y);
//!
//! let mut sim = ClockedSimulator::new(&nl, UnitDelay)?;
//! let cycle = sim.step(
//!     InputAssignment::new().with(sel, false).with(a, true).with(b, false),
//! )?;
//! assert_eq!(sim.net_bool(y), Some(true));
//! assert!(cycle.settle_time >= 1);
//! # Ok(())
//! # }
//! ```

mod clocked;
mod delay;
mod engine;
mod error;
mod stimulus;
mod value;
mod vcd;

pub use clocked::{ClockedSimulator, CycleStats, InputAssignment, SimOptions};
pub use delay::{CellDelay, DelayModel, UnitDelay, ZeroDelay};
pub use error::SimError;
pub use stimulus::{ExhaustiveStimulus, RandomStimulus, StimulusProgram};
pub use value::Value;
pub use vcd::VcdRecorder;
