//! Sharded parallel execution of simulation sessions.
//!
//! The paper's power and glitch figures come from long uniformly-random
//! stimulus runs, and sweeping them over seeds, delay models or circuit
//! variants is embarrassingly parallel: every `(netlist, seed, delay)`
//! tuple is an independent one-pass [`crate::SimSession`]. This module adds
//! the executor for exactly that shape of work:
//!
//! * [`ParallelRunner`] — a scoped-thread work-stealing executor with a
//!   deterministic generic [`ParallelRunner::map`] (results come back in
//!   item order regardless of scheduling);
//! * [`SimJob`] — the description of one shard: a netlist reference, a
//!   stimulus seed, a cycle budget, a delay model and a power operating
//!   point;
//! * [`ParallelRunner::run_sessions`] — fans a batch of jobs across the
//!   workers, each worker running a session with activity, power and stats
//!   probes (plus any caller-supplied probes);
//! * [`AggregateReport`] — the deterministic reduction of the per-shard
//!   reports: probes folded with [`MergeableProbe`] in shard order, plus
//!   per-shard scalars and their [`Spread`] (min / mean / max / standard
//!   deviation) for honest multi-seed reporting.
//!
//! Determinism is the load-bearing property: every shard is seeded, the
//! fold happens in job order, and merging integer counters is exact — so a
//! parallel run's aggregate is **bit-identical** to the serial fold of the
//! same jobs run one by one. Worker count only affects wall-clock time,
//! never results. This holds for every [`MergeableProbe`] the reduction
//! folds — activity, power, stats and windowed heatmaps alike — and each
//! of the four standard probes is individually pinned against its serial
//! fold by `tests/parallel.rs` (it is a property of the job-order fold,
//! not something a probe gets for free: a probe whose `merge` depended on
//! arrival order would silently break it).
//!
//! Threading uses `std::thread::scope` only — no external thread-pool
//! dependency — so jobs may borrow their netlists from the caller's stack.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use glitch_activity::{ActivityReport, ActivityTotals, ActivityTrace};
use glitch_netlist::{Bus, NetId, Netlist};
use glitch_power::{PowerReport, Technology};

use crate::clocked::SimOptions;
use crate::delay::DelayKind;
use crate::engine::QueueStats;
use crate::error::SimError;
use crate::probe::{ActivityProbe, MergeableProbe, PowerProbe, Probe, StatsProbe};
use crate::session::{SessionReport, SimSession};
use crate::stimulus::RandomStimulus;

/// A scoped-thread executor for embarrassingly parallel simulation work.
///
/// The runner owns nothing but a worker count; every call to
/// [`ParallelRunner::map`] or [`ParallelRunner::run_sessions`] spins up a
/// fresh `std::thread::scope`, so borrowed job data (netlist references in
/// particular) works without `'static` bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelRunner {
    workers: usize,
}

impl Default for ParallelRunner {
    /// One worker per available hardware thread (falling back to 1 when
    /// the parallelism is unknown).
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        ParallelRunner::new(workers)
    }
}

impl ParallelRunner {
    /// Creates a runner with the given number of worker threads (clamped to
    /// at least one). One worker degenerates to a serial loop on the
    /// calling thread — the reference against which parallel determinism is
    /// tested.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        ParallelRunner {
            workers: workers.max(1),
        }
    }

    /// The configured worker count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Applies `f` to every item on the worker pool and returns the results
    /// **in item order** — scheduling is work-stealing (an atomic cursor),
    /// but the output permutation is always the identity, which is what
    /// keeps reductions over the results deterministic.
    ///
    /// `f` receives the item index alongside the item. A panicking `f`
    /// propagates the panic to the caller once the scope joins.
    pub fn map<I, R, F>(&self, items: Vec<I>, f: F) -> Vec<R>
    where
        I: Send,
        R: Send,
        F: Fn(usize, I) -> R + Sync,
    {
        let n = items.len();
        if self.workers == 1 || n <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(index, item)| f(index, item))
                .collect();
        }
        let cursor = AtomicUsize::new(0);
        let items: Vec<Mutex<Option<I>>> = items
            .into_iter()
            .map(|item| Mutex::new(Some(item)))
            .collect();
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(n) {
                scope.spawn(|| loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= n {
                        break;
                    }
                    let item = items[index]
                        .lock()
                        .expect("item slot poisoned")
                        .take()
                        .expect("each item is claimed exactly once");
                    let result = f(index, item);
                    *slots[index].lock().expect("result slot poisoned") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("scope joined, so every slot is filled")
            })
            .collect()
    }

    /// Runs every job in its own one-pass session and returns the per-job
    /// [`SessionReport`]s in job order. Each session carries an
    /// [`ActivityProbe`], a [`PowerProbe`] (at the job's operating point)
    /// and a [`StatsProbe`].
    ///
    /// # Errors
    ///
    /// Returns a failing job's [`SimError`]. Successful batches are fully
    /// deterministic; on failure, jobs not yet started are skipped (no
    /// point simulating shards whose results will be dropped), so *which*
    /// failure is reported can depend on scheduling when several jobs fail
    /// — but any reported error is a genuine one, and it is the earliest
    /// in job order among the jobs that ran.
    pub fn run_sessions(&self, jobs: &[SimJob<'_>]) -> Result<Vec<SessionReport>, SimError> {
        self.run_sessions_with(jobs, &|_| Vec::new())
    }

    /// Like [`ParallelRunner::run_sessions`], additionally attaching the
    /// probes built by `extra_probes(job_index)` to each job's session —
    /// the *probe factory* side of the mergeable-probe design: the factory
    /// constructs a fresh probe per shard, the caller folds the finished
    /// shard probes with [`MergeableProbe::merge`].
    ///
    /// # Errors
    ///
    /// As for [`ParallelRunner::run_sessions`].
    pub fn run_sessions_with(
        &self,
        jobs: &[SimJob<'_>],
        extra_probes: &(dyn Fn(usize) -> Vec<Box<dyn Probe>> + Sync),
    ) -> Result<Vec<SessionReport>, SimError> {
        // One failure aborts the whole batch, so once a job errors, workers
        // stop claiming new jobs instead of simulating shards whose results
        // would be dropped anyway.
        let failed = AtomicBool::new(false);
        let batch_start = std::time::Instant::now();
        let results = self.map(jobs.iter().collect(), |index, job: &SimJob<'_>| {
            if failed.load(Ordering::Relaxed) {
                return None;
            }
            // Queue wait: how long this shard sat behind others before a
            // worker picked it up. Wall-clock only — never merged into
            // deterministic aggregates.
            let queue_wait = as_micros(batch_start.elapsed());
            let job_start = std::time::Instant::now();
            let mut result = job.run_with(extra_probes(index));
            if let Ok(report) = result.as_mut() {
                report.set_timing(as_micros(job_start.elapsed()), queue_wait);
            } else {
                failed.store(true, Ordering::Relaxed);
            }
            Some(result)
        });
        let mut reports = Vec::with_capacity(results.len());
        let mut skipped = false;
        for result in results {
            match result {
                Some(Ok(report)) => reports.push(report),
                Some(Err(error)) => return Err(error),
                None => skipped = true,
            }
        }
        // A skip only happens after some job stored its error, and the
        // scope joins every worker, so a skipped batch always contains an
        // `Err` slot and returns above before reaching this point.
        debug_assert!(!skipped, "skipped jobs imply an error in the batch");
        Ok(reports)
    }
}

/// Saturating duration → microsecond conversion for timing fields.
fn as_micros(elapsed: std::time::Duration) -> u64 {
    u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX)
}

/// One shard of a parallel run: a `(netlist, seed, delay)` tuple plus the
/// stimulus shape and the power operating point.
#[derive(Debug, Clone)]
pub struct SimJob<'a> {
    /// The circuit to simulate (shared immutably across workers).
    pub netlist: &'a Netlist,
    /// Free-form label carried into the shard summary (defaults to the
    /// netlist name; delay-model sweeps override it per variant).
    pub label: String,
    /// Seed of the random stimulus.
    pub seed: u64,
    /// Number of random vectors (clock cycles) to simulate.
    pub cycles: u64,
    /// Delay model of this shard.
    pub delay: DelayKind,
    /// Input buses driven with uniform random values each cycle.
    pub random_buses: Vec<Bus>,
    /// Single-bit inputs held constant every cycle.
    pub held: Vec<(NetId, bool)>,
    /// Technology for the power probe.
    pub technology: Technology,
    /// Clock frequency for the power probe, in hertz.
    pub frequency: f64,
    /// Simulator options (settle budget, flipflop reset default).
    pub options: SimOptions,
    /// Per-cycle quiet flags from a kernel prepass
    /// ([`crate::kernel_prepass`]); flagged cycles are replayed as empty
    /// instead of settling the event queue. `None` runs every cycle.
    pub quiet_cycles: Option<std::sync::Arc<Vec<bool>>>,
}

impl<'a> SimJob<'a> {
    /// A unit-delay job at the default power operating point (the paper's
    /// 0.8 µm process at 5 MHz).
    #[must_use]
    pub fn new(netlist: &'a Netlist, random_buses: Vec<Bus>, cycles: u64, seed: u64) -> Self {
        SimJob {
            netlist,
            label: netlist.name().to_string(),
            seed,
            cycles,
            delay: DelayKind::Unit,
            random_buses,
            held: Vec::new(),
            technology: Technology::cmos_0p8um_5v(),
            frequency: 5e6,
            options: SimOptions::default(),
            quiet_cycles: None,
        }
    }

    /// Selects the delay model (builder style).
    #[must_use]
    pub fn with_delay(mut self, delay: DelayKind) -> Self {
        self.delay = delay;
        self
    }

    /// Holds single-bit inputs constant every cycle (builder style).
    #[must_use]
    pub fn with_held(mut self, held: Vec<(NetId, bool)>) -> Self {
        self.held = held;
        self
    }

    /// Sets the power operating point (builder style).
    #[must_use]
    pub fn with_power(mut self, technology: Technology, frequency: f64) -> Self {
        self.technology = technology;
        self.frequency = frequency;
        self
    }

    /// Overrides the shard label (builder style).
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Overrides the simulator options (builder style).
    #[must_use]
    pub fn with_options(mut self, options: SimOptions) -> Self {
        self.options = options;
        self
    }

    /// Attaches kernel-prepass quiet flags: flagged cycles replay as
    /// empty, skipping the event-driven settle entirely (builder style).
    #[must_use]
    pub fn with_quiet_cycles(mut self, quiet: std::sync::Arc<Vec<bool>>) -> Self {
        self.quiet_cycles = Some(quiet);
        self
    }

    /// Runs this job as a one-pass session with the standard probe set plus
    /// `extra` probes.
    fn run_with(&self, extra: Vec<Box<dyn Probe>>) -> Result<SessionReport, SimError> {
        let mut stimulus = RandomStimulus::new(self.random_buses.clone(), self.cycles, self.seed);
        for &(net, value) in &self.held {
            stimulus = stimulus.hold(net, value);
        }
        let mut session = SimSession::new(self.netlist)
            .delay(self.delay.clone())
            .options(self.options)
            .stimulus(stimulus)
            .probe(ActivityProbe::new())
            .probe(PowerProbe::new(self.technology, self.frequency))
            .probe(StatsProbe::new());
        if let Some(quiet) = &self.quiet_cycles {
            session = session.quiet_cycles(std::sync::Arc::clone(quiet));
        }
        for probe in extra {
            session = session.boxed_probe(probe);
        }
        session.run().map_err(SimError::from)
    }
}

/// Per-shard scalars extracted from one job's finished session.
///
/// Equality compares only the *deterministic* fields — the wall-clock
/// timing fields ([`ShardSummary::wall_micros`],
/// [`ShardSummary::queue_wait_micros`]) vary run to run and are excluded,
/// so the parallel-equals-serial determinism assertions upstream keep
/// holding with timing instrumentation on.
#[derive(Debug, Clone)]
pub struct ShardSummary {
    /// The job's label.
    pub label: String,
    /// The shard's stimulus seed.
    pub seed: u64,
    /// The shard's delay model.
    pub delay: DelayKind,
    /// Completed cycles.
    pub cycles: u64,
    /// Combinational-logic activity totals (primary inputs and flipflop
    /// outputs excluded, as in [`ActivityReport`]).
    pub activity: ActivityTotals,
    /// The shard's power report.
    pub power: PowerReport,
    /// Simulator events processed.
    pub events: u64,
    /// Worst intra-cycle settle time.
    pub max_settle_time: u64,
    /// Combinational cell evaluations performed.
    pub cell_evals: u64,
    /// Cumulative event-queue traffic (deterministic: pushes, pops, peak
    /// depth are functions of the stimulus, not of scheduling).
    pub queue: QueueStats,
    /// Wall-clock time this shard's session took, in microseconds.
    /// Non-deterministic; display and trace export only.
    pub wall_micros: u64,
    /// Wall-clock delay between batch start and this shard starting, in
    /// microseconds. Non-deterministic; display and trace export only.
    pub queue_wait_micros: u64,
}

impl PartialEq for ShardSummary {
    fn eq(&self, other: &Self) -> bool {
        self.label == other.label
            && self.seed == other.seed
            && self.delay == other.delay
            && self.cycles == other.cycles
            && self.activity == other.activity
            && self.power == other.power
            && self.events == other.events
            && self.max_settle_time == other.max_settle_time
            && self.cell_evals == other.cell_evals
            && self.queue == other.queue
    }
}

/// Minimum / mean / maximum / standard deviation of a per-shard series —
/// the honest way to report glitch counts estimated from random vectors.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Spread {
    /// Smallest sample.
    pub min: f64,
    /// Mean of the samples.
    pub mean: f64,
    /// Largest sample.
    pub max: f64,
    /// Population standard deviation of the samples.
    pub stddev: f64,
}

impl Spread {
    /// Computes the spread of a sample series (all zeros when empty).
    #[must_use]
    pub fn of(samples: &[f64]) -> Spread {
        if samples.is_empty() {
            return Spread::default();
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let variance = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
        Spread {
            min: samples.iter().copied().fold(f64::INFINITY, f64::min),
            mean,
            max: samples.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            stddev: variance.sqrt(),
        }
    }
}

impl std::fmt::Display for Spread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.3} ± {:.3} (min {:.3}, max {:.3})",
            self.mean, self.stddev, self.min, self.max
        )
    }
}

/// The deterministic reduction of a batch of shard reports: merged probes
/// plus per-shard scalars and their spreads.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateReport {
    shards: Vec<ShardSummary>,
    merged_trace: ActivityTrace,
    merged_totals: ActivityTotals,
    merged_power: PowerReport,
    merged_stats: StatsProbe,
}

impl AggregateReport {
    /// Reduces per-job session reports (as returned by
    /// [`ParallelRunner::run_sessions`]) into one aggregate, folding the
    /// activity, power and stats probes in job order. The standard probes
    /// are *taken out* of the reports; caller-attached extra probes remain
    /// in place for retrieval afterwards.
    ///
    /// All jobs must target the same `netlist`; heterogeneous batches
    /// (multi-circuit serving, retiming sweeps) reduce per circuit instead.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` and `reports` have different lengths, if the batch
    /// is empty, or if a report is missing the standard probes (i.e. it did
    /// not come from a runner session).
    #[must_use]
    pub fn reduce(
        netlist: &Netlist,
        jobs: &[SimJob<'_>],
        reports: &mut [SessionReport],
    ) -> AggregateReport {
        assert_eq!(jobs.len(), reports.len(), "one report per job is required");
        assert!(!reports.is_empty(), "cannot reduce an empty batch");
        let mut shards = Vec::with_capacity(reports.len());
        let mut merged_activity: Option<ActivityProbe> = None;
        let mut merged_power: Option<PowerProbe> = None;
        let mut merged_stats = StatsProbe::new();
        for (job, report) in jobs.iter().zip(reports) {
            let activity = report
                .take_probe::<ActivityProbe>()
                .expect("runner sessions carry an ActivityProbe");
            let power = report
                .take_probe::<PowerProbe>()
                .expect("runner sessions carry a PowerProbe");
            let stats = report
                .take_probe::<StatsProbe>()
                .expect("runner sessions carry a StatsProbe");
            shards.push(ShardSummary {
                label: job.label.clone(),
                seed: job.seed,
                delay: job.delay.clone(),
                cycles: stats.cycles(),
                activity: ActivityReport::from_trace(netlist, activity.trace()).totals(),
                power: power.report().expect("session ended").clone(),
                events: stats.events(),
                max_settle_time: stats.max_settle_time(),
                cell_evals: stats.cell_evals(),
                queue: report.queue_stats(),
                wall_micros: report.wall_micros(),
                queue_wait_micros: report.queue_wait_micros(),
            });
            match merged_activity.as_mut() {
                None => merged_activity = Some(activity),
                Some(merged) => merged.merge(activity),
            }
            match merged_power.as_mut() {
                None => merged_power = Some(power),
                Some(merged) => merged.merge(power),
            }
            merged_stats.merge(stats);
        }
        let merged_activity = merged_activity.expect("non-empty batch");
        // A single shard keeps its run-end report; a multi-shard fold
        // recomputed it over the summed counts in `PowerProbe::merge`.
        let merged_power = merged_power
            .expect("non-empty batch")
            .report()
            .expect("session ended")
            .clone();
        let merged_totals = ActivityReport::from_trace(netlist, merged_activity.trace()).totals();
        AggregateReport {
            shards,
            merged_trace: merged_activity.into_trace(),
            merged_totals,
            merged_power,
            merged_stats,
        }
    }

    /// Per-shard summaries, in job order.
    #[must_use]
    pub fn shards(&self) -> &[ShardSummary] {
        &self.shards
    }

    /// The fold of every shard's per-net activity trace.
    #[must_use]
    pub fn merged_trace(&self) -> &ActivityTrace {
        &self.merged_trace
    }

    /// Combinational-logic activity totals of the merged trace.
    #[must_use]
    pub fn merged_totals(&self) -> ActivityTotals {
        self.merged_totals
    }

    /// The power report over the combined activity of every shard.
    #[must_use]
    pub fn merged_power(&self) -> &PowerReport {
        &self.merged_power
    }

    /// Total cycles simulated across all shards.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.merged_stats.cycles()
    }

    /// Total simulator events across all shards.
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.merged_stats.events()
    }

    /// Worst settle time across all shards.
    #[must_use]
    pub fn max_settle_time(&self) -> u64 {
        self.merged_stats.max_settle_time()
    }

    /// Total combinational cell evaluations across all shards.
    #[must_use]
    pub fn total_cell_evals(&self) -> u64 {
        self.merged_stats.cell_evals()
    }

    /// Event-queue traffic summed (pushes, pops) and maxed (peak depth)
    /// over all shards. Deterministic, like every merged aggregate.
    #[must_use]
    pub fn queue_stats(&self) -> QueueStats {
        let mut total = QueueStats::default();
        for shard in &self.shards {
            total.merge(shard.queue);
        }
        total
    }

    /// Load-imbalance ratio of the batch: slowest shard wall time divided
    /// by the mean shard wall time (1.0 = perfectly balanced). Returns 1.0
    /// for batches without timing data. Wall-clock derived — display only,
    /// never part of deterministic aggregates.
    #[must_use]
    pub fn imbalance_ratio(&self) -> f64 {
        let walls: Vec<f64> = self
            .shards
            .iter()
            .map(|s| s.wall_micros as f64)
            .filter(|&w| w > 0.0)
            .collect();
        if walls.is_empty() {
            return 1.0;
        }
        let mean = walls.iter().sum::<f64>() / walls.len() as f64;
        if mean == 0.0 {
            return 1.0;
        }
        walls.iter().copied().fold(f64::NEG_INFINITY, f64::max) / mean
    }

    /// Spread of per-shard complete-glitch counts.
    #[must_use]
    pub fn glitch_spread(&self) -> Spread {
        self.spread_of(|s| s.activity.glitches() as f64)
    }

    /// Spread of per-shard useless-transition counts.
    #[must_use]
    pub fn useless_spread(&self) -> Spread {
        self.spread_of(|s| s.activity.useless as f64)
    }

    /// Spread of per-shard combinational transition counts.
    #[must_use]
    pub fn transitions_spread(&self) -> Spread {
        self.spread_of(|s| s.activity.transitions as f64)
    }

    /// Spread of per-shard total power, in watts.
    #[must_use]
    pub fn power_spread(&self) -> Spread {
        self.spread_of(|s| s.power.breakdown.total())
    }

    /// Spread of per-shard combinational-logic power, in watts.
    #[must_use]
    pub fn logic_power_spread(&self) -> Spread {
        self.spread_of(|s| s.power.breakdown.logic)
    }

    /// Spread of an arbitrary per-shard scalar.
    #[must_use]
    pub fn spread_of(&self, f: impl Fn(&ShardSummary) -> f64) -> Spread {
        let samples: Vec<f64> = self.shards.iter().map(f).collect();
        Spread::of(&samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_item_order_under_parallel_scheduling() {
        let runner = ParallelRunner::new(4);
        let items: Vec<u64> = (0..100).collect();
        let results = runner.map(items, |index, item| {
            assert_eq!(index as u64, item);
            item * 2
        });
        assert_eq!(results, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(runner.workers(), 4);
    }

    #[test]
    fn zero_workers_clamp_to_one_and_run_serially() {
        let runner = ParallelRunner::new(0);
        assert_eq!(runner.workers(), 1);
        assert_eq!(runner.map(vec![1, 2, 3], |_, x| x + 1), vec![2, 3, 4]);
        assert!(ParallelRunner::default().workers() >= 1);
    }

    #[test]
    fn shard_equality_ignores_wall_clock_fields() {
        let runner = ParallelRunner::new(2);
        let mut nl = glitch_netlist::Netlist::new("pair");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.xor2(a, b, "y");
        nl.mark_output(y);
        let buses = vec![Bus::new(vec![a, b])];
        let jobs: Vec<SimJob<'_>> = (0..3)
            .map(|seed| SimJob::new(&nl, buses.clone(), 16, seed))
            .collect();
        let mut first = runner.run_sessions(&jobs).unwrap();
        let mut second = runner.run_sessions(&jobs).unwrap();
        let agg_a = AggregateReport::reduce(&nl, &jobs, &mut first);
        let agg_b = AggregateReport::reduce(&nl, &jobs, &mut second);
        // Wall times differ between the two batches, but equality (and so
        // the upstream determinism asserts) only sees deterministic fields.
        assert_eq!(agg_a, agg_b);
        assert_eq!(agg_a.shards(), agg_b.shards());
        let shard = &agg_a.shards()[0];
        assert!(shard.cell_evals > 0);
        assert!(shard.queue.pops > 0);
        assert!(agg_a.total_cell_evals() >= shard.cell_evals);
        assert!(agg_a.queue_stats().pushes >= shard.queue.pushes);
        assert!(agg_a.imbalance_ratio() >= 1.0);
    }

    #[test]
    fn spread_of_samples() {
        let spread = Spread::of(&[1.0, 3.0, 5.0, 7.0]);
        assert_eq!(spread.min, 1.0);
        assert_eq!(spread.max, 7.0);
        assert_eq!(spread.mean, 4.0);
        assert!((spread.stddev - 5.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(Spread::of(&[]), Spread::default());
        assert!(spread.to_string().contains("±"));
    }
}
