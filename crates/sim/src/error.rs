//! Simulation error type.

use std::error::Error;
use std::fmt;

use glitch_netlist::{EvalError, NetId, NetlistError};

/// Errors reported by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The netlist failed structural validation.
    InvalidNetlist(NetlistError),
    /// The combinational logic did not settle within the per-cycle event
    /// budget — either the delay model admits an oscillation or the budget
    /// is too small for a very deep circuit.
    DidNotSettle {
        /// The cycle that failed to converge.
        cycle: u64,
        /// The time budget that was exhausted.
        budget: u64,
    },
    /// An input assignment referenced a net that is not a primary input.
    NotAnInput(NetId),
    /// A primary input was left undriven in a cycle before ever being
    /// assigned a value.
    MissingInput(NetId),
    /// A cell could not be evaluated combinationally — a malformed netlist
    /// slipped past structural validation. Surfaced as an error (rather than
    /// a panic) so one bad circuit cannot abort a long batch or parallel
    /// run.
    CellEval {
        /// Instance name of the offending cell.
        cell: String,
        /// Why the evaluation was rejected.
        error: EvalError,
    },
    /// A delta stimulus referenced a cycle beyond the recorded baseline —
    /// incremental re-simulation can only perturb cycles the baseline
    /// actually ran.
    DeltaOutOfRange {
        /// The out-of-range cycle the delta referenced.
        cycle: u64,
        /// Number of cycles the baseline recorded.
        baseline_cycles: u64,
    },
    /// A delta stimulus set the same `(cycle, net)` override twice.
    /// Last-write-wins would silently discard the earlier value, so the
    /// duplicate is rejected at construction with its location.
    DuplicateDelta {
        /// The cycle both overrides target.
        cycle: u64,
        /// The net both overrides drive.
        net: NetId,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidNetlist(e) => write!(f, "invalid netlist: {e}"),
            SimError::DidNotSettle { cycle, budget } => {
                write!(
                    f,
                    "cycle {cycle} did not settle within {budget} delay units"
                )
            }
            SimError::NotAnInput(net) => {
                write!(
                    f,
                    "net {net} is not a primary input and cannot be driven by the stimulus"
                )
            }
            SimError::MissingInput(net) => {
                write!(f, "primary input {net} has never been assigned a value")
            }
            SimError::CellEval { cell, error } => {
                write!(f, "cell `{cell}` cannot be evaluated: {error}")
            }
            SimError::DeltaOutOfRange {
                cycle,
                baseline_cycles,
            } => {
                write!(
                    f,
                    "delta stimulus targets cycle {cycle} but the baseline \
                     recorded only {baseline_cycles} cycles"
                )
            }
            SimError::DuplicateDelta { cycle, net } => {
                write!(
                    f,
                    "delta stimulus overrides net {net} twice in cycle {cycle}; \
                     each cycle:net pair may be set at most once"
                )
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::InvalidNetlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for SimError {
    fn from(e: NetlistError) -> Self {
        SimError::InvalidNetlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SimError::DidNotSettle {
            cycle: 3,
            budget: 100,
        };
        assert!(e.to_string().contains("cycle 3"));
        let inner = NetlistError::FloatingNet(NetId::from_index(1));
        let e: SimError = inner.clone().into();
        assert_eq!(e, SimError::InvalidNetlist(inner));
        assert!(Error::source(&e).is_some());
    }
}
