//! The synchronous, cycle-by-cycle simulation driver.

use glitch_netlist::{Bus, CellId, CellKind, DffInit, NetId, Netlist, Tri};

use crate::delay::DelayModel;
use crate::engine::EventQueue;
use crate::error::SimError;
use crate::probe::{Probe, Transition, TransitionKind};
use crate::value::Value;

/// How combinational cells evaluate when one of their inputs is `X`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum XEval {
    /// Any `X` input forces every (non-constant) output to `X` — the
    /// fastest, maximally conservative rule. `X` only occurs before a net's
    /// first assignment under the default reset policy, so this is the
    /// right default for analysis runs.
    #[default]
    Coarse,
    /// Per-kind three-valued truth tables
    /// ([`CellKind::try_evaluate_tri_into`]): controlling known inputs
    /// dominate unknowns (`AND(0, X) = 0`, `OR(1, X) = 1`, a majority of
    /// two agreeing inputs, …), so `X` regions shrink to the nets whose
    /// value genuinely depends on unknown state. This is what
    /// X-propagation *checking* (`glitch_verify`) runs under: combined
    /// with an all-`X` flipflop reset it simulates uninitialised-state
    /// reachability instead of assuming it away. Evaluation is monotone in
    /// the information order, so every concrete value of a Tri run is
    /// correct for *any* resolution of the unknowns.
    TriTable,
}

/// Options controlling a [`ClockedSimulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// Value a flipflop without an explicit netlist init state
    /// ([`DffInit::DontCare`]) holds before the first clock cycle.
    pub dff_init: Value,
    /// Maximum settling time (in delay units) allowed per cycle before the
    /// simulator gives up with [`SimError::DidNotSettle`].
    pub settle_budget: u64,
    /// How cells evaluate `X` inputs; see [`XEval`].
    pub x_eval: XEval,
}

impl SimOptions {
    /// The verification preset: flipflops without a netlist-specified init
    /// value power on as `X` and cells evaluate through the three-valued
    /// tables — uninitialised-state reachability is simulated, not
    /// assumed. This is what `glitch-cli check --x-init` runs under.
    #[must_use]
    pub fn x_init() -> Self {
        SimOptions {
            dff_init: Value::X,
            x_eval: XEval::TriTable,
            ..SimOptions::default()
        }
    }
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            dff_init: Value::Zero,
            settle_budget: 1_000_000,
            x_eval: XEval::default(),
        }
    }
}

/// New values for primary inputs, applied at the beginning of a clock cycle.
///
/// Inputs not mentioned keep their previous value (or stay `X` if never
/// assigned).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InputAssignment {
    sets: Vec<(NetId, bool)>,
}

impl InputAssignment {
    /// An assignment that changes nothing.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a single-bit assignment (builder style).
    #[must_use]
    pub fn with(mut self, net: NetId, value: bool) -> Self {
        self.set(net, value);
        self
    }

    /// Adds an unsigned value across a bus, least-significant bit first
    /// (builder style). Bits beyond the bus width are ignored.
    #[must_use]
    pub fn with_bus(mut self, bus: &Bus, value: u64) -> Self {
        self.set_bus(bus, value);
        self
    }

    /// Adds a single-bit assignment.
    pub fn set(&mut self, net: NetId, value: bool) {
        self.sets.push((net, value));
    }

    /// Adds an unsigned value across a bus (LSB first).
    pub fn set_bus(&mut self, bus: &Bus, value: u64) {
        for (i, &bit) in bus.bits().iter().enumerate() {
            self.set(bit, (value >> i) & 1 == 1);
        }
    }

    /// The individual bit assignments, in insertion order.
    #[must_use]
    pub fn assignments(&self) -> &[(NetId, bool)] {
        &self.sets
    }

    /// Number of driven bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// `true` when no bit is driven.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }
}

/// Statistics of one simulated clock cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleStats {
    /// Total signal transitions on all nets during the cycle.
    pub transitions: u64,
    /// Time (in delay units) at which the last event settled.
    pub settle_time: u64,
    /// Number of events processed during the cycle.
    pub events: u64,
    /// Number of combinational cell evaluations the cycle performed — the
    /// work metric incremental re-simulation reports its savings against.
    pub cell_evals: u64,
}

#[derive(Debug, Clone)]
struct DffInfo {
    d: NetId,
    q: NetId,
    init: Value,
}

/// Event-driven simulator for a single-clock synchronous netlist.
///
/// This is the low-level driver: it owns a type-erased [`DelayModel`],
/// dispatches every observable event to the attached [`Probe`]s, and knows
/// nothing about activity traces, waveforms or power — those are probes.
/// Most callers should use [`crate::SimSession`] instead and only drop down
/// to `ClockedSimulator` for cycle-by-cycle control.
///
/// See the crate-level documentation for the simulation semantics and an
/// example.
pub struct ClockedSimulator<'a> {
    netlist: &'a Netlist,
    delay: Box<dyn DelayModel + 'a>,
    options: SimOptions,
    values: Vec<Value>,
    pending: Vec<Value>,
    dffs: Vec<DffInfo>,
    dff_state: Vec<Value>,
    constants: Vec<(NetId, Value)>,
    cycles: u64,
    queue: EventQueue,
    probes: Vec<Box<dyn Probe>>,
    scratch_cells: Vec<CellId>,
    cell_mark: Vec<u64>,
    mark_generation: u64,
}

impl<'a> ClockedSimulator<'a> {
    /// Creates a simulator with default [`SimOptions`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidNetlist`] if the netlist fails structural
    /// validation (floating nets, combinational loops, …).
    pub fn new(netlist: &'a Netlist, delay: impl DelayModel + 'a) -> Result<Self, SimError> {
        Self::with_options(netlist, delay, SimOptions::default())
    }

    /// Creates a simulator with explicit options.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidNetlist`] if the netlist fails structural
    /// validation.
    pub fn with_options(
        netlist: &'a Netlist,
        delay: impl DelayModel + 'a,
        options: SimOptions,
    ) -> Result<Self, SimError> {
        netlist.validate()?;
        let n = netlist.net_count();
        let dffs: Vec<DffInfo> = netlist
            .dff_cells()
            .map(|id| {
                let cell = netlist.cell(id);
                DffInfo {
                    d: cell.inputs()[0],
                    q: cell.outputs()[0],
                    init: match cell.dff_init() {
                        DffInit::Zero => Value::Zero,
                        DffInit::One => Value::One,
                        DffInit::DontCare => options.dff_init,
                    },
                }
            })
            .collect();
        let dff_state = dffs.iter().map(|ff| ff.init).collect();
        let constants: Vec<(NetId, Value)> = netlist
            .cells()
            .filter_map(|(_, cell)| match cell.kind() {
                CellKind::Const(v) => Some((cell.outputs()[0], Value::from(v))),
                _ => None,
            })
            .collect();
        Ok(ClockedSimulator {
            netlist,
            delay: Box::new(delay),
            options,
            values: vec![Value::X; n],
            pending: vec![Value::X; n],
            dffs,
            dff_state,
            constants,
            cycles: 0,
            queue: EventQueue::new(),
            probes: Vec::new(),
            scratch_cells: Vec::new(),
            cell_mark: vec![0; netlist.cell_count()],
            mark_generation: 0,
        })
    }

    /// Attaches an observer; its `on_run_start` hook fires immediately.
    pub fn attach_probe(&mut self, mut probe: Box<dyn Probe>) {
        probe.on_run_start(self.netlist);
        self.probes.push(probe);
    }

    /// Detaches every probe, firing each one's `on_run_end` hook.
    pub fn detach_probes(&mut self) -> Vec<Box<dyn Probe>> {
        let mut probes = std::mem::take(&mut self.probes);
        for probe in &mut probes {
            probe.on_run_end(self.netlist);
        }
        probes
    }

    /// Borrows the first attached probe of type `T` (e.g. to inspect an
    /// accumulating trace mid-run).
    #[must_use]
    pub fn probe_ref<T: Probe>(&self) -> Option<&T> {
        self.probes.iter().find_map(|p| {
            let any: &dyn std::any::Any = p.as_ref();
            any.downcast_ref::<T>()
        })
    }

    /// The attached probes, in attachment order.
    #[must_use]
    pub fn probes(&self) -> &[Box<dyn Probe>] {
        &self.probes
    }

    /// The netlist being simulated.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Number of clock cycles simulated so far.
    #[must_use]
    pub fn cycle_count(&self) -> u64 {
        self.cycles
    }

    /// Current value of a net.
    #[must_use]
    pub fn net_value(&self, net: NetId) -> Value {
        self.values[net.index()]
    }

    /// Current value of a net as a `bool`, or `None` when it is `X`.
    #[must_use]
    pub fn net_bool(&self, net: NetId) -> Option<bool> {
        self.values[net.index()].to_bool()
    }

    /// Current value of a bus as an unsigned integer (LSB first), or `None`
    /// if any bit is `X`.
    #[must_use]
    pub fn bus_value(&self, bus: &Bus) -> Option<u64> {
        let mut out = 0u64;
        for (i, &bit) in bus.bits().iter().enumerate() {
            match self.values[bit.index()] {
                Value::One => out |= 1 << i,
                Value::Zero => {}
                Value::X => return None,
            }
        }
        Some(out)
    }

    /// Returns the simulator to its power-on state: every net `X`, every
    /// flipflop back at its netlist init state (or the [`SimOptions`]
    /// default), and the cycle counter at zero. Attached probes are kept
    /// and see the next `step` as a fresh cycle sequence.
    pub fn reset(&mut self) {
        self.values.iter_mut().for_each(|v| *v = Value::X);
        self.pending.iter_mut().for_each(|v| *v = Value::X);
        for (state, ff) in self.dff_state.iter_mut().zip(&self.dffs) {
            *state = ff.init;
        }
        self.queue.clear();
        self.queue.reset_stats();
        self.cycles = 0;
    }

    /// Cumulative event-queue traffic (pushes, pops, peak depth) since
    /// construction or the last [`ClockedSimulator::reset`]. Deterministic:
    /// a pure function of netlist, stimulus and delay model.
    #[must_use]
    pub fn queue_stats(&self) -> crate::QueueStats {
        self.queue.stats()
    }

    fn schedule(&mut self, time: u64, net: NetId, value: Value) {
        if self.pending[net.index()] != value {
            self.pending[net.index()] = value;
            self.queue.push(time, net, value);
        }
    }

    /// Simulates one clock cycle: applies the input assignment and the
    /// flipflop outputs at time 0, lets the combinational logic settle and
    /// reports every net transition to the attached probes.
    ///
    /// # Errors
    ///
    /// * [`SimError::NotAnInput`] if the assignment drives a non-input net.
    /// * [`SimError::DidNotSettle`] if the logic does not settle within the
    ///   configured budget.
    pub fn step(&mut self, inputs: InputAssignment) -> Result<CycleStats, SimError> {
        self.queue.clear();
        for probe in &mut self.probes {
            probe.on_cycle_start(self.cycles);
        }

        // Constant drivers assert their value at the start of every cycle;
        // after the first cycle this is a no-op because the scheduled value
        // never changes.
        let constants = std::mem::take(&mut self.constants);
        for &(net, value) in &constants {
            self.schedule(0, net, value);
        }
        self.constants = constants;

        for &(net, value) in inputs.assignments() {
            if !self.netlist.net(net).is_primary_input() {
                return Err(SimError::NotAnInput(net));
            }
            self.schedule(0, net, Value::from(value));
        }
        let dff_updates: Vec<(NetId, Value)> = self
            .dffs
            .iter()
            .zip(&self.dff_state)
            .map(|(ff, &v)| (ff.q, v))
            .collect();
        for (q, v) in dff_updates {
            self.schedule(0, q, v);
        }

        let mut settle_time = 0u64;
        let mut events_processed = 0u64;
        let mut transitions = 0u64;
        let mut cell_evals = 0u64;
        let mut changed_nets: Vec<NetId> = Vec::new();
        // Nets that changed during the current time step, with the value
        // they held when the step began: a net transitions at most once per
        // simulated time point, no matter how many zero-delay delta
        // iterations it takes to settle that point.
        let mut step_changed: Vec<(NetId, Value)> = Vec::new();

        while let Some(time) = self.queue.earliest_time() {
            if time > self.options.settle_budget {
                self.queue.clear();
                return Err(SimError::DidNotSettle {
                    cycle: self.cycles,
                    budget: self.options.settle_budget,
                });
            }
            settle_time = time;
            step_changed.clear();

            // Delta loop: zero-delay cells keep scheduling at the same time
            // point until the values stabilise.
            while let Some(events) = self.queue.pop_at(time) {
                changed_nets.clear();
                for (net, value) in events {
                    events_processed += 1;
                    let idx = net.index();
                    let old = self.values[idx];
                    if old == value {
                        continue;
                    }
                    if !step_changed.iter().any(|(n, _)| *n == net) {
                        step_changed.push((net, old));
                    }
                    self.values[idx] = value;
                    changed_nets.push(net);
                }

                // Collect combinational cells affected by the changed nets,
                // de-duplicated via a generation-marking trick.
                self.mark_generation += 1;
                self.scratch_cells.clear();
                for &net in &changed_nets {
                    for load in self.netlist.net(net).loads() {
                        let cell = load.cell;
                        if self.netlist.cell(cell).is_sequential() {
                            continue;
                        }
                        if self.cell_mark[cell.index()] != self.mark_generation {
                            self.cell_mark[cell.index()] = self.mark_generation;
                            self.scratch_cells.push(cell);
                        }
                    }
                }

                let affected = std::mem::take(&mut self.scratch_cells);
                let mut eval_failure = None;
                for &cell_id in &affected {
                    cell_evals += 1;
                    if let Err(error) = self.evaluate_and_schedule(cell_id, time) {
                        eval_failure = Some(error);
                        break;
                    }
                }
                self.scratch_cells = affected;
                if let Some(error) = eval_failure {
                    self.queue.clear();
                    return Err(error);
                }
            }

            // Report one transition per net that ended the time step with a
            // different value than it started with.
            for &(net, old) in &step_changed {
                let new = self.values[net.index()];
                if old == new {
                    continue;
                }
                let kind = if old.transitions_to(new) {
                    transitions += 1;
                    if old.is_rising_to(new) {
                        TransitionKind::Rise
                    } else {
                        TransitionKind::Fall
                    }
                } else {
                    TransitionKind::Unknown
                };
                let event = Transition {
                    net,
                    cycle: self.cycles,
                    time,
                    value: new,
                    kind,
                };
                for probe in &mut self.probes {
                    probe.on_transition(&event);
                }
            }
        }

        // Sample flipflop inputs at the end of the cycle; they appear on the
        // Q outputs at the start of the next cycle.
        let sampled: Vec<Value> = self
            .dffs
            .iter()
            .map(|ff| self.values[ff.d.index()])
            .collect();
        self.dff_state = sampled;

        let stats = CycleStats {
            transitions,
            settle_time,
            events: events_processed,
            cell_evals,
        };
        for probe in &mut self.probes {
            probe.on_cycle_end(self.cycles, &stats);
        }
        self.cycles += 1;
        Ok(stats)
    }

    /// Replays one recorded clock cycle without touching the event queue:
    /// the attached probes see exactly the hook sequence a live [`step`]
    /// over the same cycle would have produced (`on_cycle_start`, one
    /// `on_transition` per recorded transition in recorded order,
    /// `on_cycle_end` with the recorded statistics), net values and the
    /// pending table are advanced to the recorded post-cycle state, and the
    /// flipflops resample their D inputs.
    ///
    /// This is the fast path of incremental re-simulation
    /// ([`crate::IncrementalSession`]): a cycle proven identical to a
    /// baseline run is replayed in `O(transitions)` instead of re-settling
    /// the event queue. Correctness rests on the caller's guarantee that
    /// the simulator state at entry equals the baseline state at the same
    /// cycle boundary.
    ///
    /// [`step`]: ClockedSimulator::step
    pub(crate) fn replay_cycle(&mut self, transitions: &[Transition], stats: &CycleStats) {
        for probe in &mut self.probes {
            probe.on_cycle_start(self.cycles);
        }
        for recorded in transitions {
            let idx = recorded.net.index();
            self.values[idx] = recorded.value;
            // A settled cycle leaves `pending == values` on every net (a
            // net's events pop in schedule order because it has a single
            // driver), so replay maintains the invariant the next live
            // `step` relies on for its schedule filtering.
            self.pending[idx] = recorded.value;
            let event = Transition {
                net: recorded.net,
                cycle: self.cycles,
                time: recorded.time,
                value: recorded.value,
                kind: recorded.kind,
            };
            for probe in &mut self.probes {
                probe.on_transition(&event);
            }
        }
        let sampled: Vec<Value> = self
            .dffs
            .iter()
            .map(|ff| self.values[ff.d.index()])
            .collect();
        self.dff_state = sampled;
        for probe in &mut self.probes {
            probe.on_cycle_end(self.cycles, stats);
        }
        self.cycles += 1;
    }

    /// The sampled flipflop states that will drive the Q outputs at the
    /// start of the next cycle, in [`Netlist::dff_cells`] order.
    pub(crate) fn dff_state(&self) -> &[Value] {
        &self.dff_state
    }

    fn evaluate_and_schedule(&mut self, cell_id: CellId, time: u64) -> Result<(), SimError> {
        if self.options.x_eval == XEval::TriTable {
            return self.evaluate_and_schedule_tri(cell_id, time);
        }
        let cell = self.netlist.cell(cell_id);
        let kind = cell.kind();

        // Gather input values; any X makes the (non-constant) outputs X.
        let mut any_x = false;
        let mut input_bits: [bool; 8] = [false; 8];
        let mut input_vec: Vec<bool>;
        let inputs = cell.inputs();
        let bits: &mut [bool] = if inputs.len() <= 8 {
            &mut input_bits[..inputs.len()]
        } else {
            input_vec = vec![false; inputs.len()];
            &mut input_vec
        };
        for (slot, &net) in bits.iter_mut().zip(inputs) {
            match self.values[net.index()] {
                Value::One => *slot = true,
                Value::Zero => *slot = false,
                Value::X => any_x = true,
            }
        }

        let outputs: Vec<NetId> = cell.outputs().to_vec();
        if any_x && !matches!(kind, CellKind::Const(_)) {
            for (pin, out) in outputs.into_iter().enumerate() {
                let d = self.delay.delay(kind, pin);
                self.schedule(time + d, out, Value::X);
            }
            return Ok(());
        }

        let mut out_bits = [false; 2];
        kind.try_evaluate_into(bits, &mut out_bits[..kind.output_count()])
            .map_err(|error| SimError::CellEval {
                cell: cell.name().to_string(),
                error,
            })?;
        for (pin, out) in outputs.into_iter().enumerate() {
            let d = self.delay.delay(kind, pin);
            self.schedule(time + d, out, Value::from(out_bits[pin]));
        }
        Ok(())
    }

    /// The [`XEval::TriTable`] evaluation path: cells evaluate through the
    /// netlist's three-valued tables, so controlling known inputs dominate
    /// unknowns instead of any `X` forcing every output `X`.
    fn evaluate_and_schedule_tri(&mut self, cell_id: CellId, time: u64) -> Result<(), SimError> {
        let cell = self.netlist.cell(cell_id);
        let kind = cell.kind();
        let inputs = cell.inputs();
        let mut input_tris: [Tri; 8] = [Tri::X; 8];
        let mut input_vec: Vec<Tri>;
        let tris: &mut [Tri] = if inputs.len() <= 8 {
            &mut input_tris[..inputs.len()]
        } else {
            input_vec = vec![Tri::X; inputs.len()];
            &mut input_vec
        };
        for (slot, &net) in tris.iter_mut().zip(inputs) {
            *slot = Tri::from(self.values[net.index()]);
        }
        let mut out_tris = [Tri::X; 2];
        kind.try_evaluate_tri_into(tris, &mut out_tris[..kind.output_count()])
            .map_err(|error| SimError::CellEval {
                cell: cell.name().to_string(),
                error,
            })?;
        let outputs: Vec<NetId> = cell.outputs().to_vec();
        for (pin, out) in outputs.into_iter().enumerate() {
            let d = self.delay.delay(kind, pin);
            self.schedule(time + d, out, Value::from(out_tris[pin]));
        }
        Ok(())
    }

    /// Runs one cycle per assignment and returns the per-cycle statistics.
    ///
    /// # Errors
    ///
    /// Stops at and returns the first cycle error; cycles before the error
    /// remain observed by the probes.
    pub fn run<I>(&mut self, vectors: I) -> Result<Vec<CycleStats>, SimError>
    where
        I: IntoIterator<Item = InputAssignment>,
    {
        let mut stats = Vec::new();
        for assignment in vectors {
            stats.push(self.step(assignment)?);
        }
        Ok(stats)
    }
}

impl std::fmt::Debug for ClockedSimulator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClockedSimulator")
            .field("netlist", &self.netlist.name())
            .field("cycles", &self.cycles)
            .field("probes", &self.probes.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::{CellDelay, UnitDelay, ZeroDelay};
    use crate::probe::ActivityProbe;

    fn xor_chain(depth: usize) -> (Netlist, NetId, NetId, NetId) {
        // y = a ^ a ^ ... via a chain that creates unbalanced paths.
        let mut nl = Netlist::new("chain");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let mut cur = b;
        for i in 0..depth {
            cur = nl.inv(cur, &format!("i{i}"));
        }
        let y = nl.xor2(a, cur, "y");
        nl.mark_output(y);
        (nl, a, b, y)
    }

    fn with_activity<'a>(nl: &'a Netlist, delay: impl DelayModel + 'a) -> ClockedSimulator<'a> {
        let mut sim = ClockedSimulator::new(nl, delay).unwrap();
        sim.attach_probe(Box::new(ActivityProbe::new()));
        sim
    }

    fn activity<'s>(sim: &'s ClockedSimulator<'_>) -> &'s ActivityProbe {
        sim.probe_ref::<ActivityProbe>().expect("probe attached")
    }

    #[test]
    fn combinational_logic_settles_to_correct_value() {
        let mut nl = Netlist::new("fa");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let cin = nl.add_input("cin");
        let (s, c) = nl.full_adder(a, b, cin, "fa");
        nl.mark_output(s);
        nl.mark_output(c);
        let mut sim = ClockedSimulator::new(&nl, UnitDelay).unwrap();
        for bits in 0..8u8 {
            let inputs = InputAssignment::new()
                .with(a, bits & 1 != 0)
                .with(b, bits & 2 != 0)
                .with(cin, bits & 4 != 0);
            sim.step(inputs).unwrap();
            let expect = (bits & 1) + ((bits >> 1) & 1) + ((bits >> 2) & 1);
            let got = u8::from(sim.net_bool(s).unwrap()) + 2 * u8::from(sim.net_bool(c).unwrap());
            assert_eq!(got, expect, "bits {bits:03b}");
        }
        assert_eq!(sim.cycle_count(), 8);
    }

    #[test]
    fn glitch_appears_with_unbalanced_paths_and_not_with_zero_delay() {
        // XOR of a and a delayed copy of b: if b toggles while a toggles,
        // the inverter chain delays one input and the XOR output glitches.
        let (nl, a, b, y) = xor_chain(3);
        let mut unit = with_activity(&nl, UnitDelay);
        // Cycle 1: a=0,b=0 -> settle (y = 0 ^ !!!0 = 1).
        unit.step(InputAssignment::new().with(a, false).with(b, false))
            .unwrap();
        // Cycle 2: flip both inputs; the XOR sees a change immediately and
        // the chain output three units later: a glitch on y.
        unit.step(InputAssignment::new().with(a, true).with(b, true))
            .unwrap();
        let y_node = *activity(&unit).trace().node(y.index());
        assert!(
            y_node.useless() >= 2,
            "expected a glitch on y, trace: {y_node:?}"
        );

        let mut ideal = with_activity(&nl, ZeroDelay);
        ideal
            .step(InputAssignment::new().with(a, false).with(b, false))
            .unwrap();
        ideal
            .step(InputAssignment::new().with(a, true).with(b, true))
            .unwrap();
        let y_node = *activity(&ideal).trace().node(y.index());
        assert_eq!(y_node.useless(), 0, "zero delay cannot glitch");
    }

    #[test]
    fn flipflop_pipelining_delays_data_by_one_cycle() {
        let mut nl = Netlist::new("reg");
        let d = nl.add_input("d");
        let q = nl.dff(d, "q");
        nl.mark_output(q);
        let mut sim = ClockedSimulator::new(&nl, UnitDelay).unwrap();
        sim.step(InputAssignment::new().with(d, true)).unwrap();
        // Q still holds the initial value (0) during the first cycle.
        assert_eq!(sim.net_bool(q), Some(false));
        sim.step(InputAssignment::new().with(d, false)).unwrap();
        // Now Q shows the value captured at the end of cycle 1.
        assert_eq!(sim.net_bool(q), Some(true));
        sim.step(InputAssignment::new()).unwrap();
        assert_eq!(sim.net_bool(q), Some(false));
    }

    #[test]
    fn dff_init_states_from_the_netlist_are_honoured() {
        let mut nl = Netlist::new("init");
        let d = nl.add_input("d");
        let q1 = nl.dff_with_init(d, "q1", DffInit::One);
        let q0 = nl.dff_with_init(d, "q0", DffInit::Zero);
        let qd = nl.dff(d, "qd");
        nl.mark_output(q1);
        nl.mark_output(q0);
        nl.mark_output(qd);
        let mut sim = ClockedSimulator::new(&nl, UnitDelay).unwrap();
        sim.step(InputAssignment::new().with(d, false)).unwrap();
        // During the first cycle every Q shows its init state.
        assert_eq!(sim.net_bool(q1), Some(true));
        assert_eq!(sim.net_bool(q0), Some(false));
        assert_eq!(sim.net_bool(qd), Some(false), "DontCare uses the default");
        sim.step(InputAssignment::new().with(d, false)).unwrap();
        assert_eq!(sim.net_bool(q1), Some(false));
    }

    #[test]
    fn dont_care_init_follows_sim_options_default() {
        let mut nl = Netlist::new("init_opt");
        let d = nl.add_input("d");
        let q = nl.dff(d, "q");
        nl.mark_output(q);
        let options = SimOptions {
            dff_init: Value::One,
            ..SimOptions::default()
        };
        let mut sim = ClockedSimulator::with_options(&nl, UnitDelay, options).unwrap();
        sim.step(InputAssignment::new().with(d, false)).unwrap();
        assert_eq!(sim.net_bool(q), Some(true));
    }

    #[test]
    fn reset_restores_the_power_on_state() {
        let mut nl = Netlist::new("rst");
        let d = nl.add_input("d");
        let q = nl.dff_with_init(d, "q", DffInit::One);
        nl.mark_output(q);
        let mut sim = ClockedSimulator::new(&nl, UnitDelay).unwrap();
        sim.step(InputAssignment::new().with(d, false)).unwrap();
        sim.step(InputAssignment::new().with(d, false)).unwrap();
        assert_eq!(sim.net_bool(q), Some(false));
        assert_eq!(sim.cycle_count(), 2);
        sim.reset();
        assert_eq!(sim.cycle_count(), 0);
        assert_eq!(sim.net_value(q), Value::X);
        sim.step(InputAssignment::new().with(d, false)).unwrap();
        assert_eq!(sim.net_bool(q), Some(true), "init state restored");
    }

    #[test]
    fn per_output_delays_are_honoured() {
        let mut nl = Netlist::new("fa_delay");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let cin = nl.add_input("cin");
        let (s, c) = nl.full_adder(a, b, cin, "fa");
        nl.mark_output(s);
        nl.mark_output(c);
        let model = CellDelay::new().with_full_adder(4, 1);
        let mut sim = ClockedSimulator::new(&nl, model).unwrap();
        let stats = sim
            .step(
                InputAssignment::new()
                    .with(a, true)
                    .with(b, false)
                    .with(cin, false),
            )
            .unwrap();
        // The slowest event is the sum output at t = 4.
        assert_eq!(stats.settle_time, 4);
        assert_eq!(sim.net_bool(s), Some(true));
        assert_eq!(sim.net_bool(c), Some(false));
    }

    #[test]
    fn bus_value_reads_back_inputs() {
        let mut nl = Netlist::new("bus");
        let a = nl.add_input_bus("a", 8);
        let regs = nl.register_bus(&a, "q");
        nl.mark_output_bus(&regs);
        let mut sim = ClockedSimulator::new(&nl, UnitDelay).unwrap();
        sim.step(InputAssignment::new().with_bus(&a, 0xA5)).unwrap();
        assert_eq!(sim.bus_value(&a), Some(0xA5));
        // Registered copy appears one cycle later.
        assert_eq!(sim.bus_value(&regs), Some(0));
        sim.step(InputAssignment::new().with_bus(&a, 0xA5)).unwrap();
        assert_eq!(sim.bus_value(&regs), Some(0xA5));
    }

    #[test]
    fn driving_non_input_is_an_error() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let y = nl.inv(a, "y");
        nl.mark_output(y);
        let mut sim = ClockedSimulator::new(&nl, UnitDelay).unwrap();
        let err = sim.step(InputAssignment::new().with(y, true)).unwrap_err();
        assert!(matches!(err, SimError::NotAnInput(_)));
    }

    #[test]
    fn unassigned_inputs_propagate_x() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.and2(a, b, "y");
        nl.mark_output(y);
        let mut sim = with_activity(&nl, UnitDelay);
        sim.step(InputAssignment::new().with(a, true)).unwrap();
        assert_eq!(sim.net_value(y), Value::X);
        assert_eq!(sim.bus_value(&Bus::new(vec![y])), None);
        // X-related changes are not counted as transitions.
        assert_eq!(activity(&sim).trace().node(y.index()).transitions(), 0);
    }

    #[test]
    fn invalid_netlist_is_rejected() {
        let mut nl = Netlist::new("bad");
        let floating = nl.add_net("floating");
        let y = nl.inv(floating, "y");
        nl.mark_output(y);
        assert!(matches!(
            ClockedSimulator::new(&nl, UnitDelay),
            Err(SimError::InvalidNetlist(_))
        ));
    }

    #[test]
    fn run_consumes_a_stimulus_program() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let y = nl.inv(a, "y");
        nl.mark_output(y);
        let mut sim = with_activity(&nl, UnitDelay);
        let vectors = vec![
            InputAssignment::new().with(a, false),
            InputAssignment::new().with(a, true),
            InputAssignment::new().with(a, false),
        ];
        let stats = sim.run(vectors).unwrap();
        assert_eq!(stats.len(), 3);
        assert_eq!(sim.cycle_count(), 3);
        // y toggles in cycles 2 and 3 (cycle 1 is initialisation from X).
        assert_eq!(activity(&sim).trace().node(y.index()).transitions(), 2);
        assert_eq!(activity(&sim).rising_transitions(y), 1);
    }

    #[test]
    fn transition_counts_match_useful_definition_for_settled_logic() {
        // A single gate with balanced inputs never glitches: every counted
        // transition must be useful.
        let mut nl = Netlist::new("bal");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.xor2(a, b, "y");
        nl.mark_output(y);
        let mut sim = with_activity(&nl, UnitDelay);
        for i in 0..16u64 {
            sim.step(
                InputAssignment::new()
                    .with(a, i & 1 != 0)
                    .with(b, i & 2 != 0),
            )
            .unwrap();
        }
        let node = *activity(&sim).trace().node(y.index());
        assert_eq!(node.useless(), 0);
        assert_eq!(node.transitions(), node.useful());
    }

    #[test]
    fn tri_table_mode_lets_controlling_values_dominate_unknown_state() {
        // y = a AND q, with q an uninitialised flipflop. Under the x-init
        // preset q powers on as X; driving a = 0 makes y known (0) through
        // the three-valued AND table, while the coarse rule keeps y at X.
        let build = || {
            let mut nl = Netlist::new("xinit");
            let a = nl.add_input("a");
            let d = nl.add_input("d");
            let q = nl.dff(d, "q");
            let y = nl.and2(a, q, "y");
            nl.mark_output(y);
            (nl, a, d, y)
        };
        let (nl, a, d, y) = build();
        let tri_opts = SimOptions::x_init();
        assert_eq!(tri_opts.dff_init, Value::X);
        assert_eq!(tri_opts.x_eval, XEval::TriTable);
        let mut tri = ClockedSimulator::with_options(&nl, UnitDelay, tri_opts).unwrap();
        tri.step(InputAssignment::new().with(a, false).with(d, true))
            .unwrap();
        assert_eq!(tri.net_value(y), Value::Zero, "AND(0, X) = 0");

        let (nl2, a2, d2, y2) = build();
        let coarse_opts = SimOptions {
            dff_init: Value::X,
            ..SimOptions::default()
        };
        let mut coarse = ClockedSimulator::with_options(&nl2, UnitDelay, coarse_opts).unwrap();
        coarse
            .step(InputAssignment::new().with(a2, false).with(d2, true))
            .unwrap();
        assert_eq!(coarse.net_value(y2), Value::X, "coarse: any X input => X");

        // Next cycle the flipflop has sampled d = 1, so both modes agree on
        // a fully-known evaluation: y = a AND 1.
        tri.step(InputAssignment::new().with(a, true).with(d, true))
            .unwrap();
        assert_eq!(tri.net_value(y), Value::One);
    }

    #[test]
    fn tri_table_mode_keeps_genuinely_unknown_nets_x() {
        // y = a XOR q: XOR has no controlling value, so the uninitialised
        // flipflop keeps the output unknown until the state is known.
        let mut nl = Netlist::new("xinit xor");
        let a = nl.add_input("a");
        let d = nl.add_input("d");
        let q = nl.dff(d, "q");
        let y = nl.xor2(a, q, "y");
        nl.mark_output(y);
        let mut sim = ClockedSimulator::with_options(&nl, UnitDelay, SimOptions::x_init()).unwrap();
        sim.step(InputAssignment::new().with(a, true).with(d, false))
            .unwrap();
        assert_eq!(sim.net_value(y), Value::X);
        sim.step(InputAssignment::new().with(a, true).with(d, false))
            .unwrap();
        assert_eq!(sim.net_value(y), Value::One, "q known after one sample");
    }

    #[test]
    fn tri_table_mode_matches_coarse_once_no_x_remains() {
        // With concrete flipflop resets both modes see only known values
        // after the first settle, so an identical stimulus produces
        // identical per-cycle statistics from cycle 1 on.
        let (nl, a, b, _) = xor_chain(3);
        let run = |x_eval: XEval| -> Vec<CycleStats> {
            let options = SimOptions {
                x_eval,
                ..SimOptions::default()
            };
            let mut sim = ClockedSimulator::with_options(&nl, UnitDelay, options).unwrap();
            (0..8u64)
                .map(|i| {
                    sim.step(
                        InputAssignment::new()
                            .with(a, i % 2 == 0)
                            .with(b, i % 3 == 0),
                    )
                    .unwrap()
                })
                .collect()
        };
        let coarse = run(XEval::Coarse);
        let tri = run(XEval::TriTable);
        assert_eq!(coarse[1..], tri[1..]);
    }

    #[test]
    fn detach_probes_fires_run_end_and_empties_the_simulator() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let y = nl.inv(a, "y");
        nl.mark_output(y);
        let mut sim = with_activity(&nl, UnitDelay);
        sim.step(InputAssignment::new().with(a, true)).unwrap();
        assert_eq!(sim.probes().len(), 1);
        let probes = sim.detach_probes();
        assert_eq!(probes.len(), 1);
        assert!(sim.probes().is_empty());
        assert!(sim.probe_ref::<ActivityProbe>().is_none());
        assert!(format!("{sim:?}").contains("ClockedSimulator"));
    }
}
