//! Stimulus generators: sequences of input assignments.
//!
//! The paper drives its circuits with uniformly random input vectors (a good
//! model for multiplexed / source-coded arithmetic inputs, see section 3.2)
//! and with small hand-picked vector sets for the circuit-level power runs.
//! [`RandomStimulus`] reproduces the former with a seeded PRNG so every
//! experiment is repeatable; [`ExhaustiveStimulus`] walks every combination
//! of a small set of buses for functional verification.

use glitch_netlist::{Bus, NetId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::clocked::InputAssignment;

/// A finite or infinite program of input assignments.
///
/// Implemented by the provided generators; any iterator of
/// [`InputAssignment`] also works with [`crate::ClockedSimulator::run`].
pub trait StimulusProgram {
    /// Produces the assignment for the next clock cycle, or `None` when the
    /// program is exhausted.
    fn next_vector(&mut self) -> Option<InputAssignment>;

    /// Adapts the program into an iterator.
    fn into_iter_vectors(self) -> StimulusIter<Self>
    where
        Self: Sized,
    {
        StimulusIter { program: self }
    }
}

/// Iterator adapter returned by [`StimulusProgram::into_iter_vectors`].
#[derive(Debug)]
pub struct StimulusIter<P> {
    program: P,
}

impl<P: StimulusProgram> Iterator for StimulusIter<P> {
    type Item = InputAssignment;
    fn next(&mut self) -> Option<Self::Item> {
        self.program.next_vector()
    }
}

/// Uniformly random values on a set of input buses, for a fixed number of
/// cycles, from a deterministic seed.
#[derive(Debug, Clone)]
pub struct RandomStimulus {
    buses: Vec<Bus>,
    held: Vec<(NetId, bool)>,
    remaining: u64,
    rng: StdRng,
}

impl RandomStimulus {
    /// Creates a generator driving `buses` for `cycles` cycles using the
    /// given seed.
    #[must_use]
    pub fn new(buses: Vec<Bus>, cycles: u64, seed: u64) -> Self {
        RandomStimulus {
            buses,
            held: Vec::new(),
            remaining: cycles,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Additionally drives `net` to a constant `value` on every cycle —
    /// handy for carry-ins, thresholds or enables that should not be
    /// randomised.
    #[must_use]
    pub fn hold(mut self, net: NetId, value: bool) -> Self {
        self.held.push((net, value));
        self
    }

    /// Additionally drives a whole bus to a constant value on every cycle.
    #[must_use]
    pub fn hold_bus(mut self, bus: &Bus, value: u64) -> Self {
        for (i, &bit) in bus.bits().iter().enumerate() {
            self.held.push((bit, (value >> i) & 1 == 1));
        }
        self
    }

    /// Number of cycles still to be produced.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl StimulusProgram for RandomStimulus {
    fn next_vector(&mut self) -> Option<InputAssignment> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let mut assignment = InputAssignment::new();
        for bus in &self.buses {
            let value: u64 = self.rng.gen();
            assignment.set_bus(bus, value & mask(bus.width()));
        }
        for &(net, value) in &self.held {
            assignment.set(net, value);
        }
        Some(assignment)
    }
}

impl Iterator for RandomStimulus {
    type Item = InputAssignment;
    fn next(&mut self) -> Option<Self::Item> {
        self.next_vector()
    }
}

/// Every combination of values on a set of buses, in counting order.
///
/// Intended for functional verification of small circuits (total width of
/// all buses must be at most 24 bits to keep runs tractable).
#[derive(Debug, Clone)]
pub struct ExhaustiveStimulus {
    buses: Vec<Bus>,
    next: u64,
    total: u64,
}

impl ExhaustiveStimulus {
    /// Creates an exhaustive generator over the given buses.
    ///
    /// # Panics
    ///
    /// Panics if the combined width exceeds 24 bits.
    #[must_use]
    pub fn new(buses: Vec<Bus>) -> Self {
        let width: usize = buses.iter().map(Bus::width).sum();
        assert!(
            width <= 24,
            "exhaustive stimulus limited to 24 total input bits, got {width}"
        );
        ExhaustiveStimulus {
            buses,
            next: 0,
            total: 1u64 << width,
        }
    }

    /// Total number of vectors that will be produced.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }
}

impl StimulusProgram for ExhaustiveStimulus {
    fn next_vector(&mut self) -> Option<InputAssignment> {
        if self.next >= self.total {
            return None;
        }
        let mut remaining_bits = self.next;
        self.next += 1;
        let mut assignment = InputAssignment::new();
        for bus in &self.buses {
            let w = bus.width();
            assignment.set_bus(bus, remaining_bits & mask(w));
            remaining_bits >>= w;
        }
        Some(assignment)
    }
}

impl Iterator for ExhaustiveStimulus {
    type Item = InputAssignment;
    fn next(&mut self) -> Option<Self::Item> {
        self.next_vector()
    }
}

fn mask(width: usize) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitch_netlist::Netlist;

    #[test]
    fn random_stimulus_is_deterministic_and_finite() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input_bus("a", 8);
        let b = nl.add_input_bus("b", 8);
        let first: Vec<_> = RandomStimulus::new(vec![a.clone(), b.clone()], 5, 42).collect();
        let second: Vec<_> = RandomStimulus::new(vec![a.clone(), b.clone()], 5, 42).collect();
        let different: Vec<_> = RandomStimulus::new(vec![a, b], 5, 43).collect();
        assert_eq!(first.len(), 5);
        assert_eq!(first, second);
        assert_ne!(first, different);
        assert_eq!(first[0].len(), 16);
    }

    #[test]
    fn exhaustive_covers_every_combination() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input_bus("a", 2);
        let b = nl.add_input_bus("b", 1);
        let gen = ExhaustiveStimulus::new(vec![a.clone(), b.clone()]);
        assert_eq!(gen.total(), 8);
        let vectors: Vec<_> = gen.collect();
        assert_eq!(vectors.len(), 8);
        // Each vector drives all 3 bits.
        assert!(vectors.iter().all(|v| v.len() == 3));
        // All combinations distinct.
        let mut encoded: Vec<Vec<(usize, bool)>> = vectors
            .iter()
            .map(|v| {
                v.assignments()
                    .iter()
                    .map(|(n, b)| (n.index(), *b))
                    .collect()
            })
            .collect();
        encoded.sort();
        encoded.dedup();
        assert_eq!(encoded.len(), 8);
    }

    #[test]
    #[should_panic(expected = "24 total input bits")]
    fn exhaustive_rejects_wide_inputs() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input_bus("a", 30);
        let _ = ExhaustiveStimulus::new(vec![a]);
    }

    #[test]
    fn held_nets_are_driven_every_cycle() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input_bus("a", 4);
        let cin = nl.add_input("cin");
        let thr = nl.add_input_bus("thr", 4);
        let vectors: Vec<_> = RandomStimulus::new(vec![a], 10, 1)
            .hold(cin, false)
            .hold_bus(&thr, 0x9)
            .collect();
        assert_eq!(vectors.len(), 10);
        for v in &vectors {
            // 4 random bits + 1 held bit + 4 held bus bits.
            assert_eq!(v.len(), 9);
            assert!(v.assignments().contains(&(cin, false)));
            assert!(v.assignments().contains(&(thr.bit(0), true)));
            assert!(v.assignments().contains(&(thr.bit(1), false)));
            assert!(v.assignments().contains(&(thr.bit(3), true)));
        }
    }

    #[test]
    fn program_iter_adapter() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input_bus("a", 4);
        let program = RandomStimulus::new(vec![a], 3, 7);
        assert_eq!(program.remaining(), 3);
        let vectors: Vec<_> = program.into_iter_vectors().collect();
        assert_eq!(vectors.len(), 3);
    }
}
