//! Stimulus generators: sequences of input assignments.
//!
//! The paper drives its circuits with uniformly random input vectors (a good
//! model for multiplexed / source-coded arithmetic inputs, see section 3.2)
//! and with small hand-picked vector sets for the circuit-level power runs.
//! [`RandomStimulus`] reproduces the former with a seeded PRNG so every
//! experiment is repeatable; [`ExhaustiveStimulus`] walks every combination
//! of a small set of buses for functional verification.

use glitch_netlist::{Bus, NetId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::clocked::InputAssignment;

/// A finite or infinite program of input assignments.
///
/// Implemented by the provided generators; any iterator of
/// [`InputAssignment`] also works with [`crate::ClockedSimulator::run`].
pub trait StimulusProgram {
    /// Produces the assignment for the next clock cycle, or `None` when the
    /// program is exhausted.
    fn next_vector(&mut self) -> Option<InputAssignment>;

    /// Adapts the program into an iterator.
    fn into_iter_vectors(self) -> StimulusIter<Self>
    where
        Self: Sized,
    {
        StimulusIter { program: self }
    }
}

/// Iterator adapter returned by [`StimulusProgram::into_iter_vectors`].
#[derive(Debug)]
pub struct StimulusIter<P> {
    program: P,
}

impl<P: StimulusProgram> Iterator for StimulusIter<P> {
    type Item = InputAssignment;
    fn next(&mut self) -> Option<Self::Item> {
        self.program.next_vector()
    }
}

/// Uniformly random values on a set of input buses, for a fixed number of
/// cycles, from a deterministic seed.
#[derive(Debug, Clone)]
pub struct RandomStimulus {
    buses: Vec<Bus>,
    held: Vec<(NetId, bool)>,
    remaining: u64,
    rng: StdRng,
}

impl RandomStimulus {
    /// Creates a generator driving `buses` for `cycles` cycles using the
    /// given seed.
    #[must_use]
    pub fn new(buses: Vec<Bus>, cycles: u64, seed: u64) -> Self {
        RandomStimulus {
            buses,
            held: Vec::new(),
            remaining: cycles,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Additionally drives `net` to a constant `value` on every cycle —
    /// handy for carry-ins, thresholds or enables that should not be
    /// randomised.
    #[must_use]
    pub fn hold(mut self, net: NetId, value: bool) -> Self {
        self.held.push((net, value));
        self
    }

    /// Additionally drives a whole bus to a constant value on every cycle.
    #[must_use]
    pub fn hold_bus(mut self, bus: &Bus, value: u64) -> Self {
        for (i, &bit) in bus.bits().iter().enumerate() {
            self.held.push((bit, (value >> i) & 1 == 1));
        }
        self
    }

    /// Number of cycles still to be produced.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Derives the seed of shard `index` from a base seed.
    ///
    /// **Sharding semantics.** Parallel runs shard the stimulus by giving
    /// every shard an *independent* PRNG stream rather than by splitting one
    /// stream's cycle range: in a sequential circuit the flipflop state at
    /// cycle `k` depends on every preceding vector, so a cycle-range split
    /// would change the simulated behaviour, and even in combinational
    /// circuits the per-cycle parity classification depends on the previous
    /// vector at each chunk boundary. Independent per-shard seeds keep every
    /// shard a self-contained run whose statistics are exactly mergeable
    /// (`ActivityTrace::merge`), at the cost of the aggregate being a
    /// *multi-seed* estimate rather than one long single-seed run — which is
    /// statistically preferable anyway (it yields a per-seed spread).
    ///
    /// The mapping is a SplitMix64 step of `base ^ index`, so neighbouring
    /// shard indices produce decorrelated seeds even for small bases, and
    /// shard 0 of base `b` differs from a plain run seeded `b`.
    #[must_use]
    pub fn shard_seed(base: u64, index: u64) -> u64 {
        let mut z = (base ^ index).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The seeds of `count` shards derived from `base`; see
    /// [`RandomStimulus::shard_seed`] for the sharding semantics.
    #[must_use]
    pub fn shard_seeds(base: u64, count: usize) -> Vec<u64> {
        (0..count as u64)
            .map(|i| Self::shard_seed(base, i))
            .collect()
    }

    /// Splits the generator's configuration into `count` independent
    /// shards of `cycles` cycles each, with seeds derived via
    /// [`RandomStimulus::shard_seed`]. Held nets are replicated into every
    /// shard.
    #[must_use]
    pub fn shards(&self, cycles: u64, base: u64, count: usize) -> Vec<RandomStimulus> {
        RandomStimulus::shard_seeds(base, count)
            .into_iter()
            .map(|seed| {
                let mut shard = RandomStimulus::new(self.buses.clone(), cycles, seed);
                shard.held = self.held.clone();
                shard
            })
            .collect()
    }
}

impl StimulusProgram for RandomStimulus {
    fn next_vector(&mut self) -> Option<InputAssignment> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let mut assignment = InputAssignment::new();
        for bus in &self.buses {
            let value: u64 = self.rng.gen();
            assignment.set_bus(bus, value & mask(bus.width()));
        }
        for &(net, value) in &self.held {
            assignment.set(net, value);
        }
        Some(assignment)
    }
}

impl Iterator for RandomStimulus {
    type Item = InputAssignment;
    fn next(&mut self) -> Option<Self::Item> {
        self.next_vector()
    }
}

/// Every combination of values on a set of buses, in counting order.
///
/// Intended for functional verification of small circuits (total width of
/// all buses must be at most 24 bits to keep runs tractable).
#[derive(Debug, Clone)]
pub struct ExhaustiveStimulus {
    buses: Vec<Bus>,
    next: u64,
    total: u64,
}

impl ExhaustiveStimulus {
    /// Creates an exhaustive generator over the given buses.
    ///
    /// # Panics
    ///
    /// Panics if the combined width exceeds 24 bits.
    #[must_use]
    pub fn new(buses: Vec<Bus>) -> Self {
        let width: usize = buses.iter().map(Bus::width).sum();
        assert!(
            width <= 24,
            "exhaustive stimulus limited to 24 total input bits, got {width}"
        );
        ExhaustiveStimulus {
            buses,
            next: 0,
            total: 1u64 << width,
        }
    }

    /// Total number of vectors that will be produced.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }
}

impl StimulusProgram for ExhaustiveStimulus {
    fn next_vector(&mut self) -> Option<InputAssignment> {
        if self.next >= self.total {
            return None;
        }
        let mut remaining_bits = self.next;
        self.next += 1;
        let mut assignment = InputAssignment::new();
        for bus in &self.buses {
            let w = bus.width();
            assignment.set_bus(bus, remaining_bits & mask(w));
            remaining_bits >>= w;
        }
        Some(assignment)
    }
}

impl Iterator for ExhaustiveStimulus {
    type Item = InputAssignment;
    fn next(&mut self) -> Option<Self::Item> {
        self.next_vector()
    }
}

fn mask(width: usize) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitch_netlist::Netlist;

    #[test]
    fn random_stimulus_is_deterministic_and_finite() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input_bus("a", 8);
        let b = nl.add_input_bus("b", 8);
        let first: Vec<_> = RandomStimulus::new(vec![a.clone(), b.clone()], 5, 42).collect();
        let second: Vec<_> = RandomStimulus::new(vec![a.clone(), b.clone()], 5, 42).collect();
        let different: Vec<_> = RandomStimulus::new(vec![a, b], 5, 43).collect();
        assert_eq!(first.len(), 5);
        assert_eq!(first, second);
        assert_ne!(first, different);
        assert_eq!(first[0].len(), 16);
    }

    #[test]
    fn exhaustive_covers_every_combination() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input_bus("a", 2);
        let b = nl.add_input_bus("b", 1);
        let gen = ExhaustiveStimulus::new(vec![a.clone(), b.clone()]);
        assert_eq!(gen.total(), 8);
        let vectors: Vec<_> = gen.collect();
        assert_eq!(vectors.len(), 8);
        // Each vector drives all 3 bits.
        assert!(vectors.iter().all(|v| v.len() == 3));
        // All combinations distinct.
        let mut encoded: Vec<Vec<(usize, bool)>> = vectors
            .iter()
            .map(|v| {
                v.assignments()
                    .iter()
                    .map(|(n, b)| (n.index(), *b))
                    .collect()
            })
            .collect();
        encoded.sort();
        encoded.dedup();
        assert_eq!(encoded.len(), 8);
    }

    #[test]
    #[should_panic(expected = "24 total input bits")]
    fn exhaustive_rejects_wide_inputs() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input_bus("a", 30);
        let _ = ExhaustiveStimulus::new(vec![a]);
    }

    #[test]
    fn held_nets_are_driven_every_cycle() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input_bus("a", 4);
        let cin = nl.add_input("cin");
        let thr = nl.add_input_bus("thr", 4);
        let vectors: Vec<_> = RandomStimulus::new(vec![a], 10, 1)
            .hold(cin, false)
            .hold_bus(&thr, 0x9)
            .collect();
        assert_eq!(vectors.len(), 10);
        for v in &vectors {
            // 4 random bits + 1 held bit + 4 held bus bits.
            assert_eq!(v.len(), 9);
            assert!(v.assignments().contains(&(cin, false)));
            assert!(v.assignments().contains(&(thr.bit(0), true)));
            assert!(v.assignments().contains(&(thr.bit(1), false)));
            assert!(v.assignments().contains(&(thr.bit(3), true)));
        }
    }

    #[test]
    fn shard_seeds_are_deterministic_and_distinct() {
        let seeds = RandomStimulus::shard_seeds(42, 16);
        assert_eq!(seeds, RandomStimulus::shard_seeds(42, 16));
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 16, "shard seeds must not collide");
        // Shard 0 is not the base seed itself: a sharded run never silently
        // replays the unsharded stimulus.
        assert_ne!(seeds[0], 42);
        assert_ne!(RandomStimulus::shard_seeds(43, 1), seeds[..1]);
    }

    #[test]
    fn shards_replicate_buses_and_held_nets() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input_bus("a", 4);
        let cin = nl.add_input("cin");
        let base = RandomStimulus::new(vec![a], 100, 7).hold(cin, true);
        let shards = base.shards(10, 7, 3);
        assert_eq!(shards.len(), 3);
        for shard in &shards {
            assert_eq!(shard.remaining(), 10);
            let vectors: Vec<_> = shard.clone().collect();
            assert_eq!(vectors.len(), 10);
            // 4 random bits + 1 held bit per cycle.
            assert!(vectors.iter().all(|v| v.len() == 5));
            assert!(vectors
                .iter()
                .all(|v| v.assignments().contains(&(cin, true))));
        }
        // Different shards draw different vectors.
        let first: Vec<_> = shards[0].clone().collect();
        let second: Vec<_> = shards[1].clone().collect();
        assert_ne!(first, second);
    }

    #[test]
    fn program_iter_adapter() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input_bus("a", 4);
        let program = RandomStimulus::new(vec![a], 3, 7);
        assert_eq!(program.remaining(), 3);
        let vectors: Vec<_> = program.into_iter_vectors().collect();
        assert_eq!(vectors.len(), 3);
    }
}
