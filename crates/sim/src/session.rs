//! One-pass simulation sessions: configure a run once, observe many things.
//!
//! [`SimSession`] is the high-level entry point of the crate: it bundles a
//! netlist, a delay model, a stimulus program and any number of [`Probe`]
//! observers, runs the stimulus through the event-driven simulator exactly
//! once, and returns a [`SessionReport`] aggregating every probe's output.
//! Consumers that used to re-simulate per artefact (activity, then VCD,
//! then power) now pay for a single pass.

use std::any::Any;

use glitch_netlist::{Bus, NetId, Netlist};

use crate::clocked::{ClockedSimulator, CycleStats, InputAssignment, SimOptions};
use crate::delay::{DelayKind, DelayModel};
use crate::engine::QueueStats;
use crate::error::SimError;
use crate::probe::Probe;
use crate::value::Value;

/// Builder for a single simulation pass with pluggable observers.
///
/// ```
/// use glitch_netlist::Netlist;
/// use glitch_sim::{ActivityProbe, DelayKind, InputAssignment, SimSession, VcdProbe};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut nl = Netlist::new("session demo");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let y = nl.xor2(a, b, "y");
/// nl.mark_output(y);
///
/// // One pass produces both the transition trace and the waveform.
/// let report = SimSession::new(&nl)
///     .delay(DelayKind::Unit)
///     .stimulus((0..8u64).map(|i| {
///         InputAssignment::new().with(a, i & 1 != 0).with(b, i & 2 != 0)
///     }))
///     .probe(ActivityProbe::new())
///     .probe(VcdProbe::default())
///     .run()?;
///
/// assert_eq!(report.cycles(), 8);
/// let trace = report.probe::<ActivityProbe>().unwrap().trace();
/// assert!(trace.node(y.index()).transitions() > 0);
/// assert!(report.probe::<VcdProbe>().unwrap().vcd().is_some());
/// # Ok(())
/// # }
/// ```
pub struct SimSession<'a> {
    netlist: &'a Netlist,
    delay: Box<dyn DelayModel + 'a>,
    /// The data-only description of `delay`, kept while the model came from
    /// a [`DelayKind`]; [`SimSession::record_baseline`] needs it so the
    /// recorded baseline can reconstruct the same model for re-runs.
    delay_kind: Option<DelayKind>,
    options: SimOptions,
    probes: Vec<Box<dyn Probe>>,
    stimulus: Option<Box<dyn Iterator<Item = InputAssignment> + 'a>>,
    quiet_cycles: Option<std::sync::Arc<Vec<bool>>>,
}

impl<'a> SimSession<'a> {
    /// Starts a session on a netlist with the unit-delay model, no probes
    /// and an empty stimulus.
    #[must_use]
    pub fn new(netlist: &'a Netlist) -> Self {
        SimSession {
            netlist,
            delay: DelayKind::Unit.into_model(),
            delay_kind: Some(DelayKind::Unit),
            options: SimOptions::default(),
            probes: Vec::new(),
            stimulus: None,
            quiet_cycles: None,
        }
    }

    /// Selects one of the standard delay models.
    #[must_use]
    pub fn delay(mut self, kind: DelayKind) -> Self {
        self.delay = kind.clone().into_model();
        self.delay_kind = Some(kind);
        self
    }

    /// Uses an arbitrary delay model (the trait is dyn-compatible, so the
    /// session owns it type-erased). Sessions configured this way cannot
    /// [`SimSession::record_baseline`] — express custom tables as
    /// [`DelayKind::Custom`] instead when a replayable baseline is needed.
    #[must_use]
    pub fn delay_model(mut self, model: impl DelayModel + 'a) -> Self {
        self.delay = Box::new(model);
        self.delay_kind = None;
        self
    }

    /// Overrides the simulator options (settle budget, default flipflop
    /// reset value).
    #[must_use]
    pub fn options(mut self, options: SimOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the stimulus program: one [`InputAssignment`] per clock cycle.
    #[must_use]
    pub fn stimulus<I>(mut self, stimulus: I) -> Self
    where
        I: IntoIterator<Item = InputAssignment>,
        I::IntoIter: 'a,
    {
        self.stimulus = Some(Box::new(stimulus.into_iter()));
        self
    }

    /// Marks cycles proven *functionally quiet* by a kernel prepass
    /// ([`crate::kernel_prepass`]): cycle `c` with `quiet[c] == true` is
    /// replayed as an empty cycle — the stimulus vector is still drawn
    /// (the PRNG stream stays aligned with a full run), but the event
    /// queue never runs and the probes observe zero transitions with
    /// [`CycleStats::default`]. Soundness is the caller's responsibility:
    /// a flag may only be set when no constant, primary input or flipflop
    /// output changes at that cycle boundary, which is exactly what the
    /// prepass proves. Cycles beyond the flag vector run normally.
    #[must_use]
    pub fn quiet_cycles(mut self, quiet: std::sync::Arc<Vec<bool>>) -> Self {
        self.quiet_cycles = Some(quiet);
        self
    }

    /// Attaches an observer; probes see events in attachment order.
    #[must_use]
    pub fn probe(mut self, probe: impl Probe) -> Self {
        self.probes.push(Box::new(probe));
        self
    }

    /// Attaches an already-boxed observer (for probe lists built at
    /// runtime).
    #[must_use]
    pub fn boxed_probe(mut self, probe: Box<dyn Probe>) -> Self {
        self.probes.push(probe);
        self
    }

    /// Runs the stimulus through the simulator exactly once and collects
    /// every probe's output.
    ///
    /// # Errors
    ///
    /// Returns a [`SessionError`] wrapping [`SimError::InvalidNetlist`] if
    /// the netlist fails structural validation, or wrapping the first cycle
    /// error ([`SimError::NotAnInput`], [`SimError::DidNotSettle`])
    /// otherwise. The error carries a [`SessionReport`] with everything the
    /// probes observed before the failure — the cycles leading up to a
    /// non-settling cycle are usually exactly the diagnostics needed.
    pub fn run(self) -> Result<SessionReport, SessionError> {
        let mut sim = match ClockedSimulator::with_options(self.netlist, self.delay, self.options) {
            Ok(sim) => sim,
            Err(error) => {
                // Construction failed before the probes were started; hand
                // them back untouched (no `on_run_start`, no `on_run_end`).
                return Err(SessionError {
                    error,
                    report: Box::new(SessionReport {
                        cycles: 0,
                        cycle_stats: Vec::new(),
                        final_values: vec![Value::X; self.netlist.net_count()],
                        probes: self.probes,
                        queue: QueueStats::default(),
                        wall_micros: 0,
                        queue_wait_micros: 0,
                    }),
                });
            }
        };
        let started = std::time::Instant::now();
        for probe in self.probes {
            sim.attach_probe(probe);
        }
        let mut cycle_stats = Vec::new();
        let mut failure = None;
        if let Some(stimulus) = self.stimulus {
            let quiet = self.quiet_cycles;
            for (cycle, assignment) in stimulus.enumerate() {
                let skip = quiet
                    .as_ref()
                    .is_some_and(|q| q.get(cycle).copied().unwrap_or(false));
                if skip {
                    // The vector was drawn (keeping the stimulus PRNG in
                    // step with a full run) but provably changes nothing:
                    // replay the cycle empty instead of settling it.
                    drop(assignment);
                    sim.replay_cycle(&[], &CycleStats::default());
                    cycle_stats.push(CycleStats::default());
                    continue;
                }
                match sim.step(assignment) {
                    Ok(stats) => cycle_stats.push(stats),
                    Err(error) => {
                        failure = Some(error);
                        break;
                    }
                }
            }
        }
        let queue = sim.queue_stats();
        let probes = sim.detach_probes();
        let final_values = (0..self.netlist.net_count())
            .map(|i| sim.net_value(NetId::from_index(i)))
            .collect();
        let report = SessionReport {
            cycles: sim.cycle_count(),
            cycle_stats,
            final_values,
            probes,
            queue,
            wall_micros: u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
            queue_wait_micros: 0,
        };
        match failure {
            None => Ok(report),
            Some(error) => Err(SessionError {
                error,
                report: Box::new(report),
            }),
        }
    }

    /// Runs the session exactly like [`SimSession::run`] while additionally
    /// recording a [`crate::SimBaseline`]: the per-cycle stimulus,
    /// transition stream and statistics an [`crate::IncrementalSession`]
    /// needs to later re-simulate *nearby* stimuli by replaying unchanged
    /// cycles and re-evaluating only dirty fanout cones.
    ///
    /// # Errors
    ///
    /// As for [`SimSession::run`]; a failed run yields no baseline.
    ///
    /// # Panics
    ///
    /// Panics if the session's delay model was installed with
    /// [`SimSession::delay_model`] — the baseline must be able to
    /// reconstruct the model, so use [`SimSession::delay`] with a
    /// [`DelayKind`] (including [`DelayKind::Custom`]) instead.
    pub fn record_baseline(self) -> Result<(SessionReport, crate::SimBaseline), SessionError> {
        let delay_kind = self.delay_kind.expect(
            "record_baseline requires a DelayKind-configured session; \
             use SimSession::delay (DelayKind::Custom covers custom tables)",
        );
        crate::incremental::record_baseline(
            self.netlist,
            delay_kind,
            self.options,
            self.probes,
            self.stimulus,
        )
    }
}

/// A failed [`SimSession::run`], carrying everything observed before the
/// failure.
///
/// The probes in [`SessionError::report`] have had their `on_run_end`
/// hooks fired (unless the simulator could not even be constructed), so
/// their artefacts — the waveform of the cycles leading up to a
/// non-settling cycle, say — are fully rendered and retrievable. The
/// conversion into [`SimError`] drops the report, which keeps `?` working
/// in code that only cares about the error.
#[derive(Debug)]
pub struct SessionError {
    /// The simulator error that stopped the run.
    pub error: SimError,
    /// Everything the probes observed up to the failing cycle (boxed to
    /// keep the `Err` variant small on the happy path).
    pub report: Box<SessionReport>,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} complete cycles observed before the failure)",
            self.error,
            self.report.cycles()
        )
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

impl From<SessionError> for SimError {
    fn from(e: SessionError) -> Self {
        e.error
    }
}

impl std::fmt::Debug for SimSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimSession")
            .field("netlist", &self.netlist.name())
            .field("probes", &self.probes.len())
            .field("options", &self.options)
            .finish_non_exhaustive()
    }
}

/// The aggregated result of one [`SimSession::run`]: per-cycle statistics,
/// final net values and every attached probe, retrievable by type.
pub struct SessionReport {
    cycles: u64,
    cycle_stats: Vec<CycleStats>,
    final_values: Vec<Value>,
    probes: Vec<Box<dyn Probe>>,
    queue: QueueStats,
    wall_micros: u64,
    queue_wait_micros: u64,
}

impl SessionReport {
    /// Assembles a report from its parts — for in-crate drivers (baseline
    /// recording, incremental re-simulation) that step the simulator
    /// themselves instead of going through [`SimSession::run`].
    pub(crate) fn from_parts(
        cycles: u64,
        cycle_stats: Vec<CycleStats>,
        final_values: Vec<Value>,
        probes: Vec<Box<dyn Probe>>,
    ) -> Self {
        SessionReport {
            cycles,
            cycle_stats,
            final_values,
            probes,
            queue: QueueStats::default(),
            wall_micros: 0,
            queue_wait_micros: 0,
        }
    }

    /// Attaches the simulator's cumulative event-queue statistics — for
    /// in-crate drivers assembling reports via
    /// [`SessionReport::from_parts`].
    pub(crate) fn set_queue_stats(&mut self, queue: QueueStats) {
        self.queue = queue;
    }

    /// Records the run's observed timing (for the parallel runner, which
    /// measures each shard on the worker thread): the wall-clock duration
    /// and how long the job waited from batch start to being picked up.
    pub(crate) fn set_timing(&mut self, wall_micros: u64, queue_wait_micros: u64) {
        self.wall_micros = wall_micros;
        self.queue_wait_micros = queue_wait_micros;
    }

    /// Number of clock cycles the single pass simulated.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Number of simulation passes behind this report. A session runs its
    /// stimulus exactly once, so this is always 1 — the invariant the
    /// session API exists to enforce.
    #[must_use]
    pub fn passes(&self) -> u64 {
        1
    }

    /// Per-cycle statistics, in cycle order.
    #[must_use]
    pub fn cycle_stats(&self) -> &[CycleStats] {
        &self.cycle_stats
    }

    /// Total signal transitions over all cycles.
    #[must_use]
    pub fn total_transitions(&self) -> u64 {
        self.cycle_stats.iter().map(|s| s.transitions).sum()
    }

    /// Total simulator events processed over all cycles.
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.cycle_stats.iter().map(|s| s.events).sum()
    }

    /// The worst intra-cycle settle time observed.
    #[must_use]
    pub fn max_settle_time(&self) -> u64 {
        self.cycle_stats
            .iter()
            .map(|s| s.settle_time)
            .max()
            .unwrap_or(0)
    }

    /// Total combinational cell evaluations over all cycles.
    #[must_use]
    pub fn total_cell_evals(&self) -> u64 {
        self.cycle_stats.iter().map(|s| s.cell_evals).sum()
    }

    /// Cumulative event-queue traffic of the run (deterministic).
    #[must_use]
    pub fn queue_stats(&self) -> QueueStats {
        self.queue
    }

    /// Wall-clock duration of the simulation pass, in microseconds.
    /// Non-deterministic — display and trace material, never folded into
    /// equality-checked aggregates.
    #[must_use]
    pub fn wall_micros(&self) -> u64 {
        self.wall_micros
    }

    /// How long the run waited before starting, in microseconds: 0 for a
    /// direct run, the time from batch start to worker pickup for a shard
    /// of a parallel batch. Non-deterministic, like
    /// [`SessionReport::wall_micros`].
    #[must_use]
    pub fn queue_wait_micros(&self) -> u64 {
        self.queue_wait_micros
    }

    /// The value a net held when the run ended.
    #[must_use]
    pub fn net_value(&self, net: NetId) -> Value {
        self.final_values[net.index()]
    }

    /// Final value of a net as a `bool`, or `None` when it is `X`.
    #[must_use]
    pub fn net_bool(&self, net: NetId) -> Option<bool> {
        self.net_value(net).to_bool()
    }

    /// Final value of a bus as an unsigned integer (LSB first), or `None`
    /// if any bit is `X`.
    #[must_use]
    pub fn bus_value(&self, bus: &Bus) -> Option<u64> {
        let mut out = 0u64;
        for (i, &bit) in bus.bits().iter().enumerate() {
            match self.net_value(bit) {
                Value::One => out |= 1 << i,
                Value::Zero => {}
                Value::X => return None,
            }
        }
        Some(out)
    }

    /// Borrows the first attached probe of type `T`.
    #[must_use]
    pub fn probe<T: Probe>(&self) -> Option<&T> {
        self.probes.iter().find_map(|p| {
            let any: &dyn Any = p.as_ref();
            any.downcast_ref::<T>()
        })
    }

    /// Mutably borrows the first attached probe of type `T`.
    #[must_use]
    pub fn probe_mut<T: Probe>(&mut self) -> Option<&mut T> {
        self.probes.iter_mut().find_map(|p| {
            let any: &mut dyn Any = p.as_mut();
            any.downcast_mut::<T>()
        })
    }

    /// Removes and returns the first attached probe of type `T`.
    #[must_use]
    pub fn take_probe<T: Probe>(&mut self) -> Option<T> {
        let index = self.probes.iter().position(|p| {
            let any: &dyn Any = p.as_ref();
            any.is::<T>()
        })?;
        let probe: Box<dyn Any> = self.probes.remove(index);
        Some(*probe.downcast::<T>().expect("type checked above"))
    }

    /// Number of probes still held by the report.
    #[must_use]
    pub fn probe_count(&self) -> usize {
        self.probes.len()
    }
}

impl std::fmt::Debug for SessionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionReport")
            .field("cycles", &self.cycles)
            .field("probes", &self.probes.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::CellDelay;
    use crate::probe::{ActivityProbe, VcdProbe};
    use crate::stimulus::RandomStimulus;

    fn xor_netlist() -> (Netlist, Bus) {
        let mut nl = Netlist::new("s");
        let a = nl.add_input_bus("a", 4);
        let b = nl.add_input_bus("b", 4);
        let mut outs = Vec::new();
        for i in 0..4 {
            outs.push(nl.xor2(a.bit(i), b.bit(i), &format!("y{i}")));
        }
        for &y in &outs {
            nl.mark_output(y);
        }
        let mut bits = a.bits().to_vec();
        bits.extend_from_slice(b.bits());
        (nl, Bus::new(bits))
    }

    #[test]
    fn session_runs_once_and_aggregates_probe_outputs() {
        let (nl, inputs) = xor_netlist();
        let report = SimSession::new(&nl)
            .delay(DelayKind::Unit)
            .stimulus(RandomStimulus::new(vec![inputs], 20, 11))
            .probe(ActivityProbe::new())
            .probe(VcdProbe::default())
            .run()
            .unwrap();
        assert_eq!(report.cycles(), 20);
        assert_eq!(report.passes(), 1);
        assert_eq!(report.cycle_stats().len(), 20);
        assert!(report.total_transitions() > 0);
        assert!(report.total_events() > 0);
        assert!(report.max_settle_time() >= 1);
        assert_eq!(report.probe_count(), 2);
        assert_eq!(
            report.probe::<ActivityProbe>().unwrap().trace().cycles(),
            20
        );
    }

    #[test]
    fn report_carries_queue_stats_and_wall_time() {
        let (nl, inputs) = xor_netlist();
        let report = SimSession::new(&nl)
            .delay(DelayKind::Unit)
            .stimulus(RandomStimulus::new(vec![inputs], 20, 11))
            .run()
            .unwrap();
        let queue = report.queue_stats();
        assert!(queue.pushes > 0);
        assert_eq!(
            queue.pops,
            report.total_events(),
            "every event delivered to the delta loop was popped"
        );
        assert!(queue.peak_depth >= 1);
        assert!(report.total_cell_evals() > 0);
        assert_eq!(report.queue_wait_micros(), 0, "direct runs never wait");
        // Wall time is non-deterministic; only its presence is asserted.
        let _ = report.wall_micros();
    }

    #[test]
    fn queue_stats_are_deterministic_across_runs() {
        let (nl, inputs) = xor_netlist();
        let run = || {
            SimSession::new(&nl)
                .delay(DelayKind::Unit)
                .stimulus(RandomStimulus::new(vec![inputs.clone()], 30, 7))
                .run()
                .unwrap()
                .queue_stats()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn take_probe_removes_and_returns_typed_probe() {
        let (nl, inputs) = xor_netlist();
        let mut report = SimSession::new(&nl)
            .stimulus(RandomStimulus::new(vec![inputs], 5, 3))
            .probe(ActivityProbe::new())
            .run()
            .unwrap();
        let probe = report.take_probe::<ActivityProbe>().unwrap();
        assert_eq!(probe.trace().cycles(), 5);
        assert!(report.take_probe::<ActivityProbe>().is_none());
        assert!(report.probe::<VcdProbe>().is_none());
        assert_eq!(report.probe_count(), 0);
    }

    #[test]
    fn custom_delay_model_by_value_is_accepted() {
        let (nl, inputs) = xor_netlist();
        let report = SimSession::new(&nl)
            .delay_model(CellDelay::new().with_default(3))
            .stimulus(RandomStimulus::new(vec![inputs], 4, 9))
            .run()
            .unwrap();
        // Every XOR settles after exactly one 3-unit gate delay.
        assert_eq!(report.max_settle_time(), 3);
    }

    #[test]
    fn final_values_are_readable_from_the_report() {
        let mut nl = Netlist::new("f");
        let a = nl.add_input("a");
        let y = nl.inv(a, "y");
        nl.mark_output(y);
        let report = SimSession::new(&nl)
            .stimulus([InputAssignment::new().with(a, true)])
            .run()
            .unwrap();
        assert_eq!(report.net_bool(a), Some(true));
        assert_eq!(report.net_bool(y), Some(false));
        assert_eq!(report.bus_value(&Bus::new(vec![a])), Some(1));
    }

    #[test]
    fn empty_stimulus_is_a_zero_cycle_run() {
        let (nl, _) = xor_netlist();
        let report = SimSession::new(&nl)
            .probe(ActivityProbe::new())
            .run()
            .unwrap();
        assert_eq!(report.cycles(), 0);
        assert_eq!(report.total_transitions(), 0);
        assert!(format!("{report:?}").contains("SessionReport"));
    }

    #[test]
    fn invalid_netlist_fails_at_run() {
        let mut nl = Netlist::new("bad");
        let floating = nl.add_net("floating");
        let y = nl.inv(floating, "y");
        nl.mark_output(y);
        let err = SimSession::new(&nl)
            .probe(ActivityProbe::new())
            .run()
            .unwrap_err();
        assert!(matches!(err.error, SimError::InvalidNetlist(_)));
        // The probes come back even though the simulator never ran.
        assert_eq!(err.report.probe_count(), 1);
        assert!(!SimError::from(err).to_string().is_empty());
    }

    #[test]
    fn failed_run_keeps_the_cycles_observed_so_far() {
        // An inverter chain that needs 5 time units against a budget of 3:
        // the first (empty) cycle settles instantly, the second errors.
        let mut nl = Netlist::new("slow");
        let a = nl.add_input("a");
        let mut cur = a;
        for i in 0..5 {
            cur = nl.inv(cur, &format!("i{i}"));
        }
        nl.mark_output(cur);
        let options = crate::SimOptions {
            settle_budget: 3,
            ..Default::default()
        };
        let err = SimSession::new(&nl)
            .options(options)
            .probe(ActivityProbe::new())
            .probe(VcdProbe::default())
            .stimulus([InputAssignment::new(), InputAssignment::new().with(a, true)])
            .run()
            .unwrap_err();
        assert!(matches!(err.error, SimError::DidNotSettle { .. }));
        assert!(err.to_string().contains("1 complete cycles"));
        let report = err.report;
        assert_eq!(report.cycles(), 1, "one cycle completed before failing");
        assert_eq!(report.cycle_stats().len(), 1);
        // The probes survived and ran their on_run_end hooks: the activity
        // trace covers the completed cycle only, and the VCD is rendered.
        let trace = report.probe::<ActivityProbe>().unwrap().trace();
        assert_eq!(trace.cycles(), 1);
        assert!(report.probe::<VcdProbe>().unwrap().vcd().is_some());
    }

    #[test]
    fn failed_cycle_does_not_leak_counts_into_the_next_one() {
        // A fast path (one inverter) next to a slow path (a deep chain)
        // that busts the settle budget when its input leaves X. The failed
        // cycle makes *countable* transitions on the fast path before the
        // slow path errors; they must not leak into the next recorded
        // cycle.
        let mut nl = Netlist::new("leak");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let fast = nl.inv(a, "fast");
        nl.mark_output(fast);
        let mut cur = b;
        for i in 0..5 {
            cur = nl.inv(cur, &format!("i{i}"));
        }
        nl.mark_output(cur);
        let options = crate::SimOptions {
            settle_budget: 3,
            ..Default::default()
        };
        let mut sim = ClockedSimulator::with_options(&nl, crate::UnitDelay, options).unwrap();
        sim.attach_probe(Box::new(ActivityProbe::new()));
        // Cycle 1: only the fast path initialises out of X; settles at t=1.
        sim.step(InputAssignment::new().with(a, true)).unwrap();
        // Cycle 2: the fast path toggles (counted at t=0/t=1) and the slow
        // path's X-propagation exceeds the budget — the cycle errors.
        let err = sim
            .step(InputAssignment::new().with(a, false).with(b, true))
            .unwrap_err();
        assert!(matches!(err, SimError::DidNotSettle { .. }));
        // Cycle 3: nothing changes; settles instantly with zero activity.
        sim.step(InputAssignment::new()).unwrap();
        let probe = sim.probe_ref::<ActivityProbe>().unwrap();
        assert_eq!(probe.trace().cycles(), 2, "only completed cycles record");
        assert_eq!(
            probe.trace().totals().transitions,
            0,
            "the failed cycle's partial transitions must not be recorded"
        );
        assert_eq!(probe.rising_transitions(fast), 0);
    }
}
