//! Cell delay models.
//!
//! A delay model maps `(cell kind, output pin)` to an integer propagation
//! delay in abstract delay units. The unit-delay model is the paper's
//! work-horse; [`CellDelay`] allows the Table 2 experiment where a full
//! adder's sum output is twice as slow as its carry output.

use std::collections::HashMap;

use glitch_netlist::CellKind;

/// Maps a cell kind and output pin to a propagation delay.
///
/// Implementations must be pure functions of their arguments: the simulator
/// may query them repeatedly and in any order.
pub trait DelayModel {
    /// Propagation delay, in delay units, from any input of a cell of `kind`
    /// to its output pin `output`.
    ///
    /// A delay of 0 is legal (the new value is applied in the same time step
    /// via a delta-cycle style re-evaluation).
    fn delay(&self, kind: CellKind, output: usize) -> u64;
}

/// Every combinational cell has a delay of exactly one unit — the model the
/// paper uses for its gate-level experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnitDelay;

impl DelayModel for UnitDelay {
    fn delay(&self, kind: CellKind, _output: usize) -> u64 {
        match kind {
            CellKind::Const(_) => 0,
            _ => 1,
        }
    }
}

/// Every cell has zero delay: the circuit settles instantly, so no glitches
/// can occur. Useful as the "perfectly balanced" reference.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ZeroDelay;

impl DelayModel for ZeroDelay {
    fn delay(&self, _kind: CellKind, _output: usize) -> u64 {
        0
    }
}

/// The canonical decomposition of a [`CellDelay`] table: `(default,
/// by-kind entries, by-kind-output entries)`, sorted.
pub(crate) type CellDelayParts = (u64, Vec<(CellKind, u64)>, Vec<(CellKind, usize, u64)>);

/// A configurable per-kind, per-output delay table.
///
/// Unspecified kinds fall back to the default delay (one unit). The full
/// adder's two outputs can be given independent delays, which is how the
/// paper models the realistic `d_sum = 2 * d_carry` case of Table 2.
///
/// ```
/// use glitch_netlist::CellKind;
/// use glitch_sim::{CellDelay, DelayModel};
///
/// let model = CellDelay::new()
///     .with_kind(CellKind::Xor, 2)
///     .with_full_adder(2, 1); // d_sum = 2 * d_carry
/// assert_eq!(model.delay(CellKind::FullAdder, 0), 2);
/// assert_eq!(model.delay(CellKind::FullAdder, 1), 1);
/// assert_eq!(model.delay(CellKind::And, 0), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellDelay {
    default: u64,
    by_kind: HashMap<CellKind, u64>,
    by_kind_output: HashMap<(CellKind, usize), u64>,
}

impl Default for CellDelay {
    fn default() -> Self {
        Self::new()
    }
}

impl CellDelay {
    /// A table where every cell defaults to one delay unit.
    #[must_use]
    pub fn new() -> Self {
        CellDelay {
            default: 1,
            by_kind: HashMap::new(),
            by_kind_output: HashMap::new(),
        }
    }

    /// Changes the fallback delay used for kinds without an explicit entry.
    #[must_use]
    pub fn with_default(mut self, delay: u64) -> Self {
        self.default = delay;
        self
    }

    /// Sets the delay of every output of the given kind.
    #[must_use]
    pub fn with_kind(mut self, kind: CellKind, delay: u64) -> Self {
        self.by_kind.insert(kind, delay);
        self
    }

    /// Sets the delay of one particular output pin of a kind.
    #[must_use]
    pub fn with_output(mut self, kind: CellKind, output: usize, delay: u64) -> Self {
        self.by_kind_output.insert((kind, output), delay);
        self
    }

    /// Convenience for the paper's Table 2: sets the full-adder and
    /// half-adder sum delay (output 0) and carry delay (output 1)
    /// independently.
    #[must_use]
    pub fn with_full_adder(self, sum_delay: u64, carry_delay: u64) -> Self {
        self.with_output(CellKind::FullAdder, 0, sum_delay)
            .with_output(CellKind::FullAdder, 1, carry_delay)
            .with_output(CellKind::HalfAdder, 0, sum_delay)
            .with_output(CellKind::HalfAdder, 1, carry_delay)
    }

    /// The unbalanced multiplier-cell model of Table 2 (`d_sum = 2·d_carry`).
    #[must_use]
    pub fn realistic_adder_cells() -> Self {
        CellDelay::new().with_full_adder(2, 1)
    }

    /// Decomposes the table into `(default, by-kind entries, by-kind-output
    /// entries)` with the entries sorted — the canonical form baseline
    /// persistence serialises (sorting makes the bytes deterministic
    /// despite the hash maps).
    pub(crate) fn parts(&self) -> CellDelayParts {
        let mut by_kind: Vec<(CellKind, u64)> =
            self.by_kind.iter().map(|(&k, &d)| (k, d)).collect();
        by_kind.sort_by_key(|&(k, _)| format!("{k}"));
        let mut by_kind_output: Vec<(CellKind, usize, u64)> = self
            .by_kind_output
            .iter()
            .map(|(&(k, pin), &d)| (k, pin, d))
            .collect();
        by_kind_output.sort_by_key(|&(k, pin, _)| (format!("{k}"), pin));
        (self.default, by_kind, by_kind_output)
    }
}

impl DelayModel for CellDelay {
    fn delay(&self, kind: CellKind, output: usize) -> u64 {
        if let Some(&d) = self.by_kind_output.get(&(kind, output)) {
            return d;
        }
        if let Some(&d) = self.by_kind.get(&kind) {
            return d;
        }
        match kind {
            CellKind::Const(_) => 0,
            _ => self.default,
        }
    }
}

// Allow passing delay models by reference.
impl<D: DelayModel + ?Sized> DelayModel for &D {
    fn delay(&self, kind: CellKind, output: usize) -> u64 {
        (**self).delay(kind, output)
    }
}

// Allow passing boxed (type-erased) delay models; the simulator itself
// stores its model as `Box<dyn DelayModel>`.
impl<D: DelayModel + ?Sized> DelayModel for Box<D> {
    fn delay(&self, kind: CellKind, output: usize) -> u64 {
        (**self).delay(kind, output)
    }
}

/// A selectable delay-model configuration.
///
/// `DelayKind` is the data-only description of which [`DelayModel`] a run
/// should use — the form configs, CLIs and analysis flows pass around —
/// and [`DelayKind::into_model`] is the constructor that turns it into a
/// type-erased model the simulator can own. This is what makes the model
/// swappable without making every consumer generic.
///
/// ```
/// use glitch_netlist::CellKind;
/// use glitch_sim::{DelayKind, DelayModel};
///
/// let model = DelayKind::RealisticAdderCells.into_model();
/// assert_eq!(model.delay(CellKind::FullAdder, 0), 2);
/// assert_eq!(model.delay(CellKind::FullAdder, 1), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum DelayKind {
    /// One delay unit per cell — the paper's standard model.
    #[default]
    Unit,
    /// Zero delay everywhere: the glitch-free reference ("all delay paths
    /// balanced").
    Zero,
    /// Compound adder cells with `d_sum = 2 · d_carry` (Table 2).
    RealisticAdderCells,
    /// A fully custom per-cell delay table.
    Custom(CellDelay),
}

impl DelayKind {
    /// Builds the described delay model as a boxed trait object.
    #[must_use]
    pub fn into_model(self) -> Box<dyn DelayModel> {
        match self {
            DelayKind::Unit => Box::new(UnitDelay),
            DelayKind::Zero => Box::new(ZeroDelay),
            DelayKind::RealisticAdderCells => Box::new(CellDelay::realistic_adder_cells()),
            DelayKind::Custom(model) => Box::new(model),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_delay_is_one_except_constants() {
        assert_eq!(UnitDelay.delay(CellKind::And, 0), 1);
        assert_eq!(UnitDelay.delay(CellKind::FullAdder, 1), 1);
        assert_eq!(UnitDelay.delay(CellKind::Const(true), 0), 0);
    }

    #[test]
    fn zero_delay_is_zero() {
        assert_eq!(ZeroDelay.delay(CellKind::Xor, 0), 0);
        assert_eq!(ZeroDelay.delay(CellKind::FullAdder, 1), 0);
    }

    #[test]
    fn cell_delay_lookup_precedence() {
        let model = CellDelay::new()
            .with_default(3)
            .with_kind(CellKind::FullAdder, 5)
            .with_output(CellKind::FullAdder, 0, 7);
        // Per-output beats per-kind beats default.
        assert_eq!(model.delay(CellKind::FullAdder, 0), 7);
        assert_eq!(model.delay(CellKind::FullAdder, 1), 5);
        assert_eq!(model.delay(CellKind::And, 0), 3);
        assert_eq!(model.delay(CellKind::Const(false), 0), 0);
    }

    #[test]
    fn realistic_adder_cells_match_table_2() {
        let model = CellDelay::realistic_adder_cells();
        assert_eq!(model.delay(CellKind::FullAdder, 0), 2);
        assert_eq!(model.delay(CellKind::FullAdder, 1), 1);
        assert_eq!(model.delay(CellKind::HalfAdder, 0), 2);
        assert_eq!(model.delay(CellKind::HalfAdder, 1), 1);
        assert_eq!(model.delay(CellKind::Inv, 0), 1);
    }

    #[test]
    fn reference_forwarding() {
        let model = CellDelay::new();
        let by_ref: &dyn DelayModel = &model;
        assert_eq!(by_ref.delay(CellKind::And, 0), 1);
        assert_eq!(UnitDelay.delay(CellKind::And, 0), 1);
        let boxed: Box<dyn DelayModel> = Box::new(model);
        assert_eq!(boxed.delay(CellKind::And, 0), 1);
    }

    #[test]
    fn delay_kind_constructs_matching_models() {
        assert_eq!(DelayKind::Unit.into_model().delay(CellKind::Xor, 0), 1);
        assert_eq!(DelayKind::Zero.into_model().delay(CellKind::Xor, 0), 0);
        let adder = DelayKind::RealisticAdderCells.into_model();
        assert_eq!(adder.delay(CellKind::FullAdder, 0), 2);
        assert_eq!(adder.delay(CellKind::FullAdder, 1), 1);
        let custom = DelayKind::Custom(CellDelay::new().with_default(9)).into_model();
        assert_eq!(custom.delay(CellKind::And, 0), 9);
        assert_eq!(DelayKind::default(), DelayKind::Unit);
    }
}
