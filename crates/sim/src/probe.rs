//! The observer side of a simulation: the [`Probe`] trait and the built-in
//! probes.
//!
//! The paper's methodology is *simulate once, observe many things*: one
//! clocked run feeds transition counts (Fig. 5), glitch classification and
//! the capacitance-weighted power estimate (Table 3). A [`Probe`] is an
//! object-safe observer attached to a [`crate::SimSession`] (or directly to
//! a [`crate::ClockedSimulator`]): the simulator calls its hooks as the run
//! unfolds, and the probe accumulates whatever artefact it is responsible
//! for. Adding a new observable is a one-file probe, not a simulator fork.
//!
//! Built-in probes:
//!
//! * [`ActivityProbe`] — the per-net transition trace (useful/useless
//!   classification input);
//! * [`VcdProbe`] — a value-change dump for waveform viewers;
//! * [`PowerProbe`] — streaming switched-energy accumulation and the
//!   three-component power report;
//! * [`WaveCsvProbe`] — per-transition CSV rows for spreadsheet analysis.

use std::any::Any;
use std::fmt::Write as _;

use glitch_activity::ActivityTrace;
use glitch_netlist::{NetId, Netlist};
use glitch_power::{estimate_power_from_counts, CapacitanceModel, PowerReport, Technology};

use crate::clocked::CycleStats;
use crate::value::Value;
use crate::vcd::VcdRecorder;

/// What kind of net-value change a [`Transition`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransitionKind {
    /// A charging 0 → 1 transition.
    Rise,
    /// A discharging 1 → 0 transition.
    Fall,
    /// A change into or out of `X` — initialisation, not switching activity.
    Unknown,
}

impl TransitionKind {
    /// `true` for real switching activity (0→1 or 1→0); `false` for
    /// `X`-related initialisation changes.
    #[must_use]
    pub fn is_switching(self) -> bool {
        !matches!(self, TransitionKind::Unknown)
    }
}

/// One net-value change, as reported to [`Probe::on_transition`].
///
/// A net changes at most once per simulated time point; `value` is the value
/// the net settled to at `time` within `cycle`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// The net that changed.
    pub net: NetId,
    /// The clock cycle (0-based) in which the change happened.
    pub cycle: u64,
    /// The intra-cycle settle time (in delay units) of the change.
    pub time: u64,
    /// The new value of the net.
    pub value: Value,
    /// Rise, fall, or an `X`-related initialisation change.
    pub kind: TransitionKind,
}

/// An object-safe simulation observer.
///
/// Hooks are called in order: `on_run_start` once when the probe is
/// attached, then per cycle `on_cycle_start` → any number of
/// `on_transition` → `on_cycle_end`, and finally `on_run_end` once when the
/// probes are detached (a [`crate::SimSession`] does this automatically).
/// All hooks have empty default bodies, so a probe only implements what it
/// observes.
///
/// The `Any` supertrait lets a [`crate::SessionReport`] hand typed probes
/// back to the caller; see [`crate::SessionReport::probe`]. The `Send`
/// supertrait lets finished probes travel back from worker threads, which
/// is what makes sharded parallel execution
/// ([`crate::ParallelRunner`]) possible; probes are plain accumulators, so
/// this costs implementations nothing.
///
/// ```
/// use glitch_netlist::Netlist;
/// use glitch_sim::{InputAssignment, Probe, SimSession, Transition};
///
/// /// Counts switching transitions — a complete custom probe.
/// #[derive(Default)]
/// struct ToggleCounter {
///     toggles: u64,
/// }
///
/// impl Probe for ToggleCounter {
///     fn on_transition(&mut self, transition: &Transition) {
///         if transition.kind.is_switching() {
///             self.toggles += 1;
///         }
///     }
/// }
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut nl = Netlist::new("demo");
/// let a = nl.add_input("a");
/// let y = nl.inv(a, "y");
/// nl.mark_output(y);
/// let report = SimSession::new(&nl)
///     .probe(ToggleCounter::default())
///     .stimulus((0..4).map(|i| InputAssignment::new().with(a, i % 2 == 0)))
///     .run()?;
/// assert!(report.probe::<ToggleCounter>().unwrap().toggles > 0);
/// # Ok(())
/// # }
/// ```
pub trait Probe: Any + Send {
    /// Called once, before any cycle, with the netlist under simulation.
    fn on_run_start(&mut self, _netlist: &Netlist) {}

    /// Called at the beginning of clock cycle `cycle` (0-based).
    fn on_cycle_start(&mut self, _cycle: u64) {}

    /// Called once per net-value change, in settle-time order within the
    /// cycle.
    fn on_transition(&mut self, _transition: &Transition) {}

    /// Called after the cycle's logic has settled, with its statistics.
    fn on_cycle_end(&mut self, _cycle: u64, _stats: &CycleStats) {}

    /// Called once after the last cycle; render final artefacts here.
    fn on_run_end(&mut self, _netlist: &Netlist) {}
}

/// A probe whose accumulated state can be folded with another instance's —
/// the reduction side of sharded parallel simulation.
///
/// A parallel run (see [`crate::ParallelRunner`]) gives every shard its own
/// fresh probe instance; once the shards finish, the per-shard probes are
/// folded pairwise with [`MergeableProbe::merge`] into one probe that is
/// indistinguishable from a probe that observed every shard serially,
/// *provided the shards are independent runs* (per-seed shards). The
/// built-in implementations ([`ActivityProbe`], [`PowerProbe`],
/// [`StatsProbe`], [`crate::WindowedActivityProbe`]) all guarantee that the
/// fold is exact: counts add, maxima combine, and derived reports are
/// recomputed from the merged counts.
///
/// Merging is defined on *finished* probes (after `on_run_end`); merge
/// order must not matter for the accumulated counts, which is what makes
/// the parallel fold deterministic when performed in shard order.
pub trait MergeableProbe: Probe + Sized {
    /// Folds `other`'s accumulated observations into `self`.
    ///
    /// Both probes must have observed the same netlist (or one of them must
    /// be freshly created and empty); implementations panic on shape
    /// mismatches, mirroring [`glitch_activity::ActivityTrace::merge`].
    fn merge(&mut self, other: Self);
}

// ---------------------------------------------------------------- activity

/// Accumulates the per-net transition trace — the observable behind every
/// useful/useless classification in the paper.
///
/// Replaces the `ActivityTrace` that used to be hardwired into the
/// simulator; attach it only when transition accounting is needed.
#[derive(Debug, Clone, Default)]
pub struct ActivityProbe {
    counts: Vec<u32>,
    pending_rising: Vec<u32>,
    rising: Vec<u64>,
    trace: ActivityTrace,
}

impl ActivityProbe {
    /// Creates an activity probe; sizing happens at run start.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated per-net transition trace.
    #[must_use]
    pub fn trace(&self) -> &ActivityTrace {
        &self.trace
    }

    /// Consumes the probe, returning the trace.
    #[must_use]
    pub fn into_trace(self) -> ActivityTrace {
        self.trace
    }

    /// Total power-consuming (0→1) transitions recorded on a net so far.
    #[must_use]
    pub fn rising_transitions(&self, net: NetId) -> u64 {
        self.rising.get(net.index()).copied().unwrap_or(0)
    }
}

impl Probe for ActivityProbe {
    fn on_run_start(&mut self, netlist: &Netlist) {
        let n = netlist.net_count();
        self.counts = vec![0; n];
        self.pending_rising = vec![0; n];
        self.rising = vec![0; n];
        self.trace = ActivityTrace::new(n);
    }

    // Per-cycle counts are cleared at cycle *start*, not end: a cycle that
    // errors mid-settle never reaches `on_cycle_end`, and its partial
    // counts must not leak into the next recorded cycle.
    fn on_cycle_start(&mut self, _cycle: u64) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.pending_rising.iter_mut().for_each(|c| *c = 0);
    }

    fn on_transition(&mut self, transition: &Transition) {
        match transition.kind {
            TransitionKind::Rise => {
                self.counts[transition.net.index()] += 1;
                self.pending_rising[transition.net.index()] += 1;
            }
            TransitionKind::Fall => {
                self.counts[transition.net.index()] += 1;
            }
            TransitionKind::Unknown => {}
        }
    }

    fn on_cycle_end(&mut self, _cycle: u64, _stats: &CycleStats) {
        self.trace.record_cycle(&self.counts);
        for (total, &pending) in self.rising.iter_mut().zip(&self.pending_rising) {
            *total += u64::from(pending);
        }
    }
}

impl MergeableProbe for ActivityProbe {
    /// Folds another shard's trace and rising-transition totals into this
    /// probe. The merged trace equals the trace a single probe would have
    /// accumulated observing both runs back to back.
    fn merge(&mut self, other: ActivityProbe) {
        if self.rising.is_empty() {
            // `self` never ran; adopt the other probe wholesale.
            *self = other;
            return;
        }
        if other.rising.is_empty() {
            return;
        }
        assert_eq!(
            self.rising.len(),
            other.rising.len(),
            "cannot merge activity probes of different netlists"
        );
        self.trace.merge(&other.trace);
        for (total, theirs) in self.rising.iter_mut().zip(&other.rising) {
            *total += theirs;
        }
    }
}

// --------------------------------------------------------------------- vcd

/// Records every net-value change (including `X` initialisation) as a VCD
/// waveform; the standard-format text is rendered at run end.
#[derive(Debug, Clone)]
pub struct VcdProbe {
    recorder: VcdRecorder,
    text: Option<String>,
}

impl Default for VcdProbe {
    fn default() -> Self {
        VcdProbe::new(VcdRecorder::default())
    }
}

impl VcdProbe {
    /// Wraps a configured [`VcdRecorder`] (e.g. with a custom cycle period).
    #[must_use]
    pub fn new(recorder: VcdRecorder) -> Self {
        VcdProbe {
            recorder,
            text: None,
        }
    }

    /// Number of value changes recorded so far.
    #[must_use]
    pub fn change_count(&self) -> usize {
        self.recorder.change_count()
    }

    /// The rendered VCD text; `None` until the run has ended.
    #[must_use]
    pub fn vcd(&self) -> Option<&str> {
        self.text.as_deref()
    }

    /// Consumes the probe, returning the rendered VCD text.
    ///
    /// # Panics
    ///
    /// Panics if the run has not ended (no `on_run_end` yet).
    #[must_use]
    pub fn into_vcd(self) -> String {
        self.text
            .expect("VcdProbe::into_vcd called before the run ended")
    }
}

impl Probe for VcdProbe {
    fn on_transition(&mut self, transition: &Transition) {
        self.recorder.change(
            transition.cycle,
            transition.time,
            transition.net,
            transition.value,
        );
    }

    fn on_run_end(&mut self, netlist: &Netlist) {
        self.text = Some(self.recorder.to_vcd(netlist));
    }
}

// ------------------------------------------------------------------- power

/// Streams per-transition switched energy and produces the paper's
/// three-component power report at run end.
///
/// Energy accounting mirrors `glitch_power::estimate_power`: every switching
/// transition on a net that is neither a primary input nor a flipflop output
/// charges or discharges that net's load capacitance at a cost of
/// `½·C·V²`; the final report is numerically identical to the trace-based
/// estimate.
#[derive(Debug, Clone)]
pub struct PowerProbe {
    tech: Technology,
    frequency: f64,
    counts: Vec<u64>,
    pending_counts: Vec<u32>,
    pending_energy: f64,
    caps: Vec<f64>,
    eligible: Vec<bool>,
    flipflops: usize,
    cycles: u64,
    energy_joules: f64,
    report: Option<PowerReport>,
}

impl PowerProbe {
    /// Creates a power probe for a technology and clock frequency (hertz).
    #[must_use]
    pub fn new(tech: Technology, frequency: f64) -> Self {
        PowerProbe {
            tech,
            frequency,
            counts: Vec::new(),
            pending_counts: Vec::new(),
            pending_energy: 0.0,
            caps: Vec::new(),
            eligible: Vec::new(),
            flipflops: 0,
            cycles: 0,
            energy_joules: 0.0,
            report: None,
        }
    }

    /// Recomputes the power report from the accumulated counts using the
    /// capacitance and eligibility tables captured at run start. Delegates
    /// to `glitch_power::estimate_power_from_parts` — the same single
    /// implementation `estimate_power_from_counts` funnels through — so a
    /// merged probe's report is bit-identical to the report a single run
    /// over the combined activity would have produced.
    fn compute_report(&self) -> PowerReport {
        glitch_power::estimate_power_from_parts(
            &self.counts,
            &self.caps,
            &self.eligible,
            self.flipflops,
            self.cycles,
            &self.tech,
            self.frequency,
        )
    }

    /// Switched energy in the combinational logic so far, in joules.
    #[must_use]
    pub fn energy_joules(&self) -> f64 {
        self.energy_joules
    }

    /// The finished power report; `None` until the run has ended.
    #[must_use]
    pub fn report(&self) -> Option<&PowerReport> {
        self.report.as_ref()
    }

    /// Consumes the probe, returning the power report.
    ///
    /// # Panics
    ///
    /// Panics if the run has not ended (no `on_run_end` yet).
    #[must_use]
    pub fn into_report(self) -> PowerReport {
        self.report
            .expect("PowerProbe::into_report called before the run ended")
    }
}

impl Probe for PowerProbe {
    fn on_run_start(&mut self, netlist: &Netlist) {
        let n = netlist.net_count();
        self.counts = vec![0; n];
        self.pending_counts = vec![0; n];
        self.pending_energy = 0.0;
        self.cycles = 0;
        self.energy_joules = 0.0;
        self.report = None;
        let caps = CapacitanceModel::new(netlist, self.tech);
        self.caps = netlist
            .nets()
            .map(|(id, _)| caps.net_capacitance(id))
            .collect();
        // Primary inputs are driven by the environment; flipflop output nets
        // are covered by the per-flipflop power figure.
        self.eligible = netlist
            .nets()
            .map(|(_, net)| !net.is_primary_input())
            .collect();
        for cell_id in netlist.dff_cells() {
            for &out in netlist.cell(cell_id).outputs() {
                self.eligible[out.index()] = false;
            }
        }
        self.flipflops = netlist.dff_count();
    }

    // Like the activity probe, transitions are staged per cycle and only
    // committed in `on_cycle_end`, so a cycle that errors mid-settle does
    // not inflate the energy accounting.
    fn on_cycle_start(&mut self, _cycle: u64) {
        self.pending_counts.iter_mut().for_each(|c| *c = 0);
        self.pending_energy = 0.0;
    }

    fn on_transition(&mut self, transition: &Transition) {
        if !transition.kind.is_switching() {
            return;
        }
        let idx = transition.net.index();
        self.pending_counts[idx] += 1;
        if self.eligible[idx] {
            self.pending_energy += 0.5 * self.caps[idx] * self.tech.vdd * self.tech.vdd;
        }
    }

    fn on_cycle_end(&mut self, _cycle: u64, _stats: &CycleStats) {
        for (total, &pending) in self.counts.iter_mut().zip(&self.pending_counts) {
            *total += u64::from(pending);
        }
        self.energy_joules += self.pending_energy;
        self.cycles += 1;
    }

    fn on_run_end(&mut self, netlist: &Netlist) {
        self.report = Some(estimate_power_from_counts(
            netlist,
            &self.counts,
            self.cycles,
            &self.tech,
            self.frequency,
        ));
    }
}

impl MergeableProbe for PowerProbe {
    /// Folds another shard's transition counts, cycle count and streamed
    /// energy into this probe and recomputes the report over the combined
    /// activity. The merged report equals
    /// `glitch_power::estimate_power_from_counts` over the summed counts
    /// bit for bit (covered by `tests/parallel.rs`).
    ///
    /// # Panics
    ///
    /// Panics if the probes observed netlists of different sizes or were
    /// configured with different technologies or clock frequencies.
    fn merge(&mut self, other: PowerProbe) {
        if self.counts.is_empty() {
            *self = other;
            return;
        }
        if other.counts.is_empty() {
            return;
        }
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "cannot merge power probes of different netlists"
        );
        assert!(
            self.tech == other.tech && self.frequency == other.frequency,
            "cannot merge power probes with different operating points"
        );
        for (total, &theirs) in self.counts.iter_mut().zip(&other.counts) {
            *total += theirs;
        }
        self.cycles += other.cycles;
        self.energy_joules += other.energy_joules;
        self.report = Some(self.compute_report());
    }
}

// ------------------------------------------------------------------- stats

/// Accumulates whole-run cycle statistics: cycle, transition and event
/// totals plus the worst settle time — the mergeable counterpart of
/// [`crate::SessionReport::cycle_stats`] for sharded runs, at `O(1)` memory
/// instead of one [`CycleStats`] per cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsProbe {
    cycles: u64,
    transitions: u64,
    events: u64,
    cell_evals: u64,
    max_settle_time: u64,
}

impl StatsProbe {
    /// Creates an empty statistics probe.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of completed cycles observed.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total signal transitions over all observed cycles.
    #[must_use]
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Total simulator events over all observed cycles.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Total combinational cell evaluations over all observed cycles — the
    /// work metric the incremental layer reports its savings against.
    #[must_use]
    pub fn cell_evals(&self) -> u64 {
        self.cell_evals
    }

    /// The worst intra-cycle settle time observed.
    #[must_use]
    pub fn max_settle_time(&self) -> u64 {
        self.max_settle_time
    }
}

impl Probe for StatsProbe {
    fn on_cycle_end(&mut self, _cycle: u64, stats: &CycleStats) {
        self.cycles += 1;
        self.transitions += stats.transitions;
        self.events += stats.events;
        self.cell_evals += stats.cell_evals;
        self.max_settle_time = self.max_settle_time.max(stats.settle_time);
    }
}

impl MergeableProbe for StatsProbe {
    fn merge(&mut self, other: StatsProbe) {
        self.cycles += other.cycles;
        self.transitions += other.transitions;
        self.events += other.events;
        self.cell_evals += other.cell_evals;
        self.max_settle_time = self.max_settle_time.max(other.max_settle_time);
    }
}

// --------------------------------------------------------------- wave csv

/// Records every transition as a CSV row
/// (`cycle,time,net,value,kind`), rendered with net names at run end.
#[derive(Debug, Clone, Default)]
pub struct WaveCsvProbe {
    events: Vec<Transition>,
    text: Option<String>,
}

impl WaveCsvProbe {
    /// Creates an empty wave-CSV probe.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded transitions.
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.events.len()
    }

    /// The rendered CSV text; `None` until the run has ended.
    #[must_use]
    pub fn csv(&self) -> Option<&str> {
        self.text.as_deref()
    }

    /// Consumes the probe, returning the rendered CSV text.
    ///
    /// # Panics
    ///
    /// Panics if the run has not ended (no `on_run_end` yet).
    #[must_use]
    pub fn into_csv(self) -> String {
        self.text
            .expect("WaveCsvProbe::into_csv called before the run ended")
    }
}

impl Probe for WaveCsvProbe {
    fn on_transition(&mut self, transition: &Transition) {
        self.events.push(*transition);
    }

    fn on_run_end(&mut self, netlist: &Netlist) {
        let mut out = String::from("cycle,time,net,value,kind\n");
        for event in &self.events {
            let kind = match event.kind {
                TransitionKind::Rise => "rise",
                TransitionKind::Fall => "fall",
                TransitionKind::Unknown => "init",
            };
            let _ = writeln!(
                out,
                "{},{},{},{},{}",
                event.cycle,
                event.time,
                csv_escape(netlist.net(event.net).name()),
                event.value,
                kind
            );
        }
        self.text = Some(out);
    }
}

/// Quotes a CSV field when it contains a delimiter, quote or newline.
fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clocked::InputAssignment;
    use crate::session::SimSession;

    fn inv_netlist() -> (Netlist, NetId, NetId) {
        let mut nl = Netlist::new("probe test");
        let a = nl.add_input("a");
        let y = nl.inv(a, "y");
        nl.mark_output(y);
        (nl, a, y)
    }

    fn toggling(a: NetId, cycles: u64) -> impl Iterator<Item = InputAssignment> {
        (0..cycles).map(move |i| InputAssignment::new().with(a, i % 2 == 0))
    }

    #[test]
    fn activity_probe_counts_switching_only() {
        let (nl, a, y) = inv_netlist();
        let report = SimSession::new(&nl)
            .probe(ActivityProbe::new())
            .stimulus(toggling(a, 4))
            .run()
            .unwrap();
        let probe = report.probe::<ActivityProbe>().unwrap();
        // Cycle 1 initialises out of X (uncounted); cycles 2..4 each toggle.
        assert_eq!(probe.trace().node(y.index()).transitions(), 3);
        assert_eq!(probe.trace().cycles(), 4);
        assert!(probe.rising_transitions(y) >= 1);
    }

    #[test]
    fn vcd_probe_records_all_changes_and_renders_at_run_end() {
        let (nl, a, _) = inv_netlist();
        let report = SimSession::new(&nl)
            .probe(VcdProbe::default())
            .stimulus(toggling(a, 3))
            .run()
            .unwrap();
        let probe = report.probe::<VcdProbe>().unwrap();
        // a and y each change every cycle (the first is X-initialisation).
        assert_eq!(probe.change_count(), 6);
        let text = probe.vcd().expect("rendered after run end");
        assert!(text.contains("$enddefinitions"));
    }

    #[test]
    fn power_probe_streams_energy_and_reports() {
        let (nl, a, _) = inv_netlist();
        let tech = Technology::cmos_0p8um_5v();
        let report = SimSession::new(&nl)
            .probe(PowerProbe::new(tech, 5e6))
            .stimulus(toggling(a, 10))
            .run()
            .unwrap();
        let probe = report.probe::<PowerProbe>().unwrap();
        assert!(probe.energy_joules() > 0.0);
        let power = probe.report().expect("report after run end");
        assert!(power.breakdown.logic > 0.0);
        assert_eq!(power.cycles, 10);
        // Streaming energy equals the report's per-cycle switched
        // capacitance scaled back to joules.
        let expected = power.switched_cap_per_cycle * tech.vdd * tech.vdd * power.cycles as f64;
        assert!((probe.energy_joules() - expected).abs() <= 1e-12 * expected.abs());
    }

    #[test]
    fn wave_csv_probe_renders_named_rows() {
        let (nl, a, _) = inv_netlist();
        let report = SimSession::new(&nl)
            .probe(WaveCsvProbe::new())
            .stimulus(toggling(a, 2))
            .run()
            .unwrap();
        let probe = report.probe::<WaveCsvProbe>().unwrap();
        assert_eq!(probe.row_count(), 4);
        let csv = probe.csv().unwrap();
        assert!(csv.starts_with("cycle,time,net,value,kind\n"));
        assert!(csv.contains(",a,"));
        assert!(csv.contains(",y,"));
        assert!(csv.contains("init"));
        assert!(csv.contains("rise") || csv.contains("fall"));
    }

    #[test]
    fn csv_escape_quotes_delimiters() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("q\"q"), "\"q\"\"q\"");
    }
}
