//! Lane-packed execution of parallel job batches on the compiled
//! bit-parallel kernel (`glitch_kernel`), plus the session-level glue that
//! lets the event-driven engine skip cycles the kernel proved quiet.
//!
//! Two entry points:
//!
//! * [`kernel_prepass`] — runs a whole `&[SimJob]` batch through the
//!   kernel at once (job `i` occupies lane `i`), recording which cycles of
//!   which lanes are *functionally quiet* — no primary input or flipflop
//!   output changes at the cycle boundary, so the event-driven engine
//!   would schedule zero events — and which nets changed at all per lane.
//!   The hybrid engine feeds the quiet flags back into the same jobs via
//!   [`SimJob::with_quiet_cycles`], so the expensive timed settle only
//!   runs on the cycles that can produce events, with bit-identical
//!   results.
//! * [`run_kernel_jobs`] — the pure-kernel engine: one [`SessionReport`]
//!   per job with the standard probe set attached, and no event queue
//!   anywhere. Semantics are functional (zero delay): activity, power and
//!   per-cycle transition counts equal a [`crate::DelayKind::Zero`] queue
//!   run bit for bit, while `events` counts changed nets and `cell_evals`
//!   counts straight-line kernel ops per cycle (there is no queue traffic
//!   to count, and the job's delay model is ignored).
//!
//! ## Why a quiet cycle may be skipped
//!
//! The event-driven [`crate::ClockedSimulator`] schedules work at a cycle
//! boundary only for nets whose scheduled value differs from their
//! currently pending value: constants (settled after cycle 0), primary
//! inputs, and flipflop Q outputs. If every one of those *source nets*
//! keeps its end-of-previous-cycle value, the queue stays empty and the
//! cycle's statistics are exactly [`CycleStats::default()`] with zero
//! queue traffic — which is precisely what replaying an empty cycle
//! produces. The kernel evaluates the same source nets functionally, so
//! the comparison is sound for any delay model; cycle 0 is never quiet
//! (constant drivers and `X`-initialisation fire there).

use std::sync::Arc;

use glitch_kernel::{EvalMode, KernelProgram, KernelState};
use glitch_netlist::{NetId, Netlist, Tri};

use crate::clocked::{CycleStats, InputAssignment, XEval};
use crate::error::SimError;
use crate::parallel::SimJob;
use crate::probe::{ActivityProbe, PowerProbe, Probe, StatsProbe, Transition, TransitionKind};
use crate::session::SessionReport;
use crate::stimulus::{RandomStimulus, StimulusProgram};
use crate::value::Value;

/// Maps the event-driven simulator's X-evaluation policy onto the
/// kernel's plane-formula mode. The two pairs are pinned bit-identical by
/// the kernel crate's exhaustive tests.
#[must_use]
pub fn kernel_eval_mode(x_eval: XEval) -> EvalMode {
    match x_eval {
        XEval::Coarse => EvalMode::Coarse,
        XEval::TriTable => EvalMode::TriTable,
    }
}

/// The result of a lane-packed functional prepass over a job batch: which
/// cycles of which jobs are provably quiet, which nets changed at all,
/// and the batch's functional activity totals.
#[derive(Debug, Clone)]
pub struct KernelPrepass {
    lanes: usize,
    words: usize,
    cycles: u64,
    quiet: Vec<Arc<Vec<bool>>>,
    quiet_count: u64,
    /// Lane masks of nets that changed in at least one cycle, word-major
    /// per net (same layout as [`KernelState`] planes).
    changed: Vec<u64>,
    transitions: u64,
    cell_evals: u64,
}

impl KernelPrepass {
    /// Number of lanes (jobs) the prepass covered.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Cycles simulated per lane.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The per-cycle quiet flags of one lane, shareable with
    /// [`SimJob::with_quiet_cycles`] without copying.
    #[must_use]
    pub fn quiet_cycles(&self, lane: usize) -> Arc<Vec<bool>> {
        Arc::clone(&self.quiet[lane])
    }

    /// Total quiet `(lane, cycle)` pairs across the batch.
    #[must_use]
    pub fn quiet_cycle_count(&self) -> u64 {
        self.quiet_count
    }

    /// Total `(lane, cycle)` pairs across the batch.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.lanes as u64 * self.cycles
    }

    /// Did `net` change value in any cycle of `lane` after the
    /// initialisation transient (cycle 0, in which every net leaves its
    /// reset state)? `false` means the net was provably inert for the rest
    /// of that job: under *any* delay assignment the event-driven engine
    /// cannot produce a post-reset transition on it.
    #[must_use]
    pub fn net_changed(&self, net: NetId, lane: usize) -> bool {
        debug_assert!(lane < self.lanes);
        let word = self.changed[net.index() * self.words + lane / 64];
        word >> (lane % 64) & 1 == 1
    }

    /// Total functional (zero-delay) switching transitions across all
    /// lanes and cycles, counted with word-wide popcounts.
    #[must_use]
    pub fn functional_transitions(&self) -> u64 {
        self.transitions
    }

    /// Total kernel op evaluations performed (`op_count × lanes ×
    /// cycles`) — the work metric to compare against the queue engine's
    /// `cell_evals`.
    #[must_use]
    pub fn functional_cell_evals(&self) -> u64 {
        self.cell_evals
    }
}

/// Per-lane random stimuli mirroring [`SimJob`]'s own construction, so a
/// lane draws exactly the vectors the job's queue session would draw.
fn build_stimuli(jobs: &[SimJob<'_>]) -> Vec<RandomStimulus> {
    jobs.iter()
        .map(|job| {
            let mut stimulus = RandomStimulus::new(job.random_buses.clone(), job.cycles, job.seed);
            for &(net, value) in &job.held {
                stimulus = stimulus.hold(net, value);
            }
            stimulus
        })
        .collect()
}

/// Draws every lane's next input vector and applies it to the state.
/// Returns the assignments for callers that need them afterwards.
fn apply_stimuli(
    netlist: &Netlist,
    stimuli: &mut [RandomStimulus],
    state: &mut KernelState,
) -> Result<(), SimError> {
    for (lane, stimulus) in stimuli.iter_mut().enumerate() {
        let Some(assignment) = stimulus.next_vector() else {
            continue;
        };
        apply_assignment(netlist, &assignment, state, lane)?;
    }
    Ok(())
}

fn apply_assignment(
    netlist: &Netlist,
    assignment: &InputAssignment,
    state: &mut KernelState,
    lane: usize,
) -> Result<(), SimError> {
    for &(net, value) in assignment.assignments() {
        if !netlist.net(net).is_primary_input() {
            return Err(SimError::NotAnInput(net));
        }
        state.set_bool(net, lane, value);
    }
    Ok(())
}

/// Checks the batch is uniform in the fields the lane-packed kernel state
/// shares across lanes. The drivers in `glitch-core` always build uniform
/// batches; heterogeneous ones must fall back to per-job sessions.
fn assert_uniform(jobs: &[SimJob<'_>]) {
    assert!(!jobs.is_empty(), "kernel batches need at least one job");
    let first = &jobs[0];
    assert!(
        jobs.iter()
            .all(|j| j.cycles == first.cycles && j.options == first.options),
        "kernel batches must share cycle count and simulator options"
    );
}

/// Runs a uniform job batch through the compiled kernel, lane-packed, and
/// classifies every `(job, cycle)` pair as provably quiet or possibly
/// active. See the module documentation for the soundness argument.
///
/// # Errors
///
/// Returns [`SimError::NotAnInput`] if a job drives a non-input net.
///
/// # Panics
///
/// Panics if the batch is empty or the jobs disagree on cycle count or
/// simulator options (the lane-packed state shares both across lanes).
pub fn kernel_prepass(
    netlist: &Netlist,
    program: &KernelProgram,
    jobs: &[SimJob<'_>],
) -> Result<KernelPrepass, SimError> {
    assert_uniform(jobs);
    let options = jobs[0].options;
    let cycles = jobs[0].cycles;
    let lanes = jobs.len();
    let mode = kernel_eval_mode(options.x_eval);
    let mut state = program.new_state(lanes, Tri::from(options.dff_init));
    let mut prev = state.clone();
    let words = state.words();
    let mut stimuli = build_stimuli(jobs);
    let n = netlist.net_count();
    let source: Vec<NetId> = program.source_nets().collect();
    let mut changed = vec![0u64; n * words];
    let mut quiet: Vec<Vec<bool>> = vec![Vec::with_capacity(cycles as usize); lanes];
    let mut quiet_mask = vec![0u64; words];
    let mut quiet_count = 0u64;
    let mut transitions = 0u64;
    for cycle in 0..cycles {
        program.begin_cycle(&mut state);
        apply_stimuli(netlist, &mut stimuli, &mut state)?;
        if cycle == 0 {
            // Constant drivers and X-initialisation fire in cycle 0; it is
            // never quiet.
            quiet_mask.fill(0);
        } else {
            for (w, mask) in quiet_mask.iter_mut().enumerate() {
                *mask = state.word_mask(w);
            }
            for &net in &source {
                for (w, mask) in quiet_mask.iter_mut().enumerate() {
                    *mask &= !state.diff_word(&prev, net, w);
                }
            }
        }
        program.eval(&mut state, mode);
        let (pv, pm) = (prev.val_planes(), prev.msk_planes());
        let (cv, cm) = (state.val_planes(), state.msk_planes());
        for i in 0..n * words {
            // The `changed` masks classify post-reset inertness, so the
            // cycle-0 transient (every net leaves its reset state) is
            // excluded; the transition popcount covers every cycle.
            if cycle > 0 {
                changed[i] |= (pv[i] ^ cv[i]) | (pm[i] ^ cm[i]);
            }
            // Known in both cycles and toggled: a real switching transition.
            transitions += u64::from(((pv[i] ^ cv[i]) & !pm[i] & !cm[i]).count_ones());
        }
        for (lane, flags) in quiet.iter_mut().enumerate() {
            let is_quiet = quiet_mask[lane / 64] >> (lane % 64) & 1 == 1;
            flags.push(is_quiet);
            quiet_count += u64::from(is_quiet);
        }
        program.latch(&mut state);
        prev.clone_from(&state);
    }
    Ok(KernelPrepass {
        lanes,
        words,
        cycles,
        quiet: quiet.into_iter().map(Arc::new).collect(),
        quiet_count,
        changed,
        transitions,
        cell_evals: program.op_count() as u64 * lanes as u64 * cycles,
    })
}

/// Runs a uniform job batch entirely on the compiled kernel and returns
/// per-job [`SessionReport`]s carrying the standard probe set
/// ([`ActivityProbe`], [`PowerProbe`], [`StatsProbe`]) plus any probes the
/// factory supplies — the same shape
/// [`crate::ParallelRunner::run_sessions_with`] produces, so
/// [`crate::AggregateReport::reduce`] works unchanged.
///
/// Transitions are synthesised from per-cycle plane diffs in net-id order
/// at time 0: known→known changes count as rises/falls, changes into or
/// out of `X` are reported as [`TransitionKind::Unknown`] (uncounted),
/// mirroring [`Value::transitions_to`].
///
/// # Errors
///
/// Returns [`SimError::NotAnInput`] if a job drives a non-input net.
///
/// # Panics
///
/// Panics if the batch is empty or non-uniform (see [`kernel_prepass`]).
pub fn run_kernel_jobs(
    netlist: &Netlist,
    program: &KernelProgram,
    jobs: &[SimJob<'_>],
    extra_probes: &(dyn Fn(usize) -> Vec<Box<dyn Probe>> + Sync),
) -> Result<Vec<SessionReport>, SimError> {
    assert_uniform(jobs);
    let options = jobs[0].options;
    let cycles = jobs[0].cycles;
    let lanes = jobs.len();
    let mode = kernel_eval_mode(options.x_eval);
    let mut state = program.new_state(lanes, Tri::from(options.dff_init));
    let mut prev = state.clone();
    let mut stimuli = build_stimuli(jobs);
    let n = netlist.net_count();
    let op_count = program.op_count() as u64;

    let mut probes: Vec<Vec<Box<dyn Probe>>> = jobs
        .iter()
        .enumerate()
        .map(|(index, job)| {
            let mut set: Vec<Box<dyn Probe>> = vec![
                Box::new(ActivityProbe::new()),
                Box::new(PowerProbe::new(job.technology, job.frequency)),
                Box::new(StatsProbe::new()),
            ];
            set.extend(extra_probes(index));
            for probe in &mut set {
                probe.on_run_start(netlist);
            }
            set
        })
        .collect();
    let mut cycle_stats: Vec<Vec<CycleStats>> = vec![Vec::with_capacity(cycles as usize); lanes];

    for cycle in 0..cycles {
        program.begin_cycle(&mut state);
        apply_stimuli(netlist, &mut stimuli, &mut state)?;
        program.eval(&mut state, mode);
        for (lane, lane_probes) in probes.iter_mut().enumerate() {
            for probe in lane_probes.iter_mut() {
                probe.on_cycle_start(cycle);
            }
            let mut transitions = 0u64;
            let mut events = 0u64;
            for index in 0..n {
                let net = NetId::from_index(index);
                let old = Value::from(prev.get(net, lane));
                let new = Value::from(state.get(net, lane));
                if old == new {
                    continue;
                }
                events += 1;
                let kind = if old.transitions_to(new) {
                    transitions += 1;
                    if old.is_rising_to(new) {
                        TransitionKind::Rise
                    } else {
                        TransitionKind::Fall
                    }
                } else {
                    TransitionKind::Unknown
                };
                let event = Transition {
                    net,
                    cycle,
                    time: 0,
                    value: new,
                    kind,
                };
                for probe in lane_probes.iter_mut() {
                    probe.on_transition(&event);
                }
            }
            let stats = CycleStats {
                transitions,
                settle_time: 0,
                events,
                cell_evals: op_count,
            };
            for probe in lane_probes.iter_mut() {
                probe.on_cycle_end(cycle, &stats);
            }
            cycle_stats[lane].push(stats);
        }
        program.latch(&mut state);
        prev.clone_from(&state);
    }

    let mut reports = Vec::with_capacity(lanes);
    for (lane, (mut lane_probes, stats)) in probes.drain(..).zip(cycle_stats.drain(..)).enumerate()
    {
        for probe in &mut lane_probes {
            probe.on_run_end(netlist);
        }
        let final_values = (0..n)
            .map(|index| Value::from(state.get(NetId::from_index(index), lane)))
            .collect();
        reports.push(SessionReport::from_parts(
            cycles,
            stats,
            final_values,
            lane_probes,
        ));
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::DelayKind;
    use crate::parallel::{AggregateReport, ParallelRunner};
    use glitch_netlist::{Bus, Netlist};

    /// A small sequential netlist: registered XOR/AND mix with a constant.
    fn pipeline_netlist() -> (Netlist, Bus) {
        let mut nl = Netlist::new("kernel glue");
        let a = nl.add_input_bus("a", 4);
        let one = nl.constant(true, "one");
        let x0 = nl.xor2(a.bit(0), a.bit(1), "x0");
        let x1 = nl.and2(a.bit(2), one, "x1");
        let q0 = nl.dff(x0, "q0");
        let q1 = nl.dff(x1, "q1");
        let y = nl.or2(q0, q1, "y");
        let z = nl.xor2(y, a.bit(3), "z");
        nl.mark_output(z);
        (nl, a)
    }

    #[test]
    fn prepass_marks_held_input_cycles_quiet() {
        let (nl, a) = pipeline_netlist();
        let program = KernelProgram::compile(&nl).unwrap();
        // No random buses: every input held constant, so after the
        // initialisation transient every cycle is provably quiet.
        let job = SimJob::new(&nl, Vec::new(), 10, 1).with_held(vec![
            (a.bit(0), true),
            (a.bit(1), false),
            (a.bit(2), true),
            (a.bit(3), false),
        ]);
        let prepass = kernel_prepass(&nl, &program, std::slice::from_ref(&job)).unwrap();
        assert_eq!(prepass.lanes(), 1);
        assert_eq!(prepass.cycles(), 10);
        let quiet = prepass.quiet_cycles(0);
        assert!(!quiet[0], "cycle 0 is never quiet");
        assert!(!quiet[1], "flipflops still settle in cycle 1");
        assert!(quiet[3..].iter().all(|&q| q), "steady state is quiet");
        assert!(prepass.quiet_cycle_count() >= 7);
        assert_eq!(prepass.total_cycles(), 10);
        assert!(prepass.functional_cell_evals() > 0);
    }

    #[test]
    fn quiet_skip_is_bit_identical_to_the_full_queue_run() {
        let (nl, a) = pipeline_netlist();
        let program = KernelProgram::compile(&nl).unwrap();
        let jobs: Vec<SimJob<'_>> = (0..5)
            .map(|seed| SimJob::new(&nl, vec![a.clone()], 40, seed))
            .collect();
        let prepass = kernel_prepass(&nl, &program, &jobs).unwrap();
        let pruned: Vec<SimJob<'_>> = jobs
            .iter()
            .enumerate()
            .map(|(lane, job)| job.clone().with_quiet_cycles(prepass.quiet_cycles(lane)))
            .collect();
        let runner = ParallelRunner::new(1);
        let mut full = runner.run_sessions(&jobs).unwrap();
        let mut skipped = runner.run_sessions(&pruned).unwrap();
        for (f, s) in full.iter().zip(&skipped) {
            assert_eq!(f.cycle_stats(), s.cycle_stats());
            assert_eq!(f.queue_stats(), s.queue_stats());
        }
        let agg_full = AggregateReport::reduce(&nl, &jobs, &mut full);
        let agg_skip = AggregateReport::reduce(&nl, &pruned, &mut skipped);
        assert_eq!(agg_full, agg_skip);
    }

    #[test]
    fn pure_kernel_matches_a_zero_delay_queue_run() {
        let (nl, a) = pipeline_netlist();
        let program = KernelProgram::compile(&nl).unwrap();
        let jobs: Vec<SimJob<'_>> = (0..3)
            .map(|seed| SimJob::new(&nl, vec![a.clone()], 25, seed).with_delay(DelayKind::Zero))
            .collect();
        let mut queue = ParallelRunner::new(1).run_sessions(&jobs).unwrap();
        let mut kernel = run_kernel_jobs(&nl, &program, &jobs, &|_| Vec::new()).unwrap();
        for (q, k) in queue.iter().zip(&kernel) {
            assert_eq!(q.cycles(), k.cycles());
            // Per-cycle switching transitions agree exactly; events and
            // cell_evals are engine-specific work metrics.
            let q_trans: Vec<u64> = q.cycle_stats().iter().map(|s| s.transitions).collect();
            let k_trans: Vec<u64> = k.cycle_stats().iter().map(|s| s.transitions).collect();
            assert_eq!(q_trans, k_trans);
            for index in 0..nl.net_count() {
                let net = NetId::from_index(index);
                assert_eq!(q.net_value(net), k.net_value(net));
            }
        }
        // The merged activity and power artefacts agree bit for bit.
        let agg_q = AggregateReport::reduce(&nl, &jobs, &mut queue);
        let agg_k = AggregateReport::reduce(&nl, &jobs, &mut kernel);
        assert_eq!(agg_q.merged_trace(), agg_k.merged_trace());
        assert_eq!(agg_q.merged_totals(), agg_k.merged_totals());
        assert_eq!(agg_q.merged_power(), agg_k.merged_power());
    }

    #[test]
    fn kernel_jobs_reject_non_input_drives() {
        let mut nl = Netlist::new("bad drive");
        let a = nl.add_input("a");
        let y = nl.inv(a, "y");
        nl.mark_output(y);
        let program = KernelProgram::compile(&nl).unwrap();
        let job = SimJob::new(&nl, vec![Bus::new(vec![y])], 2, 0);
        let err = run_kernel_jobs(&nl, &program, std::slice::from_ref(&job), &|_| Vec::new())
            .unwrap_err();
        assert!(matches!(err, SimError::NotAnInput(_)));
    }
}
