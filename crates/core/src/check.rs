//! Verification entry points on [`GlitchAnalyzer`]: run a
//! [`glitch_verify::CheckSuite`] against the configured stimulus —
//! multi-seed parallel, baseline-recording, or incremental.
//!
//! Checking composes with the existing execution layers rather than
//! duplicating them: [`GlitchAnalyzer::check_seeds`] rides the sharded
//! parallel runner (one fresh checker set per seed, folded in seed
//! order, so the verdict is bit-identical at any `--jobs` count), and
//! [`GlitchAnalyzer::check_delta`] rides the incremental layer (checkers
//! re-run only on dirty cycles and replay the recorded stream verbatim on
//! clean ones, so the verdict is bit-identical to a full re-simulation of
//! the merged stimulus).

use glitch_netlist::{Bus, NetId, Netlist};
use glitch_sim::{
    DeltaStimulus, IncrementalSession, IncrementalStats, Probe, SessionReport, SimBaseline,
    SimError,
};
use glitch_verify::{CheckSuite, CheckerProbe, VerifyReport};

use crate::analyzer::{AggregateAnalysis, Analysis, GlitchAnalyzer};

/// Result of a multi-seed [`GlitchAnalyzer::check_seeds`] run: the merged
/// verification report plus the standard multi-seed analysis (the checkers
/// ride the same sessions, so both come from one simulation pass per
/// seed).
#[derive(Debug, Clone)]
pub struct CheckAnalysis {
    /// The merged verification report (deterministic seed-order fold).
    pub report: VerifyReport,
    /// The standard multi-seed activity/power aggregate of the same runs.
    pub analysis: AggregateAnalysis,
    /// Cumulative wall-clock time inside each checker's hooks, summed over
    /// seeds, as `(name, micros)` pairs. All zeros unless the suite was
    /// built with [`CheckSuite::with_timing`]. Telemetry only — never part
    /// of the determinism-checked report.
    pub checker_micros: Vec<(String, u64)>,
}

/// Result of an incremental [`GlitchAnalyzer::check_delta`] run.
#[derive(Debug, Clone)]
pub struct DeltaCheck {
    /// The verification report of the delta run — bit-identical to a full
    /// re-simulation of the merged stimulus.
    pub report: VerifyReport,
    /// Activity/power of the delta run.
    pub analysis: Analysis,
    /// Incremental work accounting (replayed cycles, cells re-evaluated).
    pub incremental: IncrementalStats,
}

impl GlitchAnalyzer {
    /// Runs the checker suite once per seed — fanned across `jobs` worker
    /// threads — and folds the per-seed checkers in seed order. The
    /// configured [`crate::AnalysisConfig::options`] select the reset /
    /// X-evaluation policy ([`glitch_sim::SimOptions::x_init`] for
    /// uninitialised-state checking).
    ///
    /// # Errors
    ///
    /// Returns the first failing seed's [`SimError`] (in seed order).
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty.
    pub fn check_seeds(
        &self,
        netlist: &Netlist,
        random_buses: &[Bus],
        held: &[(NetId, bool)],
        suite: &CheckSuite,
        seeds: &[u64],
        jobs: usize,
    ) -> Result<CheckAnalysis, SimError> {
        self.check_seeds_compiled(netlist, random_buses, held, suite, seeds, jobs, None)
    }

    /// [`GlitchAnalyzer::check_seeds`] with an optional precompiled
    /// [`glitch_sim::KernelProgram`] to reuse (see
    /// [`GlitchAnalyzer::analyze_seeds_compiled`]); the checkers ride
    /// whichever engine [`crate::AnalysisConfig::engine`] selects, and the
    /// hybrid verdict is bit-identical to the queue one.
    ///
    /// # Errors
    ///
    /// Returns the first failing seed's [`SimError`] (in seed order).
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty, or if a supplied `program` was compiled
    /// from a different netlist.
    #[allow(clippy::too_many_arguments)]
    pub fn check_seeds_compiled(
        &self,
        netlist: &Netlist,
        random_buses: &[Bus],
        held: &[(NetId, bool)],
        suite: &CheckSuite,
        seeds: &[u64],
        jobs: usize,
        program: Option<&glitch_sim::KernelProgram>,
    ) -> Result<CheckAnalysis, SimError> {
        let factory = |_seed: usize| -> Vec<Box<dyn Probe>> { vec![Box::new(suite.build())] };
        let (analysis, mut reports) = self.analyze_seeds_compiled(
            netlist,
            random_buses,
            held,
            seeds,
            jobs,
            &factory,
            program,
        )?;
        let mut merged = CheckerProbe::default();
        for report in &mut reports {
            let probe = report
                .take_probe::<CheckerProbe>()
                .expect("check sessions carry a CheckerProbe");
            glitch_sim::MergeableProbe::merge(&mut merged, probe);
        }
        Ok(CheckAnalysis {
            report: merged.report(netlist),
            checker_micros: merged.checker_micros(),
            analysis,
        })
    }

    /// Runs the checker suite on the configured single-seed stimulus while
    /// recording a replayable [`SimBaseline`] — the anchor for
    /// [`GlitchAnalyzer::check_delta`] re-checks of nearby stimuli.
    ///
    /// # Errors
    ///
    /// As for [`GlitchAnalyzer::analyze`]; a failed run yields no baseline.
    pub fn check_baseline(
        &self,
        netlist: &Netlist,
        random_buses: &[Bus],
        held: &[(NetId, bool)],
        suite: &CheckSuite,
    ) -> Result<(VerifyReport, Analysis, SimBaseline), SimError> {
        let (mut report, baseline) = self
            .session(netlist, random_buses, held)
            .probe(suite.build())
            .record_baseline()?;
        let verify = take_report(&mut report, netlist);
        Ok((verify, Self::analysis(netlist, report), baseline))
    }

    /// Re-checks a recorded baseline under a [`DeltaStimulus`]
    /// incrementally: the checkers replay the recorded stream verbatim on
    /// clean cycles and re-run on dirty ones, so the returned report is
    /// bit-identical to a full re-simulation of the merged stimulus
    /// (pinned by `glitch-verify`'s incremental oracle test). The delay
    /// model and simulator options come from the baseline.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] for deltas beyond the baseline, overrides of
    /// non-input nets, or any simulation failure in a dirty cycle.
    pub fn check_delta(
        &self,
        netlist: &Netlist,
        baseline: &SimBaseline,
        delta: &DeltaStimulus,
        suite: &CheckSuite,
    ) -> Result<DeltaCheck, SimError> {
        let report = IncrementalSession::new(netlist, baseline)
            .probe(suite.build())
            .probe(glitch_sim::ActivityProbe::new())
            .probe(glitch_sim::PowerProbe::new(
                self.config().technology,
                self.config().frequency,
            ))
            .delta(delta.clone())
            .run()
            .map_err(SimError::from)?;
        let incremental = report.stats();
        let mut session = report.into_session();
        let verify = take_report(&mut session, netlist);
        Ok(DeltaCheck {
            report: verify,
            analysis: Self::analysis(netlist, session),
            incremental,
        })
    }
}

/// Extracts the checker probe's report from a finished session.
fn take_report(report: &mut SessionReport, netlist: &Netlist) -> VerifyReport {
    report
        .take_probe::<CheckerProbe>()
        .expect("check sessions carry a CheckerProbe")
        .report(netlist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::AnalysisConfig;
    use glitch_netlist::Bus;
    use glitch_sim::{InputAssignment, SimOptions, SimSession};
    use glitch_verify::BudgetSpec;

    /// A counter-like circuit with one uninitialised flipflop.
    fn fixture() -> (Netlist, Vec<Bus>) {
        let mut nl = Netlist::new("check fixture");
        let en = nl.add_input("en");
        let d = nl.add_input("d");
        let q = nl.dff(d, "q");
        let y = nl.xor2(en, q, "y");
        let z = nl.and2(en, q, "z");
        nl.mark_output(y);
        nl.mark_output(z);
        let buses = vec![Bus::new(nl.inputs().to_vec())];
        (nl, buses)
    }

    fn x_analyzer(cycles: u64) -> GlitchAnalyzer {
        GlitchAnalyzer::new(AnalysisConfig {
            cycles,
            options: SimOptions::x_init(),
            ..Default::default()
        })
    }

    fn full_suite(nl: &Netlist) -> CheckSuite {
        let budgets = BudgetSpec::parse_list("*=cycle")
            .unwrap()
            .resolve(nl)
            .unwrap();
        CheckSuite::new()
            .with_x_propagation()
            .with_budgets(budgets)
            .with_hazards()
    }

    #[test]
    fn check_seeds_is_jobs_invariant_and_detects_the_x_bug() {
        let (nl, buses) = fixture();
        let analyzer = x_analyzer(60);
        let suite = full_suite(&nl);
        let seeds = [7u64, 8, 9, 10];
        let serial = analyzer
            .check_seeds(&nl, &buses, &[], &suite, &seeds, 1)
            .unwrap();
        assert!(!serial.report.passed(), "the uninitialised q reaches y");
        assert_eq!(serial.report.failed_checkers(), 1);
        for jobs in [2, 4, 8] {
            let parallel = analyzer
                .check_seeds(&nl, &buses, &[], &suite, &seeds, jobs)
                .unwrap();
            assert_eq!(parallel.report, serial.report, "jobs={jobs}");
            assert_eq!(parallel.analysis.aggregate, serial.analysis.aggregate);
        }
        // The checkers ride the analysis sessions: the aggregate covers
        // every seed's cycles.
        assert_eq!(serial.analysis.total_cycles(), 4 * 60);
        let xprop = serial.report.outcome("x-propagation").unwrap();
        assert_eq!(xprop.metric("cycles"), Some(4 * 60));
    }

    #[test]
    fn check_delta_equals_a_full_check_of_the_merged_stimulus() {
        let (nl, buses) = fixture();
        let analyzer = x_analyzer(40);
        let suite = full_suite(&nl);
        let (_, _, baseline) = analyzer.check_baseline(&nl, &buses, &[], &suite).unwrap();
        let en = nl.find_net("en").unwrap();
        let flip_to = baseline.input_value(15, en) != glitch_sim::Value::One;
        let delta = DeltaStimulus::new().set(15, en, flip_to);

        let incremental = analyzer
            .check_delta(&nl, &baseline, &delta, &suite)
            .unwrap();
        assert!(incremental.incremental.replayed_cycles >= 30);

        // Full reference: simulate the merged stimulus from scratch with a
        // fresh checker set.
        let merged: Vec<InputAssignment> = (0..baseline.cycle_count())
            .map(|c| delta.apply_to(c, baseline.assignment(c)))
            .collect();
        let full = SimSession::new(&nl)
            .delay(analyzer.config().delay.clone())
            .options(analyzer.config().options)
            .stimulus(merged)
            .probe(suite.build())
            .run()
            .unwrap();
        let full_report = full.probe::<CheckerProbe>().unwrap().report(&nl);
        assert_eq!(incremental.report, full_report);
    }

    #[test]
    fn baseline_check_report_matches_a_plain_run() {
        let (nl, buses) = fixture();
        let analyzer = x_analyzer(30);
        let suite = full_suite(&nl);
        let (from_baseline, analysis, baseline) =
            analyzer.check_baseline(&nl, &buses, &[], &suite).unwrap();
        assert_eq!(baseline.cycle_count(), 30);
        assert_eq!(analysis.cycles, 30);
        // An empty delta replays everything and reproduces the report.
        let replay = analyzer
            .check_delta(&nl, &baseline, &DeltaStimulus::new(), &suite)
            .unwrap();
        assert_eq!(replay.incremental.cells_evaluated, 0);
        assert_eq!(replay.report, from_baseline);
        assert_eq!(replay.analysis.trace, analysis.trace);
    }
}
