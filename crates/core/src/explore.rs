//! The retiming-for-power exploration of section 5 of the paper.

use std::fmt;

use glitch_activity::ActivityTotals;
use glitch_netlist::{Bus, NetId, Netlist};
use glitch_power::PowerBreakdown;
use glitch_retime::{pipeline_netlist, PipelineOptions, RetimeError};
use glitch_sim::{DeltaStimulus, IncrementalStats, ParallelRunner, SimError, Value};

use crate::analyzer::{Analysis, GlitchAnalyzer};
use crate::table::TextTable;

/// One retiming variant of the explored circuit (one row of Table 3).
#[derive(Debug, Clone)]
pub struct ExplorationPoint {
    /// Number of register ranks inserted.
    pub ranks: usize,
    /// Total flipflops in the pipelined circuit.
    pub flipflops: usize,
    /// Power decomposition at the configured frequency.
    pub power: PowerBreakdown,
    /// Clock-line capacitance, in farads.
    pub clock_capacitance: f64,
    /// Transition-activity totals of the combinational nets.
    pub activity: ActivityTotals,
    /// Gate-equivalent area of the variant (grows with the flipflop count —
    /// the paper's area column).
    pub gate_equivalents: f64,
}

/// Result of a [`PowerExplorer::explore`] sweep.
#[derive(Debug, Clone)]
pub struct ExplorationResult {
    points: Vec<ExplorationPoint>,
}

impl ExplorationResult {
    /// The explored variants, in the order of the requested rank counts.
    #[must_use]
    pub fn points(&self) -> &[ExplorationPoint] {
        &self.points
    }

    /// Index of the variant with the lowest total power — the paper's
    /// optimum retiming for power dissipation.
    ///
    /// # Panics
    ///
    /// Panics if the exploration is empty.
    #[must_use]
    pub fn optimum(&self) -> usize {
        self.points
            .iter()
            .enumerate()
            .min_by(|a, b| {
                a.1.power
                    .total()
                    .partial_cmp(&b.1.power.total())
                    .expect("finite power")
            })
            .map(|(i, _)| i)
            .expect("exploration must contain at least one point")
    }

    /// The optimum point itself.
    ///
    /// # Panics
    ///
    /// Panics if the exploration is empty.
    #[must_use]
    pub fn optimum_point(&self) -> &ExplorationPoint {
        &self.points[self.optimum()]
    }

    /// `true` when the total-power minimum is at neither end of the sweep —
    /// the paper's headline observation that an intermediate amount of
    /// pipelining is optimal.
    #[must_use]
    pub fn has_interior_minimum(&self) -> bool {
        let best = self.optimum();
        best != 0 && best != self.points.len() - 1
    }

    /// Renders the sweep as a Table-3-style text table (power in mW).
    #[must_use]
    pub fn to_table(&self) -> TextTable {
        let mut table = TextTable::new(vec![
            "ranks",
            "flipflops",
            "clock cap (pF)",
            "logic (mW)",
            "flipflop (mW)",
            "clock (mW)",
            "total (mW)",
            "L/F",
        ]);
        for p in &self.points {
            table.add_row(vec![
                p.ranks.to_string(),
                p.flipflops.to_string(),
                format!("{:.1}", p.clock_capacitance * 1e12),
                format!("{:.2}", p.power.logic * 1e3),
                format!("{:.2}", p.power.flipflop * 1e3),
                format!("{:.2}", p.power.clock * 1e3),
                format!("{:.2}", p.power.total() * 1e3),
                format!("{:.2}", p.activity.useless_to_useful()),
            ]);
        }
        table
    }
}

impl fmt::Display for ExplorationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_table())
    }
}

/// Errors from a power exploration.
#[derive(Debug)]
pub enum ExploreError {
    /// Pipelining the netlist failed.
    Retime(RetimeError),
    /// Simulating one of the variants failed.
    Sim(SimError),
    /// A stimulus net of the original netlist has no same-named counterpart
    /// in a pipelined variant — the sweep cannot drive that variant.
    /// Surfaced as an error (not a panic) so a sweep over odd netlists
    /// fails recoverably.
    NetNotFound {
        /// Name of the missing net.
        net: String,
        /// Name of the pipelined variant that lacks it.
        variant: String,
    },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::Retime(e) => write!(f, "pipelining failed: {e}"),
            ExploreError::Sim(e) => write!(f, "simulation failed: {e}"),
            ExploreError::NetNotFound { net, variant } => {
                write!(
                    f,
                    "net `{net}` not found in the pipelined netlist `{variant}`"
                )
            }
        }
    }
}

impl std::error::Error for ExploreError {}

impl From<RetimeError> for ExploreError {
    fn from(e: RetimeError) -> Self {
        ExploreError::Retime(e)
    }
}

impl From<SimError> for ExploreError {
    fn from(e: SimError) -> Self {
        ExploreError::Sim(e)
    }
}

/// Sweeps pipelining depth on a combinational datapath and evaluates the
/// three power components for every variant — the reproduction of Table 3 /
/// Figure 10 of the paper.
#[derive(Debug, Clone, Default)]
pub struct PowerExplorer {
    analyzer: GlitchAnalyzer,
    pipeline_options: PipelineOptions,
}

impl PowerExplorer {
    /// Creates an explorer that analyses every variant with the given
    /// analyzer configuration.
    #[must_use]
    pub fn new(analyzer: GlitchAnalyzer) -> Self {
        PowerExplorer {
            analyzer,
            pipeline_options: PipelineOptions::default(),
        }
    }

    /// Overrides the pipelining options (e.g. to not register the inputs).
    #[must_use]
    pub fn with_pipeline_options(mut self, options: PipelineOptions) -> Self {
        self.pipeline_options = options;
        self
    }

    /// Pipelines `combinational` with each of the requested `ranks` and
    /// remaps the stimulus nets (by name) into every variant — the serial,
    /// cheap part shared by the serial and parallel sweeps.
    ///
    /// # Errors
    ///
    /// Returns an [`ExploreError`] if pipelining fails or a stimulus net
    /// has no counterpart in a variant.
    fn prepare_variants(
        &self,
        combinational: &Netlist,
        ranks: &[usize],
        random_buses: &[Bus],
        held: &[(NetId, bool)],
    ) -> Result<Vec<Variant>, ExploreError> {
        ranks
            .iter()
            .map(|&rank| {
                let piped = pipeline_netlist(combinational, rank, self.pipeline_options)?;
                let buses: Vec<Bus> = random_buses
                    .iter()
                    .map(|b| remap_bus(combinational, b, &piped.netlist))
                    .collect::<Result<_, _>>()?;
                let held: Vec<(NetId, bool)> = held
                    .iter()
                    .map(|&(net, v)| Ok((remap_net(combinational, net, &piped.netlist)?, v)))
                    .collect::<Result<_, ExploreError>>()?;
                Ok(Variant {
                    rank,
                    piped,
                    buses,
                    held,
                })
            })
            .collect()
    }

    /// Simulates one prepared variant and distils its exploration point.
    fn evaluate_variant(&self, variant: &Variant) -> Result<ExplorationPoint, ExploreError> {
        let analysis: Analysis =
            self.analyzer
                .analyze(&variant.piped.netlist, &variant.buses, &variant.held)?;
        Ok(ExplorationPoint {
            ranks: variant.rank,
            flipflops: variant.piped.flipflop_count,
            power: analysis.power.breakdown,
            clock_capacitance: analysis.power.clock_capacitance,
            activity: analysis.activity.totals(),
            gate_equivalents: variant.piped.netlist.gate_equivalents(),
        })
    }

    /// Pipelines `combinational` with each of the requested `ranks`,
    /// simulates each variant with the same random stimulus and returns the
    /// power curve.
    ///
    /// `random_buses` and `held` refer to nets of the *original* netlist;
    /// they are re-found by name in each pipelined variant.
    ///
    /// # Errors
    ///
    /// Returns an [`ExploreError`] if pipelining or simulation of any
    /// variant fails, or if a stimulus net has no same-named counterpart in
    /// a variant ([`ExploreError::NetNotFound`]).
    pub fn explore(
        &self,
        combinational: &Netlist,
        ranks: &[usize],
        random_buses: &[Bus],
        held: &[(NetId, bool)],
    ) -> Result<ExplorationResult, ExploreError> {
        self.explore_parallel(combinational, ranks, random_buses, held, 1)
    }

    /// Like [`PowerExplorer::explore`], but simulates the pipelined
    /// variants concurrently on `jobs` worker threads — the multi-circuit
    /// side of the sharded executor: every variant is an independent
    /// netlist fanned across a [`ParallelRunner`].
    ///
    /// Results are identical to the serial sweep (each variant is a
    /// deterministic seeded run and the points come back in rank order);
    /// only the wall-clock time changes.
    ///
    /// # Errors
    ///
    /// Returns the first failing variant's [`ExploreError`] in rank order.
    pub fn explore_parallel(
        &self,
        combinational: &Netlist,
        ranks: &[usize],
        random_buses: &[Bus],
        held: &[(NetId, bool)],
        jobs: usize,
    ) -> Result<ExplorationResult, ExploreError> {
        let variants = self.prepare_variants(combinational, ranks, random_buses, held)?;
        let points = ParallelRunner::new(jobs)
            .map(variants, |_, variant| self.evaluate_variant(&variant))
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ExplorationResult { points })
    }
}

/// One row of an input-sensitivity exploration
/// ([`PowerExplorer::explore_input_sensitivity`]): the activity and power
/// the circuit exhibits when one primary input bit is flipped in one
/// cycle of an otherwise identical stimulus.
#[derive(Debug, Clone)]
pub struct SensitivityPoint {
    /// The flipped primary input.
    pub net: NetId,
    /// Its name, for reporting.
    pub name: String,
    /// The cycle the flip happened in.
    pub cycle: u64,
    /// The value the bit was flipped to.
    pub flipped_to: bool,
    /// Combinational activity totals of the flipped run.
    pub activity: ActivityTotals,
    /// Power decomposition of the flipped run.
    pub power: PowerBreakdown,
    /// Incremental work accounting: how little of the baseline had to be
    /// re-evaluated to answer this row.
    pub incremental: IncrementalStats,
}

impl PowerExplorer {
    /// Flips each listed primary input bit at `cycle` — one *nearby job*
    /// per input — and reports every flip's activity and power. All jobs
    /// reuse **one** recorded baseline and one fanout/level cone index:
    /// each row re-evaluates only the flipped bit's dirty region instead
    /// of paying a full simulation, yet its figures are bit-identical to
    /// a from-scratch run of the flipped stimulus. Jobs fan across `jobs`
    /// worker threads; rows come back in input order regardless of the
    /// worker count.
    ///
    /// Inputs the baseline stimulus never drove (`X` at `cycle`) are
    /// flipped to `true`.
    ///
    /// Returns the baseline analysis alongside the per-input rows so
    /// callers can report differences against it.
    ///
    /// # Errors
    ///
    /// Returns an [`ExploreError`] if the baseline or any flipped run
    /// fails to simulate.
    pub fn explore_input_sensitivity(
        &self,
        netlist: &Netlist,
        random_buses: &[Bus],
        held: &[(NetId, bool)],
        cycle: u64,
        inputs: &[NetId],
        jobs: usize,
    ) -> Result<(Analysis, Vec<SensitivityPoint>), ExploreError> {
        let (baseline_analysis, baseline) =
            self.analyzer
                .analyze_baseline(netlist, random_buses, held)?;
        let flips: Vec<(NetId, bool)> = inputs
            .iter()
            .map(|&net| {
                let flipped_to = match baseline.input_value(cycle, net) {
                    Value::One => false,
                    Value::Zero | Value::X => true,
                };
                (net, flipped_to)
            })
            .collect();
        let deltas: Vec<DeltaStimulus> = flips
            .iter()
            .map(|&(net, to)| DeltaStimulus::new().set(cycle, net, to))
            .collect();
        let analyses = self
            .analyzer
            .analyze_deltas(netlist, &baseline, &deltas, jobs)?;
        let points = flips
            .into_iter()
            .zip(analyses)
            .map(|((net, flipped_to), delta)| SensitivityPoint {
                net,
                name: netlist.net(net).name().to_string(),
                cycle,
                flipped_to,
                activity: delta.analysis.activity.totals(),
                power: delta.analysis.power.breakdown,
                incremental: delta.incremental,
            })
            .collect();
        Ok((baseline_analysis, points))
    }
}

/// A prepared pipelined variant: the netlist plus its remapped stimulus.
struct Variant {
    rank: usize,
    piped: glitch_retime::PipelinedNetlist,
    buses: Vec<Bus>,
    held: Vec<(NetId, bool)>,
}

fn remap_net(from: &Netlist, net: NetId, to: &Netlist) -> Result<NetId, ExploreError> {
    let name = from.net(net).name();
    to.find_net(name).ok_or_else(|| ExploreError::NetNotFound {
        net: name.to_string(),
        variant: to.name().to_string(),
    })
}

fn remap_bus(from: &Netlist, bus: &Bus, to: &Netlist) -> Result<Bus, ExploreError> {
    bus.bits()
        .iter()
        .map(|&b| remap_net(from, b, to))
        .collect::<Result<Vec<_>, _>>()
        .map(Bus::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::AnalysisConfig;
    use glitch_arith::{AdderStyle, ArrayMultiplier};

    #[test]
    fn sweep_produces_monotone_flipflops_and_falling_logic_power() {
        let mult = ArrayMultiplier::new(6, AdderStyle::CompoundCell);
        let analyzer = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 150,
            ..Default::default()
        });
        let explorer = PowerExplorer::new(analyzer);
        let result = explorer
            .explore(
                &mult.netlist,
                &[1, 2, 4, 8],
                &[mult.x.clone(), mult.y.clone()],
                &[],
            )
            .unwrap();
        let points = result.points();
        assert_eq!(points.len(), 4);
        for pair in points.windows(2) {
            assert!(pair[1].flipflops > pair[0].flipflops);
            assert!(pair[1].power.flipflop > pair[0].power.flipflop);
            assert!(pair[1].power.clock > pair[0].power.clock);
        }
        // Deep pipelining removes most glitches: logic power at 8 ranks is
        // well below the single-rank figure.
        assert!(points[3].power.logic < points[0].power.logic);
        assert!(points[3].activity.useless_to_useful() < points[0].activity.useless_to_useful());
        let table = result.to_table().to_string();
        assert!(table.contains("flipflops"));
        let _ = result.optimum_point();
    }

    #[test]
    fn parallel_sweep_equals_the_serial_sweep() {
        let mult = ArrayMultiplier::new(5, AdderStyle::CompoundCell);
        let analyzer = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 80,
            ..Default::default()
        });
        let explorer = PowerExplorer::new(analyzer);
        let ranks = [0, 2, 4, 6];
        let buses = [mult.x.clone(), mult.y.clone()];
        let serial = explorer
            .explore(&mult.netlist, &ranks, &buses, &[])
            .unwrap();
        let parallel = explorer
            .explore_parallel(&mult.netlist, &ranks, &buses, &[], 4)
            .unwrap();
        assert_eq!(serial.points().len(), parallel.points().len());
        for (s, p) in serial.points().iter().zip(parallel.points()) {
            assert_eq!(s.ranks, p.ranks);
            assert_eq!(s.flipflops, p.flipflops);
            assert_eq!(s.activity, p.activity);
            assert_eq!(s.power, p.power);
            assert_eq!(s.clock_capacitance, p.clock_capacitance);
        }
        assert_eq!(serial.optimum(), parallel.optimum());
    }

    #[test]
    fn missing_stimulus_net_is_a_recoverable_error() {
        // A stimulus net whose name has no counterpart in the target
        // netlist used to panic inside the sweep; now it surfaces as
        // `ExploreError::NetNotFound`.
        let mut from = Netlist::new("from");
        let bus = from.add_input_bus("only_in_from", 2);
        let target = Netlist::new("pipelined variant");
        let err = remap_net(&from, bus.bit(0), &target).unwrap_err();
        match &err {
            ExploreError::NetNotFound { net, variant } => {
                assert!(net.starts_with("only_in_from"));
                assert_eq!(variant, "pipelined variant");
            }
            other => panic!("expected NetNotFound, got {other:?}"),
        }
        assert!(err
            .to_string()
            .contains("not found in the pipelined netlist"));
        assert!(remap_bus(&from, &bus, &target).is_err());
        // Present nets still remap fine.
        let mut target = Netlist::new("ok");
        let there = target.add_input_bus("only_in_from", 2);
        assert_eq!(
            remap_bus(&from, &bus, &target).unwrap().bits(),
            there.bits()
        );
    }

    #[test]
    fn input_sensitivity_reuses_one_baseline_and_matches_full_reruns() {
        let mult = ArrayMultiplier::new(5, AdderStyle::CompoundCell);
        let analyzer = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 120,
            ..Default::default()
        });
        let explorer = PowerExplorer::new(analyzer.clone());
        let inputs: Vec<NetId> = mult.x.bits().to_vec();
        let buses = [mult.x.clone(), mult.y.clone()];
        let (baseline_analysis, points) = explorer
            .explore_input_sensitivity(&mult.netlist, &buses, &[], 60, &inputs, 4)
            .unwrap();
        assert_eq!(points.len(), 5);
        for point in &points {
            // A single-bit single-cycle flip re-simulates a sliver of the
            // run and replays the rest.
            assert!(point.incremental.replayed_cycles >= 110, "{point:?}");
            assert!(point.incremental.evaluated_fraction() < 0.25, "{point:?}");
            assert!(point.power.total() > 0.0);
            assert!(point.activity.useful > 0);
            assert_eq!(point.cycle, 60);
            assert!(point.name.starts_with("x["));
        }
        assert!(baseline_analysis.activity.totals().useful > 0);

        // Each row is bit-identical to the incremental delta re-analysis
        // it stands for (whose own full-rerun identity the analyzer and
        // the glitch-sim differential oracle pin).
        let (_, baseline) = analyzer
            .analyze_baseline(&mult.netlist, &buses, &[])
            .unwrap();
        let reference = analyzer
            .analyze_delta(
                &mult.netlist,
                &baseline,
                &DeltaStimulus::new().set(60, points[0].net, points[0].flipped_to),
            )
            .unwrap();
        assert_eq!(points[0].activity, reference.analysis.activity.totals());
        assert_eq!(points[0].power, reference.analysis.power.breakdown);
        assert_eq!(points[0].incremental, reference.incremental);
        // Parallel fan-out is deterministic.
        let (_, serial) = explorer
            .explore_input_sensitivity(&mult.netlist, &buses, &[], 60, &inputs, 1)
            .unwrap();
        for (p, s) in points.iter().zip(&serial) {
            assert_eq!(p.activity, s.activity);
            assert_eq!(p.power, s.power);
            assert_eq!(p.incremental, s.incremental);
        }
    }

    #[test]
    fn pipelining_does_not_change_useful_work() {
        let mult = ArrayMultiplier::new(5, AdderStyle::CompoundCell);
        let analyzer = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 100,
            ..Default::default()
        });
        let explorer = PowerExplorer::new(analyzer);
        let result = explorer
            .explore(
                &mult.netlist,
                &[0, 6],
                &[mult.x.clone(), mult.y.clone()],
                &[],
            )
            .unwrap();
        let unpiped = &result.points()[0];
        let piped = &result.points()[1];
        // Pipeline registers delay the data but the same computation happens,
        // so useful transitions stay within a few percent (boundary effects
        // from the one-cycle-later arrival of results).
        let ratio = piped.activity.useful as f64 / unpiped.activity.useful as f64;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "useful-transition ratio {ratio}"
        );
        // Useless transitions drop dramatically.
        assert!(piped.activity.useless < unpiped.activity.useless / 2);
    }
}
