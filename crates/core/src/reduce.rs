//! The scoring half of the reduction loop: one multi-seed analysis pass
//! that prices a netlist in glitch power and locates *where* the hazards
//! are.
//!
//! The paper's reduction flow (section 5) alternates two activities:
//! measure a network's useless switching activity, then apply a structural
//! move (retiming, delay insertion, duplication) where the measurement
//! says it pays. [`ReduceSession`] is the measurement half, shared by the
//! `glitch-reduce` optimizer and the CLI/daemon front-ends:
//!
//! * the standard [`GlitchAnalyzer`] multi-seed pass (activity + power,
//!   deterministic at any worker count, kernel-accelerated under the
//!   hybrid engine) for the *figures*;
//! * a [`HazardProbe`] riding the same pass for the *locations* — per-net
//!   static/dynamic hazard counts, folded across seeds in seed order;
//! * a glitch-power distillation: the combinational power attributable to
//!   **useless** transitions alone, priced through the same capacitance
//!   model as the total. This is the objective the reduction loop
//!   descends on, and the `−N%` in "glitch power −N% at equal function".

use glitch_netlist::{Bus, NetId, Netlist};
use glitch_power::estimate_power_from_counts;
use glitch_sim::{Probe, SimError};
use glitch_verify::HazardProbe;

use crate::analyzer::{AggregateAnalysis, AnalysisConfig, GlitchAnalyzer};

/// One priced netlist: the aggregate analysis plus the reduction loop's
/// derived objective and per-net hazard locations.
#[derive(Debug, Clone)]
pub struct ReduceScore {
    /// The full multi-seed aggregate (activity, power, spreads, kernel
    /// telemetry when the engine used the compiled kernel).
    pub analysis: AggregateAnalysis,
    /// Hazards per net across all seeds, index-aligned with the netlist's
    /// nets — the candidate-ranking signal.
    pub hazards: Vec<u64>,
    /// Combinational power attributable to useless transitions alone, in
    /// watts: the objective the reduction descends on.
    pub glitch_power: f64,
    /// Total dynamic power (logic + flipflop + clock), in watts.
    pub total_power: f64,
}

impl ReduceScore {
    /// Useless transitions summed over every net.
    #[must_use]
    pub fn useless_transitions(&self) -> u64 {
        self.analysis.activity.totals().useless
    }

    /// Hazards summed over every net.
    #[must_use]
    pub fn total_hazards(&self) -> u64 {
        self.hazards.iter().sum()
    }

    /// Nets ranked by hazard count (descending), ties broken by useless
    /// transitions (descending) then net id (ascending) — a deterministic
    /// hot list for candidate generation. Nets with neither hazards nor
    /// useless transitions are omitted.
    #[must_use]
    pub fn hot_nets(&self) -> Vec<NetId> {
        let trace = self.analysis.trace();
        let mut ranked: Vec<(NetId, u64, u64)> = self
            .hazards
            .iter()
            .enumerate()
            .map(|(index, &hazards)| {
                let useless = trace.node(index).useless();
                (NetId::from_index(index), hazards, useless)
            })
            .filter(|&(_, hazards, useless)| hazards > 0 || useless > 0)
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(b.2.cmp(&a.2)).then(a.0.cmp(&b.0)));
        ranked.into_iter().map(|(net, _, _)| net).collect()
    }

    /// The relative glitch-power change from `baseline` to this score, in
    /// percent — negative is an improvement. Zero when the baseline had no
    /// glitch power to begin with.
    #[must_use]
    pub fn glitch_power_change_percent(&self, baseline: &ReduceScore) -> f64 {
        if baseline.glitch_power <= 0.0 {
            return 0.0;
        }
        (self.glitch_power - baseline.glitch_power) / baseline.glitch_power * 100.0
    }
}

/// Drives analyze → move → re-score measurement passes for the reduction
/// loop; see the module docs.
#[derive(Debug, Clone)]
pub struct ReduceSession {
    analyzer: GlitchAnalyzer,
    seeds: Vec<u64>,
    jobs: usize,
}

impl ReduceSession {
    /// Creates a session: `config` fixes cycles/delay/engine/technology,
    /// `seeds` the stimulus batch (scores aggregate over all of them),
    /// `jobs` the worker count (figures are worker-count invariant).
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty.
    #[must_use]
    pub fn new(config: AnalysisConfig, seeds: Vec<u64>, jobs: usize) -> Self {
        assert!(!seeds.is_empty(), "at least one seed is required");
        ReduceSession {
            analyzer: GlitchAnalyzer::new(config),
            seeds,
            jobs: jobs.max(1),
        }
    }

    /// The underlying analysis configuration.
    #[must_use]
    pub fn config(&self) -> &AnalysisConfig {
        self.analyzer.config()
    }

    /// The stimulus seeds every score aggregates over.
    #[must_use]
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }

    /// Prices one netlist: a multi-seed analysis pass with a hazard probe
    /// riding along, distilled into a [`ReduceScore`].
    ///
    /// Scores of different netlists are comparable when produced by the
    /// same session — same cycles, seeds, delay model, options and
    /// technology — which is exactly how the reduction loop uses them.
    ///
    /// # Errors
    ///
    /// Returns the first failing seed's [`SimError`] (in seed order).
    pub fn score(
        &self,
        netlist: &Netlist,
        random_buses: &[Bus],
        held: &[(NetId, bool)],
    ) -> Result<ReduceScore, SimError> {
        let factory =
            |_seed_index: usize| -> Vec<Box<dyn Probe>> { vec![Box::new(HazardProbe::new())] };
        let (analysis, mut reports) = self.analyzer.analyze_seeds_with(
            netlist,
            random_buses,
            held,
            &self.seeds,
            self.jobs,
            &factory,
        )?;
        // Fold the per-seed hazard probes in seed order — the same
        // deterministic reduction the suite path performs.
        let mut merged = HazardProbe::new();
        for report in &mut reports {
            let probe = report
                .take_probe::<HazardProbe>()
                .expect("the factory attached a hazard probe to every seed");
            glitch_sim::MergeableProbe::merge(&mut merged, probe);
        }
        let hazards = merged.per_net().to_vec();
        let trace = analysis.trace();
        let useless: Vec<u64> = (0..netlist.net_count())
            .map(|index| trace.node(index).useless())
            .collect();
        let config = self.analyzer.config();
        let glitch_power = estimate_power_from_counts(
            netlist,
            &useless,
            trace.cycles(),
            &config.technology,
            config.frequency,
        )
        .breakdown
        .logic;
        let total_power = analysis.power.breakdown.total();
        Ok(ReduceScore {
            analysis,
            hazards,
            glitch_power,
            total_power,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::EngineKind;
    use glitch_arith::{AdderStyle, RippleCarryAdder};

    fn session(engine: EngineKind, jobs: usize) -> ReduceSession {
        ReduceSession::new(
            AnalysisConfig {
                cycles: 120,
                engine,
                ..AnalysisConfig::default()
            },
            vec![1, 2, 3],
            jobs,
        )
    }

    #[test]
    fn scoring_prices_glitch_power_below_total() {
        let adder = RippleCarryAdder::new(6, AdderStyle::CompoundCell);
        let score = session(EngineKind::Queue, 1)
            .score(
                &adder.netlist,
                &[adder.a.clone(), adder.b.clone()],
                &[(adder.cin, false)],
            )
            .unwrap();
        assert!(score.glitch_power > 0.0, "ripple carry glitches");
        assert!(score.glitch_power < score.total_power);
        assert!(score.useless_transitions() > 0);
        assert_eq!(score.hazards.len(), adder.netlist.net_count());
        assert!(score.total_hazards() > 0);
        // The hot list leads with the most hazardous net.
        let hot = score.hot_nets();
        assert!(!hot.is_empty());
        assert_eq!(
            score.hazards[hot[0].index()],
            score.hazards.iter().copied().max().unwrap()
        );
    }

    #[test]
    fn scores_are_worker_count_and_engine_invariant() {
        let adder = RippleCarryAdder::new(4, AdderStyle::CompoundCell);
        let buses = [adder.a.clone(), adder.b.clone()];
        let held = [(adder.cin, false)];
        let serial = session(EngineKind::Queue, 1)
            .score(&adder.netlist, &buses, &held)
            .unwrap();
        let parallel = session(EngineKind::Queue, 4)
            .score(&adder.netlist, &buses, &held)
            .unwrap();
        let hybrid = session(EngineKind::Hybrid, 2)
            .score(&adder.netlist, &buses, &held)
            .unwrap();
        for other in [&parallel, &hybrid] {
            assert_eq!(serial.hazards, other.hazards);
            assert_eq!(serial.glitch_power.to_bits(), other.glitch_power.to_bits());
            assert_eq!(serial.total_power.to_bits(), other.total_power.to_bits());
            assert_eq!(serial.hot_nets(), other.hot_nets());
        }
    }

    #[test]
    fn change_percent_is_signed_and_guarded() {
        let adder = RippleCarryAdder::new(4, AdderStyle::CompoundCell);
        let score = session(EngineKind::Queue, 1)
            .score(
                &adder.netlist,
                &[adder.a.clone(), adder.b.clone()],
                &[(adder.cin, false)],
            )
            .unwrap();
        assert_eq!(score.glitch_power_change_percent(&score), 0.0);
        let mut zero = score.clone();
        zero.glitch_power = 0.0;
        assert_eq!(score.glitch_power_change_percent(&zero), 0.0);
        assert!(zero.glitch_power_change_percent(&score) < 0.0);
    }
}
