//! The single-circuit analysis flow: one simulation session → count →
//! classify → power.

use glitch_activity::{ActivityReport, ActivityTrace};
use glitch_netlist::{Bus, ConeIndex, NetId, Netlist};
use glitch_power::{PowerReport, Technology};
use glitch_sim::{
    ActivityProbe, AggregateReport, DelayKind, DelayModel, DeltaStimulus, IncrementalSession,
    IncrementalStats, ParallelRunner, PowerProbe, Probe, RandomStimulus, SessionReport,
    SimBaseline, SimError, SimJob, SimSession, Spread,
};

/// Configuration of a [`GlitchAnalyzer`].
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisConfig {
    /// Number of random input vectors (clock cycles) to simulate.
    pub cycles: u64,
    /// Seed of the random stimulus.
    pub seed: u64,
    /// Clock frequency used for the power estimate, in hertz.
    pub frequency: f64,
    /// Technology used for the power estimate.
    pub technology: Technology,
    /// Delay model used for the simulation.
    pub delay: DelayKind,
    /// Simulator options (settle budget, flipflop reset policy, X
    /// evaluation mode). The defaults are the analysis defaults; the
    /// verification flow (`glitch-cli check --x-init`) swaps in
    /// [`glitch_sim::SimOptions::x_init`] to simulate uninitialised-state
    /// reachability.
    pub options: glitch_sim::SimOptions,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            cycles: 1000,
            seed: 0xDA7E_1995,
            frequency: 5e6,
            technology: Technology::cmos_0p8um_5v(),
            delay: DelayKind::Unit,
            options: glitch_sim::SimOptions::default(),
        }
    }
}

/// Result of one [`GlitchAnalyzer::analyze`] run.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Per-node transition activity with useful/useless classification.
    pub activity: ActivityReport,
    /// Three-component dynamic power estimate.
    pub power: PowerReport,
    /// The raw per-net trace (node indices are net indices), for custom
    /// post-processing such as per-bit grouping.
    pub trace: ActivityTrace,
    /// Number of cycles that were simulated.
    pub cycles: u64,
}

impl Analysis {
    /// Convenience accessor: the achievable combinational-activity reduction
    /// factor `1 + L/F` if all delay paths were balanced.
    #[must_use]
    pub fn balance_reduction_factor(&self) -> f64 {
        self.activity.totals().balance_reduction_factor()
    }
}

/// Result of a multi-seed (parallel) analysis: the merged figures plus the
/// per-seed spread that quantifies how confident the estimates are.
///
/// Glitch counts under random vectors are statistical estimates; a single
/// seed gives a point estimate with unknown error. A multi-seed aggregate
/// reports the mean and the min/max/standard deviation across seeds — the
/// honest form of the paper's Figure 5 / Table 3 numbers. The aggregate is
/// deterministic: it is bit-identical to the serial fold of the per-seed
/// runs regardless of the worker count.
#[derive(Debug, Clone)]
pub struct AggregateAnalysis {
    /// Per-node activity report over the **combined** activity of every
    /// seed, with useful/useless classification.
    pub activity: ActivityReport,
    /// Power estimate over the combined activity of every seed.
    pub power: PowerReport,
    /// The seeds that were simulated, in shard order.
    pub seeds: Vec<u64>,
    /// The underlying shard aggregate (per-seed summaries + spreads).
    pub aggregate: AggregateReport,
}

impl AggregateAnalysis {
    /// Distils a reduced shard aggregate into the analysis form.
    fn from_aggregate(netlist: &Netlist, seeds: &[u64], aggregate: AggregateReport) -> Self {
        AggregateAnalysis {
            activity: ActivityReport::from_trace(netlist, aggregate.merged_trace()),
            power: aggregate.merged_power().clone(),
            seeds: seeds.to_vec(),
            aggregate,
        }
    }

    /// The merged raw per-net trace (node indices are net indices), for
    /// custom post-processing such as per-bit grouping.
    #[must_use]
    pub fn trace(&self) -> &ActivityTrace {
        self.aggregate.merged_trace()
    }

    /// Total cycles simulated across all seeds.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.aggregate.total_cycles()
    }

    /// Spread of per-seed complete-glitch counts.
    #[must_use]
    pub fn glitch_spread(&self) -> Spread {
        self.aggregate.glitch_spread()
    }

    /// Spread of per-seed useless-transition counts.
    #[must_use]
    pub fn useless_spread(&self) -> Spread {
        self.aggregate.useless_spread()
    }

    /// Spread of per-seed total power, in watts.
    #[must_use]
    pub fn power_spread(&self) -> Spread {
        self.aggregate.power_spread()
    }

    /// Mean ± stddev of the per-seed `L/F` ratio.
    #[must_use]
    pub fn lf_ratio_spread(&self) -> Spread {
        self.aggregate.spread_of(|s| s.activity.useless_to_useful())
    }
}

/// Result of one incremental delta re-analysis
/// ([`GlitchAnalyzer::analyze_delta`]): the same figures a full
/// [`Analysis`] carries — bit-identical to a full re-simulation of the
/// merged stimulus — plus the incremental work accounting.
#[derive(Debug, Clone)]
pub struct DeltaAnalysis {
    /// Activity, power and trace of the delta run.
    pub analysis: Analysis,
    /// How much of the baseline's work the delta run actually redid.
    pub incremental: IncrementalStats,
}

/// One point of a delay-model sweep: the delay kind under test and the
/// multi-seed aggregate simulated under it.
#[derive(Debug, Clone)]
pub struct DelaySweepPoint {
    /// Human-readable name of the delay model (e.g. `unit`, `zero`).
    pub label: String,
    /// The delay model this point was simulated with.
    pub delay: DelayKind,
    /// The multi-seed aggregate under this delay model.
    pub analysis: AggregateAnalysis,
}

/// Simulates a netlist with seeded random stimuli and produces the paper's
/// transition-activity and power figures — in **one simulation pass**.
///
/// The analyzer is a thin configuration layer over [`SimSession`]: it
/// attaches an [`ActivityProbe`] and a [`PowerProbe`] to a single session
/// and distils their outputs into an [`Analysis`]. Callers that need more
/// observables (a waveform, a transition CSV) add probes to the same
/// session via [`GlitchAnalyzer::session`] and still pay for one pass.
///
/// ```
/// use glitch_core::{AnalysisConfig, GlitchAnalyzer};
/// use glitch_core::arith::{AdderStyle, RippleCarryAdder};
/// use glitch_core::sim::VcdProbe;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let adder = RippleCarryAdder::new(4, AdderStyle::CompoundCell);
/// let analyzer = GlitchAnalyzer::new(AnalysisConfig { cycles: 50, ..Default::default() });
/// // One pass: activity + power + waveform.
/// let mut report = analyzer
///     .session(&adder.netlist, &[adder.a.clone(), adder.b.clone()], &[(adder.cin, false)])
///     .probe(VcdProbe::default())
///     .run()?;
/// let vcd = report.take_probe::<VcdProbe>().unwrap().into_vcd();
/// let analysis = GlitchAnalyzer::analysis(&adder.netlist, report);
/// assert!(vcd.contains("$enddefinitions"));
/// assert!(analysis.activity.totals().transitions > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct GlitchAnalyzer {
    config: AnalysisConfig,
}

impl GlitchAnalyzer {
    /// Creates an analyzer with the given configuration.
    #[must_use]
    pub fn new(config: AnalysisConfig) -> Self {
        GlitchAnalyzer { config }
    }

    /// The analyzer's configuration.
    #[must_use]
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// Builds the configured one-pass session: the seeded random stimulus,
    /// the configured delay model, and the activity + power probes. Attach
    /// further probes before calling [`SimSession::run`].
    #[must_use]
    pub fn session<'a>(
        &self,
        netlist: &'a Netlist,
        random_buses: &[Bus],
        held: &[(NetId, bool)],
    ) -> SimSession<'a> {
        let mut stimulus =
            RandomStimulus::new(random_buses.to_vec(), self.config.cycles, self.config.seed);
        for &(net, value) in held {
            stimulus = stimulus.hold(net, value);
        }
        SimSession::new(netlist)
            .delay(self.config.delay.clone())
            .options(self.config.options)
            .stimulus(stimulus)
            .probe(ActivityProbe::new())
            .probe(PowerProbe::new(
                self.config.technology,
                self.config.frequency,
            ))
    }

    /// Distils a finished session report (as built by
    /// [`GlitchAnalyzer::session`]) into an [`Analysis`].
    ///
    /// # Panics
    ///
    /// Panics if the report is missing the analyzer's activity or power
    /// probe (i.e. it did not come from [`GlitchAnalyzer::session`]).
    #[must_use]
    pub fn analysis(netlist: &Netlist, mut report: SessionReport) -> Analysis {
        let trace = report
            .take_probe::<ActivityProbe>()
            .expect("analysis sessions carry an ActivityProbe")
            .into_trace();
        let power = report
            .take_probe::<PowerProbe>()
            .expect("analysis sessions carry a PowerProbe")
            .into_report();
        let activity = ActivityReport::from_trace(netlist, &trace);
        Analysis {
            activity,
            power,
            trace,
            cycles: report.cycles(),
        }
    }

    /// Simulates `netlist` once for the configured number of cycles,
    /// driving `random_buses` with uniform random values each cycle and
    /// holding the `held` single-bit inputs constant.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the netlist is structurally invalid or the
    /// simulation fails to settle.
    pub fn analyze(
        &self,
        netlist: &Netlist,
        random_buses: &[Bus],
        held: &[(NetId, bool)],
    ) -> Result<Analysis, SimError> {
        let report = self.session(netlist, random_buses, held).run()?;
        Ok(Self::analysis(netlist, report))
    }

    /// Same as [`GlitchAnalyzer::analyze`] but with an explicit delay model,
    /// overriding the configured one.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the netlist is structurally invalid or the
    /// simulation fails to settle.
    pub fn analyze_with<'a, D: DelayModel + 'a>(
        &self,
        netlist: &'a Netlist,
        random_buses: &[Bus],
        held: &[(NetId, bool)],
        delay: D,
    ) -> Result<Analysis, SimError> {
        let report = self
            .session(netlist, random_buses, held)
            .delay_model(delay)
            .run()?;
        Ok(Self::analysis(netlist, report))
    }

    /// Like [`GlitchAnalyzer::analyze`], but additionally records a
    /// replayable [`SimBaseline`] of the run — the anchor for
    /// [`GlitchAnalyzer::analyze_delta`] / [`GlitchAnalyzer::analyze_deltas`]
    /// re-analyses of *nearby* stimuli (a few changed input bits).
    ///
    /// # Errors
    ///
    /// As for [`GlitchAnalyzer::analyze`].
    pub fn analyze_baseline(
        &self,
        netlist: &Netlist,
        random_buses: &[Bus],
        held: &[(NetId, bool)],
    ) -> Result<(Analysis, SimBaseline), SimError> {
        let (report, baseline) = self
            .session(netlist, random_buses, held)
            .record_baseline()?;
        Ok((Self::analysis(netlist, report), baseline))
    }

    /// Re-analyses the baseline under a [`DeltaStimulus`] incrementally:
    /// cycles untouched by the delta replay from the baseline, dirty
    /// fanout cones re-simulate. The returned figures are bit-identical to
    /// a full [`GlitchAnalyzer::analyze`]-style run of the merged stimulus
    /// (pinned by the differential oracle in `glitch-sim`); the delay
    /// model and simulator options come from the baseline.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] for deltas beyond the baseline, overrides of
    /// non-input nets, or any simulation failure in a dirty cycle.
    pub fn analyze_delta(
        &self,
        netlist: &Netlist,
        baseline: &SimBaseline,
        delta: &DeltaStimulus,
    ) -> Result<DeltaAnalysis, SimError> {
        self.analyze_delta_with_index(netlist, baseline, delta, None)
    }

    /// [`GlitchAnalyzer::analyze_delta`] with an optional pre-built
    /// [`ConeIndex`] to reuse across calls. Long-lived callers (the
    /// serving layer's warm cache, [`GlitchAnalyzer::analyze_deltas`])
    /// amortise the index build over many deltas this way; the index is
    /// deterministic for a netlist, so the figures are identical either
    /// way.
    ///
    /// # Errors
    ///
    /// As for [`GlitchAnalyzer::analyze_delta`].
    pub fn analyze_delta_with_index(
        &self,
        netlist: &Netlist,
        baseline: &SimBaseline,
        delta: &DeltaStimulus,
        index: Option<&ConeIndex>,
    ) -> Result<DeltaAnalysis, SimError> {
        let mut session = IncrementalSession::new(netlist, baseline)
            .probe(ActivityProbe::new())
            .probe(PowerProbe::new(
                self.config.technology,
                self.config.frequency,
            ))
            .delta(delta.clone());
        if let Some(index) = index {
            session = session.cone_index(index);
        }
        let report = session.run().map_err(SimError::from)?;
        let incremental = report.stats();
        Ok(DeltaAnalysis {
            analysis: Self::analysis(netlist, report.into_session()),
            incremental,
        })
    }

    /// Re-analyses many *nearby* deltas against one shared baseline,
    /// fanned across `jobs` worker threads. The fanout/level cone index is
    /// built once and shared by every job, and results come back in delta
    /// order — bit-identical at any worker count, in the
    /// [`GlitchAnalyzer::analyze_seeds`] tradition.
    ///
    /// # Errors
    ///
    /// Returns the first failing delta's [`SimError`] in delta order.
    pub fn analyze_deltas(
        &self,
        netlist: &Netlist,
        baseline: &SimBaseline,
        deltas: &[DeltaStimulus],
        jobs: usize,
    ) -> Result<Vec<DeltaAnalysis>, SimError> {
        let index = ConeIndex::build(netlist).map_err(SimError::from)?;
        ParallelRunner::new(jobs)
            .map(deltas.iter().collect(), |_, delta: &DeltaStimulus| {
                self.analyze_delta_with_index(netlist, baseline, delta, Some(&index))
            })
            .into_iter()
            .collect()
    }

    /// One shard job per seed, configured like [`GlitchAnalyzer::session`].
    fn job_for<'a>(
        &self,
        netlist: &'a Netlist,
        random_buses: &[Bus],
        held: &[(NetId, bool)],
        seed: u64,
    ) -> SimJob<'a> {
        SimJob::new(netlist, random_buses.to_vec(), self.config.cycles, seed)
            .with_delay(self.config.delay.clone())
            .with_held(held.to_vec())
            .with_power(self.config.technology, self.config.frequency)
            .with_options(self.config.options)
    }

    /// Simulates the netlist once per seed — fanned across `jobs` worker
    /// threads — and reduces the per-seed results into an
    /// [`AggregateAnalysis`] with per-seed spread. Each seed runs the
    /// configured number of cycles, so the aggregate covers
    /// `seeds.len() * config.cycles` cycles in total.
    ///
    /// The reduction is deterministic (seeded shards, folded in seed
    /// order): any worker count produces the same aggregate bit for bit as
    /// `jobs = 1`.
    ///
    /// # Errors
    ///
    /// Returns the first failing seed's [`SimError`] (in seed order).
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty.
    pub fn analyze_seeds(
        &self,
        netlist: &Netlist,
        random_buses: &[Bus],
        held: &[(NetId, bool)],
        seeds: &[u64],
        jobs: usize,
    ) -> Result<AggregateAnalysis, SimError> {
        self.analyze_seeds_with(netlist, random_buses, held, seeds, jobs, &|_| Vec::new())
            .map(|(analysis, _)| analysis)
    }

    /// Like [`GlitchAnalyzer::analyze_seeds`], additionally attaching the
    /// probes built by `extra_probes(seed_index)` to each seed's session.
    /// The returned [`SessionReport`]s (one per seed, in seed order) have
    /// had the standard activity/power/stats probes consumed but still
    /// carry the extra probes, ready for the caller to take and fold (e.g.
    /// with [`glitch_sim::MergeableProbe`]).
    ///
    /// # Errors
    ///
    /// Returns the first failing seed's [`SimError`] (in seed order).
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty.
    pub fn analyze_seeds_with(
        &self,
        netlist: &Netlist,
        random_buses: &[Bus],
        held: &[(NetId, bool)],
        seeds: &[u64],
        jobs: usize,
        extra_probes: &(dyn Fn(usize) -> Vec<Box<dyn Probe>> + Sync),
    ) -> Result<(AggregateAnalysis, Vec<SessionReport>), SimError> {
        assert!(!seeds.is_empty(), "at least one seed is required");
        let job_list: Vec<SimJob<'_>> = seeds
            .iter()
            .map(|&seed| self.job_for(netlist, random_buses, held, seed))
            .collect();
        let mut reports = ParallelRunner::new(jobs).run_sessions_with(&job_list, extra_probes)?;
        let aggregate = AggregateReport::reduce(netlist, &job_list, &mut reports);
        Ok((
            AggregateAnalysis::from_aggregate(netlist, seeds, aggregate),
            reports,
        ))
    }

    /// Sweeps a set of delay models, simulating every `(delay, seed)`
    /// combination in **one** parallel batch across `jobs` workers and
    /// reducing per delay model. `labels_and_delays` pairs a display name
    /// with each model; the configured delay of the analyzer is ignored.
    ///
    /// This is the cheap way to compare how sensitive glitch counts are to
    /// the delay-modeling choice (cf. Függer et al. on glitch-propagation
    /// model fidelity): every model sees the same seeds, so differences are
    /// purely model-induced.
    ///
    /// # Errors
    ///
    /// Returns the first failing combination's [`SimError`] in batch order
    /// (delay-major, then seed).
    ///
    /// # Panics
    ///
    /// Panics if `labels_and_delays` or `seeds` is empty.
    pub fn sweep_delays(
        &self,
        netlist: &Netlist,
        random_buses: &[Bus],
        held: &[(NetId, bool)],
        labels_and_delays: &[(String, DelayKind)],
        seeds: &[u64],
        jobs: usize,
    ) -> Result<Vec<DelaySweepPoint>, SimError> {
        assert!(
            !labels_and_delays.is_empty(),
            "at least one delay model is required"
        );
        assert!(!seeds.is_empty(), "at least one seed is required");
        let job_list: Vec<SimJob<'_>> = labels_and_delays
            .iter()
            .flat_map(|(label, delay)| {
                seeds.iter().map(move |&seed| {
                    self.job_for(netlist, random_buses, held, seed)
                        .with_delay(delay.clone())
                        .with_label(label.clone())
                })
            })
            .collect();
        let reports = ParallelRunner::new(jobs).run_sessions(&job_list)?;
        // Chunk the flat batch back into one aggregate per delay model.
        let mut points = Vec::with_capacity(labels_and_delays.len());
        let mut reports = reports.into_iter();
        for (chunk, (label, delay)) in job_list.chunks(seeds.len()).zip(labels_and_delays) {
            let mut chunk_reports: Vec<_> = reports.by_ref().take(seeds.len()).collect();
            let aggregate = AggregateReport::reduce(netlist, chunk, &mut chunk_reports);
            points.push(DelaySweepPoint {
                label: label.clone(),
                delay: delay.clone(),
                analysis: AggregateAnalysis::from_aggregate(netlist, seeds, aggregate),
            });
        }
        Ok(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitch_arith::{AdderStyle, RippleCarryAdder, WallaceTreeMultiplier};
    use glitch_sim::CellDelay;

    #[test]
    fn analyzer_reports_activity_and_power() {
        let adder = RippleCarryAdder::new(8, AdderStyle::CompoundCell);
        let analyzer = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 300,
            ..Default::default()
        });
        let analysis = analyzer
            .analyze(
                &adder.netlist,
                &[adder.a.clone(), adder.b.clone()],
                &[(adder.cin, false)],
            )
            .unwrap();
        let totals = analysis.activity.totals();
        assert_eq!(totals.cycles, 300);
        assert!(totals.useful > 0);
        assert!(totals.useless > 0);
        assert!(analysis.power.breakdown.logic > 0.0);
        assert!(analysis.balance_reduction_factor() > 1.0);
        assert_eq!(analysis.cycles, 300);
        assert_eq!(analyzer.config().cycles, 300);
    }

    #[test]
    fn zero_delay_reference_has_no_glitches() {
        let adder = RippleCarryAdder::new(8, AdderStyle::CompoundCell);
        let analyzer = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 200,
            delay: DelayKind::Zero,
            ..Default::default()
        });
        let analysis = analyzer
            .analyze(
                &adder.netlist,
                &[adder.a.clone(), adder.b.clone()],
                &[(adder.cin, false)],
            )
            .unwrap();
        assert_eq!(analysis.activity.totals().useless, 0);
        assert!(analysis.activity.totals().useful > 0);
    }

    #[test]
    fn unbalanced_cell_delays_increase_glitching() {
        let mult = WallaceTreeMultiplier::new(8, AdderStyle::CompoundCell);
        let buses = [mult.x.clone(), mult.y.clone()];
        let unit = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 200,
            ..Default::default()
        })
        .analyze(&mult.netlist, &buses, &[])
        .unwrap();
        let realistic = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 200,
            delay: DelayKind::RealisticAdderCells,
            ..Default::default()
        })
        .analyze(&mult.netlist, &buses, &[])
        .unwrap();
        // Table 2: making the sum output slower than the carry output adds
        // delay imbalance and therefore useless transitions.
        assert!(realistic.activity.totals().useless > unit.activity.totals().useless);
        // The useful work is unchanged by the delay model.
        assert_eq!(
            realistic.activity.totals().useful,
            unit.activity.totals().useful
        );
    }

    #[test]
    fn custom_delay_model_is_accepted() {
        let adder = RippleCarryAdder::new(4, AdderStyle::CompoundCell);
        let analyzer = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 50,
            delay: DelayKind::Custom(CellDelay::new().with_full_adder(3, 1)),
            ..Default::default()
        });
        let analysis = analyzer
            .analyze(
                &adder.netlist,
                &[adder.a.clone(), adder.b.clone()],
                &[(adder.cin, false)],
            )
            .unwrap();
        assert!(analysis.activity.totals().transitions > 0);
    }

    #[test]
    fn multi_seed_aggregate_equals_serial_fold_and_reports_spread() {
        let adder = RippleCarryAdder::new(8, AdderStyle::CompoundCell);
        let analyzer = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 80,
            ..Default::default()
        });
        let buses = [adder.a.clone(), adder.b.clone()];
        let held = [(adder.cin, false)];
        let seeds = [11u64, 22, 33, 44];
        let parallel = analyzer
            .analyze_seeds(&adder.netlist, &buses, &held, &seeds, 4)
            .unwrap();
        let serial = analyzer
            .analyze_seeds(&adder.netlist, &buses, &held, &seeds, 1)
            .unwrap();
        assert_eq!(parallel.aggregate, serial.aggregate);
        assert_eq!(parallel.trace(), serial.trace());
        assert_eq!(parallel.power, serial.power);
        assert_eq!(parallel.total_cycles(), 4 * 80);
        assert_eq!(parallel.seeds, seeds);
        // The merged activity equals the sum of per-seed single analyses.
        let mut expected_useless = 0;
        for &seed in &seeds {
            let single = GlitchAnalyzer::new(AnalysisConfig {
                cycles: 80,
                seed,
                ..Default::default()
            })
            .analyze(&adder.netlist, &buses, &held)
            .unwrap();
            expected_useless += single.activity.totals().useless;
        }
        assert_eq!(parallel.activity.totals().useless, expected_useless);
        let spread = parallel.glitch_spread();
        assert!(spread.min <= spread.mean && spread.mean <= spread.max);
        assert!(parallel.power_spread().mean > 0.0);
        assert!(parallel.useless_spread().mean > 0.0);
        assert!(parallel.lf_ratio_spread().mean > 0.0);
    }

    #[test]
    fn delay_sweep_compares_models_on_identical_seeds() {
        let adder = RippleCarryAdder::new(6, AdderStyle::CompoundCell);
        let analyzer = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 60,
            ..Default::default()
        });
        let buses = [adder.a.clone(), adder.b.clone()];
        let held = [(adder.cin, false)];
        let models = vec![
            ("unit".to_string(), DelayKind::Unit),
            ("zero".to_string(), DelayKind::Zero),
        ];
        let points = analyzer
            .sweep_delays(&adder.netlist, &buses, &held, &models, &[5, 6, 7], 3)
            .unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].label, "unit");
        assert_eq!(points[1].delay, DelayKind::Zero);
        // Zero delay is glitch-free; unit delay glitches; the useful work
        // is the same because both saw identical stimuli.
        assert_eq!(points[1].analysis.activity.totals().useless, 0);
        assert!(points[0].analysis.activity.totals().useless > 0);
        assert_eq!(
            points[0].analysis.activity.totals().useful,
            points[1].analysis.activity.totals().useful
        );
        assert_eq!(points[0].analysis.total_cycles(), 3 * 60);
    }

    #[test]
    fn empty_delta_replays_the_baseline_bit_for_bit() {
        let adder = RippleCarryAdder::new(8, AdderStyle::CompoundCell);
        let analyzer = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 120,
            ..Default::default()
        });
        let buses = [adder.a.clone(), adder.b.clone()];
        let held = [(adder.cin, false)];
        let (analysis, baseline) = analyzer
            .analyze_baseline(&adder.netlist, &buses, &held)
            .unwrap();
        assert_eq!(baseline.cycle_count(), 120);
        assert!(baseline.total_cell_evals() > 0);

        let replay = analyzer
            .analyze_delta(&adder.netlist, &baseline, &DeltaStimulus::new())
            .unwrap();
        assert_eq!(replay.incremental.replayed_cycles, 120);
        assert_eq!(replay.incremental.cells_evaluated, 0);
        assert_eq!(replay.analysis.trace, analysis.trace);
        assert_eq!(replay.analysis.power, analysis.power);
    }

    #[test]
    fn delta_analysis_matches_a_full_rerun_and_parallel_deltas_are_deterministic() {
        let adder = RippleCarryAdder::new(8, AdderStyle::CompoundCell);
        let analyzer = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 100,
            ..Default::default()
        });
        let buses = [adder.a.clone(), adder.b.clone()];
        let held = [(adder.cin, false)];
        let (_, baseline) = analyzer
            .analyze_baseline(&adder.netlist, &buses, &held)
            .unwrap();

        let flip_net = adder.a.bit(3);
        let flip_to = baseline.input_value(40, flip_net) != glitch_sim::Value::One;
        let delta = DeltaStimulus::new().set(40, flip_net, flip_to);

        // Full reference: simulate the merged stimulus from scratch.
        let merged: Vec<glitch_sim::InputAssignment> = (0..baseline.cycle_count())
            .map(|c| delta.apply_to(c, baseline.assignment(c)))
            .collect();
        let full_report = SimSession::new(&adder.netlist)
            .delay(analyzer.config().delay.clone())
            .stimulus(merged)
            .probe(ActivityProbe::new())
            .probe(PowerProbe::new(
                analyzer.config().technology,
                analyzer.config().frequency,
            ))
            .run()
            .unwrap();
        let full = GlitchAnalyzer::analysis(&adder.netlist, full_report);

        let incremental = analyzer
            .analyze_delta(&adder.netlist, &baseline, &delta)
            .unwrap();
        assert_eq!(incremental.analysis.trace, full.trace);
        assert_eq!(incremental.analysis.power, full.power);
        assert!(incremental.incremental.replayed_cycles >= 90);
        assert!(incremental.incremental.evaluated_fraction() < 0.5);

        // Fanning nearby deltas across workers is deterministic and equals
        // the one-by-one runs.
        let deltas: Vec<DeltaStimulus> = (0..4)
            .map(|bit| {
                let net = adder.a.bit(bit);
                let to = baseline.input_value(20, net) != glitch_sim::Value::One;
                DeltaStimulus::new().set(20, net, to)
            })
            .collect();
        let parallel = analyzer
            .analyze_deltas(&adder.netlist, &baseline, &deltas, 4)
            .unwrap();
        let serial = analyzer
            .analyze_deltas(&adder.netlist, &baseline, &deltas, 1)
            .unwrap();
        assert_eq!(parallel.len(), 4);
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(p.analysis.trace, s.analysis.trace);
            assert_eq!(p.analysis.power, s.analysis.power);
            assert_eq!(p.incremental, s.incremental);
        }
        for (p, delta) in parallel.iter().zip(&deltas) {
            let single = analyzer
                .analyze_delta(&adder.netlist, &baseline, delta)
                .unwrap();
            assert_eq!(p.analysis.trace, single.analysis.trace);
            assert_eq!(p.incremental, single.incremental);
        }
    }

    #[test]
    fn explicit_delay_model_overrides_the_configured_kind() {
        let adder = RippleCarryAdder::new(4, AdderStyle::CompoundCell);
        let analyzer = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 50,
            delay: DelayKind::Unit,
            ..Default::default()
        });
        let buses = [adder.a.clone(), adder.b.clone()];
        let held = [(adder.cin, false)];
        let zero = analyzer
            .analyze_with(&adder.netlist, &buses, &held, glitch_sim::ZeroDelay)
            .unwrap();
        assert_eq!(zero.activity.totals().useless, 0);
    }
}
