//! The single-circuit analysis flow: one simulation session → count →
//! classify → power.

use std::fmt;
use std::str::FromStr;

use glitch_activity::{ActivityReport, ActivityTrace};
use glitch_netlist::{Bus, ConeIndex, NetId, Netlist};
use glitch_power::{PowerReport, Technology};
use glitch_sim::{
    kernel_prepass, run_kernel_jobs, ActivityProbe, AggregateReport, DelayKind, DelayModel,
    DeltaStimulus, IncrementalSession, IncrementalStats, KernelPrepass, KernelProgram,
    ParallelRunner, PowerProbe, Probe, RandomStimulus, SessionReport, SimBaseline, SimError,
    SimJob, SimSession, Spread,
};

/// Which execution backend the multi-seed analysis entry points drive.
///
/// All three produce their figures through the same probe pipeline; they
/// differ in *how* net values are computed per cycle:
///
/// * [`EngineKind::Queue`] — the event-driven simulator with the
///   configured delay model. The reference engine: models glitches.
/// * [`EngineKind::Kernel`] — the compiled bit-parallel kernel only.
///   Functional (zero-delay) semantics: activity and power equal a
///   [`DelayKind::Zero`] queue run bit for bit, 64 seeds per machine word,
///   no event queue. No glitch modelling.
/// * [`EngineKind::Hybrid`] — a kernel prepass classifies every
///   `(seed, cycle)` pair as provably quiet or possibly active; only the
///   active cycles pay for the event-driven settle, and quiet cycles
///   replay as empty. Reports are bit-identical to [`EngineKind::Queue`]
///   at any worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Event-driven simulation with the configured delay model.
    #[default]
    Queue,
    /// Compiled bit-parallel kernel, functional (zero-delay) semantics.
    Kernel,
    /// Kernel prepass pruning + event-driven settle of active cycles.
    Hybrid,
}

impl EngineKind {
    /// The engine's command-line name (`queue`, `kernel`, `hybrid`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            EngineKind::Queue => "queue",
            EngineKind::Kernel => "kernel",
            EngineKind::Hybrid => "hybrid",
        }
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for EngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "queue" => Ok(EngineKind::Queue),
            "kernel" => Ok(EngineKind::Kernel),
            "hybrid" => Ok(EngineKind::Hybrid),
            other => Err(format!(
                "unknown engine `{other}` (expected `queue`, `kernel` or `hybrid`)"
            )),
        }
    }
}

/// Work accounting of the compiled-kernel side of a run — attached to
/// [`AggregateAnalysis::kernel`] whenever the engine was not pure
/// [`EngineKind::Queue`]. Telemetry only: never part of the
/// determinism-checked figures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelTelemetry {
    /// The engine that produced this run. A delay sweep always settles
    /// through the queue, so [`EngineKind::Kernel`] degrades to
    /// [`EngineKind::Hybrid`] there.
    pub engine: EngineKind,
    /// Lanes (seeds) the kernel batch packed.
    pub lanes: usize,
    /// Total `(seed, cycle)` pairs the prepass covered.
    pub total_cycles: u64,
    /// `(seed, cycle)` pairs proved quiet — skipped by the queue engine
    /// under [`EngineKind::Hybrid`]. Zero for [`EngineKind::Kernel`] runs
    /// (nothing is dispatched to the queue at all).
    pub quiet_cycles: u64,
    /// Total `(seed, source-cone)` pairs classified, one cone per primary
    /// input or flipflop output. Zero when no prepass ran.
    pub total_pairs: u64,
    /// `(seed, source-cone)` pairs in which no cone net ever changed —
    /// provably inert for that seed under any delay assignment.
    pub quiet_pairs: u64,
    /// Functional (zero-delay) switching transitions counted word-wide.
    pub functional_transitions: u64,
    /// Kernel op evaluations performed (`ops × lanes × cycles`).
    pub functional_cell_evals: u64,
    /// Straight-line ops in the compiled program.
    pub program_ops: usize,
    /// In-memory size of the compiled program, in bytes.
    pub program_bytes: usize,
}

impl KernelTelemetry {
    /// Distils a hybrid prepass into its telemetry: per-cycle quiet counts
    /// straight off the prepass, plus the `(seed, source-cone)`
    /// classification — one fanout cone per primary input or flipflop
    /// output, quiet when no net in the cone changed after the
    /// initialisation transient of that seed's lane.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidNetlist`] if the cone index cannot be
    /// built.
    pub fn from_prepass(
        netlist: &Netlist,
        program: &KernelProgram,
        prepass: &KernelPrepass,
    ) -> Result<KernelTelemetry, SimError> {
        let index = ConeIndex::build(netlist)?;
        let mut total_pairs = 0u64;
        let mut quiet_pairs = 0u64;
        for root in program.source_nets() {
            let cone = index.cone([root]);
            for lane in 0..prepass.lanes() {
                total_pairs += 1;
                let active = cone
                    .nets()
                    .iter()
                    .any(|&net| prepass.net_changed(net, lane));
                quiet_pairs += u64::from(!active);
            }
        }
        Ok(KernelTelemetry {
            engine: EngineKind::Hybrid,
            lanes: prepass.lanes(),
            total_cycles: prepass.total_cycles(),
            quiet_cycles: prepass.quiet_cycle_count(),
            total_pairs,
            quiet_pairs,
            functional_transitions: prepass.functional_transitions(),
            functional_cell_evals: prepass.functional_cell_evals(),
            program_ops: program.op_count(),
            program_bytes: program.byte_size(),
        })
    }
}

/// Configuration of a [`GlitchAnalyzer`].
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisConfig {
    /// Number of random input vectors (clock cycles) to simulate.
    pub cycles: u64,
    /// Seed of the random stimulus.
    pub seed: u64,
    /// Clock frequency used for the power estimate, in hertz.
    pub frequency: f64,
    /// Technology used for the power estimate.
    pub technology: Technology,
    /// Delay model used for the simulation.
    pub delay: DelayKind,
    /// Execution backend for the multi-seed entry points
    /// ([`GlitchAnalyzer::analyze_seeds`], [`GlitchAnalyzer::sweep_delays`]
    /// and the check flow riding them). Single-session entry points
    /// ([`GlitchAnalyzer::analyze`], the incremental layer) always use the
    /// queue engine.
    pub engine: EngineKind,
    /// Simulator options (settle budget, flipflop reset policy, X
    /// evaluation mode). The defaults are the analysis defaults; the
    /// verification flow (`glitch-cli check --x-init`) swaps in
    /// [`glitch_sim::SimOptions::x_init`] to simulate uninitialised-state
    /// reachability.
    pub options: glitch_sim::SimOptions,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            cycles: 1000,
            seed: 0xDA7E_1995,
            frequency: 5e6,
            technology: Technology::cmos_0p8um_5v(),
            delay: DelayKind::Unit,
            engine: EngineKind::Queue,
            options: glitch_sim::SimOptions::default(),
        }
    }
}

/// Result of one [`GlitchAnalyzer::analyze`] run.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Per-node transition activity with useful/useless classification.
    pub activity: ActivityReport,
    /// Three-component dynamic power estimate.
    pub power: PowerReport,
    /// The raw per-net trace (node indices are net indices), for custom
    /// post-processing such as per-bit grouping.
    pub trace: ActivityTrace,
    /// Number of cycles that were simulated.
    pub cycles: u64,
}

impl Analysis {
    /// Convenience accessor: the achievable combinational-activity reduction
    /// factor `1 + L/F` if all delay paths were balanced.
    #[must_use]
    pub fn balance_reduction_factor(&self) -> f64 {
        self.activity.totals().balance_reduction_factor()
    }
}

/// Result of a multi-seed (parallel) analysis: the merged figures plus the
/// per-seed spread that quantifies how confident the estimates are.
///
/// Glitch counts under random vectors are statistical estimates; a single
/// seed gives a point estimate with unknown error. A multi-seed aggregate
/// reports the mean and the min/max/standard deviation across seeds — the
/// honest form of the paper's Figure 5 / Table 3 numbers. The aggregate is
/// deterministic: it is bit-identical to the serial fold of the per-seed
/// runs regardless of the worker count.
#[derive(Debug, Clone)]
pub struct AggregateAnalysis {
    /// Per-node activity report over the **combined** activity of every
    /// seed, with useful/useless classification.
    pub activity: ActivityReport,
    /// Power estimate over the combined activity of every seed.
    pub power: PowerReport,
    /// The seeds that were simulated, in shard order.
    pub seeds: Vec<u64>,
    /// The underlying shard aggregate (per-seed summaries + spreads).
    pub aggregate: AggregateReport,
    /// Kernel-side work accounting when the run used the compiled kernel
    /// ([`EngineKind::Kernel`] or [`EngineKind::Hybrid`]); `None` for pure
    /// queue runs. Telemetry only — the analysis figures above are
    /// engine-invariant for `Hybrid` vs `Queue`.
    pub kernel: Option<KernelTelemetry>,
}

impl AggregateAnalysis {
    /// Distils a reduced shard aggregate into the analysis form.
    fn from_aggregate(netlist: &Netlist, seeds: &[u64], aggregate: AggregateReport) -> Self {
        AggregateAnalysis {
            activity: ActivityReport::from_trace(netlist, aggregate.merged_trace()),
            power: aggregate.merged_power().clone(),
            seeds: seeds.to_vec(),
            aggregate,
            kernel: None,
        }
    }

    /// The merged raw per-net trace (node indices are net indices), for
    /// custom post-processing such as per-bit grouping.
    #[must_use]
    pub fn trace(&self) -> &ActivityTrace {
        self.aggregate.merged_trace()
    }

    /// Total cycles simulated across all seeds.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.aggregate.total_cycles()
    }

    /// Spread of per-seed complete-glitch counts.
    #[must_use]
    pub fn glitch_spread(&self) -> Spread {
        self.aggregate.glitch_spread()
    }

    /// Spread of per-seed useless-transition counts.
    #[must_use]
    pub fn useless_spread(&self) -> Spread {
        self.aggregate.useless_spread()
    }

    /// Spread of per-seed total power, in watts.
    #[must_use]
    pub fn power_spread(&self) -> Spread {
        self.aggregate.power_spread()
    }

    /// Mean ± stddev of the per-seed `L/F` ratio.
    #[must_use]
    pub fn lf_ratio_spread(&self) -> Spread {
        self.aggregate.spread_of(|s| s.activity.useless_to_useful())
    }
}

/// Result of one incremental delta re-analysis
/// ([`GlitchAnalyzer::analyze_delta`]): the same figures a full
/// [`Analysis`] carries — bit-identical to a full re-simulation of the
/// merged stimulus — plus the incremental work accounting.
#[derive(Debug, Clone)]
pub struct DeltaAnalysis {
    /// Activity, power and trace of the delta run.
    pub analysis: Analysis,
    /// How much of the baseline's work the delta run actually redid.
    pub incremental: IncrementalStats,
}

/// One point of a delay-model sweep: the delay kind under test and the
/// multi-seed aggregate simulated under it.
#[derive(Debug, Clone)]
pub struct DelaySweepPoint {
    /// Human-readable name of the delay model (e.g. `unit`, `zero`).
    pub label: String,
    /// The delay model this point was simulated with.
    pub delay: DelayKind,
    /// The multi-seed aggregate under this delay model.
    pub analysis: AggregateAnalysis,
}

/// Simulates a netlist with seeded random stimuli and produces the paper's
/// transition-activity and power figures — in **one simulation pass**.
///
/// The analyzer is a thin configuration layer over [`SimSession`]: it
/// attaches an [`ActivityProbe`] and a [`PowerProbe`] to a single session
/// and distils their outputs into an [`Analysis`]. Callers that need more
/// observables (a waveform, a transition CSV) add probes to the same
/// session via [`GlitchAnalyzer::session`] and still pay for one pass.
///
/// ```
/// use glitch_core::{AnalysisConfig, GlitchAnalyzer};
/// use glitch_core::arith::{AdderStyle, RippleCarryAdder};
/// use glitch_core::sim::VcdProbe;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let adder = RippleCarryAdder::new(4, AdderStyle::CompoundCell);
/// let analyzer = GlitchAnalyzer::new(AnalysisConfig { cycles: 50, ..Default::default() });
/// // One pass: activity + power + waveform.
/// let mut report = analyzer
///     .session(&adder.netlist, &[adder.a.clone(), adder.b.clone()], &[(adder.cin, false)])
///     .probe(VcdProbe::default())
///     .run()?;
/// let vcd = report.take_probe::<VcdProbe>().unwrap().into_vcd();
/// let analysis = GlitchAnalyzer::analysis(&adder.netlist, report);
/// assert!(vcd.contains("$enddefinitions"));
/// assert!(analysis.activity.totals().transitions > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct GlitchAnalyzer {
    config: AnalysisConfig,
}

impl GlitchAnalyzer {
    /// Creates an analyzer with the given configuration.
    #[must_use]
    pub fn new(config: AnalysisConfig) -> Self {
        GlitchAnalyzer { config }
    }

    /// The analyzer's configuration.
    #[must_use]
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// Builds the configured one-pass session: the seeded random stimulus,
    /// the configured delay model, and the activity + power probes. Attach
    /// further probes before calling [`SimSession::run`].
    #[must_use]
    pub fn session<'a>(
        &self,
        netlist: &'a Netlist,
        random_buses: &[Bus],
        held: &[(NetId, bool)],
    ) -> SimSession<'a> {
        let mut stimulus =
            RandomStimulus::new(random_buses.to_vec(), self.config.cycles, self.config.seed);
        for &(net, value) in held {
            stimulus = stimulus.hold(net, value);
        }
        SimSession::new(netlist)
            .delay(self.config.delay.clone())
            .options(self.config.options)
            .stimulus(stimulus)
            .probe(ActivityProbe::new())
            .probe(PowerProbe::new(
                self.config.technology,
                self.config.frequency,
            ))
    }

    /// Distils a finished session report (as built by
    /// [`GlitchAnalyzer::session`]) into an [`Analysis`].
    ///
    /// # Panics
    ///
    /// Panics if the report is missing the analyzer's activity or power
    /// probe (i.e. it did not come from [`GlitchAnalyzer::session`]).
    #[must_use]
    pub fn analysis(netlist: &Netlist, mut report: SessionReport) -> Analysis {
        let trace = report
            .take_probe::<ActivityProbe>()
            .expect("analysis sessions carry an ActivityProbe")
            .into_trace();
        let power = report
            .take_probe::<PowerProbe>()
            .expect("analysis sessions carry a PowerProbe")
            .into_report();
        let activity = ActivityReport::from_trace(netlist, &trace);
        Analysis {
            activity,
            power,
            trace,
            cycles: report.cycles(),
        }
    }

    /// Simulates `netlist` once for the configured number of cycles,
    /// driving `random_buses` with uniform random values each cycle and
    /// holding the `held` single-bit inputs constant.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the netlist is structurally invalid or the
    /// simulation fails to settle.
    pub fn analyze(
        &self,
        netlist: &Netlist,
        random_buses: &[Bus],
        held: &[(NetId, bool)],
    ) -> Result<Analysis, SimError> {
        let report = self.session(netlist, random_buses, held).run()?;
        Ok(Self::analysis(netlist, report))
    }

    /// Same as [`GlitchAnalyzer::analyze`] but with an explicit delay model,
    /// overriding the configured one.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the netlist is structurally invalid or the
    /// simulation fails to settle.
    pub fn analyze_with<'a, D: DelayModel + 'a>(
        &self,
        netlist: &'a Netlist,
        random_buses: &[Bus],
        held: &[(NetId, bool)],
        delay: D,
    ) -> Result<Analysis, SimError> {
        let report = self
            .session(netlist, random_buses, held)
            .delay_model(delay)
            .run()?;
        Ok(Self::analysis(netlist, report))
    }

    /// Like [`GlitchAnalyzer::analyze`], but additionally records a
    /// replayable [`SimBaseline`] of the run — the anchor for
    /// [`GlitchAnalyzer::analyze_delta`] / [`GlitchAnalyzer::analyze_deltas`]
    /// re-analyses of *nearby* stimuli (a few changed input bits).
    ///
    /// # Errors
    ///
    /// As for [`GlitchAnalyzer::analyze`].
    pub fn analyze_baseline(
        &self,
        netlist: &Netlist,
        random_buses: &[Bus],
        held: &[(NetId, bool)],
    ) -> Result<(Analysis, SimBaseline), SimError> {
        let (report, baseline) = self
            .session(netlist, random_buses, held)
            .record_baseline()?;
        Ok((Self::analysis(netlist, report), baseline))
    }

    /// Re-analyses the baseline under a [`DeltaStimulus`] incrementally:
    /// cycles untouched by the delta replay from the baseline, dirty
    /// fanout cones re-simulate. The returned figures are bit-identical to
    /// a full [`GlitchAnalyzer::analyze`]-style run of the merged stimulus
    /// (pinned by the differential oracle in `glitch-sim`); the delay
    /// model and simulator options come from the baseline.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] for deltas beyond the baseline, overrides of
    /// non-input nets, or any simulation failure in a dirty cycle.
    pub fn analyze_delta(
        &self,
        netlist: &Netlist,
        baseline: &SimBaseline,
        delta: &DeltaStimulus,
    ) -> Result<DeltaAnalysis, SimError> {
        self.analyze_delta_with_index(netlist, baseline, delta, None)
    }

    /// [`GlitchAnalyzer::analyze_delta`] with an optional pre-built
    /// [`ConeIndex`] to reuse across calls. Long-lived callers (the
    /// serving layer's warm cache, [`GlitchAnalyzer::analyze_deltas`])
    /// amortise the index build over many deltas this way; the index is
    /// deterministic for a netlist, so the figures are identical either
    /// way.
    ///
    /// # Errors
    ///
    /// As for [`GlitchAnalyzer::analyze_delta`].
    pub fn analyze_delta_with_index(
        &self,
        netlist: &Netlist,
        baseline: &SimBaseline,
        delta: &DeltaStimulus,
        index: Option<&ConeIndex>,
    ) -> Result<DeltaAnalysis, SimError> {
        let mut session = IncrementalSession::new(netlist, baseline)
            .probe(ActivityProbe::new())
            .probe(PowerProbe::new(
                self.config.technology,
                self.config.frequency,
            ))
            .delta(delta.clone());
        if let Some(index) = index {
            session = session.cone_index(index);
        }
        let report = session.run().map_err(SimError::from)?;
        let incremental = report.stats();
        Ok(DeltaAnalysis {
            analysis: Self::analysis(netlist, report.into_session()),
            incremental,
        })
    }

    /// Re-analyses many *nearby* deltas against one shared baseline,
    /// fanned across `jobs` worker threads. The fanout/level cone index is
    /// built once and shared by every job, and results come back in delta
    /// order — bit-identical at any worker count, in the
    /// [`GlitchAnalyzer::analyze_seeds`] tradition.
    ///
    /// # Errors
    ///
    /// Returns the first failing delta's [`SimError`] in delta order.
    pub fn analyze_deltas(
        &self,
        netlist: &Netlist,
        baseline: &SimBaseline,
        deltas: &[DeltaStimulus],
        jobs: usize,
    ) -> Result<Vec<DeltaAnalysis>, SimError> {
        let index = ConeIndex::build(netlist).map_err(SimError::from)?;
        ParallelRunner::new(jobs)
            .map(deltas.iter().collect(), |_, delta: &DeltaStimulus| {
                self.analyze_delta_with_index(netlist, baseline, delta, Some(&index))
            })
            .into_iter()
            .collect()
    }

    /// One shard job per seed, configured like [`GlitchAnalyzer::session`].
    fn job_for<'a>(
        &self,
        netlist: &'a Netlist,
        random_buses: &[Bus],
        held: &[(NetId, bool)],
        seed: u64,
    ) -> SimJob<'a> {
        SimJob::new(netlist, random_buses.to_vec(), self.config.cycles, seed)
            .with_delay(self.config.delay.clone())
            .with_held(held.to_vec())
            .with_power(self.config.technology, self.config.frequency)
            .with_options(self.config.options)
    }

    /// Simulates the netlist once per seed — fanned across `jobs` worker
    /// threads — and reduces the per-seed results into an
    /// [`AggregateAnalysis`] with per-seed spread. Each seed runs the
    /// configured number of cycles, so the aggregate covers
    /// `seeds.len() * config.cycles` cycles in total.
    ///
    /// The reduction is deterministic (seeded shards, folded in seed
    /// order): any worker count produces the same aggregate bit for bit as
    /// `jobs = 1`.
    ///
    /// # Errors
    ///
    /// Returns the first failing seed's [`SimError`] (in seed order).
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty.
    pub fn analyze_seeds(
        &self,
        netlist: &Netlist,
        random_buses: &[Bus],
        held: &[(NetId, bool)],
        seeds: &[u64],
        jobs: usize,
    ) -> Result<AggregateAnalysis, SimError> {
        self.analyze_seeds_with(netlist, random_buses, held, seeds, jobs, &|_| Vec::new())
            .map(|(analysis, _)| analysis)
    }

    /// Like [`GlitchAnalyzer::analyze_seeds`], additionally attaching the
    /// probes built by `extra_probes(seed_index)` to each seed's session.
    /// The returned [`SessionReport`]s (one per seed, in seed order) have
    /// had the standard activity/power/stats probes consumed but still
    /// carry the extra probes, ready for the caller to take and fold (e.g.
    /// with [`glitch_sim::MergeableProbe`]).
    ///
    /// # Errors
    ///
    /// Returns the first failing seed's [`SimError`] (in seed order).
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty.
    pub fn analyze_seeds_with(
        &self,
        netlist: &Netlist,
        random_buses: &[Bus],
        held: &[(NetId, bool)],
        seeds: &[u64],
        jobs: usize,
        extra_probes: &(dyn Fn(usize) -> Vec<Box<dyn Probe>> + Sync),
    ) -> Result<(AggregateAnalysis, Vec<SessionReport>), SimError> {
        self.analyze_seeds_compiled(netlist, random_buses, held, seeds, jobs, extra_probes, None)
    }

    /// [`GlitchAnalyzer::analyze_seeds_with`] with an optional precompiled
    /// [`KernelProgram`] to reuse. Long-lived callers (the serving layer's
    /// content-addressed program cache) amortise the one-time compile this
    /// way; a program is deterministic for a netlist, so the figures are
    /// identical either way. Ignored under [`EngineKind::Queue`].
    ///
    /// # Errors
    ///
    /// Returns the first failing seed's [`SimError`] (in seed order), or
    /// [`SimError::InvalidNetlist`] if kernel compilation fails.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty, or if a supplied `program` was compiled
    /// from a different netlist.
    #[allow(clippy::too_many_arguments)]
    pub fn analyze_seeds_compiled(
        &self,
        netlist: &Netlist,
        random_buses: &[Bus],
        held: &[(NetId, bool)],
        seeds: &[u64],
        jobs: usize,
        extra_probes: &(dyn Fn(usize) -> Vec<Box<dyn Probe>> + Sync),
        program: Option<&KernelProgram>,
    ) -> Result<(AggregateAnalysis, Vec<SessionReport>), SimError> {
        assert!(!seeds.is_empty(), "at least one seed is required");
        let mut job_list: Vec<SimJob<'_>> = seeds
            .iter()
            .map(|&seed| self.job_for(netlist, random_buses, held, seed))
            .collect();
        let mut telemetry = None;
        match self.config.engine {
            EngineKind::Queue => {}
            EngineKind::Kernel => {
                let compiled;
                let program = match program {
                    Some(program) => program,
                    None => {
                        compiled = KernelProgram::compile(netlist)?;
                        &compiled
                    }
                };
                let mut reports = run_kernel_jobs(netlist, program, &job_list, extra_probes)?;
                let aggregate = AggregateReport::reduce(netlist, &job_list, &mut reports);
                let mut analysis = AggregateAnalysis::from_aggregate(netlist, seeds, aggregate);
                analysis.kernel = Some(KernelTelemetry {
                    engine: EngineKind::Kernel,
                    lanes: job_list.len(),
                    total_cycles: job_list.len() as u64 * self.config.cycles,
                    quiet_cycles: 0,
                    total_pairs: 0,
                    quiet_pairs: 0,
                    functional_transitions: analysis.activity.totals().transitions,
                    functional_cell_evals: program.op_count() as u64
                        * job_list.len() as u64
                        * self.config.cycles,
                    program_ops: program.op_count(),
                    program_bytes: program.byte_size(),
                });
                return Ok((analysis, reports));
            }
            EngineKind::Hybrid => {
                let compiled;
                let program = match program {
                    Some(program) => program,
                    None => {
                        compiled = KernelProgram::compile(netlist)?;
                        &compiled
                    }
                };
                let prepass = kernel_prepass(netlist, program, &job_list)?;
                telemetry = Some(KernelTelemetry::from_prepass(netlist, program, &prepass)?);
                job_list = job_list
                    .into_iter()
                    .enumerate()
                    .map(|(lane, job)| job.with_quiet_cycles(prepass.quiet_cycles(lane)))
                    .collect();
            }
        }
        let mut reports = ParallelRunner::new(jobs).run_sessions_with(&job_list, extra_probes)?;
        let aggregate = AggregateReport::reduce(netlist, &job_list, &mut reports);
        let mut analysis = AggregateAnalysis::from_aggregate(netlist, seeds, aggregate);
        analysis.kernel = telemetry;
        Ok((analysis, reports))
    }

    /// Sweeps a set of delay models, simulating every `(delay, seed)`
    /// combination in **one** parallel batch across `jobs` workers and
    /// reducing per delay model. `labels_and_delays` pairs a display name
    /// with each model; the configured delay of the analyzer is ignored.
    ///
    /// This is the cheap way to compare how sensitive glitch counts are to
    /// the delay-modeling choice (cf. Függer et al. on glitch-propagation
    /// model fidelity): every model sees the same seeds, so differences are
    /// purely model-induced.
    ///
    /// # Errors
    ///
    /// Returns the first failing combination's [`SimError`] in batch order
    /// (delay-major, then seed).
    ///
    /// # Panics
    ///
    /// Panics if `labels_and_delays` or `seeds` is empty.
    pub fn sweep_delays(
        &self,
        netlist: &Netlist,
        random_buses: &[Bus],
        held: &[(NetId, bool)],
        labels_and_delays: &[(String, DelayKind)],
        seeds: &[u64],
        jobs: usize,
    ) -> Result<Vec<DelaySweepPoint>, SimError> {
        self.sweep_delays_compiled(
            netlist,
            random_buses,
            held,
            labels_and_delays,
            seeds,
            jobs,
            None,
        )
    }

    /// [`GlitchAnalyzer::sweep_delays`] with an optional precompiled
    /// [`KernelProgram`] to reuse (see
    /// [`GlitchAnalyzer::analyze_seeds_compiled`]).
    ///
    /// Under a non-queue engine the kernel prepass runs **once** per seed
    /// batch — quiet cycles are a functional property of the stimulus, so
    /// the same masks prune every delay model's chunk. A sweep exists to
    /// compare delay models, which the delay-less kernel cannot evaluate,
    /// so [`EngineKind::Kernel`] degrades to the hybrid here.
    ///
    /// # Errors
    ///
    /// Returns the first failing combination's [`SimError`] in batch order
    /// (delay-major, then seed), or [`SimError::InvalidNetlist`] if kernel
    /// compilation fails.
    ///
    /// # Panics
    ///
    /// Panics if `labels_and_delays` or `seeds` is empty, or if a supplied
    /// `program` was compiled from a different netlist.
    #[allow(clippy::too_many_arguments)]
    pub fn sweep_delays_compiled(
        &self,
        netlist: &Netlist,
        random_buses: &[Bus],
        held: &[(NetId, bool)],
        labels_and_delays: &[(String, DelayKind)],
        seeds: &[u64],
        jobs: usize,
        program: Option<&KernelProgram>,
    ) -> Result<Vec<DelaySweepPoint>, SimError> {
        assert!(
            !labels_and_delays.is_empty(),
            "at least one delay model is required"
        );
        assert!(!seeds.is_empty(), "at least one seed is required");
        let mut job_list: Vec<SimJob<'_>> = labels_and_delays
            .iter()
            .flat_map(|(label, delay)| {
                seeds.iter().map(move |&seed| {
                    self.job_for(netlist, random_buses, held, seed)
                        .with_delay(delay.clone())
                        .with_label(label.clone())
                })
            })
            .collect();
        let mut telemetry = None;
        if self.config.engine != EngineKind::Queue {
            let compiled;
            let program = match program {
                Some(program) => program,
                None => {
                    compiled = KernelProgram::compile(netlist)?;
                    &compiled
                }
            };
            let base: Vec<SimJob<'_>> = seeds
                .iter()
                .map(|&seed| self.job_for(netlist, random_buses, held, seed))
                .collect();
            let prepass = kernel_prepass(netlist, program, &base)?;
            telemetry = Some(KernelTelemetry::from_prepass(netlist, program, &prepass)?);
            // Delay-major batch: job i drives seed i % seeds.len(), and the
            // kernel ignores delay, so one mask set prunes every chunk.
            job_list = job_list
                .into_iter()
                .enumerate()
                .map(|(i, job)| job.with_quiet_cycles(prepass.quiet_cycles(i % seeds.len())))
                .collect();
        }
        let reports = ParallelRunner::new(jobs).run_sessions(&job_list)?;
        // Chunk the flat batch back into one aggregate per delay model.
        let mut points = Vec::with_capacity(labels_and_delays.len());
        let mut reports = reports.into_iter();
        for (chunk, (label, delay)) in job_list.chunks(seeds.len()).zip(labels_and_delays) {
            let mut chunk_reports: Vec<_> = reports.by_ref().take(seeds.len()).collect();
            let aggregate = AggregateReport::reduce(netlist, chunk, &mut chunk_reports);
            let mut analysis = AggregateAnalysis::from_aggregate(netlist, seeds, aggregate);
            analysis.kernel = telemetry.clone();
            points.push(DelaySweepPoint {
                label: label.clone(),
                delay: delay.clone(),
                analysis,
            });
        }
        Ok(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitch_arith::{AdderStyle, RippleCarryAdder, WallaceTreeMultiplier};
    use glitch_sim::CellDelay;

    #[test]
    fn analyzer_reports_activity_and_power() {
        let adder = RippleCarryAdder::new(8, AdderStyle::CompoundCell);
        let analyzer = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 300,
            ..Default::default()
        });
        let analysis = analyzer
            .analyze(
                &adder.netlist,
                &[adder.a.clone(), adder.b.clone()],
                &[(adder.cin, false)],
            )
            .unwrap();
        let totals = analysis.activity.totals();
        assert_eq!(totals.cycles, 300);
        assert!(totals.useful > 0);
        assert!(totals.useless > 0);
        assert!(analysis.power.breakdown.logic > 0.0);
        assert!(analysis.balance_reduction_factor() > 1.0);
        assert_eq!(analysis.cycles, 300);
        assert_eq!(analyzer.config().cycles, 300);
    }

    #[test]
    fn zero_delay_reference_has_no_glitches() {
        let adder = RippleCarryAdder::new(8, AdderStyle::CompoundCell);
        let analyzer = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 200,
            delay: DelayKind::Zero,
            ..Default::default()
        });
        let analysis = analyzer
            .analyze(
                &adder.netlist,
                &[adder.a.clone(), adder.b.clone()],
                &[(adder.cin, false)],
            )
            .unwrap();
        assert_eq!(analysis.activity.totals().useless, 0);
        assert!(analysis.activity.totals().useful > 0);
    }

    #[test]
    fn unbalanced_cell_delays_increase_glitching() {
        let mult = WallaceTreeMultiplier::new(8, AdderStyle::CompoundCell);
        let buses = [mult.x.clone(), mult.y.clone()];
        let unit = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 200,
            ..Default::default()
        })
        .analyze(&mult.netlist, &buses, &[])
        .unwrap();
        let realistic = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 200,
            delay: DelayKind::RealisticAdderCells,
            ..Default::default()
        })
        .analyze(&mult.netlist, &buses, &[])
        .unwrap();
        // Table 2: making the sum output slower than the carry output adds
        // delay imbalance and therefore useless transitions.
        assert!(realistic.activity.totals().useless > unit.activity.totals().useless);
        // The useful work is unchanged by the delay model.
        assert_eq!(
            realistic.activity.totals().useful,
            unit.activity.totals().useful
        );
    }

    #[test]
    fn custom_delay_model_is_accepted() {
        let adder = RippleCarryAdder::new(4, AdderStyle::CompoundCell);
        let analyzer = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 50,
            delay: DelayKind::Custom(CellDelay::new().with_full_adder(3, 1)),
            ..Default::default()
        });
        let analysis = analyzer
            .analyze(
                &adder.netlist,
                &[adder.a.clone(), adder.b.clone()],
                &[(adder.cin, false)],
            )
            .unwrap();
        assert!(analysis.activity.totals().transitions > 0);
    }

    #[test]
    fn multi_seed_aggregate_equals_serial_fold_and_reports_spread() {
        let adder = RippleCarryAdder::new(8, AdderStyle::CompoundCell);
        let analyzer = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 80,
            ..Default::default()
        });
        let buses = [adder.a.clone(), adder.b.clone()];
        let held = [(adder.cin, false)];
        let seeds = [11u64, 22, 33, 44];
        let parallel = analyzer
            .analyze_seeds(&adder.netlist, &buses, &held, &seeds, 4)
            .unwrap();
        let serial = analyzer
            .analyze_seeds(&adder.netlist, &buses, &held, &seeds, 1)
            .unwrap();
        assert_eq!(parallel.aggregate, serial.aggregate);
        assert_eq!(parallel.trace(), serial.trace());
        assert_eq!(parallel.power, serial.power);
        assert_eq!(parallel.total_cycles(), 4 * 80);
        assert_eq!(parallel.seeds, seeds);
        // The merged activity equals the sum of per-seed single analyses.
        let mut expected_useless = 0;
        for &seed in &seeds {
            let single = GlitchAnalyzer::new(AnalysisConfig {
                cycles: 80,
                seed,
                ..Default::default()
            })
            .analyze(&adder.netlist, &buses, &held)
            .unwrap();
            expected_useless += single.activity.totals().useless;
        }
        assert_eq!(parallel.activity.totals().useless, expected_useless);
        let spread = parallel.glitch_spread();
        assert!(spread.min <= spread.mean && spread.mean <= spread.max);
        assert!(parallel.power_spread().mean > 0.0);
        assert!(parallel.useless_spread().mean > 0.0);
        assert!(parallel.lf_ratio_spread().mean > 0.0);
    }

    #[test]
    fn delay_sweep_compares_models_on_identical_seeds() {
        let adder = RippleCarryAdder::new(6, AdderStyle::CompoundCell);
        let analyzer = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 60,
            ..Default::default()
        });
        let buses = [adder.a.clone(), adder.b.clone()];
        let held = [(adder.cin, false)];
        let models = vec![
            ("unit".to_string(), DelayKind::Unit),
            ("zero".to_string(), DelayKind::Zero),
        ];
        let points = analyzer
            .sweep_delays(&adder.netlist, &buses, &held, &models, &[5, 6, 7], 3)
            .unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].label, "unit");
        assert_eq!(points[1].delay, DelayKind::Zero);
        // Zero delay is glitch-free; unit delay glitches; the useful work
        // is the same because both saw identical stimuli.
        assert_eq!(points[1].analysis.activity.totals().useless, 0);
        assert!(points[0].analysis.activity.totals().useless > 0);
        assert_eq!(
            points[0].analysis.activity.totals().useful,
            points[1].analysis.activity.totals().useful
        );
        assert_eq!(points[0].analysis.total_cycles(), 3 * 60);
    }

    #[test]
    fn empty_delta_replays_the_baseline_bit_for_bit() {
        let adder = RippleCarryAdder::new(8, AdderStyle::CompoundCell);
        let analyzer = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 120,
            ..Default::default()
        });
        let buses = [adder.a.clone(), adder.b.clone()];
        let held = [(adder.cin, false)];
        let (analysis, baseline) = analyzer
            .analyze_baseline(&adder.netlist, &buses, &held)
            .unwrap();
        assert_eq!(baseline.cycle_count(), 120);
        assert!(baseline.total_cell_evals() > 0);

        let replay = analyzer
            .analyze_delta(&adder.netlist, &baseline, &DeltaStimulus::new())
            .unwrap();
        assert_eq!(replay.incremental.replayed_cycles, 120);
        assert_eq!(replay.incremental.cells_evaluated, 0);
        assert_eq!(replay.analysis.trace, analysis.trace);
        assert_eq!(replay.analysis.power, analysis.power);
    }

    #[test]
    fn delta_analysis_matches_a_full_rerun_and_parallel_deltas_are_deterministic() {
        let adder = RippleCarryAdder::new(8, AdderStyle::CompoundCell);
        let analyzer = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 100,
            ..Default::default()
        });
        let buses = [adder.a.clone(), adder.b.clone()];
        let held = [(adder.cin, false)];
        let (_, baseline) = analyzer
            .analyze_baseline(&adder.netlist, &buses, &held)
            .unwrap();

        let flip_net = adder.a.bit(3);
        let flip_to = baseline.input_value(40, flip_net) != glitch_sim::Value::One;
        let delta = DeltaStimulus::new().set(40, flip_net, flip_to);

        // Full reference: simulate the merged stimulus from scratch.
        let merged: Vec<glitch_sim::InputAssignment> = (0..baseline.cycle_count())
            .map(|c| delta.apply_to(c, baseline.assignment(c)))
            .collect();
        let full_report = SimSession::new(&adder.netlist)
            .delay(analyzer.config().delay.clone())
            .stimulus(merged)
            .probe(ActivityProbe::new())
            .probe(PowerProbe::new(
                analyzer.config().technology,
                analyzer.config().frequency,
            ))
            .run()
            .unwrap();
        let full = GlitchAnalyzer::analysis(&adder.netlist, full_report);

        let incremental = analyzer
            .analyze_delta(&adder.netlist, &baseline, &delta)
            .unwrap();
        assert_eq!(incremental.analysis.trace, full.trace);
        assert_eq!(incremental.analysis.power, full.power);
        assert!(incremental.incremental.replayed_cycles >= 90);
        assert!(incremental.incremental.evaluated_fraction() < 0.5);

        // Fanning nearby deltas across workers is deterministic and equals
        // the one-by-one runs.
        let deltas: Vec<DeltaStimulus> = (0..4)
            .map(|bit| {
                let net = adder.a.bit(bit);
                let to = baseline.input_value(20, net) != glitch_sim::Value::One;
                DeltaStimulus::new().set(20, net, to)
            })
            .collect();
        let parallel = analyzer
            .analyze_deltas(&adder.netlist, &baseline, &deltas, 4)
            .unwrap();
        let serial = analyzer
            .analyze_deltas(&adder.netlist, &baseline, &deltas, 1)
            .unwrap();
        assert_eq!(parallel.len(), 4);
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(p.analysis.trace, s.analysis.trace);
            assert_eq!(p.analysis.power, s.analysis.power);
            assert_eq!(p.incremental, s.incremental);
        }
        for (p, delta) in parallel.iter().zip(&deltas) {
            let single = analyzer
                .analyze_delta(&adder.netlist, &baseline, delta)
                .unwrap();
            assert_eq!(p.analysis.trace, single.analysis.trace);
            assert_eq!(p.incremental, single.incremental);
        }
    }

    #[test]
    fn engine_kind_parses_round_trip() {
        for kind in [EngineKind::Queue, EngineKind::Kernel, EngineKind::Hybrid] {
            assert_eq!(kind.as_str().parse::<EngineKind>(), Ok(kind));
            assert_eq!(kind.to_string(), kind.as_str());
        }
        assert!("express".parse::<EngineKind>().is_err());
        assert_eq!(EngineKind::default(), EngineKind::Queue);
    }

    #[test]
    fn hybrid_engine_is_bit_identical_to_the_queue_engine() {
        let adder = RippleCarryAdder::new(8, AdderStyle::CompoundCell);
        let buses = [adder.a.clone(), adder.b.clone()];
        let held = [(adder.cin, false)];
        let seeds = [3u64, 5, 8, 13];
        let queue = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 60,
            ..Default::default()
        })
        .analyze_seeds(&adder.netlist, &buses, &held, &seeds, 2)
        .unwrap();
        let hybrid = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 60,
            engine: EngineKind::Hybrid,
            ..Default::default()
        })
        .analyze_seeds(&adder.netlist, &buses, &held, &seeds, 2)
        .unwrap();
        assert_eq!(hybrid.aggregate, queue.aggregate);
        assert_eq!(hybrid.trace(), queue.trace());
        assert_eq!(hybrid.power, queue.power);
        assert!(queue.kernel.is_none());
        let telemetry = hybrid.kernel.expect("hybrid runs carry kernel telemetry");
        assert_eq!(telemetry.engine, EngineKind::Hybrid);
        assert_eq!(telemetry.lanes, seeds.len());
        assert_eq!(telemetry.total_cycles, 4 * 60);
        assert!(telemetry.total_pairs > 0);
        assert!(telemetry.program_ops > 0);
        assert!(telemetry.program_bytes > 0);
    }

    #[test]
    fn hybrid_engine_prunes_quiet_cycles_under_held_inputs() {
        let adder = RippleCarryAdder::new(4, AdderStyle::CompoundCell);
        let mut held = vec![(adder.cin, false)];
        for bit in 0..4 {
            held.push((adder.a.bit(bit), bit % 2 == 0));
            held.push((adder.b.bit(bit), bit % 3 == 0));
        }
        let seeds = [1u64, 2];
        let queue = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 20,
            ..Default::default()
        })
        .analyze_seeds(&adder.netlist, &[], &held, &seeds, 1)
        .unwrap();
        let hybrid = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 20,
            engine: EngineKind::Hybrid,
            ..Default::default()
        })
        .analyze_seeds(&adder.netlist, &[], &held, &seeds, 1)
        .unwrap();
        assert_eq!(hybrid.aggregate, queue.aggregate);
        let telemetry = hybrid.kernel.unwrap();
        // A combinational circuit under constant inputs is quiet in every
        // cycle after the first, and every source cone is inert.
        assert_eq!(telemetry.quiet_cycles, 2 * 19);
        assert_eq!(telemetry.quiet_pairs, telemetry.total_pairs);
    }

    #[test]
    fn kernel_engine_matches_a_zero_delay_queue_run() {
        let adder = RippleCarryAdder::new(6, AdderStyle::CompoundCell);
        let buses = [adder.a.clone(), adder.b.clone()];
        let held = [(adder.cin, false)];
        let seeds = [21u64, 42, 63];
        let zero_queue = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 50,
            delay: DelayKind::Zero,
            ..Default::default()
        })
        .analyze_seeds(&adder.netlist, &buses, &held, &seeds, 1)
        .unwrap();
        // The kernel ignores the configured delay model: semantics are
        // functional, i.e. zero-delay.
        let kernel = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 50,
            delay: DelayKind::Unit,
            engine: EngineKind::Kernel,
            ..Default::default()
        })
        .analyze_seeds(&adder.netlist, &buses, &held, &seeds, 1)
        .unwrap();
        assert_eq!(kernel.trace(), zero_queue.trace());
        assert_eq!(kernel.power, zero_queue.power);
        assert_eq!(
            kernel.activity.totals().transitions,
            zero_queue.activity.totals().transitions
        );
        let telemetry = kernel.kernel.unwrap();
        assert_eq!(telemetry.engine, EngineKind::Kernel);
        assert!(telemetry.functional_cell_evals > 0);
    }

    #[test]
    fn hybrid_delay_sweep_matches_the_queue_sweep() {
        let adder = RippleCarryAdder::new(6, AdderStyle::CompoundCell);
        let buses = [adder.a.clone(), adder.b.clone()];
        let held = [(adder.cin, false)];
        let models = vec![
            ("unit".to_string(), DelayKind::Unit),
            ("zero".to_string(), DelayKind::Zero),
        ];
        let seeds = [5u64, 6, 7];
        let queue = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 40,
            ..Default::default()
        })
        .sweep_delays(&adder.netlist, &buses, &held, &models, &seeds, 3)
        .unwrap();
        // `kernel` degrades to the hybrid for sweeps: the comparison under
        // test is between delay models, which need the queue.
        for engine in [EngineKind::Hybrid, EngineKind::Kernel] {
            let swept = GlitchAnalyzer::new(AnalysisConfig {
                cycles: 40,
                engine,
                ..Default::default()
            })
            .sweep_delays(&adder.netlist, &buses, &held, &models, &seeds, 3)
            .unwrap();
            assert_eq!(swept.len(), queue.len());
            for (h, q) in swept.iter().zip(&queue) {
                assert_eq!(h.label, q.label);
                assert_eq!(h.analysis.aggregate, q.analysis.aggregate);
                let telemetry = h.analysis.kernel.as_ref().unwrap();
                assert_eq!(telemetry.engine, EngineKind::Hybrid);
                assert_eq!(telemetry.lanes, seeds.len());
            }
        }
    }

    #[test]
    fn explicit_delay_model_overrides_the_configured_kind() {
        let adder = RippleCarryAdder::new(4, AdderStyle::CompoundCell);
        let analyzer = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 50,
            delay: DelayKind::Unit,
            ..Default::default()
        });
        let buses = [adder.a.clone(), adder.b.clone()];
        let held = [(adder.cin, false)];
        let zero = analyzer
            .analyze_with(&adder.netlist, &buses, &held, glitch_sim::ZeroDelay)
            .unwrap();
        assert_eq!(zero.activity.totals().useless, 0);
    }
}
