//! The single-circuit analysis flow: simulate → count → classify → power.

use glitch_activity::{ActivityReport, ActivityTrace};
use glitch_netlist::{Bus, NetId, Netlist};
use glitch_power::{estimate_power, PowerReport, Technology};
use glitch_sim::{
    CellDelay, ClockedSimulator, DelayModel, RandomStimulus, SimError, UnitDelay, ZeroDelay,
};

/// Which delay model the analysis simulates with.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum DelayConfig {
    /// One delay unit per cell — the paper's standard model.
    #[default]
    Unit,
    /// Zero delay everywhere: the glitch-free reference ("all delay paths
    /// balanced").
    Zero,
    /// Compound adder cells with `d_sum = 2 · d_carry` (Table 2).
    RealisticAdderCells,
    /// A fully custom per-cell delay table.
    Custom(CellDelay),
}

/// Configuration of a [`GlitchAnalyzer`].
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisConfig {
    /// Number of random input vectors (clock cycles) to simulate.
    pub cycles: u64,
    /// Seed of the random stimulus.
    pub seed: u64,
    /// Clock frequency used for the power estimate, in hertz.
    pub frequency: f64,
    /// Technology used for the power estimate.
    pub technology: Technology,
    /// Delay model used for the simulation.
    pub delay: DelayConfig,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            cycles: 1000,
            seed: 0xDA7E_1995,
            frequency: 5e6,
            technology: Technology::cmos_0p8um_5v(),
            delay: DelayConfig::Unit,
        }
    }
}

/// Result of one [`GlitchAnalyzer::analyze`] run.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Per-node transition activity with useful/useless classification.
    pub activity: ActivityReport,
    /// Three-component dynamic power estimate.
    pub power: PowerReport,
    /// The raw per-net trace (node indices are net indices), for custom
    /// post-processing such as per-bit grouping.
    pub trace: ActivityTrace,
    /// Number of cycles that were simulated.
    pub cycles: u64,
}

impl Analysis {
    /// Convenience accessor: the achievable combinational-activity reduction
    /// factor `1 + L/F` if all delay paths were balanced.
    #[must_use]
    pub fn balance_reduction_factor(&self) -> f64 {
        self.activity.totals().balance_reduction_factor()
    }
}

/// Simulates a netlist with seeded random stimuli and produces the paper's
/// transition-activity and power figures.
#[derive(Debug, Clone, Default)]
pub struct GlitchAnalyzer {
    config: AnalysisConfig,
}

impl GlitchAnalyzer {
    /// Creates an analyzer with the given configuration.
    #[must_use]
    pub fn new(config: AnalysisConfig) -> Self {
        GlitchAnalyzer { config }
    }

    /// The analyzer's configuration.
    #[must_use]
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// Simulates `netlist` for the configured number of cycles, driving
    /// `random_buses` with uniform random values each cycle and holding the
    /// `held` single-bit inputs constant.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the netlist is structurally invalid or the
    /// simulation fails to settle.
    pub fn analyze(
        &self,
        netlist: &Netlist,
        random_buses: &[Bus],
        held: &[(NetId, bool)],
    ) -> Result<Analysis, SimError> {
        match &self.config.delay {
            DelayConfig::Unit => self.analyze_with(netlist, random_buses, held, UnitDelay),
            DelayConfig::Zero => self.analyze_with(netlist, random_buses, held, ZeroDelay),
            DelayConfig::RealisticAdderCells => self.analyze_with(
                netlist,
                random_buses,
                held,
                CellDelay::realistic_adder_cells(),
            ),
            DelayConfig::Custom(model) => {
                self.analyze_with(netlist, random_buses, held, model.clone())
            }
        }
    }

    /// Same as [`GlitchAnalyzer::analyze`] but with an explicit delay model,
    /// overriding the configured one.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the netlist is structurally invalid or the
    /// simulation fails to settle.
    pub fn analyze_with<D: DelayModel>(
        &self,
        netlist: &Netlist,
        random_buses: &[Bus],
        held: &[(NetId, bool)],
        delay: D,
    ) -> Result<Analysis, SimError> {
        let mut sim = ClockedSimulator::new(netlist, delay)?;
        let mut stimulus =
            RandomStimulus::new(random_buses.to_vec(), self.config.cycles, self.config.seed);
        for &(net, value) in held {
            stimulus = stimulus.hold(net, value);
        }
        sim.run(stimulus)?;
        let trace = sim.trace().clone();
        let activity = ActivityReport::from_trace(netlist, &trace);
        let power = estimate_power(
            netlist,
            &trace,
            &self.config.technology,
            self.config.frequency,
        );
        Ok(Analysis {
            activity,
            power,
            trace,
            cycles: self.config.cycles,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitch_arith::{AdderStyle, RippleCarryAdder, WallaceTreeMultiplier};

    #[test]
    fn analyzer_reports_activity_and_power() {
        let adder = RippleCarryAdder::new(8, AdderStyle::CompoundCell);
        let analyzer = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 300,
            ..Default::default()
        });
        let analysis = analyzer
            .analyze(
                &adder.netlist,
                &[adder.a.clone(), adder.b.clone()],
                &[(adder.cin, false)],
            )
            .unwrap();
        let totals = analysis.activity.totals();
        assert_eq!(totals.cycles, 300);
        assert!(totals.useful > 0);
        assert!(totals.useless > 0);
        assert!(analysis.power.breakdown.logic > 0.0);
        assert!(analysis.balance_reduction_factor() > 1.0);
        assert_eq!(analysis.cycles, 300);
        assert_eq!(analyzer.config().cycles, 300);
    }

    #[test]
    fn zero_delay_reference_has_no_glitches() {
        let adder = RippleCarryAdder::new(8, AdderStyle::CompoundCell);
        let analyzer = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 200,
            delay: DelayConfig::Zero,
            ..Default::default()
        });
        let analysis = analyzer
            .analyze(
                &adder.netlist,
                &[adder.a.clone(), adder.b.clone()],
                &[(adder.cin, false)],
            )
            .unwrap();
        assert_eq!(analysis.activity.totals().useless, 0);
        assert!(analysis.activity.totals().useful > 0);
    }

    #[test]
    fn unbalanced_cell_delays_increase_glitching() {
        let mult = WallaceTreeMultiplier::new(8, AdderStyle::CompoundCell);
        let buses = [mult.x.clone(), mult.y.clone()];
        let unit = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 200,
            ..Default::default()
        })
        .analyze(&mult.netlist, &buses, &[])
        .unwrap();
        let realistic = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 200,
            delay: DelayConfig::RealisticAdderCells,
            ..Default::default()
        })
        .analyze(&mult.netlist, &buses, &[])
        .unwrap();
        // Table 2: making the sum output slower than the carry output adds
        // delay imbalance and therefore useless transitions.
        assert!(realistic.activity.totals().useless > unit.activity.totals().useless);
        // The useful work is unchanged by the delay model.
        assert_eq!(
            realistic.activity.totals().useful,
            unit.activity.totals().useful
        );
    }

    #[test]
    fn custom_delay_model_is_accepted() {
        let adder = RippleCarryAdder::new(4, AdderStyle::CompoundCell);
        let analyzer = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 50,
            delay: DelayConfig::Custom(CellDelay::new().with_full_adder(3, 1)),
            ..Default::default()
        });
        let analysis = analyzer
            .analyze(
                &adder.netlist,
                &[adder.a.clone(), adder.b.clone()],
                &[(adder.cin, false)],
            )
            .unwrap();
        assert!(analysis.activity.totals().transitions > 0);
    }
}
