//! The single-circuit analysis flow: one simulation session → count →
//! classify → power.

use glitch_activity::{ActivityReport, ActivityTrace};
use glitch_netlist::{Bus, NetId, Netlist};
use glitch_power::{PowerReport, Technology};
use glitch_sim::{
    ActivityProbe, DelayKind, DelayModel, PowerProbe, RandomStimulus, SessionReport, SimError,
    SimSession,
};

/// Configuration of a [`GlitchAnalyzer`].
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisConfig {
    /// Number of random input vectors (clock cycles) to simulate.
    pub cycles: u64,
    /// Seed of the random stimulus.
    pub seed: u64,
    /// Clock frequency used for the power estimate, in hertz.
    pub frequency: f64,
    /// Technology used for the power estimate.
    pub technology: Technology,
    /// Delay model used for the simulation.
    pub delay: DelayKind,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            cycles: 1000,
            seed: 0xDA7E_1995,
            frequency: 5e6,
            technology: Technology::cmos_0p8um_5v(),
            delay: DelayKind::Unit,
        }
    }
}

/// Result of one [`GlitchAnalyzer::analyze`] run.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Per-node transition activity with useful/useless classification.
    pub activity: ActivityReport,
    /// Three-component dynamic power estimate.
    pub power: PowerReport,
    /// The raw per-net trace (node indices are net indices), for custom
    /// post-processing such as per-bit grouping.
    pub trace: ActivityTrace,
    /// Number of cycles that were simulated.
    pub cycles: u64,
}

impl Analysis {
    /// Convenience accessor: the achievable combinational-activity reduction
    /// factor `1 + L/F` if all delay paths were balanced.
    #[must_use]
    pub fn balance_reduction_factor(&self) -> f64 {
        self.activity.totals().balance_reduction_factor()
    }
}

/// Simulates a netlist with seeded random stimuli and produces the paper's
/// transition-activity and power figures — in **one simulation pass**.
///
/// The analyzer is a thin configuration layer over [`SimSession`]: it
/// attaches an [`ActivityProbe`] and a [`PowerProbe`] to a single session
/// and distils their outputs into an [`Analysis`]. Callers that need more
/// observables (a waveform, a transition CSV) add probes to the same
/// session via [`GlitchAnalyzer::session`] and still pay for one pass.
///
/// ```
/// use glitch_core::{AnalysisConfig, GlitchAnalyzer};
/// use glitch_core::arith::{AdderStyle, RippleCarryAdder};
/// use glitch_core::sim::VcdProbe;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let adder = RippleCarryAdder::new(4, AdderStyle::CompoundCell);
/// let analyzer = GlitchAnalyzer::new(AnalysisConfig { cycles: 50, ..Default::default() });
/// // One pass: activity + power + waveform.
/// let mut report = analyzer
///     .session(&adder.netlist, &[adder.a.clone(), adder.b.clone()], &[(adder.cin, false)])
///     .probe(VcdProbe::default())
///     .run()?;
/// let vcd = report.take_probe::<VcdProbe>().unwrap().into_vcd();
/// let analysis = GlitchAnalyzer::analysis(&adder.netlist, report);
/// assert!(vcd.contains("$enddefinitions"));
/// assert!(analysis.activity.totals().transitions > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct GlitchAnalyzer {
    config: AnalysisConfig,
}

impl GlitchAnalyzer {
    /// Creates an analyzer with the given configuration.
    #[must_use]
    pub fn new(config: AnalysisConfig) -> Self {
        GlitchAnalyzer { config }
    }

    /// The analyzer's configuration.
    #[must_use]
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// Builds the configured one-pass session: the seeded random stimulus,
    /// the configured delay model, and the activity + power probes. Attach
    /// further probes before calling [`SimSession::run`].
    #[must_use]
    pub fn session<'a>(
        &self,
        netlist: &'a Netlist,
        random_buses: &[Bus],
        held: &[(NetId, bool)],
    ) -> SimSession<'a> {
        let mut stimulus =
            RandomStimulus::new(random_buses.to_vec(), self.config.cycles, self.config.seed);
        for &(net, value) in held {
            stimulus = stimulus.hold(net, value);
        }
        SimSession::new(netlist)
            .delay(self.config.delay.clone())
            .stimulus(stimulus)
            .probe(ActivityProbe::new())
            .probe(PowerProbe::new(
                self.config.technology,
                self.config.frequency,
            ))
    }

    /// Distils a finished session report (as built by
    /// [`GlitchAnalyzer::session`]) into an [`Analysis`].
    ///
    /// # Panics
    ///
    /// Panics if the report is missing the analyzer's activity or power
    /// probe (i.e. it did not come from [`GlitchAnalyzer::session`]).
    #[must_use]
    pub fn analysis(netlist: &Netlist, mut report: SessionReport) -> Analysis {
        let trace = report
            .take_probe::<ActivityProbe>()
            .expect("analysis sessions carry an ActivityProbe")
            .into_trace();
        let power = report
            .take_probe::<PowerProbe>()
            .expect("analysis sessions carry a PowerProbe")
            .into_report();
        let activity = ActivityReport::from_trace(netlist, &trace);
        Analysis {
            activity,
            power,
            trace,
            cycles: report.cycles(),
        }
    }

    /// Simulates `netlist` once for the configured number of cycles,
    /// driving `random_buses` with uniform random values each cycle and
    /// holding the `held` single-bit inputs constant.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the netlist is structurally invalid or the
    /// simulation fails to settle.
    pub fn analyze(
        &self,
        netlist: &Netlist,
        random_buses: &[Bus],
        held: &[(NetId, bool)],
    ) -> Result<Analysis, SimError> {
        let report = self.session(netlist, random_buses, held).run()?;
        Ok(Self::analysis(netlist, report))
    }

    /// Same as [`GlitchAnalyzer::analyze`] but with an explicit delay model,
    /// overriding the configured one.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the netlist is structurally invalid or the
    /// simulation fails to settle.
    pub fn analyze_with<'a, D: DelayModel + 'a>(
        &self,
        netlist: &'a Netlist,
        random_buses: &[Bus],
        held: &[(NetId, bool)],
        delay: D,
    ) -> Result<Analysis, SimError> {
        let report = self
            .session(netlist, random_buses, held)
            .delay_model(delay)
            .run()?;
        Ok(Self::analysis(netlist, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitch_arith::{AdderStyle, RippleCarryAdder, WallaceTreeMultiplier};
    use glitch_sim::CellDelay;

    #[test]
    fn analyzer_reports_activity_and_power() {
        let adder = RippleCarryAdder::new(8, AdderStyle::CompoundCell);
        let analyzer = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 300,
            ..Default::default()
        });
        let analysis = analyzer
            .analyze(
                &adder.netlist,
                &[adder.a.clone(), adder.b.clone()],
                &[(adder.cin, false)],
            )
            .unwrap();
        let totals = analysis.activity.totals();
        assert_eq!(totals.cycles, 300);
        assert!(totals.useful > 0);
        assert!(totals.useless > 0);
        assert!(analysis.power.breakdown.logic > 0.0);
        assert!(analysis.balance_reduction_factor() > 1.0);
        assert_eq!(analysis.cycles, 300);
        assert_eq!(analyzer.config().cycles, 300);
    }

    #[test]
    fn zero_delay_reference_has_no_glitches() {
        let adder = RippleCarryAdder::new(8, AdderStyle::CompoundCell);
        let analyzer = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 200,
            delay: DelayKind::Zero,
            ..Default::default()
        });
        let analysis = analyzer
            .analyze(
                &adder.netlist,
                &[adder.a.clone(), adder.b.clone()],
                &[(adder.cin, false)],
            )
            .unwrap();
        assert_eq!(analysis.activity.totals().useless, 0);
        assert!(analysis.activity.totals().useful > 0);
    }

    #[test]
    fn unbalanced_cell_delays_increase_glitching() {
        let mult = WallaceTreeMultiplier::new(8, AdderStyle::CompoundCell);
        let buses = [mult.x.clone(), mult.y.clone()];
        let unit = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 200,
            ..Default::default()
        })
        .analyze(&mult.netlist, &buses, &[])
        .unwrap();
        let realistic = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 200,
            delay: DelayKind::RealisticAdderCells,
            ..Default::default()
        })
        .analyze(&mult.netlist, &buses, &[])
        .unwrap();
        // Table 2: making the sum output slower than the carry output adds
        // delay imbalance and therefore useless transitions.
        assert!(realistic.activity.totals().useless > unit.activity.totals().useless);
        // The useful work is unchanged by the delay model.
        assert_eq!(
            realistic.activity.totals().useful,
            unit.activity.totals().useful
        );
    }

    #[test]
    fn custom_delay_model_is_accepted() {
        let adder = RippleCarryAdder::new(4, AdderStyle::CompoundCell);
        let analyzer = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 50,
            delay: DelayKind::Custom(CellDelay::new().with_full_adder(3, 1)),
            ..Default::default()
        });
        let analysis = analyzer
            .analyze(
                &adder.netlist,
                &[adder.a.clone(), adder.b.clone()],
                &[(adder.cin, false)],
            )
            .unwrap();
        assert!(analysis.activity.totals().transitions > 0);
    }

    #[test]
    fn explicit_delay_model_overrides_the_configured_kind() {
        let adder = RippleCarryAdder::new(4, AdderStyle::CompoundCell);
        let analyzer = GlitchAnalyzer::new(AnalysisConfig {
            cycles: 50,
            delay: DelayKind::Unit,
            ..Default::default()
        });
        let buses = [adder.a.clone(), adder.b.clone()];
        let held = [(adder.cin, false)];
        let zero = analyzer
            .analyze_with(&adder.netlist, &buses, &held, glitch_sim::ZeroDelay)
            .unwrap();
        assert_eq!(zero.activity.totals().useless, 0);
    }
}
