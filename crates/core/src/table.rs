//! Plain-text table rendering for experiment output.

use std::fmt;

/// A simple aligned text table used by the experiment binaries to print
/// paper-style result tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with empty
    /// cells; longer rows are truncated.
    pub fn add_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let mut cells: Vec<String> = row.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as comma-separated values.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.header))?;
        writeln!(
            f,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns_and_csv() {
        let mut table = TextTable::new(vec!["circuit", "total", "L/F"]);
        table.add_row(vec!["array 8x8", "58858", "1.51"]);
        table.add_row(vec!["wallace 8x8", "50824", "0.28"]);
        assert_eq!(table.row_count(), 2);
        let text = table.to_string();
        assert!(text.contains("circuit"));
        assert!(text.contains("wallace 8x8"));
        assert!(text.lines().count() >= 4);
        let csv = table.to_csv();
        assert!(csv.starts_with("circuit,total,L/F\n"));
        assert!(csv.contains("array 8x8,58858,1.51"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut table = TextTable::new(vec!["a", "b", "c"]);
        table.add_row(vec!["1"]);
        let csv = table.to_csv();
        assert!(csv.contains("1,,"));
    }
}
