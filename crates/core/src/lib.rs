//! # glitch-core
//!
//! The top-level analysis flow of the workspace, reproducing the DATE'95
//! paper *Analysis and Reduction of Glitches in Synchronous Networks*:
//!
//! * [`GlitchAnalyzer`] — simulate a netlist with random stimuli in **one
//!   session pass** (a `glitch_sim::SimSession` with activity and power
//!   probes), count transitions on every node, classify them into useful
//!   transitions and glitches by parity evaluation, and estimate the
//!   three-component dynamic power (combinational logic / flipflops /
//!   clock).
//! * [`PowerExplorer`] — sweep pipelining depth on a combinational datapath
//!   (the paper's retiming-for-power experiment): each extra register rank
//!   eliminates glitches in the logic but adds flipflop and clock power, so
//!   total power has an interior minimum — the *optimum retiming for power*.
//! * [`TextTable`] — small helper to print paper-style result tables.
//!
//! The heavy lifting lives in the substrate crates re-exported below
//! (`glitch-netlist`, `glitch-sim`, `glitch-activity`, `glitch-analytic`,
//! `glitch-arith`, `glitch-retime`, `glitch-power`); this crate wires them
//! into the workflows a user actually runs.
//!
//! ## Example
//!
//! ```
//! use glitch_core::{AnalysisConfig, GlitchAnalyzer};
//! use glitch_core::arith::{AdderStyle, RippleCarryAdder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let adder = RippleCarryAdder::new(8, AdderStyle::CompoundCell);
//! let analyzer = GlitchAnalyzer::new(AnalysisConfig { cycles: 200, ..AnalysisConfig::default() });
//! let analysis = analyzer
//!     .analyze(&adder.netlist, &[adder.a.clone(), adder.b.clone()], &[(adder.cin, false)])?;
//! let totals = analysis.activity.totals();
//! assert!(totals.useless > 0, "a ripple-carry adder glitches under random inputs");
//! assert!(analysis.power.breakdown.logic > 0.0);
//! # Ok(())
//! # }
//! ```

mod analyzer;
mod check;
mod explore;
mod reduce;
mod table;

pub use analyzer::{
    AggregateAnalysis, Analysis, AnalysisConfig, DelaySweepPoint, DeltaAnalysis, EngineKind,
    GlitchAnalyzer, KernelTelemetry,
};
pub use check::{CheckAnalysis, DeltaCheck};
pub use explore::{
    ExplorationPoint, ExplorationResult, ExploreError, PowerExplorer, SensitivityPoint,
};
pub use reduce::{ReduceScore, ReduceSession};
pub use table::TextTable;

/// The sharded parallel executor, re-exported from `glitch-sim`: fan
/// multi-seed / multi-circuit jobs across worker threads with a
/// deterministic reduction.
pub use glitch_sim::{AggregateReport, ParallelRunner, ShardSummary, SimJob, Spread};

/// The compiled bit-parallel kernel backend, re-exported from
/// `glitch-sim` (which re-exports `glitch-kernel`): compile a netlist
/// once, evaluate 64 stimulus lanes per machine word with two-plane
/// three-valued logic, no event queue. Select it per run with
/// [`AnalysisConfig::engine`].
pub use glitch_sim::{EvalMode, KernelProgram, KernelState};

/// The incremental re-simulation layer, re-exported from `glitch-sim`:
/// record a replayable baseline once, then re-simulate nearby stimuli by
/// replaying unchanged cycles and re-evaluating only dirty fanout cones.
pub use glitch_sim::{DeltaStimulus, IncrementalSession, IncrementalStats, SimBaseline};

/// The delay-model selector, re-exported from `glitch-sim` (which absorbed
/// the old `glitch_core::DelayConfig`).
pub use glitch_sim::DelayKind;

/// Backwards-compatible alias for [`DelayKind`]; prefer the new name.
pub use glitch_sim::DelayKind as DelayConfig;

/// Re-export of the netlist substrate.
pub use glitch_netlist as netlist;

/// Re-export of the event-driven simulator.
pub use glitch_sim as sim;

/// Re-export of the transition-accounting crate.
pub use glitch_activity as activity;

/// Re-export of the closed-form ripple-carry analysis.
pub use glitch_analytic as analytic;

/// Re-export of the circuit generators.
pub use glitch_arith as arith;

/// Re-export of the retiming / pipelining engine.
pub use glitch_retime as retime;

/// Re-export of the power model.
pub use glitch_power as power;

/// Re-export of the verification subsystem (three-valued X-propagation,
/// settle-time budgets, hazard classification, stability assertions).
pub use glitch_verify as verify;
