//! Three-valued logic values: the [`Tri`] domain `{0, 1, X}`.
//!
//! `Tri` is the value domain of X-aware (Kleene-style) evaluation: `X`
//! stands for *unknown* — an uninitialised flipflop, an undriven input, a
//! net whose value depends on one. Evaluation over `Tri` (see
//! [`crate::CellKind::try_evaluate_tri_into`]) is *pessimistic*: a cell
//! output is concrete only when the known inputs force it (a controlling
//! `0` on an AND, a controlling `1` on an OR, agreeing MUX data inputs),
//! and `X` otherwise — never an optimistic guess.
//!
//! The domain carries an **information order**: `X ⊑ 0` and `X ⊑ 1`
//! (unknown is below every concrete value), concrete values are
//! incomparable. Evaluation is monotone with respect to this order —
//! raising an input from `X` to a concrete value can only raise outputs,
//! never flip a concrete output to the other concrete value. Monotonicity
//! is what makes X-propagation sound: whatever the unknown bits turn out
//! to be, every concrete output of the `X` run is already correct.

use std::fmt;

/// A three-valued logic value: `0`, `1` or `X` (unknown).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Tri {
    /// Logic low.
    Zero,
    /// Logic high.
    One,
    /// Unknown.
    #[default]
    X,
}

impl Tri {
    /// `true` when the value is 0 or 1.
    #[must_use]
    pub fn is_known(self) -> bool {
        !matches!(self, Tri::X)
    }

    /// Converts to `bool`, or `None` for `X`.
    #[must_use]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Tri::Zero => Some(false),
            Tri::One => Some(true),
            Tri::X => None,
        }
    }

    /// The information order `self ⊑ other`: `X` is below everything, a
    /// concrete value only below itself. Monotone evaluation preserves
    /// this order pointwise.
    #[must_use]
    pub fn refines_to(self, other: Tri) -> bool {
        self == Tri::X || self == other
    }

    /// Three-valued AND: a controlling `0` dominates any unknown.
    #[must_use]
    pub fn and(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::Zero, _) | (_, Tri::Zero) => Tri::Zero,
            (Tri::One, Tri::One) => Tri::One,
            _ => Tri::X,
        }
    }

    /// Three-valued OR: a controlling `1` dominates any unknown.
    #[must_use]
    pub fn or(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::One, _) | (_, Tri::One) => Tri::One,
            (Tri::Zero, Tri::Zero) => Tri::Zero,
            _ => Tri::X,
        }
    }

    /// Three-valued XOR: XOR has no controlling value, so any unknown
    /// input makes the result unknown.
    #[must_use]
    pub fn xor(self, other: Tri) -> Tri {
        match (self.to_bool(), other.to_bool()) {
            (Some(a), Some(b)) => Tri::from(a ^ b),
            _ => Tri::X,
        }
    }
}

/// Three-valued NOT (`!x`): unknown stays unknown.
impl std::ops::Not for Tri {
    type Output = Tri;

    fn not(self) -> Tri {
        match self {
            Tri::Zero => Tri::One,
            Tri::One => Tri::Zero,
            Tri::X => Tri::X,
        }
    }
}

impl From<bool> for Tri {
    fn from(b: bool) -> Self {
        if b {
            Tri::One
        } else {
            Tri::Zero
        }
    }
}

impl From<Option<bool>> for Tri {
    fn from(b: Option<bool>) -> Self {
        match b {
            Some(b) => Tri::from(b),
            None => Tri::X,
        }
    }
}

impl fmt::Display for Tri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tri::Zero => f.write_str("0"),
            Tri::One => f.write_str("1"),
            Tri::X => f.write_str("x"),
        }
    }
}

/// Three-valued majority of three (the carry function of a full adder):
/// concrete as soon as two inputs agree.
#[must_use]
pub(crate) fn tri_majority3(a: Tri, b: Tri, c: Tri) -> Tri {
    let ones = [a, b, c].iter().filter(|&&v| v == Tri::One).count();
    let zeros = [a, b, c].iter().filter(|&&v| v == Tri::Zero).count();
    if ones >= 2 {
        Tri::One
    } else if zeros >= 2 {
        Tri::Zero
    } else {
        Tri::X
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Tri; 3] = [Tri::Zero, Tri::One, Tri::X];

    #[test]
    fn conversions_and_display() {
        assert_eq!(Tri::from(true), Tri::One);
        assert_eq!(Tri::from(false), Tri::Zero);
        assert_eq!(Tri::from(Some(true)), Tri::One);
        assert_eq!(Tri::from(None), Tri::X);
        assert_eq!(Tri::One.to_bool(), Some(true));
        assert_eq!(Tri::X.to_bool(), None);
        assert_eq!(Tri::default(), Tri::X);
        assert_eq!(Tri::Zero.to_string(), "0");
        assert_eq!(Tri::One.to_string(), "1");
        assert_eq!(Tri::X.to_string(), "x");
    }

    #[test]
    fn information_order() {
        for v in ALL {
            assert!(Tri::X.refines_to(v), "X is the bottom element");
            assert!(v.refines_to(v), "reflexive");
        }
        assert!(!Tri::Zero.refines_to(Tri::One));
        assert!(!Tri::One.refines_to(Tri::Zero));
        assert!(!Tri::One.refines_to(Tri::X));
    }

    #[test]
    fn controlling_values_dominate_unknowns() {
        assert_eq!(Tri::Zero.and(Tri::X), Tri::Zero);
        assert_eq!(Tri::X.and(Tri::Zero), Tri::Zero);
        assert_eq!(Tri::One.and(Tri::X), Tri::X);
        assert_eq!(Tri::One.or(Tri::X), Tri::One);
        assert_eq!(Tri::X.or(Tri::One), Tri::One);
        assert_eq!(Tri::Zero.or(Tri::X), Tri::X);
        assert_eq!(Tri::X.xor(Tri::Zero), Tri::X);
        assert_eq!(!Tri::X, Tri::X);
    }

    #[test]
    fn concrete_cases_match_bool_logic() {
        for a in [false, true] {
            for b in [false, true] {
                let (ta, tb) = (Tri::from(a), Tri::from(b));
                assert_eq!(ta.and(tb), Tri::from(a && b));
                assert_eq!(ta.or(tb), Tri::from(a || b));
                assert_eq!(ta.xor(tb), Tri::from(a ^ b));
                assert_eq!(!ta, Tri::from(!a));
            }
        }
    }

    #[test]
    fn ops_are_monotone_in_both_arguments() {
        // For every pair lo ⊑ hi (pointwise), op(lo) ⊑ op(hi).
        type TriOp = fn(Tri, Tri) -> Tri;
        let ops: [(&str, TriOp); 3] = [("and", Tri::and), ("or", Tri::or), ("xor", Tri::xor)];
        for (name, op) in ops {
            for a_lo in ALL {
                for b_lo in ALL {
                    for a_hi in ALL {
                        for b_hi in ALL {
                            if a_lo.refines_to(a_hi) && b_lo.refines_to(b_hi) {
                                assert!(
                                    op(a_lo, b_lo).refines_to(op(a_hi, b_hi)),
                                    "{name}({a_lo},{b_lo}) must refine to {name}({a_hi},{b_hi})"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn majority_is_concrete_when_two_agree() {
        assert_eq!(tri_majority3(Tri::One, Tri::One, Tri::X), Tri::One);
        assert_eq!(tri_majority3(Tri::Zero, Tri::X, Tri::Zero), Tri::Zero);
        assert_eq!(tri_majority3(Tri::One, Tri::Zero, Tri::X), Tri::X);
        assert_eq!(tri_majority3(Tri::X, Tri::X, Tri::One), Tri::X);
    }
}
