//! Graphviz DOT export for visual inspection of generated circuits.

use std::fmt::Write as _;

use crate::netlist::Netlist;

/// Options controlling [`Netlist::to_dot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DotOptions {
    /// Include net names as edge labels.
    pub edge_labels: bool,
    /// Highlight flipflops with a distinct shape.
    pub highlight_flipflops: bool,
    /// Left-to-right layout instead of top-down.
    pub rankdir_lr: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            edge_labels: true,
            highlight_flipflops: true,
            rankdir_lr: true,
        }
    }
}

impl DotOptions {
    /// Default options.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Netlist {
    /// Renders the netlist as a Graphviz `digraph`.
    ///
    /// Primary inputs and outputs appear as ellipses, combinational cells as
    /// boxes and flipflops (with the default options) as double-bordered
    /// boxes.
    #[must_use]
    pub fn to_dot(&self, options: &DotOptions) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.name());
        if options.rankdir_lr {
            let _ = writeln!(out, "  rankdir=LR;");
        }
        let _ = writeln!(out, "  node [fontname=\"Helvetica\"];");

        for &input in self.inputs() {
            let _ = writeln!(
                out,
                "  \"net{}\" [label=\"{}\", shape=ellipse, style=filled, fillcolor=lightblue];",
                input.index(),
                escape(self.net(input).name())
            );
        }
        for &output in self.outputs() {
            // Output nets that are driven by cells are rendered where the
            // driving cell's edge ends; add a terminal marker node.
            let _ = writeln!(
                out,
                "  \"out{}\" [label=\"{}\", shape=ellipse, style=filled, fillcolor=lightyellow];",
                output.index(),
                escape(self.net(output).name())
            );
        }
        for (id, cell) in self.cells() {
            let shape = if cell.is_sequential() && options.highlight_flipflops {
                "box, peripheries=2, style=filled, fillcolor=lightgrey"
            } else {
                "box"
            };
            let _ = writeln!(
                out,
                "  \"cell{}\" [label=\"{}\\n{}\", shape={}];",
                id.index(),
                cell.kind().mnemonic(),
                escape(cell.name()),
                shape
            );
        }
        // Edges: driver cell (or input) -> each loading cell.
        for (net_id, net) in self.nets() {
            let source = match net.driver() {
                Some(pin) => format!("cell{}", pin.cell.index()),
                None if net.is_primary_input() => format!("net{}", net_id.index()),
                None => continue,
            };
            let label = if options.edge_labels {
                format!(" [label=\"{}\"]", escape(net.name()))
            } else {
                String::new()
            };
            for load in net.loads() {
                let _ = writeln!(
                    out,
                    "  \"{source}\" -> \"cell{}\"{label};",
                    load.cell.index()
                );
            }
            if net.is_primary_output() {
                let _ = writeln!(out, "  \"{source}\" -> \"out{}\"{label};", net_id.index());
            }
        }
        let _ = writeln!(out, "}}");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_cells_and_edges() {
        let mut nl = Netlist::new("dot_test");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.and2(a, b, "x");
        let q = nl.dff(x, "q");
        nl.mark_output(q);
        let dot = nl.to_dot(&DotOptions::default());
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("AND"));
        assert!(dot.contains("DFF"));
        assert!(dot.contains("->"));
        assert!(dot.contains("rankdir=LR"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn labels_can_be_disabled() {
        let mut nl = Netlist::new("dot_test");
        let a = nl.add_input("a");
        let y = nl.inv(a, "y");
        nl.mark_output(y);
        let opts = DotOptions {
            edge_labels: false,
            ..DotOptions::default()
        };
        let dot = nl.to_dot(&opts);
        assert!(!dot.contains("label=\"y\"]"));
    }
}
