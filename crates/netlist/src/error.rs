//! Error type shared by netlist construction and validation.

use std::error::Error;
use std::fmt;

use crate::cell::CellId;
use crate::net::NetId;

/// Errors reported by [`crate::Netlist`] construction helpers and by
/// [`crate::Netlist::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A net name was used for two different nets.
    DuplicateNetName(String),
    /// A net is driven by more than one cell output.
    MultipleDrivers {
        /// The over-driven net.
        net: NetId,
        /// The second driver that attempted to connect.
        cell: CellId,
    },
    /// A net has neither a driver nor the primary-input flag.
    FloatingNet(NetId),
    /// A cell was created with an illegal number of inputs for its kind.
    BadArity {
        /// The offending cell.
        cell: CellId,
        /// How many inputs it was given.
        got: usize,
    },
    /// A combinational cycle (a loop not broken by a flipflop) exists.
    CombinationalLoop {
        /// One cell on the loop, for diagnostics.
        cell: CellId,
    },
    /// A net id from a different (or newer) netlist was used.
    UnknownNet(NetId),
    /// A cell id from a different (or newer) netlist was used.
    UnknownCell(CellId),
    /// A primary input net is also driven by a cell.
    DrivenInput(NetId),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateNetName(name) => {
                write!(f, "duplicate net name `{name}`")
            }
            NetlistError::MultipleDrivers { net, cell } => {
                write!(
                    f,
                    "net {net} already has a driver, cell {cell} cannot drive it too"
                )
            }
            NetlistError::FloatingNet(net) => {
                write!(f, "net {net} has no driver and is not a primary input")
            }
            NetlistError::BadArity { cell, got } => {
                write!(
                    f,
                    "cell {cell} was given {got} inputs, which its kind does not accept"
                )
            }
            NetlistError::CombinationalLoop { cell } => {
                write!(f, "combinational loop through cell {cell}")
            }
            NetlistError::UnknownNet(net) => write!(f, "net {net} does not belong to this netlist"),
            NetlistError::UnknownCell(cell) => {
                write!(f, "cell {cell} does not belong to this netlist")
            }
            NetlistError::DrivenInput(net) => {
                write!(f, "primary input net {net} is also driven by a cell")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let e = NetlistError::FloatingNet(NetId(4));
        let msg = e.to_string();
        assert!(msg.contains("n4"));
        assert!(msg.starts_with(char::is_lowercase));
        let e = NetlistError::DuplicateNetName("sum".into());
        assert!(e.to_string().contains("sum"));
    }
}
