//! Static fanout cones: the dirty-region index behind incremental
//! re-simulation.
//!
//! A *fanout cone* of a set of seed nets is everything those nets can
//! influence within one clock cycle: the seeds themselves, every net
//! reachable from them through combinational cells, the combinational cells
//! along the way, and the flipflops whose D inputs lie inside the cone (the
//! state that can diverge at the *next* cycle).
//!
//! [`ConeIndex`] is computed **once per netlist** — a CSR adjacency of
//! net → combinational-successor nets plus the topological level of every
//! combinational cell (from [`Netlist::levelize`]) — and then answers cone
//! queries in time proportional to the cone, not the netlist. Incremental
//! re-simulation uses it to bound which nets must be diffed against a
//! baseline after a dirty cycle; retiming and reporting use the level
//! annotation to present cones front-to-back.

use crate::cell::CellId;
use crate::error::NetlistError;
use crate::net::NetId;
use crate::netlist::Netlist;

/// A once-per-netlist fanout/level index; see the module documentation.
#[derive(Debug, Clone)]
pub struct ConeIndex {
    /// CSR offsets into `comb_cells`/`comb_targets`, one slice per net.
    comb_offsets: Vec<usize>,
    /// For each (net, combinational load cell) pair: the cell.
    comb_cells: Vec<CellId>,
    /// For the same pairs: one entry per output net of that cell. A cell
    /// with two outputs (a compound adder) contributes two parallel
    /// entries.
    comb_targets: Vec<NetId>,
    /// CSR offsets into `dff_cells`/`dff_targets`, one slice per net.
    dff_offsets: Vec<usize>,
    /// Flipflop cells sampling each net.
    dff_cells: Vec<CellId>,
    /// The Q output nets of those flipflops.
    dff_targets: Vec<NetId>,
    /// Per-cell combinational level (1-based; `None` for flipflops).
    levels: Vec<Option<usize>>,
    /// Longest combinational path, in cells.
    depth: usize,
    net_count: usize,
    comb_cell_count: usize,
}

impl ConeIndex {
    /// Builds the index. The cost is one levelisation plus one pass over
    /// every pin — amortise it by building once and sharing across many
    /// cone queries (and across parallel incremental jobs; the index is
    /// immutable and `Sync`).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalLoop`] if the netlist cannot be
    /// levelised.
    pub fn build(netlist: &Netlist) -> Result<ConeIndex, NetlistError> {
        let levelization = netlist.levelize()?;
        let n = netlist.net_count();
        let mut levels = vec![None; netlist.cell_count()];
        for id in netlist.combinational_cells() {
            levels[id.index()] = levelization.level(id);
        }

        let mut comb_offsets = Vec::with_capacity(n + 1);
        let mut comb_cells = Vec::new();
        let mut comb_targets = Vec::new();
        let mut dff_offsets = Vec::with_capacity(n + 1);
        let mut dff_cells = Vec::new();
        let mut dff_targets = Vec::new();
        for (_, net) in netlist.nets() {
            comb_offsets.push(comb_cells.len());
            dff_offsets.push(dff_cells.len());
            for load in net.loads() {
                let cell = netlist.cell(load.cell);
                if cell.is_sequential() {
                    dff_cells.push(load.cell);
                    dff_targets.push(cell.outputs()[0]);
                } else {
                    for &out in cell.outputs() {
                        comb_cells.push(load.cell);
                        comb_targets.push(out);
                    }
                }
            }
        }
        comb_offsets.push(comb_cells.len());
        dff_offsets.push(dff_cells.len());

        Ok(ConeIndex {
            comb_offsets,
            comb_cells,
            comb_targets,
            dff_offsets,
            dff_cells,
            dff_targets,
            levels,
            depth: levelization.depth(),
            net_count: n,
            comb_cell_count: netlist.combinational_cells().count(),
        })
    }

    /// Number of nets the index covers.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.net_count
    }

    /// Number of combinational cells in the indexed netlist.
    #[must_use]
    pub fn combinational_cell_count(&self) -> usize {
        self.comb_cell_count
    }

    /// Longest combinational path, in cells (the levelisation depth).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Topological level of a cell (1-based; `None` for flipflops).
    #[must_use]
    pub fn level(&self, cell: CellId) -> Option<usize> {
        self.levels.get(cell.index()).copied().flatten()
    }

    /// The combinational fanout cone of a set of seed nets.
    ///
    /// Duplicate and repeated seeds are fine; the traversal visits every
    /// net and cell at most once.
    ///
    /// # Panics
    ///
    /// Panics if a seed net is out of range for the indexed netlist.
    #[must_use]
    pub fn cone<I>(&self, seeds: I) -> FanoutCone
    where
        I: IntoIterator<Item = NetId>,
    {
        let mut net_seen = vec![false; self.net_count];
        let mut cell_seen = vec![false; self.levels.len()];
        let mut nets: Vec<NetId> = Vec::new();
        let mut cells: Vec<CellId> = Vec::new();
        let mut dffs: Vec<CellId> = Vec::new();
        let mut dff_outputs: Vec<NetId> = Vec::new();

        let mut frontier: Vec<NetId> = Vec::new();
        for seed in seeds {
            assert!(
                seed.index() < self.net_count,
                "seed net {seed} out of range for this index"
            );
            if !net_seen[seed.index()] {
                net_seen[seed.index()] = true;
                nets.push(seed);
                frontier.push(seed);
            }
        }

        while let Some(net) = frontier.pop() {
            let idx = net.index();
            let comb = self.comb_offsets[idx]..self.comb_offsets[idx + 1];
            for (cell, &target) in self.comb_cells[comb.clone()]
                .iter()
                .zip(&self.comb_targets[comb])
            {
                if !cell_seen[cell.index()] {
                    cell_seen[cell.index()] = true;
                    cells.push(*cell);
                }
                if !net_seen[target.index()] {
                    net_seen[target.index()] = true;
                    nets.push(target);
                    frontier.push(target);
                }
            }
            let seq = self.dff_offsets[idx]..self.dff_offsets[idx + 1];
            for (cell, &q) in self.dff_cells[seq.clone()]
                .iter()
                .zip(&self.dff_targets[seq])
            {
                if !cell_seen[cell.index()] {
                    cell_seen[cell.index()] = true;
                    dffs.push(*cell);
                    dff_outputs.push(q);
                }
                // Q outputs are *next-cycle* state; the combinational
                // traversal stops here. The caller re-seeds from Q when the
                // sampled state actually diverges.
            }
        }

        nets.sort_unstable();
        // Front-to-back order: cells sorted by topological level, ties by
        // id, so consumers can walk the cone in evaluation order.
        cells.sort_unstable_by_key(|c| (self.levels[c.index()].unwrap_or(0), c.index()));
        let mut seq: Vec<(CellId, NetId)> = dffs.into_iter().zip(dff_outputs).collect();
        seq.sort_unstable_by_key(|(c, _)| c.index());
        let (dffs, dff_outputs) = seq.into_iter().unzip();
        FanoutCone {
            nets,
            cells,
            dffs,
            dff_outputs,
            total_comb_cells: self.comb_cell_count,
        }
    }
}

impl Netlist {
    /// Builds the once-per-netlist [`ConeIndex`]; see the `cone` module
    /// documentation.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalLoop`] if the netlist cannot be
    /// levelised.
    pub fn cone_index(&self) -> Result<ConeIndex, NetlistError> {
        ConeIndex::build(self)
    }
}

/// The result of one [`ConeIndex::cone`] query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FanoutCone {
    nets: Vec<NetId>,
    cells: Vec<CellId>,
    dffs: Vec<CellId>,
    dff_outputs: Vec<NetId>,
    total_comb_cells: usize,
}

impl FanoutCone {
    /// Every net the seeds can influence within one cycle (the seeds
    /// themselves included), in ascending id order.
    #[must_use]
    pub fn nets(&self) -> &[NetId] {
        &self.nets
    }

    /// The combinational cells inside the cone, sorted by topological level
    /// (front of the cone first).
    #[must_use]
    pub fn cells(&self) -> &[CellId] {
        &self.cells
    }

    /// Flipflops whose D input lies inside the cone — the state that can
    /// diverge at the next cycle.
    #[must_use]
    pub fn flipflops(&self) -> &[CellId] {
        &self.dffs
    }

    /// The Q output nets of [`FanoutCone::flipflops`], in the same order.
    #[must_use]
    pub fn flipflop_outputs(&self) -> &[NetId] {
        &self.dff_outputs
    }

    /// `true` when the cone reaches at least one flipflop (re-simulation
    /// cannot stop at the cycle boundary without checking the sampled
    /// state).
    #[must_use]
    pub fn reaches_flipflop(&self) -> bool {
        !self.dffs.is_empty()
    }

    /// Fraction of the netlist's combinational cells inside the cone
    /// (0 for an empty netlist).
    #[must_use]
    pub fn cell_fraction(&self) -> f64 {
        if self.total_comb_cells == 0 {
            0.0
        } else {
            self.cells.len() as f64 / self.total_comb_cells as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// a ─inv─ x ─and─ y ─dff─ q ─inv─ z, with b feeding the and.
    fn mixed_netlist() -> (Netlist, NetId, NetId, NetId, NetId, NetId, NetId) {
        let mut nl = Netlist::new("cone");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.inv(a, "x");
        let y = nl.and2(x, b, "y");
        let q = nl.dff(y, "q");
        let z = nl.inv(q, "z");
        nl.mark_output(z);
        (nl, a, b, x, y, q, z)
    }

    #[test]
    fn cone_follows_combinational_fanout_and_stops_at_flipflops() {
        let (nl, a, _, x, y, q, z) = mixed_netlist();
        let index = nl.cone_index().unwrap();
        let cone = index.cone([a]);
        assert_eq!(cone.nets(), [a, x, y]);
        assert_eq!(cone.cells().len(), 2, "inv + and");
        assert!(cone.reaches_flipflop());
        assert_eq!(cone.flipflop_outputs(), [q]);
        assert!(!cone.nets().contains(&q), "Q is next-cycle state");
        assert!(!cone.nets().contains(&z));
        // Re-seeding from the Q output covers the downstream logic.
        let next = index.cone([q]);
        assert_eq!(next.nets(), [q, z]);
        assert!(!next.reaches_flipflop());
        assert_eq!(next.cells().len(), 1);
    }

    #[test]
    fn cone_cells_come_back_in_level_order() {
        let mut nl = Netlist::new("levels");
        let a = nl.add_input("a");
        let mut cur = a;
        for i in 0..6 {
            cur = nl.inv(cur, &format!("x{i}"));
        }
        nl.mark_output(cur);
        let index = nl.cone_index().unwrap();
        assert_eq!(index.depth(), 6);
        let cone = index.cone([a]);
        assert_eq!(cone.cells().len(), 6);
        let levels: Vec<usize> = cone
            .cells()
            .iter()
            .map(|&c| index.level(c).unwrap())
            .collect();
        assert_eq!(levels, [1, 2, 3, 4, 5, 6]);
        assert!((cone.cell_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_and_multiple_seeds_union() {
        let (nl, a, b, x, y, _, _) = mixed_netlist();
        let index = nl.cone_index().unwrap();
        let once = index.cone([a, b]);
        let twice = index.cone([a, a, b, a]);
        assert_eq!(once, twice);
        assert_eq!(once.nets(), [a, b, x, y]);
        // b only feeds the AND gate: a strictly smaller cone.
        let b_only = index.cone([b]);
        assert_eq!(b_only.nets(), [b, y]);
        assert_eq!(b_only.cells().len(), 1);
        assert!(b_only.cell_fraction() < once.cell_fraction());
    }

    #[test]
    fn empty_seed_set_is_an_empty_cone() {
        let (nl, ..) = mixed_netlist();
        let index = nl.cone_index().unwrap();
        let cone = index.cone([]);
        assert!(cone.nets().is_empty());
        assert!(cone.cells().is_empty());
        assert!(!cone.reaches_flipflop());
        assert_eq!(cone.cell_fraction(), 0.0);
        assert_eq!(index.net_count(), nl.net_count());
        assert_eq!(index.combinational_cell_count(), 3);
    }

    #[test]
    fn loops_are_rejected_at_build_time() {
        let mut nl = Netlist::new("loop");
        let a = nl.add_input("a");
        let z = nl.add_net("z");
        let y = nl.add_net("y");
        nl.add_cell(crate::cell::CellKind::And, "g1", vec![a, z], vec![y])
            .unwrap();
        nl.add_cell(crate::cell::CellKind::Inv, "g2", vec![y], vec![z])
            .unwrap();
        assert!(ConeIndex::build(&nl).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_seed_panics() {
        let (nl, ..) = mixed_netlist();
        let index = nl.cone_index().unwrap();
        let _ = index.cone([NetId::from_index(999)]);
    }
}
