//! Netlist statistics: cell histograms, structural figures of merit.

use std::collections::BTreeMap;
use std::fmt;

use crate::cell::CellKind;
use crate::netlist::Netlist;

/// Summary statistics of one [`Netlist`], as produced by
/// [`Netlist::stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct NetlistStats {
    name: String,
    cells_by_kind: BTreeMap<&'static str, usize>,
    cell_count: usize,
    net_count: usize,
    dff_count: usize,
    input_count: usize,
    output_count: usize,
    max_fanout: usize,
    gate_equivalents: f64,
    combinational_depth: Option<usize>,
}

impl NetlistStats {
    /// Number of cells whose [`CellKind`] has the given mnemonic-equivalent
    /// kind.
    #[must_use]
    pub fn count_of(&self, kind: CellKind) -> usize {
        self.cells_by_kind
            .get(kind.mnemonic())
            .copied()
            .unwrap_or(0)
    }

    /// Histogram of cell mnemonics to instance counts.
    #[must_use]
    pub fn cells_by_kind(&self) -> &BTreeMap<&'static str, usize> {
        &self.cells_by_kind
    }

    /// Total cell count.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.cell_count
    }

    /// Total net count.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.net_count
    }

    /// Flipflop count.
    #[must_use]
    pub fn dff_count(&self) -> usize {
        self.dff_count
    }

    /// Primary input count.
    #[must_use]
    pub fn input_count(&self) -> usize {
        self.input_count
    }

    /// Primary output count.
    #[must_use]
    pub fn output_count(&self) -> usize {
        self.output_count
    }

    /// Largest net fanout.
    #[must_use]
    pub fn max_fanout(&self) -> usize {
        self.max_fanout
    }

    /// Total gate-equivalent complexity.
    #[must_use]
    pub fn gate_equivalents(&self) -> f64 {
        self.gate_equivalents
    }

    /// Longest combinational path in cells, or `None` if the netlist has a
    /// combinational loop.
    #[must_use]
    pub fn combinational_depth(&self) -> Option<usize> {
        self.combinational_depth
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "netlist `{}`", self.name)?;
        writeln!(
            f,
            "  cells: {}  nets: {}  flipflops: {}  inputs: {}  outputs: {}",
            self.cell_count, self.net_count, self.dff_count, self.input_count, self.output_count
        )?;
        match self.combinational_depth {
            Some(d) => writeln!(
                f,
                "  combinational depth: {d}  max fanout: {}",
                self.max_fanout
            )?,
            None => writeln!(
                f,
                "  combinational depth: (cyclic)  max fanout: {}",
                self.max_fanout
            )?,
        }
        writeln!(f, "  gate equivalents: {:.1}", self.gate_equivalents)?;
        for (kind, count) in &self.cells_by_kind {
            writeln!(f, "    {kind:>7}: {count}")?;
        }
        Ok(())
    }
}

impl Netlist {
    /// Computes summary statistics for this netlist.
    #[must_use]
    pub fn stats(&self) -> NetlistStats {
        let mut cells_by_kind: BTreeMap<&'static str, usize> = BTreeMap::new();
        for (_, cell) in self.cells() {
            *cells_by_kind.entry(cell.kind().mnemonic()).or_insert(0) += 1;
        }
        let max_fanout = self.nets().map(|(_, n)| n.fanout()).max().unwrap_or(0);
        NetlistStats {
            name: self.name().to_string(),
            cells_by_kind,
            cell_count: self.cell_count(),
            net_count: self.net_count(),
            dff_count: self.dff_count(),
            input_count: self.inputs().len(),
            output_count: self.outputs().len(),
            max_fanout,
            gate_equivalents: self.gate_equivalents(),
            combinational_depth: self.combinational_depth().ok(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_full_adder() {
        let mut nl = Netlist::new("fa");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let cin = nl.add_input("cin");
        let (s, c) = nl.full_adder(a, b, cin, "fa0");
        nl.mark_output(s);
        nl.mark_output(c);
        let stats = nl.stats();
        assert_eq!(stats.cell_count(), 1);
        assert_eq!(stats.count_of(CellKind::FullAdder), 1);
        assert_eq!(stats.count_of(CellKind::Xor), 0);
        assert_eq!(stats.input_count(), 3);
        assert_eq!(stats.output_count(), 2);
        assert_eq!(stats.dff_count(), 0);
        assert_eq!(stats.combinational_depth(), Some(1));
        assert!(stats.gate_equivalents() > 0.0);
        let text = stats.to_string();
        assert!(text.contains("FA"));
        assert!(text.contains("netlist `fa`"));
    }

    #[test]
    fn max_fanout_tracks_busiest_net() {
        let mut nl = Netlist::new("fan");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        for i in 0..5 {
            let x = nl.and2(a, b, &format!("x{i}"));
            nl.mark_output(x);
        }
        assert_eq!(nl.stats().max_fanout(), 5);
    }
}
