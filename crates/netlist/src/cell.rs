//! Logic cell library: the [`CellKind`] enumeration and the [`Cell`] instance
//! record.
//!
//! Cells are intentionally simple: a kind, a name, an ordered list of input
//! nets and an ordered list of output nets. Compound cells (half adder, full
//! adder) have more than one output; everything else has exactly one.

use std::fmt;

use crate::net::NetId;
use crate::tri::{tri_majority3, Tri};

/// Identifier of a cell inside one [`crate::Netlist`].
///
/// Cell ids are dense indices assigned in creation order; they are only
/// meaningful for the netlist that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId(pub(crate) usize);

impl CellId {
    /// Returns the dense index backing this id.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }

    /// Builds a `CellId` from a raw index.
    ///
    /// Intended for deserialization-style use; handing an out-of-range index
    /// to a netlist accessor will panic there, not here.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        CellId(index)
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Initial (power-on / reset) state of a D-flipflop.
///
/// BLIF `.latch` lines carry an optional init digit; `0` and `1` map to
/// [`DffInit::Zero`] and [`DffInit::One`], while `2` (don't care) and `3`
/// (unknown) map to [`DffInit::DontCare`], leaving the choice to the
/// simulator's configured default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DffInit {
    /// The flipflop resets to logic 0.
    Zero,
    /// The flipflop resets to logic 1.
    One,
    /// No initial value was specified; the simulator default applies.
    #[default]
    DontCare,
}

impl DffInit {
    /// The reset value as a `bool`, or `None` for [`DffInit::DontCare`].
    #[must_use]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            DffInit::Zero => Some(false),
            DffInit::One => Some(true),
            DffInit::DontCare => None,
        }
    }

    /// The BLIF init digit (`0`, `1` or `3`) for this reset state.
    #[must_use]
    pub fn blif_digit(self) -> char {
        match self {
            DffInit::Zero => '0',
            DffInit::One => '1',
            DffInit::DontCare => '3',
        }
    }
}

impl From<bool> for DffInit {
    fn from(b: bool) -> Self {
        if b {
            DffInit::One
        } else {
            DffInit::Zero
        }
    }
}

/// Why a combinational evaluation could not be performed.
///
/// Returned by [`CellKind::try_evaluate_into`] so that callers driving
/// untrusted netlists (long batch or parallel simulation runs in
/// particular) can surface a recoverable error instead of aborting the
/// process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvalError {
    /// The cell is sequential; its output is defined by the clocking
    /// discipline, not by a combinational function.
    Sequential(CellKind),
    /// The number of supplied inputs is illegal for the kind.
    BadArity {
        /// The kind that was evaluated.
        kind: CellKind,
        /// The number of inputs supplied.
        inputs: usize,
    },
    /// The output buffer cannot hold every output pin of the kind.
    OutputBufferTooSmall {
        /// The kind that was evaluated.
        kind: CellKind,
        /// The buffer length supplied.
        have: usize,
        /// The length required ([`CellKind::output_count`]).
        need: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Sequential(kind) => {
                write!(f, "{} has no combinational evaluation", kind.mnemonic())
            }
            EvalError::BadArity { kind, inputs } => write!(
                f,
                "cell kind {} does not accept {inputs} inputs",
                kind.mnemonic()
            ),
            EvalError::OutputBufferTooSmall { kind, have, need } => write!(
                f,
                "output buffer too small for {} (have {have}, need {need})",
                kind.mnemonic()
            ),
        }
    }
}

impl std::error::Error for EvalError {}

/// The kinds of cells understood by the simulator, the retimer and the power
/// model.
///
/// Variable-arity gates (`And`, `Or`, `Nand`, `Nor`, `Xor`, `Xnor`) take two
/// or more inputs; their arity is implied by the number of connected input
/// nets. Compound cells have a fixed pin interface documented per variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Constant driver (`false` = logic 0, `true` = logic 1). No inputs.
    Const(bool),
    /// Non-inverting buffer. 1 input, 1 output.
    Buf,
    /// Inverter. 1 input, 1 output.
    Inv,
    /// N-ary AND (N >= 2).
    And,
    /// N-ary OR (N >= 2).
    Or,
    /// N-ary NAND (N >= 2).
    Nand,
    /// N-ary NOR (N >= 2).
    Nor,
    /// N-ary XOR (N >= 2), true when an odd number of inputs are true.
    Xor,
    /// N-ary XNOR (N >= 2), true when an even number of inputs are true.
    Xnor,
    /// 2-to-1 multiplexer. Inputs `[sel, a, b]`; output is `a` when `sel` is
    /// 0 and `b` when `sel` is 1.
    Mux2,
    /// 3-input majority gate (the carry function of a full adder).
    Maj3,
    /// Half adder. Inputs `[a, b]`; outputs `[sum, carry]`.
    HalfAdder,
    /// Full adder. Inputs `[a, b, cin]`; outputs `[sum, carry]`.
    FullAdder,
    /// Positive-edge D-flipflop on the single implicit clock.
    /// Input `[d]`, output `[q]`. Sequential: breaks combinational paths.
    Dff,
}

impl CellKind {
    /// Convenience label used by [`crate::NetlistStats`] for XOR gates.
    pub const XOR_LABEL: CellKind = CellKind::Xor;

    /// Returns `true` for cells that store state across clock cycles.
    #[must_use]
    pub fn is_sequential(self) -> bool {
        matches!(self, CellKind::Dff)
    }

    /// Returns `true` for purely combinational cells.
    #[must_use]
    pub fn is_combinational(self) -> bool {
        !self.is_sequential()
    }

    /// Number of output pins of this cell kind.
    #[must_use]
    pub fn output_count(self) -> usize {
        match self {
            CellKind::HalfAdder | CellKind::FullAdder => 2,
            _ => 1,
        }
    }

    /// Fixed input arity, or `None` for variable-arity gates (which accept
    /// two or more inputs).
    #[must_use]
    pub fn fixed_input_arity(self) -> Option<usize> {
        match self {
            CellKind::Const(_) => Some(0),
            CellKind::Buf | CellKind::Inv | CellKind::Dff => Some(1),
            CellKind::HalfAdder => Some(2),
            CellKind::Mux2 | CellKind::Maj3 | CellKind::FullAdder => Some(3),
            CellKind::And
            | CellKind::Or
            | CellKind::Nand
            | CellKind::Nor
            | CellKind::Xor
            | CellKind::Xnor => None,
        }
    }

    /// Minimum number of inputs this kind accepts.
    #[must_use]
    pub fn min_input_arity(self) -> usize {
        self.fixed_input_arity().unwrap_or(2)
    }

    /// Checks whether `n` inputs is a legal arity for this kind.
    #[must_use]
    pub fn accepts_arity(self, n: usize) -> bool {
        match self.fixed_input_arity() {
            Some(k) => n == k,
            None => n >= 2,
        }
    }

    /// Short mnemonic used in reports and DOT output.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            CellKind::Const(false) => "CONST0",
            CellKind::Const(true) => "CONST1",
            CellKind::Buf => "BUF",
            CellKind::Inv => "INV",
            CellKind::And => "AND",
            CellKind::Or => "OR",
            CellKind::Nand => "NAND",
            CellKind::Nor => "NOR",
            CellKind::Xor => "XOR",
            CellKind::Xnor => "XNOR",
            CellKind::Mux2 => "MUX2",
            CellKind::Maj3 => "MAJ3",
            CellKind::HalfAdder => "HA",
            CellKind::FullAdder => "FA",
            CellKind::Dff => "DFF",
        }
    }

    /// Evaluates the combinational function of this cell for two-valued
    /// inputs, writing one value per output pin into `outputs` — the
    /// checked, non-panicking form of [`CellKind::evaluate_into`].
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] if the number of inputs is illegal for this
    /// kind, if `outputs` is shorter than [`CellKind::output_count`], or if
    /// called on a sequential cell ([`CellKind::Dff`]), whose output is
    /// defined by the clocking discipline rather than by a combinational
    /// function. A malformed netlist therefore surfaces as a recoverable
    /// error instead of aborting a long (possibly parallel) simulation run.
    pub fn try_evaluate_into(self, inputs: &[bool], outputs: &mut [bool]) -> Result<(), EvalError> {
        if matches!(self, CellKind::Dff) {
            return Err(EvalError::Sequential(self));
        }
        if !self.accepts_arity(inputs.len()) {
            return Err(EvalError::BadArity {
                kind: self,
                inputs: inputs.len(),
            });
        }
        if outputs.len() < self.output_count() {
            return Err(EvalError::OutputBufferTooSmall {
                kind: self,
                have: outputs.len(),
                need: self.output_count(),
            });
        }
        match self {
            CellKind::Const(v) => outputs[0] = v,
            CellKind::Buf => outputs[0] = inputs[0],
            CellKind::Inv => outputs[0] = !inputs[0],
            CellKind::And => outputs[0] = inputs.iter().all(|&v| v),
            CellKind::Or => outputs[0] = inputs.iter().any(|&v| v),
            CellKind::Nand => outputs[0] = !inputs.iter().all(|&v| v),
            CellKind::Nor => outputs[0] = !inputs.iter().any(|&v| v),
            CellKind::Xor => outputs[0] = inputs.iter().filter(|&&v| v).count() % 2 == 1,
            CellKind::Xnor => outputs[0] = inputs.iter().filter(|&&v| v).count() % 2 == 0,
            CellKind::Mux2 => outputs[0] = if inputs[0] { inputs[2] } else { inputs[1] },
            CellKind::Maj3 => {
                outputs[0] = majority3(inputs[0], inputs[1], inputs[2]);
            }
            CellKind::HalfAdder => {
                outputs[0] = inputs[0] ^ inputs[1];
                outputs[1] = inputs[0] && inputs[1];
            }
            CellKind::FullAdder => {
                outputs[0] = inputs[0] ^ inputs[1] ^ inputs[2];
                outputs[1] = majority3(inputs[0], inputs[1], inputs[2]);
            }
            // Handled by the Sequential early-return above.
            CellKind::Dff => unreachable!("Dff evaluation rejected above"),
        }
        Ok(())
    }

    /// Checked evaluation returning the outputs as a freshly allocated
    /// vector; see [`CellKind::try_evaluate_into`] for the error conditions.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] for sequential cells and illegal arities.
    pub fn try_evaluate(self, inputs: &[bool]) -> Result<Vec<bool>, EvalError> {
        let mut out = vec![false; self.output_count()];
        self.try_evaluate_into(inputs, &mut out)?;
        Ok(out)
    }

    /// Evaluates the combinational function of this cell over the
    /// three-valued domain `{0, 1, X}`, writing one [`Tri`] per output pin
    /// into `outputs`.
    ///
    /// The tables are *pessimistic* (Kleene-style): an output is concrete
    /// exactly when the known inputs force it — a controlling `0` on an
    /// AND/NAND, a controlling `1` on an OR/NOR, two agreeing majority
    /// inputs, a MUX whose select is known (or whose data inputs agree) —
    /// and `X` otherwise. XOR-class gates have no controlling value, so any
    /// `X` input makes their output `X`.
    ///
    /// Two properties are load-bearing for the verification subsystem and
    /// are pinned by `tests/tri_props.rs`:
    ///
    /// * **concrete agreement** — on all-known inputs the result is
    ///   bit-identical to [`CellKind::try_evaluate_into`];
    /// * **monotonicity** — raising any input from `X` to a concrete value
    ///   never flips a concrete output ([`Tri::refines_to`] pointwise).
    ///
    /// # Errors
    ///
    /// The same conditions as [`CellKind::try_evaluate_into`]: sequential
    /// cells, illegal arities and short output buffers.
    pub fn try_evaluate_tri_into(
        self,
        inputs: &[Tri],
        outputs: &mut [Tri],
    ) -> Result<(), EvalError> {
        if matches!(self, CellKind::Dff) {
            return Err(EvalError::Sequential(self));
        }
        if !self.accepts_arity(inputs.len()) {
            return Err(EvalError::BadArity {
                kind: self,
                inputs: inputs.len(),
            });
        }
        if outputs.len() < self.output_count() {
            return Err(EvalError::OutputBufferTooSmall {
                kind: self,
                have: outputs.len(),
                need: self.output_count(),
            });
        }
        match self {
            CellKind::Const(v) => outputs[0] = Tri::from(v),
            CellKind::Buf => outputs[0] = inputs[0],
            CellKind::Inv => outputs[0] = !inputs[0],
            CellKind::And => outputs[0] = inputs.iter().fold(Tri::One, |acc, &v| acc.and(v)),
            CellKind::Or => outputs[0] = inputs.iter().fold(Tri::Zero, |acc, &v| acc.or(v)),
            CellKind::Nand => {
                outputs[0] = !inputs.iter().fold(Tri::One, |acc, &v| acc.and(v));
            }
            CellKind::Nor => {
                outputs[0] = !inputs.iter().fold(Tri::Zero, |acc, &v| acc.or(v));
            }
            CellKind::Xor => outputs[0] = inputs.iter().fold(Tri::Zero, |acc, &v| acc.xor(v)),
            CellKind::Xnor => {
                outputs[0] = !inputs.iter().fold(Tri::Zero, |acc, &v| acc.xor(v));
            }
            CellKind::Mux2 => {
                outputs[0] = match inputs[0] {
                    Tri::Zero => inputs[1],
                    Tri::One => inputs[2],
                    // Unknown select: concrete only when both data inputs
                    // agree on a known value.
                    Tri::X => {
                        if inputs[1] == inputs[2] {
                            inputs[1]
                        } else {
                            Tri::X
                        }
                    }
                };
            }
            CellKind::Maj3 => outputs[0] = tri_majority3(inputs[0], inputs[1], inputs[2]),
            CellKind::HalfAdder => {
                outputs[0] = inputs[0].xor(inputs[1]);
                outputs[1] = inputs[0].and(inputs[1]);
            }
            CellKind::FullAdder => {
                outputs[0] = inputs[0].xor(inputs[1]).xor(inputs[2]);
                outputs[1] = tri_majority3(inputs[0], inputs[1], inputs[2]);
            }
            // Handled by the Sequential early-return above.
            CellKind::Dff => unreachable!("Dff evaluation rejected above"),
        }
        Ok(())
    }

    /// Three-valued evaluation returning the outputs as a freshly allocated
    /// vector; see [`CellKind::try_evaluate_tri_into`].
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] for sequential cells and illegal arities.
    pub fn try_evaluate_tri(self, inputs: &[Tri]) -> Result<Vec<Tri>, EvalError> {
        let mut out = vec![Tri::X; self.output_count()];
        self.try_evaluate_tri_into(inputs, &mut out)?;
        Ok(out)
    }

    /// Evaluates the combinational function of this cell for two-valued
    /// inputs, writing one value per output pin into `outputs`.
    ///
    /// # Panics
    ///
    /// Panics under the [`CellKind::try_evaluate_into`] error conditions:
    /// an illegal input arity, an `outputs` buffer shorter than
    /// [`CellKind::output_count`], or a sequential cell ([`CellKind::Dff`]).
    /// Use the checked form when the netlist is untrusted.
    pub fn evaluate_into(self, inputs: &[bool], outputs: &mut [bool]) {
        if let Err(e) = self.try_evaluate_into(inputs, outputs) {
            panic!("{e}");
        }
    }

    /// Evaluates the combinational function and returns the outputs as a
    /// freshly allocated vector. Convenience wrapper around
    /// [`CellKind::evaluate_into`]; see that method for the panic conditions.
    #[must_use]
    pub fn evaluate(self, inputs: &[bool]) -> Vec<bool> {
        let mut out = vec![false; self.output_count()];
        self.evaluate_into(inputs, &mut out);
        out
    }

    /// Approximate transistor-pair complexity of the cell, used by the power
    /// model's default capacitance estimates and by netlist statistics.
    ///
    /// The numbers are standard-cell-ish gate-equivalent counts, not exact
    /// transistor counts of any particular library.
    #[must_use]
    pub fn gate_equivalents(self) -> f64 {
        match self {
            CellKind::Const(_) => 0.0,
            CellKind::Buf => 0.5,
            CellKind::Inv => 0.5,
            CellKind::And | CellKind::Or => 1.25,
            CellKind::Nand | CellKind::Nor => 1.0,
            CellKind::Xor | CellKind::Xnor => 2.5,
            CellKind::Mux2 => 2.0,
            CellKind::Maj3 => 2.0,
            CellKind::HalfAdder => 3.0,
            CellKind::FullAdder => 6.0,
            CellKind::Dff => 6.0,
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Majority of three: true when at least two inputs are true (the carry
/// function of a full adder).
fn majority3(a: bool, b: bool, c: bool) -> bool {
    u8::from(a) + u8::from(b) + u8::from(c) >= 2
}

/// One cell instance inside a [`crate::Netlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    pub(crate) kind: CellKind,
    pub(crate) name: String,
    pub(crate) inputs: Vec<NetId>,
    pub(crate) outputs: Vec<NetId>,
    pub(crate) dff_init: DffInit,
}

impl Cell {
    /// The cell's kind.
    #[must_use]
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// The instance name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Ordered input nets.
    #[must_use]
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Ordered output nets.
    #[must_use]
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Returns `true` when this instance stores state (a D-flipflop).
    #[must_use]
    pub fn is_sequential(&self) -> bool {
        self.kind.is_sequential()
    }

    /// The flipflop's initial state. Always [`DffInit::DontCare`] for
    /// combinational cells.
    #[must_use]
    pub fn dff_init(&self) -> DffInit {
        self.dff_init
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_rules() {
        assert_eq!(CellKind::Inv.fixed_input_arity(), Some(1));
        assert_eq!(CellKind::FullAdder.fixed_input_arity(), Some(3));
        assert_eq!(CellKind::And.fixed_input_arity(), None);
        assert!(CellKind::And.accepts_arity(2));
        assert!(CellKind::And.accepts_arity(5));
        assert!(!CellKind::And.accepts_arity(1));
        assert!(CellKind::Mux2.accepts_arity(3));
        assert!(!CellKind::Mux2.accepts_arity(2));
    }

    #[test]
    fn output_counts() {
        assert_eq!(CellKind::FullAdder.output_count(), 2);
        assert_eq!(CellKind::HalfAdder.output_count(), 2);
        assert_eq!(CellKind::Xor.output_count(), 1);
        assert_eq!(CellKind::Dff.output_count(), 1);
    }

    #[test]
    fn sequential_flags() {
        assert!(CellKind::Dff.is_sequential());
        assert!(!CellKind::Dff.is_combinational());
        assert!(CellKind::FullAdder.is_combinational());
    }

    #[test]
    fn evaluate_basic_gates() {
        assert_eq!(CellKind::And.evaluate(&[true, true]), vec![true]);
        assert_eq!(CellKind::And.evaluate(&[true, false]), vec![false]);
        assert_eq!(CellKind::Or.evaluate(&[false, false]), vec![false]);
        assert_eq!(CellKind::Or.evaluate(&[false, true]), vec![true]);
        assert_eq!(CellKind::Nand.evaluate(&[true, true]), vec![false]);
        assert_eq!(CellKind::Nor.evaluate(&[false, false]), vec![true]);
        assert_eq!(CellKind::Xor.evaluate(&[true, true, true]), vec![true]);
        assert_eq!(CellKind::Xnor.evaluate(&[true, true]), vec![true]);
        assert_eq!(CellKind::Inv.evaluate(&[true]), vec![false]);
        assert_eq!(CellKind::Buf.evaluate(&[true]), vec![true]);
        assert_eq!(CellKind::Const(true).evaluate(&[]), vec![true]);
        assert_eq!(CellKind::Const(false).evaluate(&[]), vec![false]);
    }

    #[test]
    fn evaluate_mux_and_majority() {
        // sel = 0 selects input a (index 1).
        assert_eq!(CellKind::Mux2.evaluate(&[false, true, false]), vec![true]);
        // sel = 1 selects input b (index 2).
        assert_eq!(CellKind::Mux2.evaluate(&[true, true, false]), vec![false]);
        assert_eq!(CellKind::Maj3.evaluate(&[true, true, false]), vec![true]);
        assert_eq!(CellKind::Maj3.evaluate(&[true, false, false]), vec![false]);
    }

    #[test]
    fn evaluate_adders_match_arithmetic() {
        for a in [false, true] {
            for b in [false, true] {
                let ha = CellKind::HalfAdder.evaluate(&[a, b]);
                let expect = u8::from(a) + u8::from(b);
                assert_eq!(u8::from(ha[0]) + 2 * u8::from(ha[1]), expect);
                for cin in [false, true] {
                    let fa = CellKind::FullAdder.evaluate(&[a, b, cin]);
                    let expect = u8::from(a) + u8::from(b) + u8::from(cin);
                    assert_eq!(u8::from(fa[0]) + 2 * u8::from(fa[1]), expect);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not accept")]
    fn evaluate_rejects_bad_arity() {
        let _ = CellKind::FullAdder.evaluate(&[true, false]);
    }

    #[test]
    fn try_evaluate_reports_recoverable_errors() {
        assert_eq!(
            CellKind::Dff.try_evaluate(&[true]),
            Err(EvalError::Sequential(CellKind::Dff))
        );
        assert_eq!(
            CellKind::FullAdder.try_evaluate(&[true, false]),
            Err(EvalError::BadArity {
                kind: CellKind::FullAdder,
                inputs: 2
            })
        );
        let mut short = [false];
        assert_eq!(
            CellKind::FullAdder.try_evaluate_into(&[true, false, true], &mut short),
            Err(EvalError::OutputBufferTooSmall {
                kind: CellKind::FullAdder,
                have: 1,
                need: 2
            })
        );
        // The happy path matches the panicking form.
        assert_eq!(
            CellKind::Xor.try_evaluate(&[true, false]).unwrap(),
            CellKind::Xor.evaluate(&[true, false])
        );
        // Every variant renders a useful message.
        for e in [
            EvalError::Sequential(CellKind::Dff),
            EvalError::BadArity {
                kind: CellKind::Inv,
                inputs: 3,
            },
            EvalError::OutputBufferTooSmall {
                kind: CellKind::HalfAdder,
                have: 0,
                need: 2,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "no combinational evaluation")]
    fn evaluate_rejects_dff() {
        let _ = CellKind::Dff.evaluate(&[true]);
    }

    /// Every combinational kind at a representative arity.
    fn combinational_kinds_and_arities() -> Vec<(CellKind, usize)> {
        vec![
            (CellKind::Const(false), 0),
            (CellKind::Const(true), 0),
            (CellKind::Buf, 1),
            (CellKind::Inv, 1),
            (CellKind::And, 3),
            (CellKind::Or, 3),
            (CellKind::Nand, 3),
            (CellKind::Nor, 3),
            (CellKind::Xor, 3),
            (CellKind::Xnor, 3),
            (CellKind::Mux2, 3),
            (CellKind::Maj3, 3),
            (CellKind::HalfAdder, 2),
            (CellKind::FullAdder, 3),
        ]
    }

    fn tri_inputs(arity: usize, word: usize) -> Vec<Tri> {
        const ALL: [Tri; 3] = [Tri::Zero, Tri::One, Tri::X];
        (0..arity)
            .map(|i| ALL[(word / 3usize.pow(i as u32)) % 3])
            .collect()
    }

    #[test]
    fn tri_evaluation_agrees_with_binary_on_concrete_inputs() {
        for (kind, arity) in combinational_kinds_and_arities() {
            for word in 0..(1usize << arity) {
                let bools: Vec<bool> = (0..arity).map(|i| word & (1 << i) != 0).collect();
                let tris: Vec<Tri> = bools.iter().map(|&b| Tri::from(b)).collect();
                let binary = kind.try_evaluate(&bools).unwrap();
                let tri = kind.try_evaluate_tri(&tris).unwrap();
                let expected: Vec<Tri> = binary.into_iter().map(Tri::from).collect();
                assert_eq!(tri, expected, "{kind} on {bools:?}");
            }
        }
    }

    #[test]
    fn tri_evaluation_is_monotone_exhaustively() {
        // For every kind, every input vector and every X position: raising
        // the X to either concrete value must refine the outputs pointwise.
        for (kind, arity) in combinational_kinds_and_arities() {
            for word in 0..3usize.pow(arity as u32) {
                let lo = tri_inputs(arity, word);
                let lo_out = kind.try_evaluate_tri(&lo).unwrap();
                for (i, _) in lo.iter().enumerate().filter(|(_, &v)| v == Tri::X) {
                    for raised in [Tri::Zero, Tri::One] {
                        let mut hi = lo.clone();
                        hi[i] = raised;
                        let hi_out = kind.try_evaluate_tri(&hi).unwrap();
                        for (l, h) in lo_out.iter().zip(&hi_out) {
                            assert!(
                                l.refines_to(*h),
                                "{kind}: {lo:?} -> {lo_out:?} must refine {hi:?} -> {hi_out:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn tri_evaluation_is_pessimistic_where_expected() {
        use Tri::{One, Zero, X};
        assert_eq!(CellKind::And.try_evaluate_tri(&[Zero, X]).unwrap(), [Zero]);
        assert_eq!(CellKind::And.try_evaluate_tri(&[One, X]).unwrap(), [X]);
        assert_eq!(CellKind::Or.try_evaluate_tri(&[One, X]).unwrap(), [One]);
        assert_eq!(CellKind::Nor.try_evaluate_tri(&[One, X]).unwrap(), [Zero]);
        assert_eq!(CellKind::Nand.try_evaluate_tri(&[Zero, X]).unwrap(), [One]);
        assert_eq!(CellKind::Xor.try_evaluate_tri(&[One, X]).unwrap(), [X]);
        // A MUX with unknown select but agreeing data inputs is known.
        assert_eq!(
            CellKind::Mux2.try_evaluate_tri(&[X, One, One]).unwrap(),
            [One]
        );
        assert_eq!(
            CellKind::Mux2.try_evaluate_tri(&[X, One, Zero]).unwrap(),
            [X]
        );
        // Majority settles as soon as two inputs agree.
        assert_eq!(
            CellKind::Maj3.try_evaluate_tri(&[One, X, One]).unwrap(),
            [One]
        );
        assert_eq!(
            CellKind::FullAdder
                .try_evaluate_tri(&[Zero, X, Zero])
                .unwrap(),
            [X, Zero]
        );
        // Constants ignore the X world entirely.
        assert_eq!(CellKind::Const(true).try_evaluate_tri(&[]).unwrap(), [One]);
    }

    #[test]
    fn tri_evaluation_reports_the_same_errors_as_binary() {
        assert_eq!(
            CellKind::Dff.try_evaluate_tri(&[Tri::One]),
            Err(EvalError::Sequential(CellKind::Dff))
        );
        assert_eq!(
            CellKind::Mux2.try_evaluate_tri(&[Tri::One]),
            Err(EvalError::BadArity {
                kind: CellKind::Mux2,
                inputs: 1
            })
        );
        let mut short = [Tri::X];
        assert_eq!(
            CellKind::HalfAdder.try_evaluate_tri_into(&[Tri::One, Tri::One], &mut short),
            Err(EvalError::OutputBufferTooSmall {
                kind: CellKind::HalfAdder,
                have: 1,
                need: 2
            })
        );
    }

    #[test]
    fn mnemonics_are_unique_enough() {
        let kinds = [
            CellKind::Const(false),
            CellKind::Const(true),
            CellKind::Buf,
            CellKind::Inv,
            CellKind::And,
            CellKind::Or,
            CellKind::Nand,
            CellKind::Nor,
            CellKind::Xor,
            CellKind::Xnor,
            CellKind::Mux2,
            CellKind::Maj3,
            CellKind::HalfAdder,
            CellKind::FullAdder,
            CellKind::Dff,
        ];
        let mut names: Vec<_> = kinds.iter().map(|k| k.mnemonic()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), kinds.len());
    }

    #[test]
    fn gate_equivalents_positive_for_logic() {
        assert!(CellKind::FullAdder.gate_equivalents() > CellKind::Inv.gate_equivalents());
        assert_eq!(CellKind::Const(true).gate_equivalents(), 0.0);
    }
}
