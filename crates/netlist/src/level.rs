//! Topological levelisation of the combinational portion of a netlist.
//!
//! Levelisation assigns each combinational cell a level: the length of the
//! longest purely-combinational path (in cells) from any primary input or
//! flipflop output to that cell. Levels are the backbone of
//!
//! * the event-driven simulator's sanity bound on settling time,
//! * the delay-imbalance metrics of `glitch-retime`,
//! * cut-based pipelining (insert a register rank after level *k*).

use std::collections::VecDeque;

use crate::cell::CellId;
use crate::error::NetlistError;
use crate::netlist::Netlist;

/// Result of [`Netlist::levelize`]: a topological order and per-cell levels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Levelization {
    order: Vec<CellId>,
    levels: Vec<Option<usize>>,
    depth: usize,
}

/// Per-cell level access helper returned by [`Levelization::levels`].
#[derive(Debug, Clone, Copy)]
pub struct CellLevels<'a> {
    levels: &'a [Option<usize>],
}

impl<'a> CellLevels<'a> {
    /// Level of `cell`, or `None` for sequential cells (flipflops are level
    /// sources, not levelled themselves).
    #[must_use]
    pub fn level(&self, cell: CellId) -> Option<usize> {
        self.levels.get(cell.index()).copied().flatten()
    }
}

impl Levelization {
    /// Combinational cells in a valid topological (level-ascending) order.
    #[must_use]
    pub fn order(&self) -> &[CellId] {
        &self.order
    }

    /// Number of combinational levels (0 for a netlist with no combinational
    /// cells). A single gate between flipflops has depth 1.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Level of a single cell (1-based: cells fed only by inputs/flipflops
    /// are level 1). `None` for flipflops.
    #[must_use]
    pub fn level(&self, cell: CellId) -> Option<usize> {
        self.levels.get(cell.index()).copied().flatten()
    }

    /// Borrow the per-cell level table.
    #[must_use]
    pub fn levels(&self) -> CellLevels<'_> {
        CellLevels {
            levels: &self.levels,
        }
    }

    /// Cells at exactly the given level, in id order.
    #[must_use]
    pub fn cells_at_level(&self, level: usize) -> Vec<CellId> {
        self.order
            .iter()
            .copied()
            .filter(|c| self.level(*c) == Some(level))
            .collect()
    }
}

impl Netlist {
    /// Computes a topological order and longest-path levels for the
    /// combinational cells.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalLoop`] if the combinational part
    /// of the netlist is cyclic.
    pub fn levelize(&self) -> Result<Levelization, NetlistError> {
        let n = self.cell_count();
        let mut indegree = vec![0usize; n];
        let mut is_comb = vec![false; n];
        for id in self.combinational_cells() {
            is_comb[id.index()] = true;
        }
        // In-degree counts only combinational predecessors.
        for id in self.combinational_cells() {
            let preds = self.cell_fanin(id);
            indegree[id.index()] = preds.iter().filter(|p| is_comb[p.index()]).count();
        }

        let mut queue: VecDeque<CellId> = self
            .combinational_cells()
            .filter(|c| indegree[c.index()] == 0)
            .collect();
        let mut levels: Vec<Option<usize>> = vec![None; n];
        for c in &queue {
            levels[c.index()] = Some(1);
        }
        let mut order = Vec::with_capacity(n);
        while let Some(cell) = queue.pop_front() {
            order.push(cell);
            let my_level = levels[cell.index()].unwrap_or(1);
            for succ in self.combinational_successors(cell) {
                let idx = succ.index();
                let succ_level = levels[idx].unwrap_or(0).max(my_level + 1);
                levels[idx] = Some(succ_level);
                indegree[idx] -= 1;
                if indegree[idx] == 0 {
                    queue.push_back(succ);
                }
            }
        }

        let comb_count = is_comb.iter().filter(|&&c| c).count();
        if order.len() != comb_count {
            // Some combinational cell never reached in-degree 0: a loop.
            let stuck = self
                .combinational_cells()
                .find(|c| indegree[c.index()] > 0)
                .expect("a cell with residual in-degree must exist");
            return Err(NetlistError::CombinationalLoop { cell: stuck });
        }
        let depth = levels.iter().flatten().copied().max().unwrap_or(0);
        Ok(Levelization {
            order,
            levels,
            depth,
        })
    }

    /// Longest combinational path length in cells; convenience wrapper over
    /// [`Netlist::levelize`].
    ///
    /// # Errors
    ///
    /// Same as [`Netlist::levelize`].
    pub fn combinational_depth(&self) -> Result<usize, NetlistError> {
        Ok(self.levelize()?.depth())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;

    #[test]
    fn levels_of_small_tree() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let x = nl.and2(a, b, "x"); // level 1
        let y = nl.or2(x, c, "y"); // level 2
        let z = nl.inv(y, "z"); // level 3
        nl.mark_output(z);
        let lv = nl.levelize().unwrap();
        assert_eq!(lv.depth(), 3);
        let x_cell = nl.net(x).driver().unwrap().cell;
        let y_cell = nl.net(y).driver().unwrap().cell;
        let z_cell = nl.net(z).driver().unwrap().cell;
        assert_eq!(lv.level(x_cell), Some(1));
        assert_eq!(lv.level(y_cell), Some(2));
        assert_eq!(lv.level(z_cell), Some(3));
        assert_eq!(lv.cells_at_level(2), vec![y_cell]);
        assert_eq!(lv.order().len(), 3);
        assert_eq!(lv.levels().level(z_cell), Some(3));
    }

    #[test]
    fn flipflops_reset_levels() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let x = nl.inv(a, "x"); // level 1
        let q = nl.dff(x, "q"); // sequential
        let y = nl.inv(q, "y"); // level 1 again (behind the flipflop)
        nl.mark_output(y);
        let lv = nl.levelize().unwrap();
        assert_eq!(lv.depth(), 1);
        let ff = nl.dff_cells().next().unwrap();
        assert_eq!(lv.level(ff), None);
    }

    #[test]
    fn order_respects_dependencies() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let mut prev = a;
        for i in 0..20 {
            prev = nl.inv(prev, &format!("x{i}"));
        }
        nl.mark_output(prev);
        let lv = nl.levelize().unwrap();
        assert_eq!(lv.depth(), 20);
        // Every cell appears after its predecessor in the order.
        let mut position = vec![0usize; nl.cell_count()];
        for (i, c) in lv.order().iter().enumerate() {
            position[c.index()] = i;
        }
        for &c in lv.order() {
            for p in nl.cell_fanin(c) {
                if !nl.cell(p).is_sequential() {
                    assert!(position[p.index()] < position[c.index()]);
                }
            }
        }
    }

    #[test]
    fn loop_is_reported() {
        let mut nl = Netlist::new("loop");
        let a = nl.add_input("a");
        let z = nl.add_net("z");
        let y = nl.add_net("y");
        nl.add_cell(CellKind::And, "g1", vec![a, z], vec![y])
            .unwrap();
        nl.add_cell(CellKind::Inv, "g2", vec![y], vec![z]).unwrap();
        assert!(nl.levelize().is_err());
        assert!(nl.combinational_depth().is_err());
    }

    #[test]
    fn empty_netlist_depth_zero() {
        let nl = Netlist::new("empty");
        assert_eq!(nl.combinational_depth().unwrap(), 0);
    }
}
