//! The [`Netlist`] container and its construction API.

use std::collections::HashMap;

use crate::cell::{Cell, CellId, CellKind, DffInit};
use crate::error::NetlistError;
use crate::net::{Net, NetId, Pin};

/// A multi-bit signal: an ordered list of nets, least-significant bit first.
///
/// `Bus` is a thin convenience wrapper used by the circuit generators in
/// `glitch-arith`; bit `i` of the bus is `bus.bit(i)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bus {
    nets: Vec<NetId>,
}

impl Bus {
    /// Wraps an ordered list of nets (LSB first) as a bus.
    #[must_use]
    pub fn new(nets: Vec<NetId>) -> Self {
        Bus { nets }
    }

    /// Bus width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.nets.len()
    }

    /// Net carrying bit `i` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    #[must_use]
    pub fn bit(&self, i: usize) -> NetId {
        self.nets[i]
    }

    /// All bits, least significant first.
    #[must_use]
    pub fn bits(&self) -> &[NetId] {
        &self.nets
    }

    /// Iterates over the bits, least significant first.
    pub fn iter(&self) -> std::slice::Iter<'_, NetId> {
        self.nets.iter()
    }
}

impl From<Vec<NetId>> for Bus {
    fn from(nets: Vec<NetId>) -> Self {
        Bus::new(nets)
    }
}

impl<'a> IntoIterator for &'a Bus {
    type Item = &'a NetId;
    type IntoIter = std::slice::Iter<'a, NetId>;
    fn into_iter(self) -> Self::IntoIter {
        self.nets.iter()
    }
}

/// A flat, single-clock, gate-level netlist.
///
/// See the crate-level documentation for an overview and an example.
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    cells: Vec<Cell>,
    nets: Vec<Net>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    net_names: HashMap<String, NetId>,
    fresh_counter: usize,
}

impl Netlist {
    /// Creates an empty netlist with the given design name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            cells: Vec::new(),
            nets: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            net_names: HashMap::new(),
            fresh_counter: 0,
        }
    }

    /// The design name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A structural fingerprint of the netlist: an FNV-1a hash over the
    /// design name, every net (name, input/output marking) and every cell
    /// (kind, connectivity, flipflop init state), in id order.
    ///
    /// Two netlists with equal fingerprints are structurally identical for
    /// simulation purposes; recorded baselines persisted to disk use this
    /// to reject replay against an edited circuit that happens to keep the
    /// same name and element counts. The hash is implemented explicitly
    /// (not via `std::hash`) so the value is stable across Rust versions —
    /// it is part of the baseline file format.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x100_0000_01b3;
        let mut hash = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(PRIME);
            }
        };
        eat(self.name.as_bytes());
        for net in &self.nets {
            eat(net.name().as_bytes());
            eat(&[
                0xFE,
                u8::from(net.is_primary_input()),
                u8::from(net.is_primary_output()),
            ]);
        }
        for cell in &self.cells {
            eat(cell.name().as_bytes());
            eat(&[0xFD]);
            eat(format!("{}", cell.kind()).as_bytes());
            eat(&[cell.dff_init().blif_digit() as u8]);
            for &net in cell.inputs().iter().chain(cell.outputs()) {
                eat(&(net.index() as u64).to_le_bytes());
            }
        }
        hash
    }

    /// Number of nets (signal nodes).
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Number of cell instances.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of D-flipflops.
    #[must_use]
    pub fn dff_count(&self) -> usize {
        self.cells.iter().filter(|c| c.is_sequential()).count()
    }

    /// Primary input nets, in declaration order.
    #[must_use]
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary output nets, in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Borrow a net record.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    #[must_use]
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.0]
    }

    /// Borrow a cell record.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    #[must_use]
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.0]
    }

    /// Iterate over `(NetId, &Net)` pairs.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets.iter().enumerate().map(|(i, n)| (NetId(i), n))
    }

    /// Iterate over `(CellId, &Cell)` pairs.
    pub fn cells(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells.iter().enumerate().map(|(i, c)| (CellId(i), c))
    }

    /// Iterate over the ids of all combinational (non-flipflop) cells.
    pub fn combinational_cells(&self) -> impl Iterator<Item = CellId> + '_ {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_sequential())
            .map(|(i, _)| CellId(i))
    }

    /// Iterate over the ids of all D-flipflop cells.
    pub fn dff_cells(&self) -> impl Iterator<Item = CellId> + '_ {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_sequential())
            .map(|(i, _)| CellId(i))
    }

    /// Looks a net up by name.
    #[must_use]
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.net_names.get(name).copied()
    }

    fn fresh_name(&mut self, prefix: &str) -> String {
        loop {
            let name = format!("{prefix}_{}", self.fresh_counter);
            self.fresh_counter += 1;
            if !self.net_names.contains_key(&name) {
                return name;
            }
        }
    }

    /// Creates a new internal net with the given name.
    ///
    /// If the name is already taken a unique suffix is appended; use
    /// [`Netlist::try_add_net`] to treat a clash as an error instead.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let mut name = name.into();
        if self.net_names.contains_key(&name) {
            name = self.fresh_name(&name);
        }
        self.push_net(name, false)
    }

    /// Creates a new internal net, failing when the name is already in use.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateNetName`] if a net with this name
    /// already exists.
    pub fn try_add_net(&mut self, name: impl Into<String>) -> Result<NetId, NetlistError> {
        let name = name.into();
        if self.net_names.contains_key(&name) {
            return Err(NetlistError::DuplicateNetName(name));
        }
        Ok(self.push_net(name, false))
    }

    fn push_net(&mut self, name: String, is_input: bool) -> NetId {
        let id = NetId(self.nets.len());
        self.net_names.insert(name.clone(), id);
        self.nets.push(Net {
            name,
            driver: None,
            loads: Vec::new(),
            is_input,
            is_output: false,
        });
        if is_input {
            self.inputs.push(id);
        }
        id
    }

    /// Declares a primary input net.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let mut name = name.into();
        if self.net_names.contains_key(&name) {
            name = self.fresh_name(&name);
        }
        self.push_net(name, true)
    }

    /// Declares a primary input bus of `width` bits named `name[0]`,
    /// `name[1]`, … (LSB first).
    pub fn add_input_bus(&mut self, name: &str, width: usize) -> Bus {
        Bus::new(
            (0..width)
                .map(|i| self.add_input(format!("{name}[{i}]")))
                .collect(),
        )
    }

    /// Marks an existing net as a primary output.
    pub fn mark_output(&mut self, net: NetId) {
        if !self.nets[net.0].is_output {
            self.nets[net.0].is_output = true;
            self.outputs.push(net);
        }
    }

    /// Marks every bit of a bus as a primary output.
    pub fn mark_output_bus(&mut self, bus: &Bus) {
        for &bit in bus.bits() {
            self.mark_output(bit);
        }
    }

    /// Renames a net. The old name is released.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateNetName`] if the new name is taken and
    /// [`NetlistError::UnknownNet`] if `net` is out of range.
    pub fn rename_net(
        &mut self,
        net: NetId,
        new_name: impl Into<String>,
    ) -> Result<(), NetlistError> {
        let new_name = new_name.into();
        if net.0 >= self.nets.len() {
            return Err(NetlistError::UnknownNet(net));
        }
        if let Some(&existing) = self.net_names.get(&new_name) {
            if existing != net {
                return Err(NetlistError::DuplicateNetName(new_name));
            }
            return Ok(());
        }
        let old = self.nets[net.0].name.clone();
        self.net_names.remove(&old);
        self.net_names.insert(new_name.clone(), net);
        self.nets[net.0].name = new_name;
        Ok(())
    }

    /// Adds a cell driving already-existing output nets.
    ///
    /// This is the low-level instancing primitive; the gate helpers below are
    /// usually more convenient because they create the output nets for you.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::BadArity`] if the input count is illegal for `kind`.
    /// * [`NetlistError::UnknownNet`] if any referenced net is out of range.
    /// * [`NetlistError::MultipleDrivers`] if an output net is already driven.
    /// * [`NetlistError::DrivenInput`] if an output net is a primary input.
    pub fn add_cell(
        &mut self,
        kind: CellKind,
        name: impl Into<String>,
        inputs: Vec<NetId>,
        outputs: Vec<NetId>,
    ) -> Result<CellId, NetlistError> {
        let id = CellId(self.cells.len());
        if !kind.accepts_arity(inputs.len()) {
            return Err(NetlistError::BadArity {
                cell: id,
                got: inputs.len(),
            });
        }
        assert_eq!(
            outputs.len(),
            kind.output_count(),
            "cell {} must drive exactly {} outputs",
            kind,
            kind.output_count()
        );
        for &n in inputs.iter().chain(outputs.iter()) {
            if n.0 >= self.nets.len() {
                return Err(NetlistError::UnknownNet(n));
            }
        }
        for (pin, &out) in outputs.iter().enumerate() {
            if self.nets[out.0].driver.is_some() {
                return Err(NetlistError::MultipleDrivers { net: out, cell: id });
            }
            if self.nets[out.0].is_input {
                return Err(NetlistError::DrivenInput(out));
            }
            self.nets[out.0].driver = Some(Pin {
                cell: id,
                index: pin,
            });
        }
        for (pin, &inp) in inputs.iter().enumerate() {
            self.nets[inp.0].loads.push(Pin {
                cell: id,
                index: pin,
            });
        }
        self.cells.push(Cell {
            kind,
            name: name.into(),
            inputs,
            outputs,
            dff_init: DffInit::DontCare,
        });
        Ok(id)
    }

    /// Sets the initial (reset) state of a flipflop cell.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range or not a [`CellKind::Dff`].
    pub fn set_dff_init(&mut self, cell: CellId, init: DffInit) {
        assert!(
            self.cells[cell.0].is_sequential(),
            "cell {} ({}) is not a flipflop",
            cell,
            self.cells[cell.0].name
        );
        self.cells[cell.0].dff_init = init;
    }

    /// Creates a single-output gate of `kind`, creating and returning its
    /// output net.
    ///
    /// # Panics
    ///
    /// Panics if the number of inputs is illegal for `kind` or if any input
    /// net belongs to another netlist. Structural construction errors are
    /// programming errors in circuit generators, so the gate helpers panic
    /// rather than force `?` on every gate instantiation; use
    /// [`Netlist::add_cell`] when fallible construction is needed.
    pub fn gate(&mut self, kind: CellKind, inputs: &[NetId], out_name: &str) -> NetId {
        assert_eq!(
            kind.output_count(),
            1,
            "gate() only builds single-output cells"
        );
        let out = self.add_net(out_name);
        let cell_name = format!("u_{out_name}_{}", self.cells.len());
        self.add_cell(kind, cell_name, inputs.to_vec(), vec![out])
            .expect("structurally valid gate");
        out
    }

    /// Two-input AND gate.
    pub fn and2(&mut self, a: NetId, b: NetId, out_name: &str) -> NetId {
        self.gate(CellKind::And, &[a, b], out_name)
    }

    /// N-input AND gate.
    pub fn and(&mut self, inputs: &[NetId], out_name: &str) -> NetId {
        self.gate(CellKind::And, inputs, out_name)
    }

    /// Two-input OR gate.
    pub fn or2(&mut self, a: NetId, b: NetId, out_name: &str) -> NetId {
        self.gate(CellKind::Or, &[a, b], out_name)
    }

    /// N-input OR gate.
    pub fn or(&mut self, inputs: &[NetId], out_name: &str) -> NetId {
        self.gate(CellKind::Or, inputs, out_name)
    }

    /// Two-input NAND gate.
    pub fn nand2(&mut self, a: NetId, b: NetId, out_name: &str) -> NetId {
        self.gate(CellKind::Nand, &[a, b], out_name)
    }

    /// Two-input NOR gate.
    pub fn nor2(&mut self, a: NetId, b: NetId, out_name: &str) -> NetId {
        self.gate(CellKind::Nor, &[a, b], out_name)
    }

    /// Two-input XOR gate.
    pub fn xor2(&mut self, a: NetId, b: NetId, out_name: &str) -> NetId {
        self.gate(CellKind::Xor, &[a, b], out_name)
    }

    /// Two-input XNOR gate.
    pub fn xnor2(&mut self, a: NetId, b: NetId, out_name: &str) -> NetId {
        self.gate(CellKind::Xnor, &[a, b], out_name)
    }

    /// Inverter.
    pub fn inv(&mut self, a: NetId, out_name: &str) -> NetId {
        self.gate(CellKind::Inv, &[a], out_name)
    }

    /// Buffer.
    pub fn buf(&mut self, a: NetId, out_name: &str) -> NetId {
        self.gate(CellKind::Buf, &[a], out_name)
    }

    /// 2-to-1 multiplexer; returns `a` when `sel` is 0 and `b` when `sel`
    /// is 1.
    pub fn mux2(&mut self, sel: NetId, a: NetId, b: NetId, out_name: &str) -> NetId {
        self.gate(CellKind::Mux2, &[sel, a, b], out_name)
    }

    /// Three-input majority gate.
    pub fn maj3(&mut self, a: NetId, b: NetId, c: NetId, out_name: &str) -> NetId {
        self.gate(CellKind::Maj3, &[a, b, c], out_name)
    }

    /// Constant driver.
    pub fn constant(&mut self, value: bool, out_name: &str) -> NetId {
        self.gate(CellKind::Const(value), &[], out_name)
    }

    /// Compound half-adder cell; returns `(sum, carry)`.
    pub fn half_adder(&mut self, a: NetId, b: NetId, prefix: &str) -> (NetId, NetId) {
        let sum = self.add_net(format!("{prefix}_s"));
        let carry = self.add_net(format!("{prefix}_c"));
        let name = format!("u_{prefix}_{}", self.cells.len());
        self.add_cell(CellKind::HalfAdder, name, vec![a, b], vec![sum, carry])
            .expect("structurally valid half adder");
        (sum, carry)
    }

    /// Compound full-adder cell; returns `(sum, carry)`.
    pub fn full_adder(&mut self, a: NetId, b: NetId, cin: NetId, prefix: &str) -> (NetId, NetId) {
        let sum = self.add_net(format!("{prefix}_s"));
        let carry = self.add_net(format!("{prefix}_c"));
        let name = format!("u_{prefix}_{}", self.cells.len());
        self.add_cell(CellKind::FullAdder, name, vec![a, b, cin], vec![sum, carry])
            .expect("structurally valid full adder");
        (sum, carry)
    }

    /// D-flipflop on the implicit clock; returns the `q` output net.
    pub fn dff(&mut self, d: NetId, out_name: &str) -> NetId {
        self.dff_with_init(d, out_name, DffInit::DontCare)
    }

    /// D-flipflop with an explicit initial state; returns the `q` output net.
    pub fn dff_with_init(&mut self, d: NetId, out_name: &str, init: DffInit) -> NetId {
        let q = self.add_net(out_name);
        let name = format!("u_{out_name}_{}", self.cells.len());
        let cell = self
            .add_cell(CellKind::Dff, name, vec![d], vec![q])
            .expect("structurally valid flipflop");
        self.cells[cell.0].dff_init = init;
        q
    }

    /// Inserts a chain of `stages` flipflops behind `d` and returns the final
    /// `q` net. With `stages == 0` the original net is returned unchanged.
    pub fn dff_chain(&mut self, d: NetId, stages: usize, prefix: &str) -> NetId {
        let mut cur = d;
        for i in 0..stages {
            cur = self.dff(cur, &format!("{prefix}_q{i}"));
        }
        cur
    }

    /// Registers every bit of a bus once and returns the registered bus.
    pub fn register_bus(&mut self, bus: &Bus, prefix: &str) -> Bus {
        Bus::new(
            bus.bits()
                .iter()
                .enumerate()
                .map(|(i, &b)| self.dff(b, &format!("{prefix}[{i}]")))
                .collect(),
        )
    }

    /// Total (combinational cells + flipflops) gate-equivalent complexity; see
    /// [`CellKind::gate_equivalents`].
    #[must_use]
    pub fn gate_equivalents(&self) -> f64 {
        self.cells.iter().map(|c| c.kind().gate_equivalents()).sum()
    }

    /// Fans out of a given cell: the cells driven (directly, through one net)
    /// by any of its outputs.
    #[must_use]
    pub fn cell_fanout(&self, id: CellId) -> Vec<CellId> {
        let mut result = Vec::new();
        for &out in self.cell(id).outputs() {
            for load in self.net(out).loads() {
                result.push(load.cell);
            }
        }
        result.sort_unstable();
        result.dedup();
        result
    }

    /// Fans in of a given cell: the cells driving any of its inputs.
    #[must_use]
    pub fn cell_fanin(&self, id: CellId) -> Vec<CellId> {
        let mut result = Vec::new();
        for &inp in self.cell(id).inputs() {
            if let Some(driver) = self.net(inp).driver() {
                result.push(driver.cell);
            }
        }
        result.sort_unstable();
        result.dedup();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_half_adder_by_hand() {
        let mut nl = Netlist::new("ha");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let s = nl.xor2(a, b, "s");
        let c = nl.and2(a, b, "c");
        nl.mark_output(s);
        nl.mark_output(c);
        assert_eq!(nl.net_count(), 4);
        assert_eq!(nl.cell_count(), 2);
        assert_eq!(nl.inputs().len(), 2);
        assert_eq!(nl.outputs().len(), 2);
        assert_eq!(nl.find_net("s"), Some(s));
        assert!(nl.net(s).is_primary_output());
        assert!(nl.net(a).is_primary_input());
        assert_eq!(nl.net(a).fanout(), 2);
    }

    #[test]
    fn duplicate_names_get_uniquified() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("x");
        let b = nl.add_input("x");
        assert_ne!(a, b);
        assert_ne!(nl.net(a).name(), nl.net(b).name());
        assert!(nl.try_add_net("x").is_err());
    }

    #[test]
    fn multiple_drivers_rejected() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let out = nl.add_net("out");
        nl.add_cell(CellKind::Buf, "b1", vec![a], vec![out])
            .unwrap();
        let err = nl
            .add_cell(CellKind::Inv, "b2", vec![a], vec![out])
            .unwrap_err();
        assert!(matches!(err, NetlistError::MultipleDrivers { .. }));
    }

    #[test]
    fn driving_primary_input_rejected() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let err = nl
            .add_cell(CellKind::Buf, "b1", vec![b], vec![a])
            .unwrap_err();
        assert!(matches!(err, NetlistError::DrivenInput(_)));
    }

    #[test]
    fn bad_arity_rejected() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let out = nl.add_net("out");
        let err = nl
            .add_cell(CellKind::And, "g", vec![a], vec![out])
            .unwrap_err();
        assert!(matches!(err, NetlistError::BadArity { got: 1, .. }));
    }

    #[test]
    fn bus_helpers() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input_bus("a", 4);
        assert_eq!(a.width(), 4);
        assert_eq!(nl.net(a.bit(2)).name(), "a[2]");
        let reg = nl.register_bus(&a, "a_q");
        assert_eq!(reg.width(), 4);
        assert_eq!(nl.dff_count(), 4);
        nl.mark_output_bus(&reg);
        assert_eq!(nl.outputs().len(), 4);
    }

    #[test]
    fn dff_chain_lengths() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let same = nl.dff_chain(a, 0, "p");
        assert_eq!(same, a);
        let q = nl.dff_chain(a, 3, "p");
        assert_ne!(q, a);
        assert_eq!(nl.dff_count(), 3);
    }

    #[test]
    fn fanin_fanout_queries() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.and2(a, b, "x");
        let y = nl.inv(x, "y");
        nl.mark_output(y);
        let and_cell = nl.net(x).driver().unwrap().cell;
        let inv_cell = nl.net(y).driver().unwrap().cell;
        assert_eq!(nl.cell_fanout(and_cell), vec![inv_cell]);
        assert_eq!(nl.cell_fanin(inv_cell), vec![and_cell]);
        assert!(nl.cell_fanin(and_cell).is_empty());
    }

    #[test]
    fn rename_net_rules() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        nl.rename_net(a, "alpha").unwrap();
        assert_eq!(nl.find_net("alpha"), Some(a));
        assert_eq!(nl.find_net("a"), None);
        assert!(nl.rename_net(b, "alpha").is_err());
        // Renaming to its own name is a no-op.
        nl.rename_net(b, "b").unwrap();
    }

    #[test]
    fn dff_init_state_is_stored_per_flipflop() {
        let mut nl = Netlist::new("t");
        let d = nl.add_input("d");
        let q0 = nl.dff(d, "q0");
        let q1 = nl.dff_with_init(d, "q1", DffInit::One);
        let ff0 = nl.net(q0).driver().unwrap().cell;
        let ff1 = nl.net(q1).driver().unwrap().cell;
        assert_eq!(nl.cell(ff0).dff_init(), DffInit::DontCare);
        assert_eq!(nl.cell(ff1).dff_init(), DffInit::One);
        nl.set_dff_init(ff0, DffInit::Zero);
        assert_eq!(nl.cell(ff0).dff_init(), DffInit::Zero);
        assert_eq!(DffInit::One.to_bool(), Some(true));
        assert_eq!(DffInit::DontCare.to_bool(), None);
        assert_eq!(DffInit::from(true), DffInit::One);
        assert_eq!(DffInit::Zero.blif_digit(), '0');
    }

    #[test]
    #[should_panic(expected = "not a flipflop")]
    fn set_dff_init_rejects_combinational_cells() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let y = nl.inv(a, "y");
        nl.mark_output(y);
        let inv = nl.net(y).driver().unwrap().cell;
        nl.set_dff_init(inv, DffInit::One);
    }

    #[test]
    fn mark_output_is_idempotent() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let y = nl.inv(a, "y");
        nl.mark_output(y);
        nl.mark_output(y);
        assert_eq!(nl.outputs().len(), 1);
    }
}
