//! Nets (signal nodes) and pins.
//!
//! Every electrical node of the circuit is a [`Net`]; the paper's transition
//! counting monitors exactly these nodes. A net has at most one driver (a
//! cell output pin or a primary input) and any number of loads.

use std::fmt;

use crate::cell::CellId;

/// Identifier of a net inside one [`crate::Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub(crate) usize);

impl NetId {
    /// Returns the dense index backing this id.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }

    /// Builds a `NetId` from a raw index.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        NetId(index)
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A connection point: output pin `index` of `cell` (when used as a driver)
/// or input pin `index` of `cell` (when used as a load).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pin {
    /// The cell this pin belongs to.
    pub cell: CellId,
    /// The pin position within the cell's input or output list.
    pub index: usize,
}

impl fmt::Display for Pin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.cell, self.index)
    }
}

/// One signal node of the circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    pub(crate) name: String,
    pub(crate) driver: Option<Pin>,
    pub(crate) loads: Vec<Pin>,
    pub(crate) is_input: bool,
    pub(crate) is_output: bool,
}

impl Net {
    /// The net's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cell output pin driving this net, if any. Primary inputs and
    /// not-yet-connected nets have no driver.
    #[must_use]
    pub fn driver(&self) -> Option<Pin> {
        self.driver
    }

    /// The cell input pins loading this net.
    #[must_use]
    pub fn loads(&self) -> &[Pin] {
        &self.loads
    }

    /// Number of cell input pins loading this net.
    #[must_use]
    pub fn fanout(&self) -> usize {
        self.loads.len()
    }

    /// `true` when this net is a primary input of the netlist.
    #[must_use]
    pub fn is_primary_input(&self) -> bool {
        self.is_input
    }

    /// `true` when this net is a primary output of the netlist.
    #[must_use]
    pub fn is_primary_output(&self) -> bool {
        self.is_output
    }

    /// `true` when the net has neither a driver nor the primary-input flag,
    /// i.e. it would float in silicon.
    #[must_use]
    pub fn is_floating(&self) -> bool {
        self.driver.is_none() && !self.is_input
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(NetId(3).to_string(), "n3");
        assert_eq!(
            Pin {
                cell: CellId(7),
                index: 1
            }
            .to_string(),
            "c7.1"
        );
    }

    #[test]
    fn floating_detection() {
        let n = Net {
            name: "x".into(),
            driver: None,
            loads: vec![],
            is_input: false,
            is_output: false,
        };
        assert!(n.is_floating());
        let i = Net {
            is_input: true,
            ..n.clone()
        };
        assert!(!i.is_floating());
    }
}
