//! Structural validation: floating nets, combinational loops, arity checks.

use crate::cell::CellId;
use crate::error::NetlistError;
use crate::netlist::Netlist;

impl Netlist {
    /// Checks the structural invariants the simulator and the retimer rely
    /// on:
    ///
    /// * every net is either a primary input or driven by exactly one cell
    ///   output (one-driver is enforced at construction, floating nets are
    ///   caught here),
    /// * every cell has a legal input arity (also enforced at construction,
    ///   re-checked here for netlists built through lower-level means),
    /// * there is no combinational loop, i.e. every cycle in the circuit
    ///   graph passes through at least one D-flipflop.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`NetlistError`].
    pub fn validate(&self) -> Result<(), NetlistError> {
        for (id, net) in self.nets() {
            if net.is_floating() && !net.loads().is_empty() {
                return Err(NetlistError::FloatingNet(id));
            }
        }
        for (id, cell) in self.cells() {
            if !cell.kind().accepts_arity(cell.inputs().len()) {
                return Err(NetlistError::BadArity {
                    cell: id,
                    got: cell.inputs().len(),
                });
            }
        }
        self.check_combinational_loops()
    }

    /// Detects combinational loops with an iterative three-colour DFS over
    /// combinational cells only (flipflops break paths).
    fn check_combinational_loops(&self) -> Result<(), NetlistError> {
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour = vec![Colour::White; self.cell_count()];

        for start in self.combinational_cells() {
            if colour[start.index()] != Colour::White {
                continue;
            }
            // Explicit stack of (cell, next-successor-index) to avoid
            // recursion depth issues on deep circuits like wide multipliers.
            let mut stack: Vec<(CellId, usize)> = vec![(start, 0)];
            colour[start.index()] = Colour::Grey;
            while let Some(&mut (cell, ref mut next)) = stack.last_mut() {
                let successors = self.combinational_successors(cell);
                if *next < successors.len() {
                    let succ = successors[*next];
                    *next += 1;
                    match colour[succ.index()] {
                        Colour::White => {
                            colour[succ.index()] = Colour::Grey;
                            stack.push((succ, 0));
                        }
                        Colour::Grey => {
                            return Err(NetlistError::CombinationalLoop { cell: succ });
                        }
                        Colour::Black => {}
                    }
                } else {
                    colour[cell.index()] = Colour::Black;
                    stack.pop();
                }
            }
        }
        Ok(())
    }

    /// Combinational cells driven directly by outputs of `cell`.
    pub(crate) fn combinational_successors(&self, cell: CellId) -> Vec<CellId> {
        let mut succ = Vec::new();
        for &out in self.cell(cell).outputs() {
            for load in self.net(out).loads() {
                if !self.cell(load.cell).is_sequential() {
                    succ.push(load.cell);
                }
            }
        }
        succ.sort_unstable();
        succ.dedup();
        succ
    }
}

#[cfg(test)]
mod tests {
    use crate::cell::CellKind;
    use crate::error::NetlistError;
    use crate::netlist::Netlist;

    #[test]
    fn valid_combinational_circuit_passes() {
        let mut nl = Netlist::new("ok");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.and2(a, b, "x");
        let y = nl.inv(x, "y");
        nl.mark_output(y);
        assert!(nl.validate().is_ok());
    }

    #[test]
    fn floating_net_with_load_detected() {
        let mut nl = Netlist::new("bad");
        let floating = nl.add_net("floating");
        let y = nl.inv(floating, "y");
        nl.mark_output(y);
        assert!(matches!(nl.validate(), Err(NetlistError::FloatingNet(_))));
    }

    #[test]
    fn unused_floating_net_is_tolerated() {
        let mut nl = Netlist::new("ok");
        let a = nl.add_input("a");
        let _unused = nl.add_net("scratch");
        let y = nl.inv(a, "y");
        nl.mark_output(y);
        assert!(nl.validate().is_ok());
    }

    #[test]
    fn combinational_loop_detected() {
        let mut nl = Netlist::new("loop");
        let a = nl.add_input("a");
        // y = and(a, z); z = inv(y)  — a purely combinational cycle.
        let z = nl.add_net("z");
        let y = nl.add_net("y");
        nl.add_cell(CellKind::And, "g_and", vec![a, z], vec![y])
            .unwrap();
        nl.add_cell(CellKind::Inv, "g_inv", vec![y], vec![z])
            .unwrap();
        nl.mark_output(y);
        assert!(matches!(
            nl.validate(),
            Err(NetlistError::CombinationalLoop { .. })
        ));
    }

    #[test]
    fn loop_broken_by_flipflop_is_legal() {
        let mut nl = Netlist::new("counter_bit");
        let en = nl.add_input("en");
        // q' = q xor en with a flipflop in the loop: legal sequential logic.
        let q = nl.add_net("q");
        let next = nl.xor2(en, q, "next");
        nl.add_cell(CellKind::Dff, "ff", vec![next], vec![q])
            .unwrap();
        nl.mark_output(q);
        assert!(nl.validate().is_ok());
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let mut nl = Netlist::new("chain");
        let mut cur = nl.add_input("a");
        for i in 0..50_000 {
            cur = nl.inv(cur, &format!("n{i}"));
        }
        nl.mark_output(cur);
        assert!(nl.validate().is_ok());
    }
}
