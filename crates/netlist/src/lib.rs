//! # glitch-netlist
//!
//! Gate-level netlist substrate for the glitch-analysis workspace.
//!
//! This crate provides the structural circuit representation used by every
//! other crate in the workspace: a flat, single-clock, gate-level netlist made
//! of [`Cell`]s (logic gates, compound adder cells and D-flipflops) connected
//! by [`Net`]s. It deliberately models exactly what the DATE'95 paper
//! *Analysis and Reduction of Glitches in Synchronous Networks* needs:
//!
//! * every internal signal node is observable (each net is a node whose
//!   transitions can be counted),
//! * compound cells such as [`CellKind::FullAdder`] expose separate sum and
//!   carry outputs so that a delay model can give them different delays
//!   (`d_sum = 2 * d_carry` in Table 2 of the paper),
//! * D-flipflops are explicit cells so retiming and pipelining can move them.
//!
//! ## Example
//!
//! ```
//! use glitch_netlist::{Netlist, CellKind};
//!
//! # fn main() -> Result<(), glitch_netlist::NetlistError> {
//! let mut nl = Netlist::new("half_adder");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let sum = nl.xor2(a, b, "sum");
//! let carry = nl.and2(a, b, "carry");
//! nl.mark_output(sum);
//! nl.mark_output(carry);
//! nl.validate()?;
//! assert_eq!(nl.cell_count(), 2);
//! assert_eq!(nl.stats().count_of(CellKind::XOR_LABEL), 1);
//! # Ok(())
//! # }
//! ```

mod cell;
mod cone;
mod dot;
mod error;
mod level;
mod net;
mod netlist;
mod stats;
mod tri;
mod validate;

pub use cell::{Cell, CellId, CellKind, DffInit, EvalError};
pub use cone::{ConeIndex, FanoutCone};
pub use dot::DotOptions;
pub use error::NetlistError;
pub use level::{CellLevels, Levelization};
pub use net::{Net, NetId, Pin};
pub use netlist::{Bus, Netlist};
pub use stats::NetlistStats;
pub use tri::Tri;
