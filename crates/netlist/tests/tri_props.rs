//! Property tests of the three-valued evaluation tables
//! ([`CellKind::try_evaluate_tri_into`]) against the binary reference:
//!
//! * **monotonicity** — raising an input from `X` to a concrete value
//!   never flips a concrete output (the information order is preserved
//!   pointwise), which is what makes X-propagation sound;
//! * **concrete agreement** — on all-known inputs the Tri tables are
//!   bit-identical to [`CellKind::try_evaluate`], on random cells and on
//!   random feed-forward netlists evaluated gate by gate.

use glitch_netlist::{CellKind, Netlist, Tri};
use proptest::prelude::*;

/// The combinational kinds, indexable by a sampled word.
const KINDS: [CellKind; 14] = [
    CellKind::Const(false),
    CellKind::Const(true),
    CellKind::Buf,
    CellKind::Inv,
    CellKind::And,
    CellKind::Or,
    CellKind::Nand,
    CellKind::Nor,
    CellKind::Xor,
    CellKind::Xnor,
    CellKind::Mux2,
    CellKind::Maj3,
    CellKind::HalfAdder,
    CellKind::FullAdder,
];

/// Picks a kind and a legal arity from two sampled words.
fn kind_and_arity(kind_word: u64, arity_word: u64) -> (CellKind, usize) {
    let kind = KINDS[(kind_word % KINDS.len() as u64) as usize];
    let arity = match kind.fixed_input_arity() {
        Some(n) => n,
        None => 2 + (arity_word % 5) as usize,
    };
    (kind, arity)
}

/// Decodes base-3 digits of `word` into Tri inputs.
fn tri_inputs(arity: usize, word: u64) -> Vec<Tri> {
    const ALL: [Tri; 3] = [Tri::Zero, Tri::One, Tri::X];
    (0..arity)
        .map(|i| ALL[((word / 3u64.pow(i as u32)) % 3) as usize])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Raising one X input to a concrete value refines every output:
    /// concrete outputs stay bit-identical, X outputs may become concrete.
    #[test]
    fn tri_evaluation_is_monotone(
        kind_word in 0u64..u64::MAX,
        arity_word in 0u64..u64::MAX,
        input_word in 0u64..u64::MAX,
        raise_word in 0u64..u64::MAX,
    ) {
        let (kind, arity) = kind_and_arity(kind_word, arity_word);
        let lo = tri_inputs(arity, input_word);
        let lo_out = kind.try_evaluate_tri(&lo).unwrap();
        let x_positions: Vec<usize> = lo
            .iter()
            .enumerate()
            .filter(|(_, &v)| v == Tri::X)
            .map(|(i, _)| i)
            .collect();
        if let Some(&pos) = x_positions.get((raise_word >> 1) as usize % x_positions.len().max(1)) {
            let mut hi = lo.clone();
            hi[pos] = Tri::from(raise_word & 1 == 1);
            let hi_out = kind.try_evaluate_tri(&hi).unwrap();
            for (l, h) in lo_out.iter().zip(&hi_out) {
                prop_assert!(
                    l.refines_to(*h),
                    "{kind}: raising input {pos} of {lo:?} flipped {l} to {h}"
                );
            }
        }
    }

    /// All-concrete Tri evaluation equals the binary tables bit for bit.
    #[test]
    fn concrete_tri_evaluation_matches_binary(
        kind_word in 0u64..u64::MAX,
        arity_word in 0u64..u64::MAX,
        input_word in 0u64..u64::MAX,
    ) {
        let (kind, arity) = kind_and_arity(kind_word, arity_word);
        let bools: Vec<bool> = (0..arity).map(|i| input_word & (1 << i) != 0).collect();
        let tris: Vec<Tri> = bools.iter().map(|&b| Tri::from(b)).collect();
        let binary: Vec<Tri> = kind
            .try_evaluate(&bools)
            .unwrap()
            .into_iter()
            .map(Tri::from)
            .collect();
        prop_assert_eq!(kind.try_evaluate_tri(&tris).unwrap(), binary);
    }

    /// On a random feed-forward netlist driven with concrete inputs, a
    /// gate-by-gate Tri sweep in creation order computes exactly the values
    /// a binary sweep computes.
    #[test]
    fn concrete_netlist_sweep_matches_binary(
        input_count in 1usize..6,
        gate_words in proptest::collection::vec(0u64..u64::MAX, 1..40),
        input_word in 0u64..u64::MAX,
    ) {
        let mut nl = Netlist::new("tri sweep");
        let inputs: Vec<_> = (0..input_count).map(|i| nl.add_input(format!("in{i}"))).collect();
        let mut nets = inputs.clone();
        for (g, &word) in gate_words.iter().enumerate() {
            let pick = |shift: u32| nets[(word >> shift) as usize % nets.len()];
            let (a, b, c) = (pick(8), pick(20), pick(32));
            let name = format!("g{g}");
            let out = match word % 7 {
                0 => nl.inv(a, &name),
                1 => nl.and2(a, b, &name),
                2 => nl.or2(a, b, &name),
                3 => nl.xor2(a, b, &name),
                4 => nl.nand2(a, b, &name),
                5 => nl.mux2(a, b, c, &name),
                _ => nl.xnor2(a, b, &name),
            };
            nets.push(out);
        }
        let mut tri_values = vec![Tri::X; nl.net_count()];
        let mut bool_values = vec![false; nl.net_count()];
        for (i, &input) in inputs.iter().enumerate() {
            let bit = input_word & (1 << i) != 0;
            tri_values[input.index()] = Tri::from(bit);
            bool_values[input.index()] = bit;
        }
        // Creation order is topological for this feed-forward construction.
        for (_, cell) in nl.cells() {
            let tri_in: Vec<Tri> = cell.inputs().iter().map(|n| tri_values[n.index()]).collect();
            let bool_in: Vec<bool> = cell.inputs().iter().map(|n| bool_values[n.index()]).collect();
            let tri_out = cell.kind().try_evaluate_tri(&tri_in).unwrap();
            let bool_out = cell.kind().try_evaluate(&bool_in).unwrap();
            for (pin, &net) in cell.outputs().iter().enumerate() {
                prop_assert_eq!(tri_out[pin], Tri::from(bool_out[pin]));
                tri_values[net.index()] = tri_out[pin];
                bool_values[net.index()] = bool_out[pin];
            }
        }
    }
}
