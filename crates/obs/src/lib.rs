//! `glitch-obs`: the engine's dependency-free observability layer.
//!
//! Three pieces, designed to be cheap enough to leave compiled into every
//! build:
//!
//! * [`MetricsRegistry`] — named counters, gauges and fixed-log2-bucket
//!   histograms behind copyable handles. One registry per worker thread;
//!   [`MetricsRegistry::merge`] folds them in job order with the exact
//!   discipline of `glitch-sim`'s `MergeableProbe`, so merged metrics are
//!   bit-identical at any `--jobs` count. A disabled registry turns every
//!   record operation into one predictable branch.
//! * [`Clock`] / [`SpanLog`] / [`Span`] — RAII timing spans over a shared
//!   monotonic origin, ring-buffered with a drop counter.
//! * [`export`] — a human-readable summary, stable sorted-by-name metrics
//!   JSON, and Chrome trace-event JSON for Perfetto/`chrome://tracing`.
//!
//! Deterministic quantities (cycle, event and evaluation counts) belong in
//! the registry; wall-clock time belongs in spans. Keeping the two apart
//! is what lets the CLI promise byte-identical `--metrics-json` output
//! across runs and job counts while still shipping a flame view.

pub mod export;
mod metrics;
mod span;

pub use metrics::{
    bucket_index, CounterHandle, GaugeHandle, Histogram, HistogramHandle, MetricsRegistry,
    HISTOGRAM_BUCKETS,
};
pub use span::{Clock, Span, SpanLog, SpanRecord, DEFAULT_SPAN_CAPACITY};
