//! `glitch-obs`: the engine's dependency-free observability layer.
//!
//! Three pieces, designed to be cheap enough to leave compiled into every
//! build:
//!
//! * [`MetricsRegistry`] — named counters, gauges and fixed-log2-bucket
//!   histograms behind copyable handles. One registry per worker thread;
//!   [`MetricsRegistry::merge`] folds them in job order with the exact
//!   discipline of `glitch-sim`'s `MergeableProbe`, so merged metrics are
//!   bit-identical at any `--jobs` count. A disabled registry turns every
//!   record operation into one predictable branch.
//! * [`Clock`] / [`SpanLog`] / [`Span`] — RAII timing spans over a shared
//!   monotonic origin, ring-buffered with a drop counter.
//! * [`export`] — a human-readable summary, stable sorted-by-name metrics
//!   JSON, Prometheus text exposition, and Chrome trace-event JSON for
//!   Perfetto/`chrome://tracing`.
//! * [`WindowedHistogram`] — a ring of fixed-duration time slots over the
//!   log2 histogram, answering exact-rank percentile queries over sliding
//!   windows (the serving daemon's "p99 over the last minute").
//! * [`EventLog`] — a bounded JSON-lines event writer with atomic line
//!   appends and size-based rotation (the daemon's access log).
//!
//! Deterministic quantities (cycle, event and evaluation counts) belong in
//! the registry; wall-clock time belongs in spans. Keeping the two apart
//! is what lets the CLI promise byte-identical `--metrics-json` output
//! across runs and job counts while still shipping a flame view.

mod eventlog;
pub mod export;
mod metrics;
mod span;
mod windowed;

pub use eventlog::{EventLog, DEFAULT_EVENT_LOG_MAX_BYTES};
pub use metrics::{
    bucket_index, bucket_upper_bound, CounterHandle, GaugeHandle, Histogram, HistogramHandle,
    MetricsRegistry, HISTOGRAM_BUCKETS,
};
pub use span::{Clock, Span, SpanLog, SpanRecord, DEFAULT_SPAN_CAPACITY};
pub use windowed::{
    WindowedHistogram, DEFAULT_SLOT_COUNT, DEFAULT_SLOT_MICROS, WINDOW_1M_MICROS, WINDOW_5M_MICROS,
};
