//! [`WindowedHistogram`]: a ring of fixed-duration time slots over the
//! registry's log2 [`Histogram`], for live latency percentiles.
//!
//! A long-lived process (the serving daemon) wants "p99 over the last
//! minute", not "p99 since boot". The windowed histogram keeps one log2
//! histogram per time slot plus a cumulative total; recording touches the
//! slot the timestamp falls into (resetting it if the ring has wrapped),
//! and a window query merges every slot that intersects the window into
//! one histogram, whose exact-rank [`Histogram::value_at_quantile`]
//! answers the percentile.
//!
//! Time is explicit: every call takes `now_micros` from the caller's
//! [`crate::Clock`], so windows are deterministic under test and the
//! struct itself needs no interior clock or locking.

use crate::metrics::Histogram;

/// Microseconds in the canonical short window (one minute).
pub const WINDOW_1M_MICROS: u64 = 60_000_000;

/// Microseconds in the canonical long window (five minutes).
pub const WINDOW_5M_MICROS: u64 = 300_000_000;

/// The default slot duration: 5-second slots.
pub const DEFAULT_SLOT_MICROS: u64 = 5_000_000;

/// The default slot count: 60 slots of 5 s cover the 5-minute window.
pub const DEFAULT_SLOT_COUNT: usize = 60;

#[derive(Debug, Clone)]
struct Slot {
    /// Which absolute slot index (`time / slot_micros`) this holds, or
    /// `u64::MAX` when never written.
    index: u64,
    histogram: Histogram,
}

/// A time-sliced histogram ring; see the module docs.
#[derive(Debug, Clone)]
pub struct WindowedHistogram {
    slot_micros: u64,
    slots: Vec<Slot>,
    total: Histogram,
}

impl Default for WindowedHistogram {
    fn default() -> Self {
        Self::new(DEFAULT_SLOT_MICROS, DEFAULT_SLOT_COUNT)
    }
}

impl WindowedHistogram {
    /// A ring of `slot_count` slots of `slot_micros` each. The ring
    /// covers `slot_count × slot_micros` of history; queries for longer
    /// windows silently miss the evicted slots, so size the ring to the
    /// longest window you ask for.
    #[must_use]
    pub fn new(slot_micros: u64, slot_count: usize) -> Self {
        WindowedHistogram {
            slot_micros: slot_micros.max(1),
            slots: vec![
                Slot {
                    index: u64::MAX,
                    histogram: Histogram::default(),
                };
                slot_count.max(1)
            ],
            total: Histogram::default(),
        }
    }

    /// Records one sample at `now_micros` on the caller's clock.
    pub fn record(&mut self, now_micros: u64, value: u64) {
        let index = now_micros / self.slot_micros;
        let pos = (index as usize) % self.slots.len();
        let slot = &mut self.slots[pos];
        if slot.index != index {
            slot.index = index;
            slot.histogram = Histogram::default();
        }
        slot.histogram.record(value);
        self.total.record(value);
    }

    /// The cumulative histogram over every sample ever recorded.
    #[must_use]
    pub fn total(&self) -> &Histogram {
        &self.total
    }

    /// Merges every slot intersecting `[now - window, now]` into one
    /// histogram. A slot qualifies when its `[start, end)` time range
    /// overlaps the window, so a query issued mid-slot sees the samples
    /// recorded earlier in that same slot.
    #[must_use]
    pub fn window(&self, now_micros: u64, window_micros: u64) -> Histogram {
        let from = now_micros.saturating_sub(window_micros);
        let mut merged = Histogram::default();
        for slot in &self.slots {
            if slot.index == u64::MAX {
                continue;
            }
            let start = slot.index.saturating_mul(self.slot_micros);
            let end = start.saturating_add(self.slot_micros);
            if end > from && start <= now_micros {
                merged.merge(&slot.histogram);
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_sees_recent_slots_only() {
        let mut w = WindowedHistogram::new(1_000_000, 10); // 1 s slots, 10 s ring
        w.record(500_000, 10); // slot 0
        w.record(3_500_000, 20); // slot 3
        w.record(8_500_000, 30); // slot 8

        // 2 s window at t=9 s: only slot 8.
        let recent = w.window(9_000_000, 2_000_000);
        assert_eq!(recent.count(), 1);
        assert_eq!(recent.max(), 30);

        // 6 s window at t=9 s: slots 3 and 8.
        let mid = w.window(9_000_000, 6_000_000);
        assert_eq!(mid.count(), 2);

        // Everything, and the cumulative total.
        assert_eq!(w.window(9_000_000, 10_000_000).count(), 3);
        assert_eq!(w.total().count(), 3);
        assert_eq!(w.total().sum(), 60);
    }

    #[test]
    fn ring_wrap_evicts_stale_slots_but_keeps_total() {
        let mut w = WindowedHistogram::new(1_000_000, 4);
        w.record(0, 1); // slot 0
        w.record(4_500_000, 2); // slot 4 reuses slot 0's position
        let window = w.window(4_900_000, 10_000_000);
        assert_eq!(window.count(), 1, "slot 0 must have been reset");
        assert_eq!(window.max(), 2);
        assert_eq!(w.total().count(), 2, "the total never forgets");
    }

    #[test]
    fn query_mid_slot_includes_the_open_slot() {
        let mut w = WindowedHistogram::default();
        w.record(1_000, 500);
        let window = w.window(2_000, WINDOW_1M_MICROS);
        assert_eq!(window.count(), 1);
        assert_eq!(window.value_at_quantile(0.5), 500);
    }

    #[test]
    fn percentiles_over_a_window_use_exact_rank() {
        let mut w = WindowedHistogram::default();
        for i in 0..100u64 {
            w.record(i * 1_000, if i < 90 { 100 } else { 4_000 });
        }
        let window = w.window(100_000, WINDOW_1M_MICROS);
        assert_eq!(window.count(), 100);
        assert_eq!(window.value_at_quantile(0.50), 127); // bucket [64,128)
        assert_eq!(window.value_at_quantile(0.99), 4_000); // clamped to max
    }
}
