//! Exporters: human-readable summary, stable metrics JSON, and Chrome
//! trace-event JSON (open a `--trace-out` file in Perfetto or
//! `chrome://tracing`).
//!
//! The metrics exporters render every metric sorted by name, so two equal
//! registries (the registry's `==` is name-order-insensitive) render to
//! byte-identical text/JSON — the determinism guarantee "merged metrics
//! are bit-identical at any job count" is stated over these bytes.

use std::fmt::Write as _;

use crate::metrics::{Histogram, MetricsRegistry};
use crate::span::SpanLog;

/// Escapes a string for a JSON string literal (without the quotes).
fn escape_json(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn histogram_json(histogram: &Histogram) -> String {
    let buckets = histogram
        .nonzero_buckets()
        .iter()
        .map(|&(i, n)| format!("[{i},{n}]"))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{}]}}",
        histogram.count(),
        histogram.sum(),
        histogram.min(),
        histogram.max(),
        buckets
    )
}

/// Renders a registry as one stable JSON object:
/// `{"counters":{...},"gauges":{...},"histograms":{...}}`, each section
/// sorted by metric name. Histogram buckets are `[log2 bucket index,
/// sample count]` pairs (bucket `i > 0` covers `[2^(i-1), 2^i)`, bucket 0
/// is the zero samples).
#[must_use]
pub fn metrics_json(metrics: &MetricsRegistry) -> String {
    let mut out = String::from("{\"counters\":{");
    let counters = metrics
        .counters()
        .iter()
        .map(|&(n, v)| format!("\"{}\":{v}", escape_json(n)))
        .collect::<Vec<_>>()
        .join(",");
    out.push_str(&counters);
    out.push_str("},\"gauges\":{");
    let gauges = metrics
        .gauges()
        .iter()
        .map(|&(n, v)| format!("\"{}\":{v}", escape_json(n)))
        .collect::<Vec<_>>()
        .join(",");
    out.push_str(&gauges);
    out.push_str("},\"histograms\":{");
    let histograms = metrics
        .histograms()
        .iter()
        .map(|(n, h)| format!("\"{}\":{}", escape_json(n), histogram_json(h)))
        .collect::<Vec<_>>()
        .join(",");
    out.push_str(&histograms);
    out.push_str("}}");
    out
}

/// Renders a registry as an aligned human-readable summary.
#[must_use]
pub fn metrics_text(metrics: &MetricsRegistry) -> String {
    let mut out = String::new();
    if metrics.is_empty() {
        out.push_str("metrics: (none recorded)\n");
        return out;
    }
    out.push_str("metrics:\n");
    for (name, value) in metrics.counters() {
        let _ = writeln!(out, "  {name:<40} {value}");
    }
    for (name, value) in metrics.gauges() {
        let _ = writeln!(out, "  {name:<40} {value} (max)");
    }
    for (name, histogram) in metrics.histograms() {
        let _ = writeln!(
            out,
            "  {name:<40} n={} mean={:.1} min={} max={}",
            histogram.count(),
            histogram.mean(),
            histogram.min(),
            histogram.max()
        );
    }
    out
}

/// Renders a registry in the Prometheus text exposition format (one
/// `# TYPE` line per metric, names sanitised to `[a-zA-Z0-9_]`).
/// Histograms expose cumulative `_bucket{le="..."}` series at the log2
/// bucket upper bounds (only occupied buckets, plus the mandatory
/// `+Inf`), with the usual `_sum`/`_count` pair.
#[must_use]
pub fn metrics_prometheus(metrics: &MetricsRegistry) -> String {
    fn sanitize(name: &str) -> String {
        let mut out: String = name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            out.insert(0, '_');
        }
        out
    }
    let mut out = String::new();
    for (name, value) in metrics.counters() {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in metrics.gauges() {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, histogram) in metrics.histograms() {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (index, count) in histogram.nonzero_buckets() {
            cumulative += count;
            let _ = writeln!(
                out,
                "{name}_bucket{{le=\"{}\"}} {cumulative}",
                crate::metrics::bucket_upper_bound(index)
            );
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", histogram.count());
        let _ = writeln!(out, "{name}_sum {}", histogram.sum());
        let _ = writeln!(out, "{name}_count {}", histogram.count());
    }
    out
}

/// Renders a span log as a Chrome trace-event JSON array of complete
/// (`"ph":"X"`) events — load the file in Perfetto (<https://ui.perfetto.dev>)
/// or `chrome://tracing`. Timestamps and durations are microseconds on the
/// log's [`crate::Clock`] timeline.
#[must_use]
pub fn chrome_trace(log: &SpanLog) -> String {
    chrome_trace_with_tracks(log, &[])
}

/// [`chrome_trace`] with named tracks: each `(tid, name)` pair emits a
/// `thread_name` metadata event, so long-lived consumers (the serving
/// layer's worker pool) label their per-worker rows in Perfetto instead
/// of showing bare thread ids.
#[must_use]
pub fn chrome_trace_with_tracks(log: &SpanLog, tracks: &[(u64, &str)]) -> String {
    let events = tracks
        .iter()
        .map(|&(tid, name)| {
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape_json(name)
            )
        })
        .chain(log.records().iter().map(|r| {
            let args = if r.args.is_empty() {
                String::new()
            } else {
                let rendered = r
                    .args
                    .iter()
                    .map(|(k, v)| format!("\"{}\":{v}", escape_json(k)))
                    .collect::<Vec<_>>()
                    .join(",");
                format!(",\"args\":{{{rendered}}}")
            };
            format!(
                "{{\"name\":\"{}\",\"cat\":\"glitch\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{}{args}}}",
                escape_json(&r.name),
                r.start_micros,
                r.dur_micros,
                r.tid
            )
        }))
        .collect::<Vec<_>>()
        .join(",\n");
    format!("[\n{events}\n]\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Clock;

    fn sample() -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        let c = m.counter("b.counter");
        let c2 = m.counter("a.counter");
        let g = m.gauge("g.peak");
        let h = m.histogram("h.values");
        m.add(c, 2);
        m.add(c2, 1);
        m.observe_max(g, 9);
        m.record(h, 5);
        m
    }

    #[test]
    fn metrics_json_is_sorted_and_stable() {
        let json = metrics_json(&sample());
        assert_eq!(
            json,
            "{\"counters\":{\"a.counter\":1,\"b.counter\":2},\
             \"gauges\":{\"g.peak\":9},\
             \"histograms\":{\"h.values\":{\"count\":1,\"sum\":5,\"min\":5,\"max\":5,\
             \"buckets\":[[3,1]]}}}"
        );
    }

    #[test]
    fn equal_registries_render_identically() {
        let a = sample();
        // Same metrics registered in a different order.
        let mut b = MetricsRegistry::new();
        let h = b.histogram("h.values");
        let g = b.gauge("g.peak");
        let c2 = b.counter("a.counter");
        let c = b.counter("b.counter");
        b.record(h, 5);
        b.observe_max(g, 9);
        b.add(c2, 1);
        b.add(c, 2);
        assert_eq!(a, b);
        assert_eq!(metrics_json(&a), metrics_json(&b));
        assert_eq!(metrics_text(&a), metrics_text(&b));
    }

    #[test]
    fn text_summary_mentions_every_metric() {
        let text = metrics_text(&sample());
        for name in ["a.counter", "b.counter", "g.peak", "h.values"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
        assert!(metrics_text(&MetricsRegistry::new()).contains("none recorded"));
    }

    #[test]
    fn chrome_trace_is_an_event_array() {
        let log = SpanLog::new(Clock::new());
        log.record("parse", 0, 10, 5);
        log.record("shard \"q\"", 2, 20, 7);
        let trace = chrome_trace(&log);
        assert!(trace.starts_with("[\n"));
        assert!(trace.ends_with("\n]\n"));
        assert!(trace.contains("\"name\":\"parse\""));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"ts\":10"));
        assert!(trace.contains("\"dur\":5"));
        assert!(trace.contains("\"tid\":2"));
        assert!(trace.contains("shard \\\"q\\\""));
    }

    #[test]
    fn prometheus_exposition_covers_every_metric() {
        let text = metrics_prometheus(&sample());
        assert!(text.contains("# TYPE a_counter counter\na_counter 1\n"));
        assert!(text.contains("# TYPE b_counter counter\nb_counter 2\n"));
        assert!(text.contains("# TYPE g_peak gauge\ng_peak 9\n"));
        assert!(text.contains("# TYPE h_values histogram\n"));
        // Value 5 sits in bucket 3 ([4,8)), upper bound 7; cumulative 1.
        assert!(
            text.contains("h_values_bucket{le=\"7\"} 1\n"),
            "got:\n{text}"
        );
        assert!(text.contains("h_values_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("h_values_sum 5\n"));
        assert!(text.contains("h_values_count 1\n"));
    }

    #[test]
    fn span_args_render_into_the_trace() {
        let log = SpanLog::new(Clock::new());
        log.record_with_args("analyze m.blif", 1, 10, 5, vec![("request_id".into(), 7)]);
        let trace = chrome_trace(&log);
        assert!(
            trace.contains("\"args\":{\"request_id\":7}"),
            "got: {trace}"
        );
    }

    #[test]
    fn json_escaping_handles_control_chars() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
