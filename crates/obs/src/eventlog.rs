//! [`EventLog`]: a bounded, dependency-free JSON-lines event writer.
//!
//! The serving daemon's access log: callers render one JSON object per
//! event and [`EventLog::append`] writes it as exactly one line. A mutex
//! serialises writers and each line goes out as a single `write_all`, so
//! concurrent appends never interleave bytes. The log is size-bounded:
//! when a line would push the file past `max_bytes`, the file rotates to
//! `<path>.1` (replacing any previous rotation) and a fresh file starts,
//! bounding disk use at roughly `2 × max_bytes`.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Default rotation threshold: 64 MiB per file.
pub const DEFAULT_EVENT_LOG_MAX_BYTES: u64 = 64 * 1024 * 1024;

/// A rotating JSON-lines writer; see the module docs.
#[derive(Debug)]
pub struct EventLog {
    path: PathBuf,
    max_bytes: u64,
    state: Mutex<State>,
}

#[derive(Debug)]
struct State {
    file: File,
    written: u64,
}

fn open_append(path: &Path) -> io::Result<File> {
    OpenOptions::new().create(true).append(true).open(path)
}

impl EventLog {
    /// Opens (or creates) the log at `path`, appending to existing
    /// content; `max_bytes` caps each file before rotation.
    ///
    /// # Errors
    ///
    /// Propagates the underlying open/metadata failures.
    pub fn create(path: impl Into<PathBuf>, max_bytes: u64) -> io::Result<EventLog> {
        let path = path.into();
        let file = open_append(&path)?;
        let written = file.metadata()?.len();
        Ok(EventLog {
            path,
            max_bytes: max_bytes.max(1),
            state: Mutex::new(State { file, written }),
        })
    }

    /// The active log file's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Where rotation moves a full file: `<path>.1`.
    #[must_use]
    pub fn rotated_path(path: &Path) -> PathBuf {
        let mut name = path.as_os_str().to_os_string();
        name.push(".1");
        PathBuf::from(name)
    }

    /// Appends one event as one line (a trailing newline is added; any
    /// already present is normalised away). The line is written atomically
    /// with respect to other appenders. Rotates first when the line would
    /// push the file past `max_bytes` — a single oversized line still goes
    /// out whole, to its own file.
    ///
    /// # Errors
    ///
    /// Propagates write and rotation failures.
    pub fn append(&self, line: &str) -> io::Result<()> {
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line.trim_end_matches(['\n', '\r']));
        framed.push('\n');
        let mut state = self.state.lock().expect("event log lock");
        if state.written > 0 && state.written + framed.len() as u64 > self.max_bytes {
            state.file.flush()?;
            std::fs::rename(&self.path, Self::rotated_path(&self.path))?;
            state.file = open_append(&self.path)?;
            state.written = 0;
        }
        state.file.write_all(framed.as_bytes())?;
        state.written += framed.len() as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "glitch-eventlog-{tag}-{}.jsonl",
            std::process::id()
        ))
    }

    fn cleanup(path: &Path) {
        std::fs::remove_file(path).ok();
        std::fs::remove_file(EventLog::rotated_path(path)).ok();
    }

    #[test]
    fn appends_one_line_per_event() {
        let path = temp_path("lines");
        cleanup(&path);
        let log = EventLog::create(&path, DEFAULT_EVENT_LOG_MAX_BYTES).unwrap();
        log.append(r#"{"id":1}"#).unwrap();
        log.append("{\"id\":2}\n").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"id\":1}\n{\"id\":2}\n");
        cleanup(&path);
    }

    #[test]
    fn rotates_at_the_size_cap() {
        let path = temp_path("rotate");
        cleanup(&path);
        let log = EventLog::create(&path, 32).unwrap();
        let line = r#"{"id":1,"pad":"xxxxxxxxxx"}"#; // 28 bytes framed
        log.append(line).unwrap();
        log.append(line).unwrap(); // would exceed 32: rotates first
        let rotated = EventLog::rotated_path(&path);
        assert!(rotated.exists(), "rotation must produce {rotated:?}");
        assert_eq!(
            std::fs::read_to_string(&rotated).unwrap().lines().count(),
            1
        );
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 1);
        // A third line rotates again, replacing the previous rotation.
        log.append(line).unwrap();
        assert_eq!(
            std::fs::read_to_string(&rotated).unwrap().lines().count(),
            1
        );
        cleanup(&path);
    }

    #[test]
    fn reopening_appends_and_counts_existing_bytes() {
        let path = temp_path("reopen");
        cleanup(&path);
        {
            let log = EventLog::create(&path, 1024).unwrap();
            log.append(r#"{"id":1}"#).unwrap();
        }
        let log = EventLog::create(&path, 1024).unwrap();
        log.append(r#"{"id":2}"#).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        cleanup(&path);
    }

    #[test]
    fn concurrent_appends_never_interleave() {
        let path = temp_path("concurrent");
        cleanup(&path);
        let log = std::sync::Arc::new(EventLog::create(&path, u64::MAX).unwrap());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let log = std::sync::Arc::clone(&log);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        log.append(&format!("{{\"thread\":{t},\"i\":{i}}}"))
                            .unwrap();
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 200);
        for line in text.lines() {
            assert!(
                line.starts_with("{\"thread\":") && line.ends_with('}'),
                "mangled line: {line}"
            );
        }
        cleanup(&path);
    }
}
