//! The [`MetricsRegistry`]: named counters, gauges and log2-bucket
//! histograms behind cheap copyable handles.
//!
//! A registry is a per-thread collector. Parallel code gives every worker
//! its own registry and folds them afterwards with
//! [`MetricsRegistry::merge`] in job order — the same discipline as
//! `MergeableProbe` in `glitch-sim` — so the merged result is bit-identical
//! at any worker count. Merging is by metric *name* (union), counters add,
//! gauges combine by maximum and histograms add bucket-wise, which makes
//! the merge associative and commutative with the empty registry as
//! identity (tested, including by proptest).
//!
//! A registry built with [`MetricsRegistry::disabled`] keeps every handle
//! valid but turns each record operation into a single branch on a `false`
//! flag, so instrumented code needs no `cfg` gating to be cheap when
//! metrics are off.

/// Handle to a registered counter; cheap to copy, valid only for the
/// registry (or a same-schema sibling) that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterHandle(usize);

/// Handle to a registered gauge (combines by maximum).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeHandle(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramHandle(usize);

/// Number of histogram buckets: bucket 0 holds zero values, bucket `i`
/// (1 ≤ i ≤ 64) holds values whose highest set bit is `i - 1`, i.e. the
/// range `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-log2-bucket histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// The bucket index of one sample (see [`HISTOGRAM_BUCKETS`]).
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// The largest value a bucket holds: 0 for bucket 0, `2^i - 1` for
/// bucket `0 < i < 64`, and `u64::MAX` for the last bucket.
#[must_use]
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i >= 64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// Records one sample. Standalone histograms (outside a registry, e.g.
    /// the time slots of a `WindowedHistogram`) record through this
    /// directly; registry-held ones go through
    /// [`MetricsRegistry::record`].
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Adds another histogram bucket-wise (count/sum add, min/max fold).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q` (clamped to `[0, 1]`) by exact rank: the
    /// sample of rank `ceil(q · count)` is located in its bucket and the
    /// bucket's upper bound is returned, clamped to the recorded
    /// `[min, max]` so a narrow distribution reports tight quantiles.
    /// Returns 0 on an empty histogram.
    #[must_use]
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(i).clamp(self.min(), self.max);
            }
        }
        self.max
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or 0 when empty.
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, or 0 when empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The non-empty buckets as `(bucket index, sample count)` pairs in
    /// bucket order. Bucket `i > 0` covers `[2^(i-1), 2^i)`; bucket 0 is
    /// the zero values.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
            .collect()
    }
}

/// The per-thread metrics collector; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    disabled: bool,
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, u64)>,
    histograms: Vec<(String, Histogram)>,
}

impl MetricsRegistry {
    /// An enabled, empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry whose record operations are single-branch no-ops.
    /// Handles stay valid, so instrumented code is identical either way.
    #[must_use]
    pub fn disabled() -> Self {
        MetricsRegistry {
            disabled: true,
            ..Self::default()
        }
    }

    /// `true` when record operations are no-ops.
    #[must_use]
    pub fn is_disabled(&self) -> bool {
        self.disabled
    }

    /// Registers (or re-finds) a counter by name.
    pub fn counter(&mut self, name: &str) -> CounterHandle {
        CounterHandle(Self::intern(&mut self.counters, name, 0))
    }

    /// Registers (or re-finds) a gauge by name. Gauges keep the maximum
    /// of every recorded value, which is what makes their merge exact.
    pub fn gauge(&mut self, name: &str) -> GaugeHandle {
        GaugeHandle(Self::intern(&mut self.gauges, name, 0))
    }

    /// Registers (or re-finds) a histogram by name.
    pub fn histogram(&mut self, name: &str) -> HistogramHandle {
        HistogramHandle(Self::intern(
            &mut self.histograms,
            name,
            Histogram::default(),
        ))
    }

    fn intern<T>(slots: &mut Vec<(String, T)>, name: &str, empty: T) -> usize {
        if let Some(i) = slots.iter().position(|(n, _)| n == name) {
            return i;
        }
        slots.push((name.to_string(), empty));
        slots.len() - 1
    }

    /// Adds `n` to a counter.
    pub fn add(&mut self, handle: CounterHandle, n: u64) {
        if self.disabled {
            return;
        }
        self.counters[handle.0].1 += n;
    }

    /// Adds 1 to a counter.
    pub fn inc(&mut self, handle: CounterHandle) {
        self.add(handle, 1);
    }

    /// Records a gauge observation (kept as the running maximum).
    pub fn observe_max(&mut self, handle: GaugeHandle, value: u64) {
        if self.disabled {
            return;
        }
        let slot = &mut self.gauges[handle.0].1;
        *slot = (*slot).max(value);
    }

    /// Records one histogram sample.
    pub fn record(&mut self, handle: HistogramHandle, value: u64) {
        if self.disabled {
            return;
        }
        self.histograms[handle.0].1.record(value);
    }

    /// Reads a counter by name.
    #[must_use]
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Reads a gauge by name.
    #[must_use]
    pub fn gauge_value(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Reads a histogram by name.
    #[must_use]
    pub fn histogram_value(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// The counters, sorted by name.
    #[must_use]
    pub fn counters(&self) -> Vec<(&str, u64)> {
        let mut rows: Vec<(&str, u64)> = self
            .counters
            .iter()
            .map(|(n, v)| (n.as_str(), *v))
            .collect();
        rows.sort_unstable_by(|a, b| a.0.cmp(b.0));
        rows
    }

    /// The gauges, sorted by name.
    #[must_use]
    pub fn gauges(&self) -> Vec<(&str, u64)> {
        let mut rows: Vec<(&str, u64)> =
            self.gauges.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        rows.sort_unstable_by(|a, b| a.0.cmp(b.0));
        rows
    }

    /// The histograms, sorted by name.
    #[must_use]
    pub fn histograms(&self) -> Vec<(&str, &Histogram)> {
        let mut rows: Vec<(&str, &Histogram)> = self
            .histograms
            .iter()
            .map(|(n, h)| (n.as_str(), h))
            .collect();
        rows.sort_unstable_by(|a, b| a.0.cmp(b.0));
        rows
    }

    /// `true` when nothing has been registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds another collector into this one, by metric name (union):
    /// counters add, gauges combine by maximum, histograms add
    /// bucket-wise. The operation is associative and commutative with the
    /// empty registry as identity (under the registry's
    /// name-order-insensitive `==`), so a parallel job-order fold is
    /// bit-identical to the serial fold at any worker count.
    pub fn merge(&mut self, other: MetricsRegistry) {
        for (name, value) in other.counters {
            let handle = self.counter(&name);
            self.counters[handle.0].1 += value;
        }
        for (name, value) in other.gauges {
            let handle = self.gauge(&name);
            let slot = &mut self.gauges[handle.0].1;
            *slot = (*slot).max(value);
        }
        for (name, histogram) in other.histograms {
            let handle = self.histogram(&name);
            self.histograms[handle.0].1.merge(&histogram);
        }
    }
}

/// Name-order-insensitive equality: two registries are equal when they
/// hold the same metrics with the same values, regardless of registration
/// order. This is the relation the merge laws (associativity,
/// commutativity, identity) hold over.
impl PartialEq for MetricsRegistry {
    fn eq(&self, other: &MetricsRegistry) -> bool {
        self.counters() == other.counters()
            && self.gauges() == other.gauges()
            && self.histograms() == other.histograms()
    }
}

impl Eq for MetricsRegistry {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        let c = m.counter("sim.cycles");
        let g = m.gauge("queue.peak_depth");
        let h = m.histogram("cycle.events");
        m.add(c, 10);
        m.observe_max(g, 7);
        m.record(h, 0);
        m.record(h, 3);
        m.record(h, 1000);
        m
    }

    #[test]
    fn records_and_reads_back() {
        let m = sample();
        assert_eq!(m.counter_value("sim.cycles"), Some(10));
        assert_eq!(m.gauge_value("queue.peak_depth"), Some(7));
        let h = m.histogram_value("cycle.events").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 1003);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (2, 1), (10, 1)]);
    }

    #[test]
    fn bucket_index_is_log2_floor_plus_one() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn quantiles_use_exact_rank_over_buckets() {
        let mut h = Histogram::default();
        assert_eq!(h.value_at_quantile(0.5), 0);
        for value in [1u64, 2, 3, 100, 1000] {
            h.record(value);
        }
        // Rank ceil(0.5 * 5) = 3 lands in bucket 2 ([2,4)): upper bound 3.
        assert_eq!(h.value_at_quantile(0.5), 3);
        // Rank 5 lands in bucket 10; clamped to the recorded max.
        assert_eq!(h.value_at_quantile(0.99), 1000);
        assert_eq!(h.value_at_quantile(1.0), 1000);
        // Rank is at least 1: the lowest sample's bucket.
        assert_eq!(h.value_at_quantile(0.0), 1);

        let mut uniform = Histogram::default();
        for _ in 0..10 {
            uniform.record(7);
        }
        // All mass in one bucket: every quantile is clamped to [7, 7].
        assert_eq!(uniform.value_at_quantile(0.5), 7);
        assert_eq!(uniform.value_at_quantile(0.99), 7);
    }

    #[test]
    fn bucket_upper_bounds_match_bucket_index() {
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        for value in [0u64, 1, 2, 3, 4, 1000, u64::MAX] {
            assert!(value <= bucket_upper_bound(bucket_index(value)));
        }
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let mut m = MetricsRegistry::disabled();
        let c = m.counter("c");
        let g = m.gauge("g");
        let h = m.histogram("h");
        m.add(c, 5);
        m.observe_max(g, 5);
        m.record(h, 5);
        assert_eq!(m.counter_value("c"), Some(0));
        assert_eq!(m.gauge_value("g"), Some(0));
        assert_eq!(m.histogram_value("h").unwrap().count(), 0);
    }

    #[test]
    fn handles_are_idempotent_per_name() {
        let mut m = MetricsRegistry::new();
        let a = m.counter("x");
        let b = m.counter("x");
        assert_eq!(a, b);
        m.inc(a);
        m.inc(b);
        assert_eq!(m.counter_value("x"), Some(2));
    }

    #[test]
    fn merge_sums_maxes_and_unions() {
        let mut a = sample();
        let mut b = MetricsRegistry::new();
        let c = b.counter("sim.cycles");
        let c2 = b.counter("only.in.b");
        let g = b.gauge("queue.peak_depth");
        let h = b.histogram("cycle.events");
        b.add(c, 5);
        b.add(c2, 1);
        b.observe_max(g, 3);
        b.record(h, 3);
        a.merge(b);
        assert_eq!(a.counter_value("sim.cycles"), Some(15));
        assert_eq!(a.counter_value("only.in.b"), Some(1));
        assert_eq!(a.gauge_value("queue.peak_depth"), Some(7));
        let h = a.histogram_value("cycle.events").unwrap();
        assert_eq!(h.count(), 4);
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (2, 2), (10, 1)]);
    }

    #[test]
    fn merge_identity_both_sides() {
        let a = sample();
        let mut left = MetricsRegistry::new();
        left.merge(a.clone());
        let mut right = a.clone();
        right.merge(MetricsRegistry::new());
        assert_eq!(left, a);
        assert_eq!(right, a);
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        let a = sample();
        let mut b = MetricsRegistry::new();
        let c = b.counter("only.in.b");
        b.add(c, 9);
        let mut c_reg = MetricsRegistry::new();
        let g = c_reg.gauge("queue.peak_depth");
        c_reg.observe_max(g, 100);

        let mut ab = a.clone();
        ab.merge(b.clone());
        let mut ba = b.clone();
        ba.merge(a.clone());
        assert_eq!(ab, ba);

        let mut ab_c = ab.clone();
        ab_c.merge(c_reg.clone());
        let mut bc = b.clone();
        bc.merge(c_reg.clone());
        let mut a_bc = a.clone();
        a_bc.merge(bc);
        assert_eq!(ab_c, a_bc);
    }

    #[test]
    fn exports_sort_by_name() {
        let mut m = MetricsRegistry::new();
        m.counter("zeta");
        m.counter("alpha");
        let names: Vec<&str> = m.counters().iter().map(|&(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
