//! RAII timing spans over a monotonic clock, collected into a
//! ring-buffered [`SpanLog`].
//!
//! A [`Clock`] pins a process-wide time origin; every span timestamp is
//! microseconds since that origin, so spans recorded by different
//! components (and threads, via [`SpanLog::record`]) line up on one
//! timeline. The log itself is single-threaded (interior mutability via
//! `RefCell`, so nested RAII guards work): worker threads measure their
//! own wall-clock windows and the coordinator records them with an
//! explicit track id afterwards, which keeps the hot path free of locks.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::time::Instant;

/// A monotonic clock with a fixed origin.
#[derive(Debug, Clone, Copy)]
pub struct Clock {
    origin: Instant,
}

impl Clock {
    /// A clock whose origin is "now".
    #[must_use]
    pub fn new() -> Self {
        Clock {
            origin: Instant::now(),
        }
    }

    /// Microseconds elapsed since the clock's origin.
    #[must_use]
    pub fn now_micros(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

impl Default for Clock {
    fn default() -> Self {
        Self::new()
    }
}

/// One finished span on the shared timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The span's name (e.g. `parse`, `shard`).
    pub name: String,
    /// Track (thread/shard) id the span is drawn on.
    pub tid: u64,
    /// Start, in microseconds since the [`Clock`] origin.
    pub start_micros: u64,
    /// Duration in microseconds.
    pub dur_micros: u64,
    /// Numeric span arguments (e.g. `request_id`), rendered into the
    /// Chrome trace event's `args` object; usually empty.
    pub args: Vec<(String, u64)>,
}

/// The default ring-buffer capacity of a [`SpanLog`].
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;

/// A bounded log of finished spans; see the module docs.
#[derive(Debug)]
pub struct SpanLog {
    clock: Clock,
    capacity: usize,
    inner: RefCell<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    records: VecDeque<SpanRecord>,
    dropped: u64,
}

impl SpanLog {
    /// An empty log over `clock` with the default capacity.
    #[must_use]
    pub fn new(clock: Clock) -> Self {
        Self::with_capacity(clock, DEFAULT_SPAN_CAPACITY)
    }

    /// An empty log retaining at most `capacity` spans (oldest evicted
    /// first; evictions are counted, not silent).
    #[must_use]
    pub fn with_capacity(clock: Clock, capacity: usize) -> Self {
        SpanLog {
            clock,
            capacity: capacity.max(1),
            inner: RefCell::new(Inner::default()),
        }
    }

    /// The log's clock (copyable; hand it to workers so their windows are
    /// measured on the same timeline).
    #[must_use]
    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// Starts a RAII span on track 0: the span is recorded when the
    /// returned guard drops.
    #[must_use]
    pub fn span(&self, name: impl Into<String>) -> Span<'_> {
        Span {
            log: self,
            name: name.into(),
            tid: 0,
            start_micros: self.clock.now_micros(),
        }
    }

    /// Records an externally measured span.
    pub fn record(&self, name: impl Into<String>, tid: u64, start_micros: u64, dur_micros: u64) {
        self.record_with_args(name, tid, start_micros, dur_micros, Vec::new());
    }

    /// Records an externally measured span with numeric arguments (e.g.
    /// the serving layer's per-request id).
    pub fn record_with_args(
        &self,
        name: impl Into<String>,
        tid: u64,
        start_micros: u64,
        dur_micros: u64,
        args: Vec<(String, u64)>,
    ) {
        let mut inner = self.inner.borrow_mut();
        if inner.records.len() == self.capacity {
            inner.records.pop_front();
            inner.dropped += 1;
        }
        inner.records.push_back(SpanRecord {
            name: name.into(),
            tid,
            start_micros,
            dur_micros,
            args,
        });
    }

    /// The retained spans, oldest first.
    #[must_use]
    pub fn records(&self) -> Vec<SpanRecord> {
        self.inner.borrow().records.iter().cloned().collect()
    }

    /// Number of spans evicted by the ring buffer.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }

    /// Number of retained spans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.borrow().records.len()
    }

    /// `true` when no span has been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().records.is_empty()
    }
}

/// RAII guard of a running span; records into its [`SpanLog`] on drop.
#[derive(Debug)]
pub struct Span<'a> {
    log: &'a SpanLog,
    name: String,
    tid: u64,
    start_micros: u64,
}

impl Span<'_> {
    /// Reassigns the span to a track other than 0.
    #[must_use]
    pub fn on_track(mut self, tid: u64) -> Self {
        self.tid = tid;
        self
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let end = self.log.clock.now_micros();
        self.log.record(
            std::mem::take(&mut self.name),
            self.tid,
            self.start_micros,
            end.saturating_sub(self.start_micros),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raii_span_records_on_drop() {
        let log = SpanLog::new(Clock::new());
        {
            let _outer = log.span("outer");
            let _inner = log.span("inner");
        }
        let records = log.records();
        assert_eq!(records.len(), 2);
        // Inner drops first.
        assert_eq!(records[0].name, "inner");
        assert_eq!(records[1].name, "outer");
        assert!(records[1].start_micros <= records[0].start_micros);
    }

    #[test]
    fn ring_buffer_evicts_oldest_and_counts() {
        let log = SpanLog::with_capacity(Clock::new(), 2);
        log.record("a", 0, 0, 1);
        log.record("b", 0, 1, 1);
        log.record("c", 0, 2, 1);
        let names: Vec<String> = log.records().into_iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["b", "c"]);
        assert_eq!(log.dropped(), 1);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn external_records_keep_their_track() {
        let log = SpanLog::new(Clock::new());
        log.record("shard", 3, 10, 20);
        let r = &log.records()[0];
        assert_eq!((r.tid, r.start_micros, r.dur_micros), (3, 10, 20));
        assert!(r.args.is_empty());
    }

    #[test]
    fn args_survive_the_ring() {
        let log = SpanLog::new(Clock::new());
        log.record_with_args("analyze", 1, 5, 9, vec![("request_id".into(), 42)]);
        assert_eq!(log.records()[0].args, vec![("request_id".to_string(), 42)]);
    }

    #[test]
    fn clock_is_monotonic() {
        let clock = Clock::new();
        let a = clock.now_micros();
        let b = clock.now_micros();
        assert!(b >= a);
    }
}
